//! SDD solver shoot-out: how the similarity-aware sparsifier preconditioner
//! compares against identity, Jacobi and tree-only preconditioning on an
//! ill-conditioned circuit Laplacian (the paper's Table 2 scenario).
//!
//! ```text
//! cargo run --release --example sdd_solver
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sass::prelude::*;
use sass_graph::spanning;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = sass::graph::generators::circuit_grid(96, 96, 0.1, 11);
    let lg = g.laplacian();
    println!("circuit grid: |V| = {}, |E| = {}", g.n(), g.m());

    let mut rng = StdRng::seed_from_u64(1);
    let mut b: Vec<f64> = (0..g.n()).map(|_| rng.gen_range(-1.0..1.0)).collect();
    sass::sparse::dense::center(&mut b);
    let opts = PcgOptions {
        tol: 1e-6,
        max_iter: 50_000,
        ..Default::default()
    };

    println!("\npreconditioner                          iterations");

    // 1. No preconditioning.
    let (_, s) = pcg(&lg, &b, &IdentityPrec, &opts);
    println!(
        "identity                                {:>10}",
        s.iterations
    );

    // 2. Jacobi.
    let (_, s) = pcg(&lg, &b, &JacobiPrec::new(&lg), &opts);
    println!(
        "jacobi                                  {:>10}",
        s.iterations
    );

    // 3. Spanning tree only (a sparsifier with zero off-tree edges).
    let tree_ids = spanning::max_weight_spanning_tree(&g)?;
    let tree = RootedTree::new(&g, tree_ids, 0)?;
    let (_, s) = pcg(&lg, &b, &TreePrec::new(TreeSolver::new(&g, &tree)), &opts);
    println!(
        "max-weight spanning tree                {:>10}",
        s.iterations
    );

    // 4. Similarity-aware sparsifiers at three similarity levels.
    for sigma2 in [400.0, 100.0, 25.0] {
        let sp = sparsify(&g, &SparsifyConfig::new(sigma2).with_seed(3))?;
        let prec = LaplacianPrec::new(GroundedSolver::new(
            &sp.graph().laplacian(),
            Default::default(),
        )?);
        let (_, s) = pcg(&lg, &b, &prec, &opts);
        println!(
            "sparsifier sigma^2 = {:<6} ({:>6} edges) {:>10}",
            sigma2,
            sp.graph().m(),
            s.iterations
        );
    }

    println!("\nshape to observe: iterations fall as sigma^2 tightens — the edge");
    println!("filtering threshold directly trades sparsifier size for solver speed.");
    Ok(())
}
