//! Spectral clustering of a community graph, on the original and on its
//! similarity-aware sparsifier (the paper's Table 4 `RCV-80NN` scenario:
//! when the original graph is too big to eigensolve, cluster the
//! sparsifier instead).
//!
//! ```text
//! cargo run --release --example spectral_clustering
//! ```

use sass::core::{sparsify, SparsifyConfig};
use sass::graph::generators::stochastic_block_model;
use sass::partition::clustering::{spectral_clustering, ClusteringOptions};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four planted communities with sparse inter-community noise.
    let sizes = [150, 150, 150, 150];
    let g = stochastic_block_model(&sizes, 0.15, 0.005, 21);
    println!(
        "SBM graph: |V| = {}, |E| = {}, 4 planted blocks",
        g.n(),
        g.m()
    );

    let t0 = Instant::now();
    let c_orig = spectral_clustering(&g, 4, &ClusteringOptions::default())?;
    let t_orig = t0.elapsed();

    let t0 = Instant::now();
    let sp = sparsify(&g, &SparsifyConfig::new(5.0).with_seed(3))?;
    let t_sparsify = t0.elapsed();
    let t0 = Instant::now();
    let c_sp = spectral_clustering(sp.graph(), 4, &ClusteringOptions::default())?;
    let t_sp = t0.elapsed();

    let accuracy = |assignment: &[usize]| -> f64 {
        // Rand index against the planted blocks.
        let block = |v: usize| v / 150;
        let n = assignment.len();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                if (block(i) == block(j)) == (assignment[i] == assignment[j]) {
                    agree += 1;
                }
                total += 1;
            }
        }
        agree as f64 / total as f64
    };

    println!(
        "\noriginal graph:   rand index {:.4}, cut weight {:.0}, eigensolve+kmeans {:.2?}",
        accuracy(&c_orig.assignment),
        c_orig.cut_weight,
        t_orig
    );
    println!(
        "sparsifier ({} of {} edges): rand index {:.4}, cut weight {:.0}, {:.2?} (+{:.2?} sparsify)",
        sp.graph().m(),
        g.m(),
        accuracy(&c_sp.assignment),
        c_sp.cut_weight,
        t_sp,
        t_sparsify
    );
    println!("\nshape to observe: clustering quality carries over to the sparsifier");
    println!("(tighter sigma^2 -> higher fidelity) while the eigensolve gets cheaper —");
    println!("the gap grows with graph size (paper Table 4: RCV-80NN only clusters");
    println!("at all after sparsification).");
    Ok(())
}
