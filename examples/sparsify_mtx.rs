//! Sparsify a Matrix Market SDD matrix from disk — the workflow for users
//! bringing their own matrices (e.g. SuiteSparse downloads).
//!
//! ```text
//! cargo run --release --example sparsify_mtx -- input.mtx [sigma2] [output.mtx]
//! ```
//!
//! With no arguments, a demo matrix is generated, written to a temp file
//! and processed — so the example is runnable out of the box.

use sass::core::{sparsify, SparsifyConfig};
use sass::graph::Graph;
use sass::sparse::mmio;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();

    let (input, cleanup_demo) = if args.len() >= 2 {
        (std::path::PathBuf::from(&args[1]), false)
    } else {
        // Demo mode: generate a circuit-style Laplacian and write it out.
        let path = std::env::temp_dir().join("sass_demo_input.mtx");
        let g = sass::graph::generators::circuit_grid(48, 48, 0.1, 7);
        mmio::write_path(&g.laplacian(), &path)?;
        println!(
            "demo mode: wrote a 48x48 circuit-grid Laplacian to {}",
            path.display()
        );
        (path, true)
    };
    let sigma2: f64 = args.get(2).map_or(Ok(100.0), |s| s.parse())?;
    let output = args
        .get(3)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("sass_sparsified.mtx"));

    // Read, interpret as a graph (paper's rule: |lower-triangular entries|
    // become edge weights), sparsify, write back.
    let matrix = mmio::read_path(&input)?.to_csr();
    let g = Graph::from_sdd_matrix(&matrix)?;
    println!(
        "read {}: {} rows, {} nonzeros -> graph with |V| = {}, |E| = {}",
        input.display(),
        matrix.nrows(),
        matrix.nnz(),
        g.n(),
        g.m()
    );

    let sp = sparsify(&g, &SparsifyConfig::new(sigma2))?;
    println!(
        "sparsified to {} edges ({:.1}%) at sigma^2 <= {} (estimated condition {:.1})",
        sp.graph().m(),
        100.0 * sp.graph().m() as f64 / g.m() as f64,
        sigma2,
        sp.condition_estimate()
    );

    let f = std::fs::File::create(&output)?;
    mmio::write_symmetric(&sp.graph().laplacian(), std::io::BufWriter::new(f))?;
    println!("sparsified Laplacian written to {}", output.display());

    if cleanup_demo {
        let _ = std::fs::remove_file(&input);
    }
    Ok(())
}
