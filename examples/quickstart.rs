//! Quickstart: sparsify a graph and inspect what the algorithm did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sass::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A power-grid-style graph: 2-D grid, conductances spread over orders
    // of magnitude, plus random vias.
    let g = sass::graph::generators::circuit_grid(64, 64, 0.1, 42);
    println!("input graph: |V| = {}, |E| = {}", g.n(), g.m());

    // Sparsify with a target relative condition number of 100.
    let config = SparsifyConfig::new(100.0).with_seed(42);
    let sp = sparsify(&g, &config)?;

    println!(
        "sparsifier:  |Es| = {} ({:.1}% of edges, density |Es|/|V| = {:.2})",
        sp.graph().m(),
        100.0 * sp.graph().m() as f64 / g.m() as f64,
        sp.density()
    );
    println!(
        "backbone: {} tree edges + {} recovered off-tree edges",
        sp.tree_edge_ids().len(),
        sp.added_edge_ids().len()
    );
    println!(
        "converged: {} (estimated condition {:.1})",
        sp.converged(),
        sp.condition_estimate()
    );

    println!("\ndensification rounds:");
    println!("round  edges  lambda_max  lambda_min  condition  candidates  added");
    for r in sp.rounds() {
        println!(
            "{:>5}  {:>5}  {:>10.1}  {:>10.3}  {:>9.1}  {:>10}  {:>5}",
            r.round, r.edges, r.lambda_max, r.lambda_min, r.condition, r.candidates, r.added
        );
    }

    // The whole point: the sparsifier is a strong preconditioner.
    let lg = g.laplacian();
    let prec = LaplacianPrec::new(GroundedSolver::new(
        &sp.graph().laplacian(),
        Default::default(),
    )?);
    let mut b = vec![0.0; g.n()];
    b[0] = 1.0;
    b[g.n() - 1] = -1.0;
    let (x, stats) = pcg(&lg, &b, &prec, &PcgOptions::default());
    println!(
        "\nPCG with sparsifier preconditioner: {} iterations to {:.1e} residual",
        stats.iterations, stats.relative_residual
    );
    println!("solution residual check: {:.2e}", lg.residual_norm(&x, &b));
    Ok(())
}
