//! Serving quickstart: spin up an in-process sass-serve server, sparsify a
//! graph over the wire, solve against the cached factorization, mutate the
//! graph through the incremental path, and read the server counters.
//!
//! Run with `cargo run --example serve_client`. The same client code talks
//! to an out-of-process server — swap the in-process handle for the
//! server's address.

use sass::graph::generators::{grid2d, WeightModel};
use sass::serve::{serve, Client, ServerConfig, SparsifyParams, WireEdit, WireGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Bind on an ephemeral loopback port. Defaults: 256 MiB cache budget,
    // 1 ms solve gather window, per-request limits on |V|, |E|, columns.
    let server = serve(ServerConfig::default())?;
    println!("serving on {}", server.addr());

    let mut client = Client::connect(server.addr())?;

    // Ship a graph and a similarity target; get back a cache key.
    let g = grid2d(48, 48, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 7);
    let graph = WireGraph {
        n: g.n() as u64,
        edges: g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect(),
    };
    let params = SparsifyParams {
        sigma2: 100.0,
        seed: 7,
    };
    let receipt = client.sparsify(params, graph.clone())?;
    println!(
        "sparsified: key={:#018x} selected {} of {} edges ({:?})",
        receipt.key,
        receipt.selected_edges,
        g.m(),
        receipt.cache
    );

    // Resubmitting the same graph + params is a cache hit: content
    // addressing hashes the canonicalized graph, not the submission order.
    let again = client.sparsify(params, graph)?;
    assert_eq!(again.key, receipt.key);
    println!("resubmission: {:?}", again.cache);

    // Solve L_P x = b against the cached factor. Concurrent solves on the
    // same key (from any connection) coalesce into one blocked pass; the
    // response reports how many columns that pass carried.
    let mut b = vec![0.0; g.n()];
    b[0] = 1.0;
    b[g.n() - 1] = -1.0;
    let solved = client.solve(receipt.key, b.clone(), 0)?;
    println!(
        "solved: x[0] = {:.6}, batch of {} column(s)",
        solved.xs[0][0], solved.batch_cols
    );

    // Mutate the graph through the server: the cached entry is patched via
    // the incremental sparsifier (proportional-to-change), not rebuilt,
    // and re-keyed to the edited graph's content hash.
    let edit = WireEdit::Add {
        u: 0,
        v: (g.n() - 1) as u32,
        weight: 0.8,
    };
    let mutated = client.mutate(receipt.key, vec![edit])?;
    println!(
        "mutated: new key={:#018x}, {} dirty edge(s), {}/{} factor columns re-run",
        mutated.key, mutated.dirty_edges, mutated.cols_refactored, mutated.cols_total
    );

    // The old key is gone; the new one solves the edited graph.
    let solved = client.solve(mutated.key, b, 0)?;
    println!("post-edit solve: x[0] = {:.6}", solved.xs[0][0]);

    let stats = client.stats()?;
    println!(
        "stats: {} builds, {} cache hits, {} solves in {} passes, {} bytes resident",
        stats.sparsify_builds,
        stats.sparsify_hits,
        stats.solves,
        stats.batches,
        stats.resident_bytes
    );

    server.shutdown();
    Ok(())
}
