//! Spectral partitioning of a finite-element mesh, comparing the direct
//! solver baseline with the sparsifier-accelerated backend (the paper's
//! Table 3 scenario).
//!
//! ```text
//! cargo run --release --example spectral_partition
//! ```

use sass::core::SparsifyConfig;
use sass::partition::{partition, relative_error, Backend, PartitionOptions};
use sass::solver::PcgOptions;
use sass::sparse::ordering::OrderingKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = sass::graph::generators::fem_mesh2d(120, 120, 5);
    println!("FEM mesh: |V| = {}, |E| = {}", g.n(), g.m());

    let direct = partition(
        &g,
        &PartitionOptions {
            backend: Backend::Direct {
                ordering: OrderingKind::NestedDissection,
            },
            ..Default::default()
        },
    )?;
    println!("\ndirect backend (full sparse factorization):");
    println!("  lambda2 = {:.5}", direct.lambda2);
    println!("  balance |V+|/|V-| = {:.3}", direct.signed_ratio());
    println!("  cut weight = {:.1}", direct.cut_weight);
    println!(
        "  time = {:.2?} setup + {:.2?} solve, factor memory = {:.1} MiB",
        direct.setup_time,
        direct.solve_time,
        direct.solver_memory_bytes as f64 / (1 << 20) as f64
    );

    let sparsified = partition(
        &g,
        &PartitionOptions {
            backend: Backend::Sparsified {
                config: SparsifyConfig::new(200.0).with_seed(5),
                pcg: PcgOptions {
                    tol: 1e-6,
                    ..Default::default()
                },
            },
            ..Default::default()
        },
    )?;
    println!("\nsparsified backend (PCG + sigma^2 <= 200 sparsifier):");
    println!("  lambda2 = {:.5}", sparsified.lambda2);
    println!("  balance |V+|/|V-| = {:.3}", sparsified.signed_ratio());
    println!("  cut weight = {:.1}", sparsified.cut_weight);
    println!(
        "  time = {:.2?} setup + {:.2?} solve, factor memory = {:.1} MiB, {} PCG iterations",
        sparsified.setup_time,
        sparsified.solve_time,
        sparsified.solver_memory_bytes as f64 / (1 << 20) as f64,
        sparsified.pcg_iterations
    );

    println!(
        "\nsign disagreement between the two partitions: {:.2e} (paper Rel.Err. column)",
        relative_error(&direct, &sparsified)
    );
    Ok(())
}
