//! Simplifying a scale-free social-network-style graph (the paper's
//! Table 4 scenario): sparsify to sigma^2 ~ 100, then compare the cost of
//! computing the first ten Laplacian eigenvectors before and after.
//!
//! ```text
//! cargo run --release --example network_simplify
//! ```

use sass::core::{sparsify, SparsifyConfig};
use sass::eigen::lanczos::{lanczos_smallest_laplacian, LanczosOptions};
use sass::sparse::ordering::OrderingKind;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = sass::graph::generators::barabasi_albert(8_000, 4, 13);
    println!("scale-free network: |V| = {}, |E| = {}", g.n(), g.m());

    let t0 = Instant::now();
    let sp = sparsify(&g, &SparsifyConfig::new(100.0).with_seed(3))?;
    println!(
        "sparsified to {} edges ({:.1}x reduction) in {:.2?}",
        sp.graph().m(),
        g.m() as f64 / sp.graph().m() as f64,
        t0.elapsed()
    );

    let opts = LanczosOptions {
        max_dim: 200,
        tol: 1e-6,
        seed: 4,
    };
    let lg = g.laplacian();
    let t0 = Instant::now();
    let eo = lanczos_smallest_laplacian(&lg, 10, OrderingKind::MinDegree, &opts)?;
    let t_orig = t0.elapsed();

    let lp = sp.graph().laplacian();
    let t0 = Instant::now();
    let es = lanczos_smallest_laplacian(&lp, 10, OrderingKind::MinDegree, &opts)?;
    let t_sp = t0.elapsed();

    println!("\nfirst 10 nontrivial Laplacian eigenvalues:");
    println!(
        "{:>4}  {:>12}  {:>12}  {:>8}",
        "k", "original", "sparsified", "ratio"
    );
    for (k, (a, b)) in eo.eigenvalues.iter().zip(&es.eigenvalues).enumerate() {
        println!("{:>4}  {:>12.6}  {:>12.6}  {:>8.3}", k + 2, a, b, b / a);
    }
    println!(
        "\neigensolve time: original {:.2?}, sparsified {:.2?} ({:.1}x speedup)",
        t_orig,
        t_sp,
        t_orig.as_secs_f64() / t_sp.as_secs_f64().max(1e-9)
    );
    println!("shape to observe: low eigenvalues agree within the sigma^2 band while");
    println!("the sparsified eigensolve is much cheaper (less factorization fill).");
    Ok(())
}
