//! Spectral drawings of the airfoil mesh and its sparsifier (the paper's
//! Fig. 1), rendered as ASCII scatter plots.
//!
//! ```text
//! cargo run --release --example spectral_drawing
//! ```

use sass::core::{sparsify, SparsifyConfig};
use sass::gsp::drawing::{ascii_scatter, drawing_correlation, spectral_coordinates};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (g, _) = sass::graph::generators::airfoil_mesh(24, 64, 51);
    println!("airfoil mesh: |V| = {}, |E| = {}", g.n(), g.m());

    let sp = sparsify(&g, &SparsifyConfig::new(50.0).with_seed(8))?;
    println!(
        "sparsifier: |Es| = {} ({:.1}% of edges)\n",
        sp.graph().m(),
        100.0 * sp.graph().m() as f64 / g.m() as f64
    );

    let coords_g = spectral_coordinates(&g.laplacian(), 2)?;
    let coords_p = spectral_coordinates(&sp.graph().laplacian(), 2)?;

    println!("spectral drawing of G (vertices at (u2, u3)):");
    println!("{}", ascii_scatter(&coords_g, 64, 20));
    println!("spectral drawing of the sparsifier P:");
    println!("{}", ascii_scatter(&coords_p, 64, 20));

    for d in 0..2 {
        let a: Vec<f64> = coords_g.iter().map(|c| c[d]).collect();
        let b: Vec<f64> = coords_p.iter().map(|c| c[d]).collect();
        println!(
            "axis u{} correlation: {:.4}",
            d + 2,
            drawing_correlation(&a, &b)
        );
    }
    println!("\nshape to observe: the two drawings are nearly identical — the");
    println!("sparsifier preserves the low (smooth) end of the spectrum.");
    Ok(())
}
