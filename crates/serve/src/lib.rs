//! Batched, caching sparsification service over TCP.
//!
//! This crate turns the library pipeline into a long-lived server: a
//! client submits a graph once, gets back a content-addressed cache
//! key, and then issues solves and graph edits against the warm
//! sparsifier/factorization that key names. Three properties carry the
//! design (see `docs/PROTOCOL.md` for the wire format and
//! `ARCHITECTURE.md` for where this sits in the workspace):
//!
//! - **Solve batching.** Concurrent solve requests against the same
//!   cached factor are coalesced — within a small gather window — into
//!   one blocked multi-RHS pass
//!   ([`GroundedSolver::solve_many`](sass_solver::GroundedSolver::solve_many)),
//!   so the factor's forward/backward sweeps are shared across clients
//!   instead of re-walked once per right-hand side.
//! - **Content-addressed caching with incremental mutation.** Entries
//!   are keyed by [`sass_core::cache_key`] (canonical graph × config
//!   fingerprint) and bounded by an LRU byte budget. A mutate request
//!   routes through the live entry's
//!   [`IncrementalSparsifier::apply_edits`](sass_core::IncrementalSparsifier::apply_edits)
//!   — localized re-scoring plus etree-subtree factor patching, cost
//!   proportional to the change — and re-keys the entry, never
//!   rebuilding from scratch.
//! - **Structured failure.** Per-request limits (vertex/edge counts,
//!   rhs columns, frame bytes, queue deadlines) reject work with typed
//!   [`ErrorCode`] frames rather than dropped connections.
//!
//! Everything is hand-rolled on `std` (`TcpListener`, threads,
//! channels): the build environment has no registry access, so there is
//! no tokio, serde, or tower behind this — see
//! [`protocol`] for the frame codec.
//!
//! # Quickstart
//!
//! ```
//! use sass_serve::{serve, Client, ServerConfig, SparsifyParams, WireGraph};
//!
//! # fn main() -> Result<(), sass_serve::ServeError> {
//! let server = serve(ServerConfig::default())?; // binds 127.0.0.1:0
//! let mut client = Client::connect(server.addr())?;
//!
//! // Submit a 4-cycle with one chord; get back a cache key.
//! let graph = WireGraph {
//!     n: 4,
//!     edges: vec![
//!         (0, 1, 1.0),
//!         (1, 2, 1.0),
//!         (2, 3, 1.0),
//!         (0, 3, 1.0),
//!         (0, 2, 0.5),
//!     ],
//! };
//! let params = SparsifyParams { sigma2: 100.0, seed: 7 };
//! let receipt = client.sparsify(params, graph)?;
//!
//! // Solve L_P x = b against the cached factor.
//! let b = vec![1.0, -1.0, 0.5, -0.5];
//! let solved = client.solve(receipt.key, b, 0)?;
//! assert_eq!(solved.xs[0].len(), 4);
//!
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod client;
pub mod error;
pub mod protocol;
pub mod server;

pub use cache::SparsifierCache;
pub use client::{Client, MutateReceipt, Solved, SparsifyReceipt};
pub use error::{ServeError, ServeResult};
pub use protocol::{
    CacheOutcome, ErrorCode, Request, Response, ServerStats, SparsifyParams, WireEdit, WireGraph,
    PROTOCOL_VERSION,
};
pub use server::{serve, Limits, ServerConfig, ServerHandle};
