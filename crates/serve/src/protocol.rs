//! The sass-serve wire protocol: length-prefixed frames over a byte
//! stream, with hand-rolled little-endian encoding.
//!
//! The build environment has no registry access, so there is no serde —
//! every message is encoded by hand against the layout specified in
//! `docs/PROTOCOL.md` (that document is the normative reference; this
//! module is its implementation). The essentials:
//!
//! ```text
//! frame    := len:u32le  payload                (len = payload byte count)
//! payload  := version:u8  kind:u8  body
//! ```
//!
//! Integers are little-endian; `f64` travels as its IEEE-754 bit pattern
//! in little-endian byte order (exact — no text round-trip). Requests
//! carry kinds `0x01..=0x7f`, responses `0x80..=0xff`.
//!
//! Decoding is defensive end to end: every read is bounds-checked,
//! element counts are validated against the remaining payload *before*
//! any allocation (a hostile count cannot trigger a huge `Vec` reserve),
//! and trailing garbage after a well-formed body is rejected so frame
//! corruption surfaces immediately instead of desynchronizing the
//! stream.

use std::io::{Read, Write};

use crate::{ServeError, ServeResult};

/// Protocol version carried in every frame. See `docs/PROTOCOL.md` for
/// the versioning rules (a server rejects frames whose version it does
/// not speak with [`ErrorCode::UnsupportedVersion`]).
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard ceiling a frame length is validated against before any
/// allocation, independent of the configured per-server limit.
pub const MAX_FRAME_BYTES_CEILING: u32 = 1 << 30;

/// Graph payload: vertex count plus an edge list.
///
/// The server canonicalizes through [`sass_graph::Graph`] construction
/// (sorting, merging parallel edges, rejecting self-loops and
/// non-positive weights), so the wire form does not need to be
/// canonical — but the cache key is computed from the *canonical* graph,
/// so equivalent submissions in any edge order share an entry.
#[derive(Debug, Clone, PartialEq)]
pub struct WireGraph {
    /// Vertex count.
    pub n: u64,
    /// Undirected weighted edges `(u, v, weight)`.
    pub edges: Vec<(u32, u32, f64)>,
}

/// Sparsification parameters a request may set; everything else stays
/// at the [`sass_core::SparsifyConfig`] defaults.
///
/// `sigma2` is the paper's quality/size dial: lower targets keep more
/// edges and condition the solves better, higher targets sparsify
/// harder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsifyParams {
    /// Target spectral similarity `σ²` (must be finite and `> 1`).
    pub sigma2: f64,
    /// Seed for the randomized pieces (probe vectors).
    pub seed: u64,
}

impl SparsifyParams {
    /// The corresponding pipeline configuration.
    pub fn to_config(self) -> sass_core::SparsifyConfig {
        sass_core::SparsifyConfig::new(self.sigma2).with_seed(self.seed)
    }
}

/// One graph edit, mirroring [`sass_graph::GraphEdit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireEdit {
    /// Insert (or weight-merge onto) edge `{u, v}`.
    Add {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
        /// Positive finite weight to add.
        weight: f64,
    },
    /// Remove edge `{u, v}` entirely.
    Remove {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
}

impl WireEdit {
    /// Converts to the graph layer's edit type.
    pub fn to_graph_edit(self) -> sass_graph::GraphEdit {
        match self {
            WireEdit::Add { u, v, weight } => sass_graph::GraphEdit::AddEdge {
                u: u as usize,
                v: v as usize,
                weight,
            },
            WireEdit::Remove { u, v } => sass_graph::GraphEdit::RemoveEdge {
                u: u as usize,
                v: v as usize,
            },
        }
    }
}

/// Structured error category carried in an error frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The frame could not be decoded (bad layout, bad counts,
    /// trailing bytes). The server closes the connection after this —
    /// stream framing can no longer be trusted.
    Malformed = 1,
    /// The frame's version byte is not spoken by this server.
    UnsupportedVersion = 2,
    /// A per-request resource limit was exceeded (frame size, vertex or
    /// edge count, right-hand-side columns).
    LimitExceeded = 3,
    /// No cache entry under the given key (never built, evicted, or
    /// invalidated) — resubmit the graph via a sparsify request.
    UnknownKey = 4,
    /// The solve missed its deadline while queued (the server did not
    /// start work on it).
    DeadlineExceeded = 5,
    /// The submitted graph or parameters were rejected by the pipeline
    /// (disconnected graph, invalid weights, nonsensical `σ²`, an edit
    /// batch that disconnects the graph).
    InvalidGraph = 6,
    /// Factorization failed on a structurally valid request.
    SolverFailure = 7,
    /// The request kind byte is not known to this server.
    UnknownKind = 8,
    /// Unexpected internal failure (executor gone, poisoned state).
    Internal = 9,
}

impl ErrorCode {
    fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::LimitExceeded,
            4 => ErrorCode::UnknownKey,
            5 => ErrorCode::DeadlineExceeded,
            6 => ErrorCode::InvalidGraph,
            7 => ErrorCode::SolverFailure,
            8 => ErrorCode::UnknownKind,
            9 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::LimitExceeded => "limit-exceeded",
            ErrorCode::UnknownKey => "unknown-key",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::InvalidGraph => "invalid-graph",
            ErrorCode::SolverFailure => "solver-failure",
            ErrorCode::UnknownKind => "unknown-kind",
            ErrorCode::Internal => "internal",
        };
        f.write_str(name)
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Submit a graph for sparsification; builds (or finds) the cache
    /// entry and returns its key.
    Sparsify {
        /// Quality dial and seed.
        params: SparsifyParams,
        /// The graph to sparsify.
        graph: WireGraph,
    },
    /// Solve `L_P x = b` against the cached sparsifier factor.
    Solve {
        /// Cache key from a sparsify/mutate response.
        key: u64,
        /// Per-request queue deadline in milliseconds (`0` = server
        /// default).
        deadline_ms: u32,
        /// Right-hand side (length must equal the graph's vertex count).
        rhs: Vec<f64>,
    },
    /// Solve against many right-hand sides in one request.
    SolveMany {
        /// Cache key from a sparsify/mutate response.
        key: u64,
        /// Per-request queue deadline in milliseconds (`0` = server
        /// default).
        deadline_ms: u32,
        /// Right-hand sides (each of vertex-count length).
        rhs: Vec<Vec<f64>>,
    },
    /// Edit the cached entry's graph in place through the incremental
    /// sparsifier; re-keys the entry and returns the new key.
    Mutate {
        /// Cache key of the entry to edit.
        key: u64,
        /// Edit batch, applied atomically.
        edits: Vec<WireEdit>,
    },
    /// Drop a cache entry.
    Invalidate {
        /// Cache key of the entry to drop.
        key: u64,
    },
    /// Snapshot the server's counters.
    Stats,
}

/// Cache disposition of a sparsify request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The entry already existed; the factorization was reused warm.
    Hit,
    /// The entry was built by this request.
    Built,
}

/// Server counters, as reported by a stats response. All counters are
/// process-lifetime totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Live cache entries.
    pub entries: u64,
    /// Approximate resident bytes across live entries.
    pub resident_bytes: u64,
    /// Configured LRU byte budget.
    pub budget_bytes: u64,
    /// Sparsify requests answered from cache.
    pub sparsify_hits: u64,
    /// Sparsify requests that built a new entry.
    pub sparsify_builds: u64,
    /// Entries evicted by the LRU byte budget.
    pub evictions: u64,
    /// Entries dropped by explicit invalidation.
    pub invalidations: u64,
    /// Mutate batches applied through the incremental path.
    pub mutations: u64,
    /// Cache entries rebuilt from scratch by a mutate request (always 0
    /// in the current protocol: mutation either patches the live entry
    /// incrementally or fails without side effects).
    pub mutation_rebuilds: u64,
    /// Solve/solve-many requests completed successfully.
    pub solves: u64,
    /// Coalesced solve passes executed (each one factor sweep set).
    pub batches: u64,
    /// Largest column count coalesced into one pass.
    pub max_batch: u64,
    /// Solves rejected because their deadline passed while queued.
    pub deadline_misses: u64,
    /// Requests rejected by per-request limits.
    pub limit_rejections: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ping answer.
    Pong,
    /// Sparsify answer.
    SparsifyOk {
        /// Cache key addressing the entry (graph content × config).
        key: u64,
        /// Vertex count of the sparsifier (same as the input graph).
        n: u64,
        /// Edges selected into the sparsifier (tree + recovered).
        selected_edges: u64,
        /// Spanning-tree backbone edge count (`n - 1`).
        tree_edges: u64,
        /// Whether the entry was found warm or built.
        cache: CacheOutcome,
    },
    /// Single solve answer.
    SolveOk {
        /// The mean-zero solution `L_P⁺ b`.
        x: Vec<f64>,
        /// Total right-hand-side columns coalesced into the factor pass
        /// that served this request (≥ 1; > 1 means batching happened).
        batch_cols: u32,
    },
    /// Multi-RHS solve answer.
    SolveManyOk {
        /// Solutions, one per request column, in request order.
        xs: Vec<Vec<f64>>,
        /// Total columns coalesced into the serving pass.
        batch_cols: u32,
    },
    /// Mutation answer.
    MutateOk {
        /// The entry's new cache key (hash of the edited graph).
        key: u64,
        /// Edge heats re-scored against the frozen embedding.
        dirty_edges: u64,
        /// Whether the selected edge set changed.
        selection_changed: bool,
        /// Factor columns re-factorized by the patch (0 when the
        /// selected subgraph was untouched).
        cols_refactored: u64,
        /// Total factor columns (the reuse denominator; 0 when the
        /// factor was untouched).
        cols_total: u64,
        /// Whether the patch fell back to a full numeric pass/rebuild.
        full_refactor: bool,
    },
    /// Invalidation answer.
    InvalidateOk {
        /// Whether an entry existed under the key.
        existed: bool,
    },
    /// Stats snapshot.
    StatsOk(ServerStats),
    /// Structured failure for the request this frame answers.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable context.
        message: String,
    },
}

// Wire kind bytes. Requests sit below 0x80, responses at or above.
const K_PING: u8 = 0x01;
const K_SPARSIFY: u8 = 0x02;
const K_SOLVE: u8 = 0x03;
const K_SOLVE_MANY: u8 = 0x04;
const K_MUTATE: u8 = 0x05;
const K_INVALIDATE: u8 = 0x06;
const K_STATS: u8 = 0x07;
const K_PONG: u8 = 0x81;
const K_SPARSIFY_OK: u8 = 0x82;
const K_SOLVE_OK: u8 = 0x83;
const K_SOLVE_MANY_OK: u8 = 0x84;
const K_MUTATE_OK: u8 = 0x85;
const K_INVALIDATE_OK: u8 = 0x86;
const K_STATS_OK: u8 = 0x87;
const K_ERROR: u8 = 0xff;

/// Little-endian payload writer.
#[derive(Debug, Default)]
struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new(version: u8, kind: u8) -> Self {
        ByteWriter {
            buf: vec![version, kind],
        }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn f64s(&mut self, vs: &[f64]) {
        // Bulk append: one grow, then straight-line byte writes. Solve
        // frames are dominated by these arrays, so this path sets the
        // codec's throughput.
        let start = self.buf.len();
        self.buf.resize(start + vs.len() * 8, 0);
        for (dst, v) in self.buf[start..].chunks_exact_mut(8).zip(vs) {
            dst.copy_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    fn str(&mut self, s: &str) {
        // Length-prefixed UTF-8, capped so a pathological message can
        // never dominate a frame. The cut must land on a char boundary:
        // a split multi-byte sequence would make the peer reject the
        // whole frame as invalid UTF-8.
        let bytes = s.as_bytes();
        let mut len = bytes.len().min(u16::MAX as usize);
        while !s.is_char_boundary(len) {
            len -= 1;
        }
        self.u16(len as u16);
        self.buf.extend_from_slice(&bytes[..len]);
    }
}

/// Little-endian bounds-checked payload reader.
#[derive(Debug)]
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> ServeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(ServeError::Protocol {
                context: format!(
                    "payload truncated: wanted {n} bytes, {} left",
                    self.remaining()
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> ServeResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> ServeResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> ServeResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> ServeResult<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn f64(&mut self) -> ServeResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Validates an element count against the bytes actually present, so
    /// a hostile count can never trigger a large allocation.
    fn count(&mut self, elem_bytes: usize) -> ServeResult<usize> {
        let count = self.u32()? as usize;
        if count.saturating_mul(elem_bytes) > self.remaining() {
            return Err(ServeError::Protocol {
                context: format!(
                    "count {count} x {elem_bytes} bytes exceeds remaining payload ({})",
                    self.remaining()
                ),
            });
        }
        Ok(count)
    }

    fn f64s(&mut self, count: usize) -> ServeResult<Vec<f64>> {
        // Bulk read: one bounds check for the whole array, then
        // straight-line conversions (the codec's hot path).
        let bytes = self.take(count * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| {
                let mut a = [0u8; 8];
                a.copy_from_slice(c);
                f64::from_bits(u64::from_le_bytes(a))
            })
            .collect())
    }

    fn str(&mut self) -> ServeResult<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ServeError::Protocol {
            context: "message string is not valid UTF-8".to_string(),
        })
    }

    fn finish(self) -> ServeResult<()> {
        if self.remaining() != 0 {
            return Err(ServeError::Protocol {
                context: format!("{} trailing bytes after payload body", self.remaining()),
            });
        }
        Ok(())
    }
}

impl Request {
    /// Serializes into a complete payload (version + kind + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Ping => ByteWriter::new(PROTOCOL_VERSION, K_PING).buf,
            Request::Sparsify { params, graph } => {
                let mut w = ByteWriter::new(PROTOCOL_VERSION, K_SPARSIFY);
                w.f64(params.sigma2);
                w.u64(params.seed);
                w.u64(graph.n);
                w.u32(graph.edges.len() as u32);
                for &(u, v, weight) in &graph.edges {
                    w.u32(u);
                    w.u32(v);
                    w.f64(weight);
                }
                w.buf
            }
            Request::Solve {
                key,
                deadline_ms,
                rhs,
            } => {
                let mut w = ByteWriter::new(PROTOCOL_VERSION, K_SOLVE);
                w.u64(*key);
                w.u32(*deadline_ms);
                w.u32(rhs.len() as u32);
                w.f64s(rhs);
                w.buf
            }
            Request::SolveMany {
                key,
                deadline_ms,
                rhs,
            } => {
                let mut w = ByteWriter::new(PROTOCOL_VERSION, K_SOLVE_MANY);
                w.u64(*key);
                w.u32(*deadline_ms);
                w.u32(rhs.len() as u32);
                w.u32(rhs.first().map_or(0, Vec::len) as u32);
                for col in rhs {
                    w.f64s(col);
                }
                w.buf
            }
            Request::Mutate { key, edits } => {
                let mut w = ByteWriter::new(PROTOCOL_VERSION, K_MUTATE);
                w.u64(*key);
                w.u32(edits.len() as u32);
                for e in edits {
                    match *e {
                        WireEdit::Add { u, v, weight } => {
                            w.u8(0);
                            w.u32(u);
                            w.u32(v);
                            w.f64(weight);
                        }
                        WireEdit::Remove { u, v } => {
                            w.u8(1);
                            w.u32(u);
                            w.u32(v);
                            w.f64(0.0);
                        }
                    }
                }
                w.buf
            }
            Request::Invalidate { key } => {
                let mut w = ByteWriter::new(PROTOCOL_VERSION, K_INVALIDATE);
                w.u64(*key);
                w.buf
            }
            Request::Stats => ByteWriter::new(PROTOCOL_VERSION, K_STATS).buf,
        }
    }

    /// Parses a payload (version + kind + body) into a request.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnsupportedVersion`] on a version this library does
    /// not speak, [`ServeError::UnknownKind`] on an unknown kind byte,
    /// [`ServeError::Protocol`] on any structural violation.
    pub fn decode(payload: &[u8]) -> ServeResult<Request> {
        let mut r = ByteReader::new(payload);
        let version = r.u8()?;
        if version != PROTOCOL_VERSION {
            return Err(ServeError::UnsupportedVersion { got: version });
        }
        let kind = r.u8()?;
        let req = match kind {
            K_PING => Request::Ping,
            K_SPARSIFY => {
                let sigma2 = r.f64()?;
                let seed = r.u64()?;
                let n = r.u64()?;
                let m = r.count(16)?;
                let mut edges = Vec::with_capacity(m);
                for _ in 0..m {
                    let u = r.u32()?;
                    let v = r.u32()?;
                    let weight = r.f64()?;
                    edges.push((u, v, weight));
                }
                Request::Sparsify {
                    params: SparsifyParams { sigma2, seed },
                    graph: WireGraph { n, edges },
                }
            }
            K_SOLVE => {
                let key = r.u64()?;
                let deadline_ms = r.u32()?;
                let n = r.count(8)?;
                Request::Solve {
                    key,
                    deadline_ms,
                    rhs: r.f64s(n)?,
                }
            }
            K_SOLVE_MANY => {
                let key = r.u64()?;
                let deadline_ms = r.u32()?;
                let cols = r.u32()? as usize;
                let n = r.count(8)?;
                // Charge each column at least one element so an n=0 frame
                // cannot advertise a huge `cols` that the byte check would
                // wave through (0 * cols never exceeds anything).
                if cols.saturating_mul(n.max(1)).saturating_mul(8) > r.remaining() {
                    return Err(ServeError::Protocol {
                        context: format!("{cols} columns x {n} rows exceeds payload"),
                    });
                }
                let mut rhs = Vec::with_capacity(cols);
                for _ in 0..cols {
                    rhs.push(r.f64s(n)?);
                }
                Request::SolveMany {
                    key,
                    deadline_ms,
                    rhs,
                }
            }
            K_MUTATE => {
                let key = r.u64()?;
                let count = r.count(17)?;
                let mut edits = Vec::with_capacity(count);
                for _ in 0..count {
                    let op = r.u8()?;
                    let u = r.u32()?;
                    let v = r.u32()?;
                    let weight = r.f64()?;
                    edits.push(match op {
                        0 => WireEdit::Add { u, v, weight },
                        1 => WireEdit::Remove { u, v },
                        other => {
                            return Err(ServeError::Protocol {
                                context: format!("unknown edit op {other}"),
                            })
                        }
                    });
                }
                Request::Mutate { key, edits }
            }
            K_INVALIDATE => Request::Invalidate { key: r.u64()? },
            K_STATS => Request::Stats,
            other => return Err(ServeError::UnknownKind { kind: other }),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes into a complete payload (version + kind + body).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Pong => ByteWriter::new(PROTOCOL_VERSION, K_PONG).buf,
            Response::SparsifyOk {
                key,
                n,
                selected_edges,
                tree_edges,
                cache,
            } => {
                let mut w = ByteWriter::new(PROTOCOL_VERSION, K_SPARSIFY_OK);
                w.u64(*key);
                w.u64(*n);
                w.u64(*selected_edges);
                w.u64(*tree_edges);
                w.u8(match cache {
                    CacheOutcome::Hit => 1,
                    CacheOutcome::Built => 0,
                });
                w.buf
            }
            Response::SolveOk { x, batch_cols } => {
                let mut w = ByteWriter::new(PROTOCOL_VERSION, K_SOLVE_OK);
                w.u32(*batch_cols);
                w.u32(x.len() as u32);
                w.f64s(x);
                w.buf
            }
            Response::SolveManyOk { xs, batch_cols } => {
                let mut w = ByteWriter::new(PROTOCOL_VERSION, K_SOLVE_MANY_OK);
                w.u32(*batch_cols);
                w.u32(xs.len() as u32);
                w.u32(xs.first().map_or(0, Vec::len) as u32);
                for col in xs {
                    w.f64s(col);
                }
                w.buf
            }
            Response::MutateOk {
                key,
                dirty_edges,
                selection_changed,
                cols_refactored,
                cols_total,
                full_refactor,
            } => {
                let mut w = ByteWriter::new(PROTOCOL_VERSION, K_MUTATE_OK);
                w.u64(*key);
                w.u64(*dirty_edges);
                w.u8(u8::from(*selection_changed));
                w.u64(*cols_refactored);
                w.u64(*cols_total);
                w.u8(u8::from(*full_refactor));
                w.buf
            }
            Response::InvalidateOk { existed } => {
                let mut w = ByteWriter::new(PROTOCOL_VERSION, K_INVALIDATE_OK);
                w.u8(u8::from(*existed));
                w.buf
            }
            Response::StatsOk(s) => {
                let mut w = ByteWriter::new(PROTOCOL_VERSION, K_STATS_OK);
                for v in [
                    s.entries,
                    s.resident_bytes,
                    s.budget_bytes,
                    s.sparsify_hits,
                    s.sparsify_builds,
                    s.evictions,
                    s.invalidations,
                    s.mutations,
                    s.mutation_rebuilds,
                    s.solves,
                    s.batches,
                    s.max_batch,
                    s.deadline_misses,
                    s.limit_rejections,
                ] {
                    w.u64(v);
                }
                w.buf
            }
            Response::Error { code, message } => {
                let mut w = ByteWriter::new(PROTOCOL_VERSION, K_ERROR);
                w.u16(*code as u16);
                w.str(message);
                w.buf
            }
        }
    }

    /// Parses a payload (version + kind + body) into a response.
    ///
    /// # Errors
    ///
    /// As [`Request::decode`].
    pub fn decode(payload: &[u8]) -> ServeResult<Response> {
        let mut r = ByteReader::new(payload);
        let version = r.u8()?;
        if version != PROTOCOL_VERSION {
            return Err(ServeError::UnsupportedVersion { got: version });
        }
        let kind = r.u8()?;
        let resp = match kind {
            K_PONG => Response::Pong,
            K_SPARSIFY_OK => {
                let key = r.u64()?;
                let n = r.u64()?;
                let selected_edges = r.u64()?;
                let tree_edges = r.u64()?;
                let cache = if r.u8()? == 1 {
                    CacheOutcome::Hit
                } else {
                    CacheOutcome::Built
                };
                Response::SparsifyOk {
                    key,
                    n,
                    selected_edges,
                    tree_edges,
                    cache,
                }
            }
            K_SOLVE_OK => {
                let batch_cols = r.u32()?;
                let n = r.count(8)?;
                Response::SolveOk {
                    x: r.f64s(n)?,
                    batch_cols,
                }
            }
            K_SOLVE_MANY_OK => {
                let batch_cols = r.u32()?;
                let cols = r.u32()? as usize;
                let n = r.count(8)?;
                // Same n=0 guard as the request decoder: each advertised
                // column must be backed by payload bytes.
                if cols.saturating_mul(n.max(1)).saturating_mul(8) > r.remaining() {
                    return Err(ServeError::Protocol {
                        context: format!("{cols} columns x {n} rows exceeds payload"),
                    });
                }
                let mut xs = Vec::with_capacity(cols);
                for _ in 0..cols {
                    xs.push(r.f64s(n)?);
                }
                Response::SolveManyOk { xs, batch_cols }
            }
            K_MUTATE_OK => Response::MutateOk {
                key: r.u64()?,
                dirty_edges: r.u64()?,
                selection_changed: r.u8()? == 1,
                cols_refactored: r.u64()?,
                cols_total: r.u64()?,
                full_refactor: r.u8()? == 1,
            },
            K_INVALIDATE_OK => Response::InvalidateOk {
                existed: r.u8()? == 1,
            },
            K_STATS_OK => {
                let mut vals = [0u64; 14];
                for v in &mut vals {
                    *v = r.u64()?;
                }
                Response::StatsOk(ServerStats {
                    entries: vals[0],
                    resident_bytes: vals[1],
                    budget_bytes: vals[2],
                    sparsify_hits: vals[3],
                    sparsify_builds: vals[4],
                    evictions: vals[5],
                    invalidations: vals[6],
                    mutations: vals[7],
                    mutation_rebuilds: vals[8],
                    solves: vals[9],
                    batches: vals[10],
                    max_batch: vals[11],
                    deadline_misses: vals[12],
                    limit_rejections: vals[13],
                })
            }
            K_ERROR => {
                let raw = r.u16()?;
                let code = ErrorCode::from_u16(raw).ok_or_else(|| ServeError::Protocol {
                    context: format!("unknown error code {raw}"),
                })?;
                Response::Error {
                    code,
                    message: r.str()?,
                }
            }
            other => return Err(ServeError::UnknownKind { kind: other }),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O failures from the underlying stream.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> ServeResult<()> {
    let len = u32::try_from(payload.len()).map_err(|_| ServeError::TooLarge {
        context: format!(
            "frame payload of {} bytes overflows the length prefix",
            payload.len()
        ),
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame, enforcing `max_bytes` before
/// allocating. Returns `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// [`ServeError::TooLarge`] when the advertised length exceeds
/// `max_bytes` (or the hard [`MAX_FRAME_BYTES_CEILING`]); I/O errors,
/// including unexpected EOF mid-frame, surface as [`ServeError::Io`].
pub fn read_frame<R: Read>(r: &mut R, max_bytes: u32) -> ServeResult<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before any length byte is a normal connection close.
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(k) => r.read_exact(&mut len_buf[k..])?,
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
            r.read_exact(&mut len_buf)?;
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > max_bytes.min(MAX_FRAME_BYTES_CEILING) {
        return Err(ServeError::TooLarge {
            context: format!("frame of {len} bytes exceeds the {max_bytes}-byte limit"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let payload = req.encode();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let payload = resp.encode();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ping);
        round_trip_request(Request::Sparsify {
            params: SparsifyParams {
                sigma2: 100.0,
                seed: 7,
            },
            graph: WireGraph {
                n: 3,
                edges: vec![(0, 1, 1.5), (1, 2, 0.25)],
            },
        });
        round_trip_request(Request::Solve {
            key: 0xdead_beef,
            deadline_ms: 250,
            rhs: vec![1.0, -0.5, -0.5],
        });
        round_trip_request(Request::SolveMany {
            key: 1,
            deadline_ms: 0,
            rhs: vec![vec![1.0, -1.0], vec![2.0, -2.0]],
        });
        round_trip_request(Request::Mutate {
            key: 9,
            edits: vec![
                WireEdit::Add {
                    u: 0,
                    v: 5,
                    weight: 2.0,
                },
                WireEdit::Remove { u: 1, v: 2 },
            ],
        });
        round_trip_request(Request::Invalidate { key: 3 });
        round_trip_request(Request::Stats);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Pong);
        round_trip_response(Response::SparsifyOk {
            key: 42,
            n: 100,
            selected_edges: 120,
            tree_edges: 99,
            cache: CacheOutcome::Hit,
        });
        round_trip_response(Response::SolveOk {
            x: vec![0.5, -0.5],
            batch_cols: 8,
        });
        round_trip_response(Response::SolveManyOk {
            xs: vec![vec![1.0], vec![2.0]],
            batch_cols: 2,
        });
        round_trip_response(Response::MutateOk {
            key: 7,
            dirty_edges: 3,
            selection_changed: true,
            cols_refactored: 12,
            cols_total: 99,
            full_refactor: false,
        });
        round_trip_response(Response::InvalidateOk { existed: false });
        round_trip_response(Response::StatsOk(ServerStats {
            entries: 1,
            resident_bytes: 4096,
            budget_bytes: 1 << 20,
            sparsify_hits: 2,
            sparsify_builds: 1,
            evictions: 0,
            invalidations: 0,
            mutations: 5,
            mutation_rebuilds: 0,
            solves: 17,
            batches: 3,
            max_batch: 9,
            deadline_misses: 1,
            limit_rejections: 2,
        }));
        round_trip_response(Response::Error {
            code: ErrorCode::UnknownKey,
            message: "no entry under 0x2a".to_string(),
        });
    }

    #[test]
    fn exact_f64_bits_survive() {
        let weird = f64::from_bits(0x7ff8_0000_0000_0001); // NaN payload
        let resp = Response::SolveOk {
            x: vec![weird, -0.0],
            batch_cols: 1,
        };
        let decoded = Response::decode(&resp.encode()).unwrap();
        if let Response::SolveOk { x, .. } = decoded {
            assert_eq!(x[0].to_bits(), weird.to_bits());
            assert_eq!(x[1].to_bits(), (-0.0f64).to_bits());
        } else {
            panic!("wrong kind");
        }
    }

    #[test]
    fn hostile_count_is_rejected_before_allocation() {
        // A solve frame advertising u32::MAX rhs entries with a tiny body.
        let mut payload = vec![PROTOCOL_VERSION, 0x03];
        payload.extend_from_slice(&0u64.to_le_bytes()); // key
        payload.extend_from_slice(&0u32.to_le_bytes()); // deadline
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // count
        let err = Request::decode(&payload).unwrap_err();
        assert!(matches!(err, ServeError::Protocol { .. }), "{err}");
    }

    #[test]
    fn hostile_cols_with_zero_rows_is_rejected() {
        // n=0 makes the bytes-per-column product vanish, so the column
        // count must be bounded on its own: u32::MAX columns from a
        // ~22-byte frame must fail before `Vec::with_capacity`.
        let mut payload = vec![PROTOCOL_VERSION, 0x04]; // K_SOLVE_MANY
        payload.extend_from_slice(&0u64.to_le_bytes()); // key
        payload.extend_from_slice(&0u32.to_le_bytes()); // deadline
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // cols
        payload.extend_from_slice(&0u32.to_le_bytes()); // n = 0
        let err = Request::decode(&payload).unwrap_err();
        assert!(matches!(err, ServeError::Protocol { .. }), "{err}");

        // Same hole on the client side: SolveManyOk decode.
        let mut payload = vec![PROTOCOL_VERSION, 0x84]; // K_SOLVE_MANY_OK
        payload.extend_from_slice(&1u32.to_le_bytes()); // batch_cols
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // cols
        payload.extend_from_slice(&0u32.to_le_bytes()); // n = 0
        let err = Response::decode(&payload).unwrap_err();
        assert!(matches!(err, ServeError::Protocol { .. }), "{err}");
    }

    #[test]
    fn long_message_truncates_on_a_char_boundary() {
        // 'é' is 2 bytes; 65535 is odd, so a byte-index cut would land
        // mid-character and the decoder would reject the frame.
        let resp = Response::Error {
            code: ErrorCode::Internal,
            message: "é".repeat(40_000),
        };
        let decoded = Response::decode(&resp.encode()).unwrap();
        let Response::Error { message, .. } = decoded else {
            panic!("wrong kind");
        };
        assert_eq!(message.len(), 65_534);
        assert!(message.chars().all(|c| c == 'é'));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Ping.encode();
        payload.push(0);
        assert!(matches!(
            Request::decode(&payload),
            Err(ServeError::Protocol { .. })
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut payload = Request::Ping.encode();
        payload[0] = 99;
        assert!(matches!(
            Request::decode(&payload),
            Err(ServeError::UnsupportedVersion { got: 99 })
        ));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let payload = vec![PROTOCOL_VERSION, 0x70];
        assert!(matches!(
            Request::decode(&payload),
            Err(ServeError::UnknownKind { kind: 0x70 })
        ));
    }

    #[test]
    fn frames_round_trip_and_enforce_limits() {
        let payload = Request::Stats.encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = std::io::Cursor::new(buf.clone());
        let got = read_frame(&mut cursor, 1024).unwrap().unwrap();
        assert_eq!(got, payload);
        // EOF at a boundary is a clean None.
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none());
        // An oversized advertised length is rejected up front.
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, 1),
            Err(ServeError::TooLarge { .. })
        ));
    }

    #[test]
    fn ragged_solve_many_is_encoded_with_first_len() {
        // The encoder uses the first column's length; the server
        // validates per-column lengths against n after decode. A ragged
        // request therefore fails decode (second column runs past the
        // payload or leaves trailing bytes).
        let req = Request::SolveMany {
            key: 0,
            deadline_ms: 0,
            rhs: vec![vec![1.0, 2.0], vec![3.0]],
        };
        assert!(Request::decode(&req.encode()).is_err());
    }
}
