//! Content-addressed LRU cache of live sparsifiers.
//!
//! Entries are keyed by [`sass_core::cache_key`] — a fingerprint of the
//! *canonical* graph plus every pipeline knob — so resubmitting the same
//! graph (in any edge order) with the same parameters lands on the same
//! warm factorization, while any change to either builds a distinct
//! entry. Each entry is a full [`IncrementalSparsifier`], which is what
//! makes serve-side mutation proportional to the change: a mutate
//! request routes through
//! [`apply_edits`](IncrementalSparsifier::apply_edits) on the live
//! entry (localized re-scoring + etree-subtree factor patching) instead
//! of rebuilding, and the entry is simply *re-keyed* to the edited
//! graph's fingerprint.
//!
//! Residency is bounded by a byte budget measured with
//! [`IncrementalSparsifier::memory_bytes`]: once the total crosses the
//! budget, least-recently-used entries are dropped. The entry being
//! inserted or touched is always protected, so a single oversized
//! sparsifier is still served (one entry may exceed the budget alone —
//! the budget bounds hoarding, it does not reject work).

use std::collections::HashMap;

use sass_core::IncrementalSparsifier;

/// One resident sparsifier plus its LRU bookkeeping.
#[derive(Debug)]
struct Entry {
    sparsifier: IncrementalSparsifier,
    bytes: usize,
    last_used: u64,
}

/// LRU byte-budgeted map from cache key to live sparsifier.
///
/// Not internally synchronized — the server wraps it in its shared
/// state lock.
#[derive(Debug)]
pub struct SparsifierCache {
    entries: HashMap<u64, Entry>,
    budget_bytes: usize,
    tick: u64,
    evictions: u64,
}

impl SparsifierCache {
    /// Creates an empty cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        SparsifierCache {
            entries: HashMap::new(),
            budget_bytes,
            tick: 0,
            evictions: 0,
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Approximate resident bytes across live entries (re-measured on
    /// insert and after every mutation).
    pub fn resident_bytes(&self) -> usize {
        self.entries.values().map(|e| e.bytes).sum()
    }

    /// Entries evicted by the byte budget since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether an entry exists under `key` (does not touch LRU order).
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Shared access to the entry under `key`, marking it as just used.
    pub fn get(&mut self, key: u64) -> Option<&IncrementalSparsifier> {
        let tick = self.next_tick();
        let e = self.entries.get_mut(&key)?;
        e.last_used = tick;
        Some(&e.sparsifier)
    }

    /// Exclusive access to the entry under `key`, marking it as just
    /// used. The caller must follow a mutation with [`Self::rekey`] so
    /// the key and byte accounting track the edited graph.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut IncrementalSparsifier> {
        let tick = self.next_tick();
        let e = self.entries.get_mut(&key)?;
        e.last_used = tick;
        Some(&mut e.sparsifier)
    }

    /// Inserts (or replaces) the entry under `key` and enforces the
    /// byte budget, never evicting the entry just inserted.
    pub fn insert(&mut self, key: u64, sparsifier: IncrementalSparsifier) {
        let tick = self.next_tick();
        let bytes = sparsifier.memory_bytes();
        self.entries.insert(
            key,
            Entry {
                sparsifier,
                bytes,
                last_used: tick,
            },
        );
        self.enforce_budget(key);
    }

    /// Moves the entry under `old_key` to `new_key` after a mutation,
    /// re-measuring its footprint (edits change the factor and edge
    /// list sizes). No-op when no entry lives under `old_key`. If
    /// `new_key` was already occupied (the edit converged onto another
    /// cached graph) the mutated entry replaces it — both describe the
    /// same content.
    pub fn rekey(&mut self, old_key: u64, new_key: u64) {
        let Some(mut e) = self.entries.remove(&old_key) else {
            return;
        };
        e.bytes = e.sparsifier.memory_bytes();
        e.last_used = self.next_tick();
        self.entries.insert(new_key, e);
        self.enforce_budget(new_key);
    }

    /// Drops the entry under `key`; returns whether one existed.
    pub fn remove(&mut self, key: u64) -> bool {
        self.entries.remove(&key).is_some()
    }

    /// Evicts least-recently-used entries until the residency fits the
    /// budget, always keeping `protect` (so one oversized entry still
    /// serves).
    fn enforce_budget(&mut self, protect: u64) {
        while self.resident_bytes() > self.budget_bytes && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != protect)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_core::SparsifyConfig;
    use sass_graph::generators::{grid2d, WeightModel};

    fn build(seed: u64) -> IncrementalSparsifier {
        let g = grid2d(6, 6, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
        IncrementalSparsifier::new(&g, &SparsifyConfig::new(100.0).with_seed(seed))
            .expect("build sparsifier")
    }

    #[test]
    fn lru_evicts_oldest_first_under_budget() {
        let a = build(1);
        let one_entry = a.memory_bytes();
        // Budget fits two entries but not three.
        let mut cache = SparsifierCache::new(one_entry * 5 / 2);
        cache.insert(1, a);
        cache.insert(2, build(2));
        assert_eq!(cache.len(), 2);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1).is_some());
        cache.insert(3, build(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(1));
        assert!(!cache.contains(2));
        assert!(cache.contains(3));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn single_oversized_entry_is_kept() {
        let mut cache = SparsifierCache::new(1); // absurdly small budget
        cache.insert(7, build(7));
        assert_eq!(cache.len(), 1, "the just-inserted entry must survive");
        assert!(cache.resident_bytes() > cache.budget_bytes());
    }

    #[test]
    fn rekey_moves_and_remeasures() {
        let mut cache = SparsifierCache::new(usize::MAX);
        cache.insert(1, build(1));
        let before = cache.resident_bytes();
        cache
            .get_mut(1)
            .expect("entry")
            .add_edge(0, 35, 1.0)
            .expect("edit");
        cache.rekey(1, 2);
        assert!(!cache.contains(1));
        assert!(cache.contains(2));
        // One more edge resident — the re-measure must see it.
        assert!(cache.resident_bytes() >= before);
        // Rekey of a missing key is a no-op.
        cache.rekey(99, 100);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn remove_reports_existence() {
        let mut cache = SparsifierCache::new(usize::MAX);
        cache.insert(1, build(1));
        assert!(cache.remove(1));
        assert!(!cache.remove(1));
        assert!(cache.is_empty());
    }
}
