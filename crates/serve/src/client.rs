//! Blocking client for the sass-serve protocol.
//!
//! One request/response exchange per call over a single connection.
//! Each method sends a frame, blocks on the answer, and surfaces
//! structured server errors as [`ServeError::Remote`] — so a Rust
//! `match` on the [`ErrorCode`](crate::protocol::ErrorCode) replaces
//! any message-text parsing. The connection can be reused across calls
//! and across cache keys; the server batches concurrent solves across
//! connections, so parallelism comes from running several clients (one
//! per thread), not from pipelining on one socket.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    read_frame, write_frame, CacheOutcome, Request, Response, ServerStats, SparsifyParams,
    WireEdit, WireGraph, MAX_FRAME_BYTES_CEILING,
};
use crate::{ServeError, ServeResult};

/// Result of a sparsify call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SparsifyReceipt {
    /// Cache key addressing the entry in later solve/mutate calls.
    pub key: u64,
    /// Vertex count.
    pub n: u64,
    /// Edges selected into the sparsifier.
    pub selected_edges: u64,
    /// Spanning-tree backbone edges.
    pub tree_edges: u64,
    /// Whether the entry was served warm or built by this call.
    pub cache: CacheOutcome,
}

/// Result of a mutate call, echoing the incremental layer's
/// [`ChurnReport`](sass_core::ChurnReport) so callers can observe that
/// the edit was served proportional-to-change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutateReceipt {
    /// The entry's new cache key (use it for subsequent solves).
    pub key: u64,
    /// Edge heats re-scored against the frozen embedding.
    pub dirty_edges: u64,
    /// Whether the selected edge set changed.
    pub selection_changed: bool,
    /// Factor columns re-factorized (0 = factor untouched).
    pub cols_refactored: u64,
    /// Total factor columns (reuse denominator; 0 = factor untouched).
    pub cols_total: u64,
    /// Whether the patch fell back to a full numeric pass.
    pub full_refactor: bool,
}

/// A solved system plus the observed batching.
#[derive(Debug, Clone, PartialEq)]
pub struct Solved {
    /// Mean-zero solutions, one per requested column.
    pub xs: Vec<Vec<f64>>,
    /// Total columns coalesced into the factor pass that served this
    /// request (> number of requested columns means the server batched
    /// this request with concurrent ones).
    pub batch_cols: u32,
}

/// A blocking connection to a sass-serve server.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on connection failure.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> ServeResult<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request frames must leave immediately — a held request would
        // add Nagle/delayed-ACK latency to every round-trip.
        stream.set_nodelay(true)?;
        // Mirror the server's 64 KiB stream buffers: solve frames carry
        // n-length f64 arrays.
        let reader = BufReader::with_capacity(1 << 16, stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::with_capacity(1 << 16, stream),
        })
    }

    fn round_trip(&mut self, req: &Request) -> ServeResult<Response> {
        write_frame(&mut self.writer, &req.encode())?;
        let payload = read_frame(&mut self.reader, MAX_FRAME_BYTES_CEILING)?.ok_or_else(|| {
            ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before answering",
            ))
        })?;
        match Response::decode(&payload)? {
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            resp => Ok(resp),
        }
    }

    fn unexpected(resp: Response) -> ServeError {
        ServeError::Protocol {
            context: format!("unexpected response kind: {resp:?}"),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// I/O, protocol, or remote errors as [`ServeError`].
    pub fn ping(&mut self) -> ServeResult<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Submits a graph for sparsification; returns the cache key to
    /// solve and mutate against.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with `LimitExceeded`, `InvalidGraph` or
    /// `SolverFailure`; transport failures as I/O errors.
    pub fn sparsify(
        &mut self,
        params: SparsifyParams,
        graph: WireGraph,
    ) -> ServeResult<SparsifyReceipt> {
        match self.round_trip(&Request::Sparsify { params, graph })? {
            Response::SparsifyOk {
                key,
                n,
                selected_edges,
                tree_edges,
                cache,
            } => Ok(SparsifyReceipt {
                key,
                n,
                selected_edges,
                tree_edges,
                cache,
            }),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Solves `L_P x = b` against the cached sparsifier factor.
    /// `deadline_ms = 0` uses the server's default queue deadline.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with `UnknownKey`, `DeadlineExceeded`,
    /// `InvalidGraph` (rhs length mismatch) or `LimitExceeded`.
    pub fn solve(&mut self, key: u64, rhs: Vec<f64>, deadline_ms: u32) -> ServeResult<Solved> {
        match self.round_trip(&Request::Solve {
            key,
            deadline_ms,
            rhs,
        })? {
            Response::SolveOk { x, batch_cols } => Ok(Solved {
                xs: vec![x],
                batch_cols,
            }),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Solves against many right-hand sides in one request (the server
    /// runs them — plus any concurrently queued solves on the same key
    /// — through one blocked pass).
    ///
    /// # Errors
    ///
    /// As [`Client::solve`].
    pub fn solve_many(
        &mut self,
        key: u64,
        rhs: Vec<Vec<f64>>,
        deadline_ms: u32,
    ) -> ServeResult<Solved> {
        match self.round_trip(&Request::SolveMany {
            key,
            deadline_ms,
            rhs,
        })? {
            Response::SolveManyOk { xs, batch_cols } => Ok(Solved { xs, batch_cols }),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Applies an edit batch to the cached entry through the
    /// incremental sparsifier and returns the entry's new key.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with `UnknownKey`, `InvalidGraph` (the
    /// batch was rejected; entry unchanged) or `SolverFailure` (the
    /// patched factorization failed; entry dropped).
    pub fn mutate(&mut self, key: u64, edits: Vec<WireEdit>) -> ServeResult<MutateReceipt> {
        match self.round_trip(&Request::Mutate { key, edits })? {
            Response::MutateOk {
                key,
                dirty_edges,
                selection_changed,
                cols_refactored,
                cols_total,
                full_refactor,
            } => Ok(MutateReceipt {
                key,
                dirty_edges,
                selection_changed,
                cols_refactored,
                cols_total,
                full_refactor,
            }),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Drops a cache entry; returns whether one existed.
    ///
    /// # Errors
    ///
    /// Transport failures as [`ServeError::Io`].
    pub fn invalidate(&mut self, key: u64) -> ServeResult<bool> {
        match self.round_trip(&Request::Invalidate { key })? {
            Response::InvalidateOk { existed } => Ok(existed),
            other => Err(Self::unexpected(other)),
        }
    }

    /// Snapshots the server's counters.
    ///
    /// # Errors
    ///
    /// Transport failures as [`ServeError::Io`].
    pub fn stats(&mut self) -> ServeResult<ServerStats> {
        match self.round_trip(&Request::Stats)? {
            Response::StatsOk(s) => Ok(s),
            other => Err(Self::unexpected(other)),
        }
    }
}
