//! The sparsification server: accept loop, per-connection request
//! handling, and the solve-batching executor.
//!
//! # Threading model
//!
//! Three kinds of threads cooperate around one shared state:
//!
//! - the **accept loop** spawns one handler thread per connection;
//! - **connection handlers** read frames, decode requests, and serve
//!   everything except solves directly (sparsify builds run *outside*
//!   the state lock so a large build never stalls solves on other
//!   entries);
//! - a single **executor** drains the solve queue. Solve and
//!   solve-many requests are never answered inline: the handler
//!   enqueues a `SolveJob` and blocks on a reply channel.
//!
//! # Solve batching
//!
//! The executor pops the first queued job, then sleeps for the
//! configured gather window before draining the queue. Every drained
//! job with the same cache key is coalesced into **one**
//! [`GroundedSolver::solve_many`](sass_solver::GroundedSolver::solve_many)
//! pass — concurrent clients solving against the same cached factor
//! share its sweeps through the blocked multi-RHS path instead of
//! re-walking the factor once per right-hand side. Each response
//! reports `batch_cols`, the total column count of the pass that
//! served it, so clients (and the benches) can observe coalescing. A
//! zero gather window degrades gracefully to drain-what's-queued
//! (opportunistic coalescing); capping
//! [`ServerConfig::max_batch_cols`] at 1 disables coalescing entirely,
//! which is the sequential baseline configuration used by the benches.
//!
//! Deadlines are enforced at dispatch time: a job whose deadline passed
//! while it sat in the queue is answered with a `DeadlineExceeded`
//! error frame and never reaches the solver.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sass_core::{cache_key, IncrementalSparsifier};

use crate::cache::SparsifierCache;
use crate::protocol::{
    read_frame, write_frame, CacheOutcome, ErrorCode, Request, Response, ServerStats,
    SparsifyParams, WireGraph,
};
use crate::{ServeError, ServeResult};

/// Per-request resource ceilings. Violations are answered with a
/// structured [`ErrorCode::LimitExceeded`] frame, not a dropped
/// connection.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest vertex count a sparsify request may submit.
    pub max_vertices: usize,
    /// Largest edge count a sparsify request may submit.
    pub max_edges: usize,
    /// Largest column count a solve-many request may carry.
    pub max_rhs_columns: usize,
    /// Largest frame payload accepted, in bytes.
    pub max_frame_bytes: u32,
    /// Queue deadline applied to solves that pass `deadline_ms = 0`.
    pub default_deadline: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_vertices: 1 << 20,
            max_edges: 1 << 24,
            max_rhs_columns: 1024,
            max_frame_bytes: 1 << 28,
            default_deadline: Duration::from_secs(30),
        }
    }
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (the bound address
    /// is available from [`ServerHandle::addr`]).
    pub addr: String,
    /// Per-request ceilings.
    pub limits: Limits,
    /// LRU byte budget for the sparsifier cache (see
    /// [`SparsifierCache`]).
    pub cache_budget_bytes: usize,
    /// How long the executor waits after the first queued solve before
    /// draining, to let concurrent requests coalesce into one blocked
    /// pass. Zero disables gathering (drain immediately); queued
    /// requests still coalesce opportunistically.
    pub gather_window: Duration,
    /// Most right-hand-side columns coalesced into one factor pass —
    /// bounds per-pass latency under heavy coalescing. `1` disables
    /// batching entirely (every request is its own pass); that is the
    /// sequential baseline configuration the serve bench compares
    /// against. A single request carrying more columns than the cap
    /// still runs as one pass.
    pub max_batch_cols: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            limits: Limits::default(),
            cache_budget_bytes: 256 << 20,
            gather_window: Duration::from_millis(1),
            max_batch_cols: 256,
        }
    }
}

/// Mutex-protected core: the cache plus every counter the stats frame
/// reports.
#[derive(Debug)]
struct State {
    cache: SparsifierCache,
    invalidations: u64,
    sparsify_hits: u64,
    sparsify_builds: u64,
    mutations: u64,
    solves: u64,
    batches: u64,
    max_batch: u64,
    deadline_misses: u64,
    limit_rejections: u64,
}

impl State {
    fn stats(&self) -> ServerStats {
        ServerStats {
            entries: self.cache.len() as u64,
            resident_bytes: self.cache.resident_bytes() as u64,
            budget_bytes: self.cache.budget_bytes() as u64,
            sparsify_hits: self.sparsify_hits,
            sparsify_builds: self.sparsify_builds,
            evictions: self.cache.evictions(),
            invalidations: self.invalidations,
            mutations: self.mutations,
            mutation_rebuilds: 0,
            solves: self.solves,
            batches: self.batches,
            max_batch: self.max_batch,
            deadline_misses: self.deadline_misses,
            limit_rejections: self.limit_rejections,
        }
    }
}

/// What the executor sends back for one solve: the solution columns
/// plus the total column count of the pass that carried them, or a
/// structured error.
type SolveVerdict = Result<(Vec<Vec<f64>>, u32), (ErrorCode, String)>;

/// One queued solve awaiting the executor.
struct SolveJob {
    key: u64,
    rhs: Vec<Vec<f64>>,
    deadline: Instant,
    reply: mpsc::Sender<SolveVerdict>,
}

/// State shared by every thread the server runs.
struct Shared {
    state: Mutex<State>,
    queue: Mutex<VecDeque<SolveJob>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    limits: Limits,
    gather_window: Duration,
    max_batch_cols: usize,
}

/// Recovers the guard from a poisoned lock: a panicking handler thread
/// must not wedge the whole server, and every critical section leaves
/// the state structurally valid between statements that matter.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running server. Dropping the handle (or calling
/// [`ServerHandle::shutdown`]) stops the accept loop and the executor;
/// open connections are closed as their handlers observe the flag.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    executor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals every thread to stop and joins the accept loop and the
    /// executor.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds the listener and spawns the accept loop and the executor.
///
/// # Errors
///
/// [`ServeError::Io`] if the address cannot be bound.
pub fn serve(config: ServerConfig) -> ServeResult<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            cache: SparsifierCache::new(config.cache_budget_bytes),
            invalidations: 0,
            sparsify_hits: 0,
            sparsify_builds: 0,
            mutations: 0,
            solves: 0,
            batches: 0,
            max_batch: 0,
            deadline_misses: 0,
            limit_rejections: 0,
        }),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        limits: config.limits,
        gather_window: config.gather_window,
        max_batch_cols: config.max_batch_cols.max(1),
    });

    let executor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("sass-serve-exec".to_string())
            .spawn(move || executor_loop(&shared))?
    };
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("sass-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared))?
    };

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        executor: Some(executor),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Frames are small and latency-bound: without this, Nagle's
        // algorithm holds replies for the peer's delayed ACK (~40 ms
        // per round-trip on loopback).
        let _ = stream.set_nodelay(true);
        let shared = Arc::clone(shared);
        // Connection handlers are detached: they exit when the client
        // closes, on a framing error, or when they observe shutdown.
        let _ = std::thread::Builder::new()
            .name("sass-serve-conn".to_string())
            .spawn(move || connection_loop(stream, &shared));
    }
}

/// Reads frames off one connection until EOF, a fatal framing error, or
/// shutdown.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    // Solve frames carry n-length f64 arrays; 64 KiB buffers keep the
    // syscall count per frame small without hoarding memory per
    // connection.
    let mut reader = std::io::BufReader::with_capacity(
        1 << 16,
        match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        },
    );
    let mut writer = std::io::BufWriter::with_capacity(1 << 16, stream);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(&mut reader, shared.limits.max_frame_bytes) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean close
            Err(ServeError::TooLarge { context }) => {
                // The oversized payload was never read, so the stream is
                // desynchronized: answer once, then close.
                let resp = Response::Error {
                    code: ErrorCode::LimitExceeded,
                    message: context,
                };
                let _ = write_frame(&mut writer, &resp.encode());
                return;
            }
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            Ok(req) => handle_request(req, shared),
            // Length-prefixed framing survives a malformed body: report
            // and keep the connection.
            Err(ServeError::UnsupportedVersion { got }) => Response::Error {
                code: ErrorCode::UnsupportedVersion,
                message: format!("this server speaks version 1, frame carried {got}"),
            },
            Err(ServeError::UnknownKind { kind }) => Response::Error {
                code: ErrorCode::UnknownKind,
                message: format!("unknown request kind {kind:#04x}"),
            },
            Err(e) => Response::Error {
                code: ErrorCode::Malformed,
                message: e.to_string(),
            },
        };
        if write_frame(&mut writer, &response.encode()).is_err() {
            return;
        }
    }
}

/// Serves one decoded request. Solves block on the executor's reply;
/// everything else is answered inline.
fn handle_request(req: Request, shared: &Arc<Shared>) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Sparsify { params, graph } => handle_sparsify(params, &graph, shared),
        Request::Solve {
            key,
            deadline_ms,
            rhs,
        } => match submit_solve(key, vec![rhs], deadline_ms, shared) {
            Ok((mut xs, batch_cols)) => Response::SolveOk {
                x: xs.pop().unwrap_or_default(),
                batch_cols,
            },
            Err((code, message)) => Response::Error { code, message },
        },
        Request::SolveMany {
            key,
            deadline_ms,
            rhs,
        } => {
            if rhs.len() > shared.limits.max_rhs_columns {
                lock(&shared.state).limit_rejections += 1;
                return Response::Error {
                    code: ErrorCode::LimitExceeded,
                    message: format!(
                        "{} rhs columns exceeds the limit of {}",
                        rhs.len(),
                        shared.limits.max_rhs_columns
                    ),
                };
            }
            match submit_solve(key, rhs, deadline_ms, shared) {
                Ok((xs, batch_cols)) => Response::SolveManyOk { xs, batch_cols },
                Err((code, message)) => Response::Error { code, message },
            }
        }
        Request::Mutate { key, edits } => handle_mutate(key, &edits, shared),
        Request::Invalidate { key } => {
            let mut state = lock(&shared.state);
            let existed = state.cache.remove(key);
            if existed {
                state.invalidations += 1;
            }
            Response::InvalidateOk { existed }
        }
        Request::Stats => Response::StatsOk(lock(&shared.state).stats()),
    }
}

fn handle_sparsify(params: SparsifyParams, graph: &WireGraph, shared: &Arc<Shared>) -> Response {
    let limits = &shared.limits;
    if graph.n > limits.max_vertices as u64 || graph.edges.len() > limits.max_edges {
        lock(&shared.state).limit_rejections += 1;
        return Response::Error {
            code: ErrorCode::LimitExceeded,
            message: format!(
                "graph of {} vertices / {} edges exceeds the limits ({} / {})",
                graph.n,
                graph.edges.len(),
                limits.max_vertices,
                limits.max_edges
            ),
        };
    }
    let edges: Vec<(usize, usize, f64)> = graph
        .edges
        .iter()
        .map(|&(u, v, w)| (u as usize, v as usize, w))
        .collect();
    let g = match sass_graph::Graph::from_edges(graph.n as usize, &edges) {
        Ok(g) => g,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::InvalidGraph,
                message: e.to_string(),
            }
        }
    };
    let config = params.to_config();
    let key = cache_key(&g, &config);

    {
        let mut state = lock(&shared.state);
        if let Some(entry) = state.cache.get(key) {
            let resp = Response::SparsifyOk {
                key,
                n: entry.graph().n() as u64,
                selected_edges: entry.selected_edge_ids().len() as u64,
                tree_edges: entry.tree_edge_ids().len() as u64,
                cache: CacheOutcome::Hit,
            };
            state.sparsify_hits += 1;
            return resp;
        }
    }

    // Build outside the state lock so a long construction never stalls
    // solves or stats on other entries. Two racing submissions of the
    // same graph may both build; the loser's insert replaces an
    // identical entry, which is correct if wasteful.
    let entry = match IncrementalSparsifier::new(&g, &config) {
        Ok(entry) => entry,
        Err(e @ sass_core::CoreError::Solver(_)) => {
            return Response::Error {
                code: ErrorCode::SolverFailure,
                message: e.to_string(),
            }
        }
        Err(e) => {
            return Response::Error {
                code: ErrorCode::InvalidGraph,
                message: e.to_string(),
            }
        }
    };
    let resp = Response::SparsifyOk {
        key,
        n: entry.graph().n() as u64,
        selected_edges: entry.selected_edge_ids().len() as u64,
        tree_edges: entry.tree_edge_ids().len() as u64,
        cache: CacheOutcome::Built,
    };
    let mut state = lock(&shared.state);
    state.cache.insert(key, entry);
    state.sparsify_builds += 1;
    resp
}

fn handle_mutate(key: u64, edits: &[crate::protocol::WireEdit], shared: &Arc<Shared>) -> Response {
    let graph_edits: Vec<sass_graph::GraphEdit> = edits.iter().map(|e| e.to_graph_edit()).collect();
    let mut state = lock(&shared.state);
    let Some(entry) = state.cache.get_mut(key) else {
        return Response::Error {
            code: ErrorCode::UnknownKey,
            message: format!("no cache entry under key {key:#x}"),
        };
    };
    match entry.apply_edits(&graph_edits) {
        Ok(report) => {
            let new_key = cache_key(entry.graph(), entry.config());
            let (cols_refactored, cols_total, full_refactor) = match report.refactor {
                Some(s) => (s.cols_refactored as u64, s.total_cols as u64, s.full),
                None => (0, 0, false),
            };
            state.cache.rekey(key, new_key);
            state.mutations += 1;
            Response::MutateOk {
                key: new_key,
                dirty_edges: report.dirty_edges as u64,
                selection_changed: report.selection_changed,
                cols_refactored,
                cols_total,
                full_refactor,
            }
        }
        Err(e @ sass_core::CoreError::Solver(_)) => {
            // A failed refactorization may leave the factor partially
            // updated — the entry can no longer be trusted.
            state.cache.remove(key);
            Response::Error {
                code: ErrorCode::SolverFailure,
                message: format!("{e}; entry {key:#x} dropped"),
            }
        }
        // Graph-level rejections happen before anything is modified;
        // the entry stays live.
        Err(e) => Response::Error {
            code: ErrorCode::InvalidGraph,
            message: e.to_string(),
        },
    }
}

/// Enqueues a solve and blocks until the executor answers.
fn submit_solve(
    key: u64,
    rhs: Vec<Vec<f64>>,
    deadline_ms: u32,
    shared: &Arc<Shared>,
) -> SolveVerdict {
    if rhs.is_empty() {
        return Err((
            ErrorCode::InvalidGraph,
            "solve request carries zero right-hand sides".to_string(),
        ));
    }
    let deadline = Instant::now()
        + if deadline_ms == 0 {
            shared.limits.default_deadline
        } else {
            Duration::from_millis(u64::from(deadline_ms))
        };
    let (tx, rx) = mpsc::channel();
    {
        let mut q = lock(&shared.queue);
        // Checked under the queue lock: the executor only exits after a
        // final drain with the flag set while holding this lock, so a
        // push that observes the flag clear here is guaranteed to be
        // drained (and answered) before the executor returns. Without
        // this check a job enqueued after that final drain would never
        // be dispatched and `rx.recv()` below would block forever.
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err((ErrorCode::Internal, "server shutting down".to_string()));
        }
        q.push_back(SolveJob {
            key,
            rhs,
            deadline,
            reply: tx,
        });
    }
    shared.queue_cv.notify_one();
    match rx.recv() {
        Ok(result) => result,
        Err(_) => Err((
            ErrorCode::Internal,
            "executor dropped the reply channel".to_string(),
        )),
    }
}

/// The executor: pop, gather, group by key, one blocked pass per group.
fn executor_loop(shared: &Arc<Shared>) {
    loop {
        let jobs: Vec<SolveJob> = {
            let mut q = lock(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Fail whatever is still queued instead of hanging
                    // the handlers that wait on replies.
                    for job in q.drain(..) {
                        let _ = job.reply.send(Err((
                            ErrorCode::Internal,
                            "server shutting down".to_string(),
                        )));
                    }
                    return;
                }
                if !q.is_empty() {
                    break;
                }
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            if !shared.gather_window.is_zero() {
                // Let concurrent requests land before draining. The
                // window is a coalescing opportunity, not a latency
                // floor for the degenerate single-client case: waiting
                // happens with the queue unlocked.
                drop(q);
                std::thread::sleep(shared.gather_window);
                q = lock(&shared.queue);
            }
            q.drain(..).collect()
        };
        dispatch_jobs(jobs, shared);
    }
}

/// Groups drained jobs by cache key, splits each group into chunks of
/// at most `max_batch_cols` columns (at job granularity — a single job
/// larger than the cap still runs whole), and serves each chunk with
/// one `solve_many` pass over the concatenated columns.
fn dispatch_jobs(jobs: Vec<SolveJob>, shared: &Arc<Shared>) {
    let mut groups: Vec<(u64, Vec<SolveJob>)> = Vec::new();
    for job in jobs {
        match groups.iter_mut().find(|(k, _)| *k == job.key) {
            Some((_, g)) => g.push(job),
            None => groups.push((job.key, vec![job])),
        }
    }
    let cap = shared.max_batch_cols;
    for (key, group) in groups {
        let mut chunk: Vec<SolveJob> = Vec::new();
        let mut cols = 0usize;
        for job in group {
            if !chunk.is_empty() && cols + job.rhs.len() > cap {
                serve_group(key, std::mem::take(&mut chunk), shared);
                cols = 0;
            }
            cols += job.rhs.len();
            chunk.push(job);
        }
        if !chunk.is_empty() {
            serve_group(key, chunk, shared);
        }
    }
}

fn serve_group(key: u64, group: Vec<SolveJob>, shared: &Arc<Shared>) {
    let now = Instant::now();
    let (live, expired): (Vec<SolveJob>, Vec<SolveJob>) =
        group.into_iter().partition(|j| j.deadline >= now);
    if !expired.is_empty() {
        let mut state = lock(&shared.state);
        state.deadline_misses += expired.len() as u64;
    }
    for job in expired {
        let _ = job.reply.send(Err((
            ErrorCode::DeadlineExceeded,
            "deadline passed while the solve was queued".to_string(),
        )));
    }
    if live.is_empty() {
        return;
    }

    // The solve runs under the state lock: the factor must not be
    // mutated or evicted mid-sweep, and entries are not internally
    // shareable. A single-executor design keeps the hold time equal to
    // exactly one blocked pass.
    let mut state = lock(&shared.state);
    let Some(entry) = state.cache.get(key) else {
        drop(state);
        for job in live {
            let _ = job.reply.send(Err((
                ErrorCode::UnknownKey,
                format!("no cache entry under key {key:#x} (evicted or never built)"),
            )));
        }
        return;
    };
    let n = entry.graph().n();
    let (live, malformed): (Vec<SolveJob>, Vec<SolveJob>) = live
        .into_iter()
        .partition(|j| j.rhs.iter().all(|col| col.len() == n));
    if live.is_empty() {
        drop(state);
        for job in malformed {
            let _ = job.reply.send(Err((
                ErrorCode::InvalidGraph,
                format!("rhs length does not match the graph's {n} vertices"),
            )));
        }
        return;
    }
    let mut live = live;
    let col_counts: Vec<usize> = live.iter().map(|j| j.rhs.len()).collect();
    let all_cols: Vec<Vec<f64>> = live
        .iter_mut()
        .flat_map(|j| std::mem::take(&mut j.rhs))
        .collect();
    let batch_cols = all_cols.len() as u32;
    let xs = entry.solver().solve_many(&all_cols);
    state.solves += live.len() as u64;
    state.batches += 1;
    state.max_batch = state.max_batch.max(u64::from(batch_cols));
    drop(state);

    for job in malformed {
        let _ = job.reply.send(Err((
            ErrorCode::InvalidGraph,
            format!("rhs length does not match the graph's {n} vertices"),
        )));
    }
    let mut xs = xs.into_iter();
    for (job, count) in live.into_iter().zip(col_counts) {
        let cols: Vec<Vec<f64>> = xs.by_ref().take(count).collect();
        let _ = job.reply.send(Ok((cols, batch_cols)));
    }
}
