//! Error type shared by the protocol codec, the client, and the server
//! plumbing.
//!
//! [`ServeError`] covers local failures (I/O, codec violations, frames
//! over the size limit) plus [`ServeError::Remote`] for structured
//! error frames the server sent back. Handler-level failures on the
//! server side never surface as `ServeError` to the peer — they are
//! encoded as [`Response::Error`](crate::protocol::Response::Error)
//! frames with an [`ErrorCode`], so a
//! client can match on the category without parsing message text.

use std::fmt;

use crate::protocol::ErrorCode;

/// Convenience alias used throughout the crate.
pub type ServeResult<T> = Result<T, ServeError>;

/// Anything that can go wrong speaking the sass-serve protocol.
#[derive(Debug)]
pub enum ServeError {
    /// Underlying stream I/O failed (includes unexpected EOF mid-frame).
    Io(std::io::Error),
    /// A frame violated the wire layout (truncated body, bad counts,
    /// trailing bytes, malformed strings).
    Protocol {
        /// What was malformed.
        context: String,
    },
    /// A frame (outgoing or incoming) exceeds the size limit.
    TooLarge {
        /// Which limit, and by how much.
        context: String,
    },
    /// The peer speaks a protocol version this library does not.
    UnsupportedVersion {
        /// The version byte received.
        got: u8,
    },
    /// The frame kind byte is not known.
    UnknownKind {
        /// The kind byte received.
        kind: u8,
    },
    /// The server answered with a structured error frame.
    Remote {
        /// Machine-readable category from the error frame.
        code: ErrorCode,
        /// Human-readable context from the error frame.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol { context } => write!(f, "protocol violation: {context}"),
            ServeError::TooLarge { context } => write!(f, "frame too large: {context}"),
            ServeError::UnsupportedVersion { got } => {
                write!(f, "unsupported protocol version {got}")
            }
            ServeError::UnknownKind { kind } => write!(f, "unknown frame kind {kind:#04x}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}
