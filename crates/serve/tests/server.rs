//! End-to-end tests: a real server on a loopback socket, real clients,
//! every protocol path exercised over the wire.

use std::time::Duration;

use sass_core::{IncrementalSparsifier, SparsifyConfig};
use sass_graph::generators::{grid2d, WeightModel};
use sass_serve::{
    serve, CacheOutcome, Client, ErrorCode, Limits, ServeError, ServerConfig, SparsifyParams,
    WireEdit, WireGraph,
};

const SIGMA2: f64 = 100.0;
const SEED: u64 = 7;

fn test_graph(seed: u64) -> sass_graph::Graph {
    grid2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed)
}

fn wire(g: &sass_graph::Graph) -> WireGraph {
    WireGraph {
        n: g.n() as u64,
        edges: g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect(),
    }
}

fn params() -> SparsifyParams {
    SparsifyParams {
        sigma2: SIGMA2,
        seed: SEED,
    }
}

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    // Deterministic mean-zero vector.
    let mut b: Vec<f64> = (0..n)
        .map(|i| {
            let x = (i as u64)
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(seed);
            ((x >> 33) as f64) / (1u64 << 31) as f64 - 1.0
        })
        .collect();
    let mean = b.iter().sum::<f64>() / n as f64;
    for v in &mut b {
        *v -= mean;
    }
    b
}

fn assert_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + y.abs()),
            "component {i}: {x} vs {y}"
        );
    }
}

fn remote_code(err: ServeError) -> ErrorCode {
    match err {
        ServeError::Remote { code, .. } => code,
        other => panic!("expected a remote error, got: {other}"),
    }
}

#[test]
fn sparsify_solve_matches_local_pipeline() {
    let server = serve(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ping().expect("ping");

    let g = test_graph(1);
    let receipt = client.sparsify(params(), wire(&g)).expect("sparsify");
    assert_eq!(receipt.cache, CacheOutcome::Built);
    assert_eq!(receipt.n, g.n() as u64);
    assert_eq!(receipt.tree_edges, g.n() as u64 - 1);
    assert!(receipt.selected_edges >= receipt.tree_edges);

    // The served solve must match the local pipeline on the same graph
    // and config (to solve_many's documented tolerance vs per-RHS).
    let local = IncrementalSparsifier::new(&g, &SparsifyConfig::new(SIGMA2).with_seed(SEED))
        .expect("local sparsifier");
    let b = rhs(g.n(), 3);
    let want = local.solver().solve(&b);
    let got = client.solve(receipt.key, b, 0).expect("solve");
    assert!(got.batch_cols >= 1);
    assert_close(&got.xs[0], &want, 1e-12);

    server.shutdown();
}

#[test]
fn resubmission_hits_cache_regardless_of_edge_order() {
    let server = serve(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let g = test_graph(2);
    let first = client.sparsify(params(), wire(&g)).expect("first");
    assert_eq!(first.cache, CacheOutcome::Built);

    // Same graph, reversed edge order: canonicalization must land on
    // the same key and serve the entry warm.
    let mut shuffled = wire(&g);
    shuffled.edges.reverse();
    let second = client.sparsify(params(), shuffled).expect("second");
    assert_eq!(second.cache, CacheOutcome::Hit);
    assert_eq!(second.key, first.key);

    // A different seed is a different pipeline: distinct key, fresh build.
    let other = client
        .sparsify(
            SparsifyParams {
                sigma2: SIGMA2,
                seed: SEED + 1,
            },
            wire(&g),
        )
        .expect("other config");
    assert_ne!(other.key, first.key);
    assert_eq!(other.cache, CacheOutcome::Built);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.sparsify_builds, 2);
    assert_eq!(stats.sparsify_hits, 1);
    assert_eq!(stats.entries, 2);

    server.shutdown();
}

#[test]
fn mutate_reuses_the_cached_entry_incrementally() {
    let server = serve(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let g = test_graph(3);
    let receipt = client.sparsify(params(), wire(&g)).expect("sparsify");

    // One inserted edge: the server must patch the live entry, not
    // rebuild. dirty_edges == 1 pins the localized re-scoring; the
    // build counter pins that no from-scratch construction ran.
    let edit = WireEdit::Add {
        u: 0,
        v: (g.n() - 1) as u32,
        weight: 1.25,
    };
    let mutated = client.mutate(receipt.key, vec![edit]).expect("mutate");
    assert_ne!(mutated.key, receipt.key, "edited graph must re-key");
    assert_eq!(mutated.dirty_edges, 1);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.mutations, 1);
    assert_eq!(
        stats.sparsify_builds, 1,
        "mutation must reuse the cached entry, never rebuild"
    );
    assert_eq!(stats.mutation_rebuilds, 0);
    assert_eq!(stats.entries, 1, "the entry moved keys, not duplicated");

    // The old key no longer addresses anything...
    let b = rhs(g.n(), 5);
    let err = client
        .solve(receipt.key, b.clone(), 0)
        .expect_err("stale key");
    assert_eq!(remote_code(err), ErrorCode::UnknownKey);

    // ...and solves under the new key match a local pipeline that
    // applied the same edit to the same frozen basis.
    let mut local = IncrementalSparsifier::new(&g, &SparsifyConfig::new(SIGMA2).with_seed(SEED))
        .expect("local sparsifier");
    local.add_edge(0, g.n() - 1, 1.25).expect("local edit");
    let want = local.solver().solve(&b);
    let got = client.solve(mutated.key, b, 0).expect("solve after mutate");
    assert_close(&got.xs[0], &want, 1e-12);

    // Resubmitting the *edited* graph converges onto the mutated
    // entry's key — content addressing, not submission history.
    let resubmitted = client
        .sparsify(params(), wire(local.graph()))
        .expect("resubmit edited graph");
    assert_eq!(resubmitted.key, mutated.key);
    assert_eq!(resubmitted.cache, CacheOutcome::Hit);

    server.shutdown();
}

#[test]
fn rejected_edit_leaves_the_entry_live() {
    let server = serve(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let g = test_graph(4);
    let receipt = client.sparsify(params(), wire(&g)).expect("sparsify");

    // Removing a nonexistent edge is rejected atomically.
    let err = client
        .mutate(receipt.key, vec![WireEdit::Remove { u: 0, v: 62 }])
        .expect_err("bad edit");
    assert_eq!(remote_code(err), ErrorCode::InvalidGraph);

    // The entry still serves under its original key.
    let b = rhs(g.n(), 9);
    client
        .solve(receipt.key, b, 0)
        .expect("solve after rejected edit");

    server.shutdown();
}

#[test]
fn concurrent_solves_on_one_key_are_batched() {
    let server = serve(ServerConfig {
        gather_window: Duration::from_millis(50),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");

    let g = test_graph(5);
    let receipt = client.sparsify(params(), wire(&g)).expect("sparsify");
    let key = receipt.key;
    let n = g.n();

    const CLIENTS: usize = 6;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.solve(key, rhs(n, 100 + i as u64), 0).expect("solve")
            })
        })
        .collect();
    let solved: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("join"))
        .collect();

    // With a 50 ms gather window and sub-millisecond enqueues, the
    // executor coalesces the concurrent requests: at least one response
    // must report sharing a pass with another request's columns.
    let max_batch = solved.iter().map(|s| s.batch_cols).max().unwrap_or(0);
    assert!(
        max_batch > 1,
        "expected coalescing across {CLIENTS} concurrent clients, max batch_cols = {max_batch}"
    );

    // Batched answers are still correct per client.
    let local = IncrementalSparsifier::new(&g, &SparsifyConfig::new(SIGMA2).with_seed(SEED))
        .expect("local");
    for (i, s) in solved.iter().enumerate() {
        let want = local.solver().solve(&rhs(n, 100 + i as u64));
        assert_close(&s.xs[0], &want, 1e-12);
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.solves, CLIENTS as u64);
    assert!(stats.max_batch > 1);
    assert!(
        stats.batches < CLIENTS as u64,
        "coalescing must use fewer passes than requests ({} vs {CLIENTS})",
        stats.batches
    );

    server.shutdown();
}

#[test]
fn solve_many_round_trips_multiple_columns() {
    let server = serve(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let g = test_graph(6);
    let receipt = client.sparsify(params(), wire(&g)).expect("sparsify");
    let cols: Vec<Vec<f64>> = (0..4).map(|i| rhs(g.n(), 200 + i)).collect();
    let solved = client
        .solve_many(receipt.key, cols.clone(), 0)
        .expect("solve_many");
    assert_eq!(solved.xs.len(), 4);
    assert!(solved.batch_cols >= 4);

    let local = IncrementalSparsifier::new(&g, &SparsifyConfig::new(SIGMA2).with_seed(SEED))
        .expect("local");
    for (x, b) in solved.xs.iter().zip(&cols) {
        assert_close(x, &local.solver().solve(b), 1e-12);
    }

    server.shutdown();
}

#[test]
fn limits_reject_with_structured_errors() {
    let server = serve(ServerConfig {
        limits: Limits {
            max_vertices: 16,
            max_rhs_columns: 2,
            ..Limits::default()
        },
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // 64 vertices against a 16-vertex ceiling.
    let g = test_graph(7);
    let err = client.sparsify(params(), wire(&g)).expect_err("too big");
    assert_eq!(remote_code(err), ErrorCode::LimitExceeded);

    // A graph under the ceiling is accepted; then too many rhs columns.
    let small = grid2d(4, 4, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 7);
    let receipt = client.sparsify(params(), wire(&small)).expect("small");
    let cols: Vec<Vec<f64>> = (0..3).map(|i| rhs(small.n(), i)).collect();
    let err = client
        .solve_many(receipt.key, cols, 0)
        .expect_err("too many columns");
    assert_eq!(remote_code(err), ErrorCode::LimitExceeded);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.limit_rejections, 2);

    server.shutdown();
}

#[test]
fn queue_deadline_is_enforced() {
    // A gather window far past the request deadline guarantees the job
    // expires while queued.
    let server = serve(ServerConfig {
        gather_window: Duration::from_millis(150),
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let g = test_graph(8);
    let receipt = client.sparsify(params(), wire(&g)).expect("sparsify");
    let err = client
        .solve(receipt.key, rhs(g.n(), 1), 1)
        .expect_err("deadline");
    assert_eq!(remote_code(err), ErrorCode::DeadlineExceeded);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.deadline_misses, 1);

    server.shutdown();
}

#[test]
fn unknown_key_and_bad_rhs_are_structured() {
    let server = serve(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let err = client
        .solve(0xdead_beef, vec![1.0, -1.0], 0)
        .expect_err("unknown key");
    assert_eq!(remote_code(err), ErrorCode::UnknownKey);

    let g = test_graph(9);
    let receipt = client.sparsify(params(), wire(&g)).expect("sparsify");
    let err = client
        .solve(receipt.key, vec![1.0, -1.0], 0) // wrong length
        .expect_err("bad rhs");
    assert_eq!(remote_code(err), ErrorCode::InvalidGraph);

    server.shutdown();
}

#[test]
fn invalidation_drops_the_entry() {
    let server = serve(ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let g = test_graph(10);
    let receipt = client.sparsify(params(), wire(&g)).expect("sparsify");
    assert!(client.invalidate(receipt.key).expect("invalidate"));
    assert!(!client.invalidate(receipt.key).expect("second invalidate"));

    let err = client
        .solve(receipt.key, rhs(g.n(), 1), 0)
        .expect_err("solve after invalidate");
    assert_eq!(remote_code(err), ErrorCode::UnknownKey);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.invalidations, 1);
    assert_eq!(stats.entries, 0);

    server.shutdown();
}

#[test]
fn lru_budget_evicts_cold_entries() {
    // Budget sized from a real entry so the test tracks memory_bytes
    // drift: fits two comfortably, never three.
    let probe = IncrementalSparsifier::new(
        &test_graph(11),
        &SparsifyConfig::new(SIGMA2).with_seed(SEED),
    )
    .expect("probe")
    .memory_bytes();
    let server = serve(ServerConfig {
        cache_budget_bytes: probe * 5 / 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let g1 = test_graph(11);
    let g2 = test_graph(12);
    let g3 = test_graph(13);
    let r1 = client.sparsify(params(), wire(&g1)).expect("g1");
    let r2 = client.sparsify(params(), wire(&g2)).expect("g2");
    // Touch g1 so g2 is the LRU victim when g3 lands.
    client.solve(r1.key, rhs(g1.n(), 1), 0).expect("warm g1");
    let r3 = client.sparsify(params(), wire(&g3)).expect("g3");

    let stats = client.stats().expect("stats");
    assert!(stats.evictions >= 1, "expected at least one eviction");
    assert!(stats.entries <= 2);

    // The evicted key now reports UnknownKey; the survivors solve.
    let err = client
        .solve(r2.key, rhs(g2.n(), 1), 0)
        .expect_err("evicted entry");
    assert_eq!(remote_code(err), ErrorCode::UnknownKey);
    client.solve(r1.key, rhs(g1.n(), 2), 0).expect("g1 lives");
    client.solve(r3.key, rhs(g3.n(), 2), 0).expect("g3 lives");

    server.shutdown();
}

#[test]
fn malformed_and_versioned_frames_get_structured_replies() {
    use sass_serve::protocol::{read_frame, write_frame};
    use sass_serve::{Request, Response, PROTOCOL_VERSION};

    let server = serve(ServerConfig::default()).expect("bind");
    let stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = std::io::BufWriter::new(stream);

    let mut exchange = |payload: &[u8]| -> Response {
        write_frame(&mut writer, payload).expect("write");
        let reply = read_frame(&mut reader, 1 << 20)
            .expect("read")
            .expect("frame");
        Response::decode(&reply).expect("decode")
    };

    // Unknown version byte.
    let resp = exchange(&[PROTOCOL_VERSION + 1, 0x01]);
    assert!(matches!(
        resp,
        Response::Error {
            code: ErrorCode::UnsupportedVersion,
            ..
        }
    ));

    // Unknown kind byte.
    let resp = exchange(&[PROTOCOL_VERSION, 0x42]);
    assert!(matches!(
        resp,
        Response::Error {
            code: ErrorCode::UnknownKind,
            ..
        }
    ));

    // Truncated body (a solve frame with no fields at all).
    let resp = exchange(&[PROTOCOL_VERSION, 0x03]);
    assert!(matches!(
        resp,
        Response::Error {
            code: ErrorCode::Malformed,
            ..
        }
    ));

    // Length-prefixed framing survives all of the above: a valid ping
    // on the same connection still answers.
    let resp = exchange(&Request::Ping.encode());
    assert!(matches!(resp, Response::Pong));

    server.shutdown();
}
