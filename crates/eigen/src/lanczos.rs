//! Symmetric Lanczos with full reorthogonalization.
//!
//! The workspace's replacement for ARPACK/`eigs`: computes a few extreme
//! eigenpairs of a large symmetric [`LinearOperator`]. Full
//! reorthogonalization keeps the Krylov basis numerically orthogonal, which
//! is affordable here because requested subspaces are small (`k ≤ 20`,
//! Krylov dimension a few hundred).
//!
//! For the *smallest* nontrivial Laplacian eigenpairs, use
//! [`lanczos_smallest_laplacian`], which runs Lanczos on the pseudoinverse
//! operator `L⁺` (one sparse factorization + a triangular solve per step) —
//! the same shift-invert strategy `eigs(L, k, 'sm')` uses.

use crate::tridiag::tridiagonal_eig;
use crate::{EigenError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sass_solver::{GroundedScratch, GroundedSolver};
use sass_sparse::ordering::OrderingKind;
use sass_sparse::{dense, CsrMatrix, LinearOperator};
use std::cell::RefCell;

/// Options for a Lanczos run.
#[derive(Debug, Clone, PartialEq)]
pub struct LanczosOptions {
    /// Maximum Krylov dimension before giving up.
    pub max_dim: usize,
    /// Relative residual tolerance for Ritz-pair convergence.
    pub tol: f64,
    /// Seed of the random start vector.
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_dim: 300,
            tol: 1e-9,
            seed: 0x1a2b,
        }
    }
}

/// Result of a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Converged eigenvalues, **descending** (the operator's largest).
    pub eigenvalues: Vec<f64>,
    /// Unit Ritz vectors matching `eigenvalues`.
    pub eigenvectors: Vec<Vec<f64>>,
    /// Krylov dimension actually used.
    pub dim: usize,
    /// Whether all requested pairs met the tolerance.
    pub converged: bool,
}

/// Computes the `k` largest eigenpairs of a symmetric operator.
///
/// With `deflate_constant` set, all iterates are kept orthogonal to the
/// all-ones vector — mandatory when `op` is (built from) a singular graph
/// Laplacian whose trivial nullspace must be excluded.
///
/// # Errors
///
/// Returns [`EigenError::InvalidParameter`] when `k` is zero or exceeds the
/// available dimension. A run that exhausts `max_dim` without meeting the
/// tolerance still returns its best Ritz pairs, flagged
/// `converged = false`.
///
/// # Example
///
/// ```
/// use sass_eigen::lanczos::{lanczos_largest, LanczosOptions};
/// use sass_graph::Graph;
///
/// # fn main() -> Result<(), sass_eigen::EigenError> {
/// let g = Graph::from_edges(6, &(0..5).map(|i| (i, i + 1, 1.0)).collect::<Vec<_>>())?;
/// let l = g.laplacian();
/// let res = lanczos_largest(&l, 1, true, &LanczosOptions::default())?;
/// let exact = 2.0 - 2.0 * (5.0 * std::f64::consts::PI / 6.0).cos();
/// assert!((res.eigenvalues[0] - exact).abs() < 1e-7);
/// # Ok(())
/// # }
/// ```
pub fn lanczos_largest<A>(
    op: &A,
    k: usize,
    deflate_constant: bool,
    opts: &LanczosOptions,
) -> Result<LanczosResult>
where
    A: LinearOperator + ?Sized,
{
    let n = op.dim();
    let avail = if deflate_constant {
        n.saturating_sub(1)
    } else {
        n
    };
    if k == 0 || k > avail {
        return Err(EigenError::InvalidParameter {
            context: format!("requested {k} eigenpairs from effective dimension {avail}"),
        });
    }
    let max_dim = opts.max_dim.min(avail).max(k);
    let mut rng = StdRng::seed_from_u64(opts.seed);

    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(max_dim);
    let mut alphas: Vec<f64> = Vec::with_capacity(max_dim);
    let mut betas: Vec<f64> = Vec::with_capacity(max_dim);

    let fresh_vector = |rng: &mut StdRng, vs: &[Vec<f64>]| -> Vec<f64> {
        let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        if deflate_constant {
            dense::center(&mut v);
        }
        for u in vs {
            dense::orthogonalize_against(&mut v, u);
        }
        dense::normalize(&mut v);
        v
    };
    vs.push(fresh_vector(&mut rng, &[]));

    let mut w = vec![0.0; n];
    let mut converged = false;
    let mut ritz: (Vec<f64>, Vec<Vec<f64>>) = (Vec::new(), Vec::new());

    while vs.len() <= max_dim {
        let j = vs.len() - 1;
        op.apply(&vs[j], &mut w);
        if deflate_constant {
            dense::center(&mut w);
        }
        let alpha = dense::dot(&w, &vs[j]);
        alphas.push(alpha);
        // Full reorthogonalization (two passes of modified Gram–Schmidt).
        for _ in 0..2 {
            for u in &vs {
                dense::orthogonalize_against(&mut w, u);
            }
        }
        let beta = dense::norm2(&w);

        // Convergence check on the current tridiagonal. Diagonalizing T is
        // O(m³), so only do it periodically and at forced stops.
        let m = alphas.len();
        let must_stop = vs.len() == max_dim || beta < 1e-13;
        if m >= k && (must_stop || m.is_multiple_of(8)) {
            let (tvals, tvecs) = tridiagonal_eig(&alphas, &betas)?;
            let mut ok = true;
            for i in 0..k {
                let idx = m - 1 - i; // largest Ritz values sit at the end
                let resid = beta * tvecs[idx][m - 1].abs();
                if resid > opts.tol * tvals[idx].abs().max(1e-30) {
                    ok = false;
                    break;
                }
            }
            if ok || must_stop {
                converged = ok || beta < 1e-13;
                ritz = (tvals, tvecs);
                break;
            }
        } else if m < k && beta < 1e-13 {
            // Invariant subspace before k pairs: restart with a fresh
            // orthogonal direction (T becomes block diagonal, still valid).
            betas.push(0.0);
            vs.push(fresh_vector(&mut rng, &vs));
            continue;
        }
        betas.push(beta);
        // Push the normalized copy into the basis and keep `w` as the
        // persistent apply buffer — the only per-step allocation is the
        // stored Krylov vector itself.
        let inv_beta = 1.0 / beta;
        vs.push(w.iter().map(|&wi| wi * inv_beta).collect());
    }
    if ritz.0.is_empty() {
        let (tvals, tvecs) = tridiagonal_eig(&alphas, &betas[..alphas.len() - 1])?;
        ritz = (tvals, tvecs);
    }

    let (tvals, tvecs) = ritz;
    let m = tvals.len();
    let take = k.min(m);
    let mut eigenvalues = Vec::with_capacity(take);
    let mut eigenvectors = Vec::with_capacity(take);
    for i in 0..take {
        let idx = m - 1 - i;
        eigenvalues.push(tvals[idx]);
        let s = &tvecs[idx];
        let mut x = vec![0.0; n];
        for (vj, &sj) in vs.iter().zip(s) {
            dense::axpy(sj, vj, &mut x);
        }
        dense::normalize(&mut x);
        eigenvectors.push(x);
    }
    Ok(LanczosResult {
        eigenvalues,
        eigenvectors,
        dim: m,
        converged,
    })
}

/// The `k` smallest **nontrivial** eigenpairs of a connected-graph
/// Laplacian, by Lanczos on the pseudoinverse `L⁺` (shift-invert at 0).
///
/// Eigenvalues are returned ascending starting from `λ₂`; eigenvectors are
/// mean-zero. The cost is one grounded factorization of `L` plus one
/// triangular solve per Lanczos step — exactly the `eigs` strategy whose
/// runtime the paper's Table 4 compares between original and sparsified
/// graphs.
///
/// # Errors
///
/// Propagates factorization failure ([`EigenError::Solver`], e.g. for a
/// disconnected graph) and Lanczos parameter errors.
pub fn lanczos_smallest_laplacian(
    l: &CsrMatrix,
    k: usize,
    ordering: OrderingKind,
    opts: &LanczosOptions,
) -> Result<LanczosResult> {
    let solver = GroundedSolver::new(l, ordering)?;
    let op = PseudoinverseOp::new(&solver);
    let mut res = lanczos_largest(&op, k, true, opts)?;
    // Map μ (of L⁺) back to λ = 1/μ and re-sort ascending.
    for v in &mut res.eigenvalues {
        *v = 1.0 / *v;
    }
    // μ descending ⇒ λ ascending already; enforce anyway for safety.
    let mut order: Vec<usize> = (0..res.eigenvalues.len()).collect();
    order.sort_by(|&a, &b| {
        res.eigenvalues[a]
            .partial_cmp(&res.eigenvalues[b])
            .expect("finite eigenvalues")
    });
    res.eigenvalues = order.iter().map(|&i| res.eigenvalues[i]).collect();
    res.eigenvectors = order.iter().map(|&i| res.eigenvectors[i].clone()).collect();
    Ok(res)
}

/// The Laplacian pseudoinverse `L⁺` as a [`LinearOperator`]: one grounded
/// solve per application, against a factorization built once.
///
/// Solver scratch is reused across applications, so driving this operator
/// inside Lanczos or power iterations allocates nothing per step. The
/// interior mutability makes the operator `!Sync`; clone per thread if
/// needed.
#[derive(Debug, Clone)]
pub struct PseudoinverseOp<'a> {
    solver: &'a GroundedSolver,
    scratch: RefCell<GroundedScratch>,
}

impl<'a> PseudoinverseOp<'a> {
    /// Wraps a grounded factorization of the Laplacian to invert.
    pub fn new(solver: &'a GroundedSolver) -> Self {
        PseudoinverseOp {
            solver,
            scratch: RefCell::new(GroundedScratch::new()),
        }
    }

    /// The underlying grounded solver.
    pub fn solver(&self) -> &GroundedSolver {
        self.solver
    }
}

impl LinearOperator for PseudoinverseOp<'_> {
    fn dim(&self) -> usize {
        self.solver.n()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.solver
            .solve_into_scratch(x, y, &mut self.scratch.borrow_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::{csr_to_dense, dense_symmetric_eig};
    use sass_graph::generators::{grid2d, WeightModel};
    use sass_graph::Graph;

    #[test]
    fn largest_matches_jacobi_on_mesh() {
        let g = grid2d(6, 5, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 8);
        let l = g.laplacian();
        let res = lanczos_largest(&l, 3, true, &LanczosOptions::default()).unwrap();
        let (jvals, _) = dense_symmetric_eig(&csr_to_dense(&l)).unwrap();
        for i in 0..3 {
            let exact = jvals[jvals.len() - 1 - i];
            assert!(
                (res.eigenvalues[i] - exact).abs() < 1e-6 * exact,
                "pair {i}: {} vs {exact}",
                res.eigenvalues[i]
            );
        }
        assert!(res.converged);
    }

    #[test]
    fn smallest_laplacian_matches_jacobi() {
        let g = grid2d(5, 5, WeightModel::Unit, 0);
        let l = g.laplacian();
        let res = lanczos_smallest_laplacian(&l, 4, OrderingKind::MinDegree, &Default::default())
            .unwrap();
        let (jvals, _) = dense_symmetric_eig(&csr_to_dense(&l)).unwrap();
        // jvals[0] ≈ 0 (trivial); compare against jvals[1..5].
        for i in 0..4 {
            assert!(
                (res.eigenvalues[i] - jvals[i + 1]).abs() < 1e-7,
                "pair {i}: {} vs {}",
                res.eigenvalues[i],
                jvals[i + 1]
            );
        }
        // Eigenvectors are mean-zero and satisfy the residual equation.
        for (lam, v) in res.eigenvalues.iter().zip(&res.eigenvectors) {
            assert!(dense::mean(v).abs() < 1e-10);
            let lv = l.mul_vec(v);
            let mut r = lv.clone();
            dense::axpy(-lam, v, &mut r);
            assert!(dense::norm2(&r) < 1e-6, "residual {}", dense::norm2(&r));
        }
    }

    #[test]
    fn ritz_vectors_are_orthonormal() {
        let g = grid2d(7, 4, WeightModel::Unit, 2);
        let l = g.laplacian();
        let res = lanczos_largest(&l, 4, true, &LanczosOptions::default()).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let d = dense::dot(&res.eigenvectors[i], &res.eigenvectors[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-6, "({i},{j}): {d}");
            }
        }
    }

    #[test]
    fn rejects_bad_k() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let l = g.laplacian();
        assert!(lanczos_largest(&l, 0, true, &Default::default()).is_err());
        assert!(lanczos_largest(&l, 3, true, &Default::default()).is_err()); // only n-1 available
    }

    #[test]
    fn handles_tiny_graphs() {
        let g = Graph::from_edges(2, &[(0, 1, 3.0)]).unwrap();
        let l = g.laplacian();
        let res = lanczos_largest(&l, 1, true, &Default::default()).unwrap();
        assert!((res.eigenvalues[0] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_seed() {
        let g = grid2d(5, 5, WeightModel::Unit, 1);
        let l = g.laplacian();
        let a = lanczos_largest(&l, 2, true, &LanczosOptions::default()).unwrap();
        let b = lanczos_largest(&l, 2, true, &LanczosOptions::default()).unwrap();
        assert_eq!(a.eigenvalues, b.eigenvalues);
    }
}
