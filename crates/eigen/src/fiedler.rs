//! Fiedler vector computation by inverse power iteration.
//!
//! The Fiedler vector — the eigenvector of the smallest nontrivial
//! Laplacian eigenvalue `λ₂` — drives spectral partitioning (paper §4.3).
//! Each inverse power step solves `L y = x`, either **directly** (grounded
//! sparse factorization of the full graph, the paper's CHOLMOD baseline) or
//! **iteratively** (PCG preconditioned by a spectral sparsifier, the
//! paper's accelerated method).

use crate::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sass_solver::{pcg, GroundedSolver, PcgOptions, Preconditioner};
use sass_sparse::ordering::OrderingKind;
use sass_sparse::{dense, CsrMatrix};

/// Options for the inverse power iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct FiedlerOptions {
    /// Maximum inverse power steps.
    pub max_iter: usize,
    /// Stop when the iterate changes by less than this (2-norm of the
    /// difference of unit vectors, sign-aligned).
    pub tol: f64,
    /// Seed of the random start vector.
    pub seed: u64,
}

impl Default for FiedlerOptions {
    fn default() -> Self {
        FiedlerOptions {
            max_iter: 60,
            tol: 1e-8,
            seed: 0xf1ed,
        }
    }
}

fn inverse_power<S>(l: &CsrMatrix, mut solve: S, opts: &FiedlerOptions) -> (f64, Vec<f64>)
where
    S: FnMut(&[f64]) -> Vec<f64>,
{
    let n = l.nrows();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    dense::center(&mut x);
    dense::normalize(&mut x);
    for _ in 0..opts.max_iter {
        let mut y = solve(&x);
        dense::center(&mut y);
        dense::normalize(&mut y);
        // Sign-align to measure the change.
        if dense::dot(&x, &y) < 0.0 {
            dense::scale(-1.0, &mut y);
        }
        let mut diff = y.clone();
        dense::axpy(-1.0, &x, &mut diff);
        let delta = dense::norm2(&diff);
        x = y;
        if delta < opts.tol {
            break;
        }
    }
    let lambda2 = l.quad_form(&x); // x is unit, so this is the Rayleigh quotient
    (lambda2, x)
}

/// Fiedler pair `(λ₂, v)` via exact (direct) solves — the paper's
/// direct-solver baseline.
///
/// # Errors
///
/// Propagates factorization failure (disconnected graph).
pub fn fiedler_vector_direct(
    l: &CsrMatrix,
    ordering: OrderingKind,
    opts: &FiedlerOptions,
) -> Result<(f64, Vec<f64>)> {
    let solver = GroundedSolver::new(l, ordering)?;
    Ok(inverse_power(l, |x| solver.solve(x), opts))
}

/// Fiedler pair `(λ₂, v)` via PCG solves with a caller-supplied
/// preconditioner — pass a sparsifier-based
/// [`LaplacianPrec`](sass_solver::LaplacianPrec) to reproduce the paper's
/// accelerated partitioner.
///
/// Consecutive inverse power steps solve against slowly-changing right-hand
/// sides, so each PCG solve is warm-started from the previous (rescaled)
/// solution — after the first step, solves typically cost a handful of
/// iterations.
///
/// Returns the pair together with the total number of PCG iterations spent
/// across all inverse power steps.
pub fn fiedler_vector_pcg<M>(
    l: &CsrMatrix,
    prec: &M,
    pcg_opts: &PcgOptions,
    opts: &FiedlerOptions,
) -> (f64, Vec<f64>, usize)
where
    M: Preconditioner + ?Sized,
{
    let mut total_pcg = 0usize;
    let mut warm: Option<Vec<f64>> = None;
    let (lambda2, v) = inverse_power(
        l,
        |x| {
            // Inverse power iterates are unit vectors with x_k → x_{k+1},
            // so the previous solution L⁺x_k ≈ (1/λ₂)x_k is already an
            // excellent starting guess for L⁺x_{k+1}.
            let (y, stats) = match &warm {
                Some(prev) => sass_solver::pcg_with_x0(l, x, prev, prec, pcg_opts),
                None => pcg(l, x, prec, pcg_opts),
            };
            total_pcg += stats.iterations;
            warm = Some(y.clone());
            y
        },
        opts,
    );
    (lambda2, v, total_pcg)
}

/// Fraction of vertices on which two sign vectors disagree, minimized over
/// a global sign flip — the paper's Table 3 `Rel.Err.` metric.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn sign_disagreement(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sign_disagreement: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let diff = a
        .iter()
        .zip(b)
        .filter(|(x, y)| (x.is_sign_negative()) != (y.is_sign_negative()))
        .count();
    let d = diff as f64 / a.len() as f64;
    d.min(1.0 - d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_graph::generators::{grid2d, stochastic_block_model, WeightModel};
    use sass_solver::{JacobiPrec, LaplacianPrec};

    #[test]
    fn path_graph_lambda2_is_analytic() {
        let g =
            sass_graph::Graph::from_edges(10, &(0..9).map(|i| (i, i + 1, 1.0)).collect::<Vec<_>>())
                .unwrap();
        let (l2, v) =
            fiedler_vector_direct(&g.laplacian(), OrderingKind::Natural, &Default::default())
                .unwrap();
        let exact = 2.0 - 2.0 * (std::f64::consts::PI / 10.0).cos();
        assert!((l2 - exact).abs() < 1e-7, "{l2} vs {exact}");
        // The path Fiedler vector is monotone along the path.
        let increasing = v.windows(2).all(|w| w[1] >= w[0] - 1e-9);
        let decreasing = v.windows(2).all(|w| w[1] <= w[0] + 1e-9);
        assert!(increasing || decreasing);
    }

    #[test]
    fn fiedler_separates_planted_communities() {
        let g = stochastic_block_model(&[30, 30], 0.4, 0.02, 5);
        let (_, v) =
            fiedler_vector_direct(&g.laplacian(), OrderingKind::MinDegree, &Default::default())
                .unwrap();
        // Count sign agreement with the planted partition (up to flip).
        let planted: Vec<f64> = (0..60).map(|i| if i < 30 { 1.0 } else { -1.0 }).collect();
        let err = sign_disagreement(&v, &planted);
        assert!(err < 0.1, "community recovery error {err}");
    }

    #[test]
    fn pcg_backend_matches_direct() {
        let g = grid2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 6);
        let l = g.laplacian();
        let (l2_direct, v_direct) =
            fiedler_vector_direct(&l, OrderingKind::MinDegree, &Default::default()).unwrap();
        let prec = LaplacianPrec::new(GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap());
        let (l2_pcg, v_pcg, total) =
            fiedler_vector_pcg(&l, &prec, &PcgOptions::default(), &Default::default());
        assert!((l2_direct - l2_pcg).abs() < 1e-6 * l2_direct.max(1e-12));
        assert!(sign_disagreement(&v_direct, &v_pcg) < 0.02);
        assert!(total > 0);
    }

    #[test]
    fn jacobi_preconditioned_backend_works_too() {
        let g = grid2d(6, 6, WeightModel::Unit, 1);
        let l = g.laplacian();
        let prec = JacobiPrec::new(&l);
        let (l2, _, _) = fiedler_vector_pcg(&l, &prec, &PcgOptions::default(), &Default::default());
        let (l2_ref, _) =
            fiedler_vector_direct(&l, OrderingKind::MinDegree, &Default::default()).unwrap();
        assert!((l2 - l2_ref).abs() < 1e-6);
    }

    #[test]
    fn sign_disagreement_metric() {
        assert_eq!(sign_disagreement(&[1.0, -1.0], &[1.0, -1.0]), 0.0);
        assert_eq!(sign_disagreement(&[1.0, -1.0], &[-1.0, 1.0]), 0.0); // global flip
        assert_eq!(
            sign_disagreement(&[1.0, 1.0, 1.0, -1.0], &[1.0, 1.0, 1.0, 1.0]),
            0.25
        );
    }
}
