//! Dense symmetric eigensolver by cyclic Jacobi rotations.
//!
//! Quadratically convergent and unconditionally stable; `O(n³)` per sweep,
//! so intended for validation and small subproblems (`n ≲ 500`). This is
//! the workspace's ground-truth eigensolver.

// Dense kernels read more clearly with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::{EigenError, Result};

/// Full eigendecomposition of a dense symmetric matrix.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues ascending and
/// `eigenvectors[k]` the unit eigenvector for `eigenvalues[k]`.
///
/// # Errors
///
/// Returns [`EigenError::InvalidParameter`] if `a` is not square/symmetric,
/// or [`EigenError::NotConverged`] if 100 sweeps do not reach tolerance
/// (practically unreachable for well-formed input).
///
/// # Example
///
/// ```
/// use sass_eigen::jacobi::dense_symmetric_eig;
///
/// # fn main() -> Result<(), sass_eigen::EigenError> {
/// let a = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
/// let (vals, _) = dense_symmetric_eig(&a)?;
/// assert!((vals[0] - 1.0).abs() < 1e-12);
/// assert!((vals[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn dense_symmetric_eig(a: &[Vec<f64>]) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
    let n = a.len();
    for row in a {
        if row.len() != n {
            return Err(EigenError::InvalidParameter {
                context: "matrix is not square".to_string(),
            });
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let scale = a[i][j].abs().max(a[j][i].abs()).max(1.0);
            if (a[i][j] - a[j][i]).abs() > 1e-10 * scale {
                return Err(EigenError::InvalidParameter {
                    context: format!("matrix not symmetric at ({i}, {j})"),
                });
            }
        }
    }
    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    let off = |m: &[Vec<f64>]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += m[i][j] * m[i][j];
            }
        }
        s.sqrt()
    };
    let frob: f64 = m
        .iter()
        .flat_map(|r| r.iter())
        .map(|x| x * x)
        .sum::<f64>()
        .sqrt()
        .max(f64::MIN_POSITIVE);

    let max_sweeps = 100;
    let mut sweeps = 0;
    while off(&m) > 1e-13 * frob {
        if sweeps >= max_sweeps {
            return Err(EigenError::NotConverged {
                iterations: sweeps,
                residual: off(&m) / frob,
            });
        }
        sweeps += 1;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p][q];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m[p][p];
                let aqq = m[q][q];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, θ) on both sides.
                for k in 0..n {
                    let mkp = m[k][p];
                    let mkq = m[k][q];
                    m[k][p] = c * mkp - s * mkq;
                    m[k][q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p][k];
                    let mqk = m[q][k];
                    m[p][k] = c * mpk - s * mqk;
                    m[q][k] = s * mpk + c * mqk;
                }
                for row in v.iter_mut() {
                    let vp = row[p];
                    let vq = row[q];
                    row[p] = c * vp - s * vq;
                    row[q] = s * vp + c * vq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[i][i].partial_cmp(&m[j][j]).expect("finite eigenvalues"));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| m[i][i]).collect();
    let eigenvectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&col| (0..n).map(|row| v[row][col]).collect())
        .collect();
    Ok((eigenvalues, eigenvectors))
}

/// Converts a sparse CSR matrix to the dense row form consumed by
/// [`dense_symmetric_eig`] (small matrices only).
pub fn csr_to_dense(a: &sass_sparse::CsrMatrix) -> Vec<Vec<f64>> {
    a.to_dense()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_graph::Graph;

    #[test]
    fn diagonal_matrix_is_its_own_spectrum() {
        let a = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ];
        let (vals, vecs) = dense_symmetric_eig(&a).unwrap();
        assert_eq!(vals.len(), 3);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 3.0).abs() < 1e-12);
        // Eigenvector for eigenvalue 1 is e_1 (up to sign).
        assert!(vecs[0][1].abs() > 0.999);
    }

    #[test]
    fn path_laplacian_matches_analytic_spectrum() {
        let n = 9;
        let g =
            Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1, 1.0)).collect::<Vec<_>>()).unwrap();
        let (vals, _) = dense_symmetric_eig(&csr_to_dense(&g.laplacian())).unwrap();
        for (k, &v) in vals.iter().enumerate() {
            let exact = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / n as f64).cos();
            assert!((v - exact).abs() < 1e-10, "k={k}: {v} vs {exact}");
        }
    }

    #[test]
    fn eigenvectors_satisfy_definition() {
        let a = vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, -0.5],
            vec![0.5, -0.5, 2.0],
        ];
        let (vals, vecs) = dense_symmetric_eig(&a).unwrap();
        for (lam, v) in vals.iter().zip(&vecs) {
            for i in 0..3 {
                let avi: f64 = (0..3).map(|j| a[i][j] * v[j]).sum();
                assert!((avi - lam * v[i]).abs() < 1e-10);
            }
        }
        // Orthonormality.
        for i in 0..3 {
            for j in 0..3 {
                let d: f64 = vecs[i].iter().zip(&vecs[j]).map(|(a, b)| a * b).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn rejects_nonsymmetric() {
        let a = vec![vec![1.0, 2.0], vec![0.0, 1.0]];
        assert!(matches!(
            dense_symmetric_eig(&a),
            Err(EigenError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn handles_trivial_sizes() {
        let (vals, _) = dense_symmetric_eig(&[vec![7.0]]).unwrap();
        assert_eq!(vals, vec![7.0]);
        let empty: Vec<Vec<f64>> = vec![];
        let (vals, vecs) = dense_symmetric_eig(&empty).unwrap();
        assert!(vals.is_empty() && vecs.is_empty());
    }
}
