//! Implicit-shift QL eigensolver for symmetric tridiagonal matrices.
//!
//! The companion of [`crate::lanczos`]: Lanczos reduces a large operator to
//! a small tridiagonal `T`; this module diagonalizes `T` exactly.

use crate::{EigenError, Result};

/// Eigendecomposition of the symmetric tridiagonal matrix with diagonal
/// `alpha` (length `n`) and off-diagonal `beta` (length `n − 1`).
///
/// Returns `(eigenvalues, s)` with eigenvalues ascending; `s[k]` is the unit
/// eigenvector for `eigenvalues[k]` expressed in the tridiagonal basis.
///
/// # Errors
///
/// Returns [`EigenError::InvalidParameter`] on length mismatch and
/// [`EigenError::NotConverged`] if an eigenvalue needs more than 50 QL
/// iterations (practically unreachable).
///
/// # Example
///
/// ```
/// use sass_eigen::tridiag::tridiagonal_eig;
///
/// # fn main() -> Result<(), sass_eigen::EigenError> {
/// // [[2, -1], [-1, 2]] has eigenvalues 1 and 3.
/// let (vals, _) = tridiagonal_eig(&[2.0, 2.0], &[-1.0])?;
/// assert!((vals[0] - 1.0).abs() < 1e-12);
/// assert!((vals[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn tridiagonal_eig(alpha: &[f64], beta: &[f64]) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
    let n = alpha.len();
    if n == 0 {
        return Ok((Vec::new(), Vec::new()));
    }
    if beta.len() + 1 != n {
        return Err(EigenError::InvalidParameter {
            context: format!("beta length {} != alpha length {} - 1", beta.len(), n),
        });
    }
    let mut d = alpha.to_vec();
    // e is padded to length n with a trailing zero, as in the classic tqli.
    let mut e = beta.to_vec();
    e.push(0.0);
    let mut z = vec![vec![0.0; n]; n];
    for (i, row) in z.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find the first small off-diagonal beyond l.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(EigenError::NotConverged {
                    iterations: iter,
                    residual: e[l].abs(),
                });
            }
            // Implicit shift from the 2x2 trailing block.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                for row in z.iter_mut() {
                    f = row[i + 1];
                    row[i + 1] = s * row[i] + c * f;
                    row[i] = c * row[i] - s * f;
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].partial_cmp(&d[j]).expect("finite eigenvalues"));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let eigenvectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&col| (0..n).map(|row| z[row][col]).collect())
        .collect();
    Ok((eigenvalues, eigenvectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::dense_symmetric_eig;

    #[test]
    fn matches_jacobi_on_random_tridiagonal() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 24;
        let alpha: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let beta: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (vals, vecs) = tridiagonal_eig(&alpha, &beta).unwrap();

        let mut dense = vec![vec![0.0; n]; n];
        for i in 0..n {
            dense[i][i] = alpha[i];
            if i + 1 < n {
                dense[i][i + 1] = beta[i];
                dense[i + 1][i] = beta[i];
            }
        }
        let (jvals, _) = dense_symmetric_eig(&dense).unwrap();
        for (a, b) in vals.iter().zip(&jvals) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // Residual check: T s = λ s.
        for (lam, s) in vals.iter().zip(&vecs) {
            for i in 0..n {
                let mut ts = alpha[i] * s[i];
                if i > 0 {
                    ts += beta[i - 1] * s[i - 1];
                }
                if i + 1 < n {
                    ts += beta[i] * s[i + 1];
                }
                assert!((ts - lam * s[i]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn laplacian_path_spectrum() {
        // Path-graph Laplacian is tridiagonal: diag [1,2,...,2,1], off -1.
        let n = 12;
        let mut alpha = vec![2.0; n];
        alpha[0] = 1.0;
        alpha[n - 1] = 1.0;
        let beta = vec![-1.0; n - 1];
        let (vals, _) = tridiagonal_eig(&alpha, &beta).unwrap();
        for (k, &v) in vals.iter().enumerate() {
            let exact = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / n as f64).cos();
            assert!((v - exact).abs() < 1e-10);
        }
    }

    #[test]
    fn single_element() {
        let (vals, vecs) = tridiagonal_eig(&[5.0], &[]).unwrap();
        assert_eq!(vals, vec![5.0]);
        assert_eq!(vecs, vec![vec![1.0]]);
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(tridiagonal_eig(&[1.0, 2.0], &[]).is_err());
    }
}
