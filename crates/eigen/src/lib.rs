//! Eigensolvers for graph Laplacians and generalized Laplacian pencils.
//!
//! This crate stands in for the dense/sparse eigensolvers the paper calls
//! out to (Matlab `eigs`, i.e. ARPACK): everything is built from scratch on
//! top of the [`sass_sparse::LinearOperator`] abstraction (the substrate
//! trait; this crate reaches into `sass_solver` only where an actual
//! factorized solve is needed — the `L⁺` and pencil operators):
//!
//! - [`jacobi::dense_symmetric_eig`]: cyclic Jacobi rotations — the ground
//!   truth for validation on small matrices,
//! - [`tridiag::tridiagonal_eig`]: implicit-shift QL for the tridiagonal
//!   matrices produced by Lanczos,
//! - [`lanczos`]: symmetric Lanczos with full reorthogonalization, for the
//!   extreme eigenpairs of large sparse operators (`eigs` replacement),
//! - [`power`]: (deflated) power iteration,
//! - [`pencil`]: the generalized pencil `L_P⁺ L_G` as an operator —
//!   generalized power iterations, Rayleigh quotients and a dense
//!   generalized eigensolver for validation,
//! - [`fiedler`]: Fiedler-vector computation by inverse power iteration
//!   with either exact (direct) or PCG-preconditioned solves — the engine
//!   of the paper's Table 3 spectral partitioner.
//!
//! # Example
//!
//! Smallest nontrivial Laplacian eigenvalue of a path graph (analytically
//! `2 − 2cos(π/n)`):
//!
//! ```
//! use sass_graph::Graph;
//! use sass_eigen::fiedler::{fiedler_vector_direct, FiedlerOptions};
//!
//! # fn main() -> Result<(), sass_eigen::EigenError> {
//! let g = Graph::from_edges(8, &(0..7).map(|i| (i, i + 1, 1.0)).collect::<Vec<_>>())?;
//! let (lambda2, v) = fiedler_vector_direct(&g.laplacian(), Default::default(),
//!                                          &FiedlerOptions::default())?;
//! let exact = 2.0 - 2.0 * (std::f64::consts::PI / 8.0).cos();
//! assert!((lambda2 - exact).abs() < 1e-6);
//! assert_eq!(v.len(), 8);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod error;

pub mod fiedler;
pub mod jacobi;
pub mod lanczos;
pub mod pencil;
pub mod power;
pub mod tridiag;

pub use error::EigenError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EigenError>;
