use std::error::Error;
use std::fmt;

/// Errors produced by the eigensolvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EigenError {
    /// An underlying solver operation failed.
    Solver(sass_solver::SolverError),
    /// An underlying graph operation failed.
    Graph(sass_graph::GraphError),
    /// An iteration failed to converge within its budget.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Last observed residual / change measure.
        residual: f64,
    },
    /// Invalid request (e.g. more eigenpairs than the dimension).
    InvalidParameter {
        /// Description of the bad parameter.
        context: String,
    },
}

impl fmt::Display for EigenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EigenError::Solver(e) => write!(f, "solver error: {e}"),
            EigenError::Graph(e) => write!(f, "graph error: {e}"),
            EigenError::NotConverged {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "no convergence after {iterations} iterations (residual {residual:.3e})"
                )
            }
            EigenError::InvalidParameter { context } => write!(f, "invalid parameter: {context}"),
        }
    }
}

impl Error for EigenError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EigenError::Solver(e) => Some(e),
            EigenError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sass_solver::SolverError> for EigenError {
    fn from(e: sass_solver::SolverError) -> Self {
        EigenError::Solver(e)
    }
}

impl From<sass_graph::GraphError> for EigenError {
    fn from(e: sass_graph::GraphError) -> Self {
        EigenError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = EigenError::NotConverged {
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("10"));
        let s: EigenError = sass_solver::SolverError::GroundedSingular.into();
        assert!(s.source().is_some());
    }
}
