//! (Deflated) power iteration.

use crate::{EigenError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sass_sparse::{dense, LinearOperator};

/// Options for [`power_iteration`].
#[derive(Debug, Clone, PartialEq)]
pub struct PowerOptions {
    /// Iteration cap.
    pub max_iter: usize,
    /// Relative change in the eigenvalue estimate at which to stop.
    pub tol: f64,
    /// Seed of the random start vector.
    pub seed: u64,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions {
            max_iter: 200,
            tol: 1e-9,
            seed: 0xbeef,
        }
    }
}

/// Power iteration for the largest eigenpair of a symmetric operator.
///
/// With `deflate_constant`, iterates are kept orthogonal to the all-ones
/// vector (for singular Laplacians). Returns `(eigenvalue, unit vector)`.
/// The estimate is the Rayleigh quotient of the final iterate, so it is
/// always a *lower* bound for the true largest eigenvalue.
///
/// # Errors
///
/// Returns [`EigenError::InvalidParameter`] for a zero-dimensional operator.
/// A run that hits `max_iter` without meeting `tol` returns the current
/// estimate (power iterations degrade gracefully; callers that need
/// certainty use [`crate::lanczos`]).
///
/// # Example
///
/// ```
/// use sass_eigen::power::{power_iteration, PowerOptions};
/// use sass_graph::Graph;
///
/// # fn main() -> Result<(), sass_eigen::EigenError> {
/// let g = Graph::from_edges(2, &[(0, 1, 1.0)])?;
/// let (lambda, _) = power_iteration(&g.laplacian(), true, &PowerOptions::default())?;
/// assert!((lambda - 2.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn power_iteration<A>(
    op: &A,
    deflate_constant: bool,
    opts: &PowerOptions,
) -> Result<(f64, Vec<f64>)>
where
    A: LinearOperator + ?Sized,
{
    let n = op.dim();
    if n == 0 {
        return Err(EigenError::InvalidParameter {
            context: "empty operator".to_string(),
        });
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    if deflate_constant {
        dense::center(&mut x);
    }
    dense::normalize(&mut x);
    let mut y = vec![0.0; n];
    let mut lambda = 0.0f64;
    for _ in 0..opts.max_iter {
        op.apply(&x, &mut y);
        if deflate_constant {
            dense::center(&mut y);
        }
        let new_lambda = dense::dot(&x, &y);
        let norm = dense::norm2(&y);
        if norm == 0.0 {
            // x is in the nullspace; restart once with a new vector.
            x = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            if deflate_constant {
                dense::center(&mut x);
            }
            dense::normalize(&mut x);
            continue;
        }
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
        if (new_lambda - lambda).abs() <= opts.tol * new_lambda.abs().max(1e-300) {
            return Ok((new_lambda, x));
        }
        lambda = new_lambda;
    }
    Ok((lambda, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::{csr_to_dense, dense_symmetric_eig};
    use sass_graph::generators::{grid2d, WeightModel};

    #[test]
    fn matches_jacobi_largest() {
        let g = grid2d(6, 6, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 4);
        let l = g.laplacian();
        let (lambda, v) = power_iteration(&l, true, &PowerOptions::default()).unwrap();
        let (jvals, _) = dense_symmetric_eig(&csr_to_dense(&l)).unwrap();
        let exact = *jvals.last().unwrap();
        assert!((lambda - exact).abs() < 1e-5 * exact, "{lambda} vs {exact}");
        assert!((dense::norm2(&v) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn estimate_is_lower_bound() {
        let g = grid2d(8, 8, WeightModel::Unit, 0);
        let l = g.laplacian();
        let opts = PowerOptions {
            max_iter: 5,
            ..Default::default()
        };
        let (lambda, _) = power_iteration(&l, true, &opts).unwrap();
        let (jvals, _) = dense_symmetric_eig(&csr_to_dense(&l)).unwrap();
        assert!(lambda <= *jvals.last().unwrap() + 1e-9);
        assert!(lambda > 0.0);
    }

    #[test]
    fn deterministic() {
        let g = grid2d(5, 4, WeightModel::Unit, 0);
        let l = g.laplacian();
        let a = power_iteration(&l, true, &PowerOptions::default()).unwrap();
        let b = power_iteration(&l, true, &PowerOptions::default()).unwrap();
        assert_eq!(a.0, b.0);
    }
}
