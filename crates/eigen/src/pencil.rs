//! The generalized Laplacian pencil `L_G u = λ L_P u` as a linear operator.
//!
//! Spectral similarity between a graph `G` and its sparsifier `P` is the
//! spread of the generalized eigenvalues of the pencil `(L_G, L_P)` (paper
//! §2). This module provides:
//!
//! - [`GeneralizedPencil`]: the operator `x ↦ L_P⁺ L_G x` (one sparse solve
//!   per application) whose eigenvalues are exactly those of the pencil,
//! - [`GeneralizedPencil::power_max`]: generalized power iterations for
//!   `λ_max` (paper §3.6.1),
//! - [`dense_generalized_eigenvalues`]: a dense reference solver for
//!   validation on small graphs.

// Dense kernels read more clearly with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::jacobi::dense_symmetric_eig;
use crate::{EigenError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sass_solver::{GroundedScratch, GroundedSolver};
use sass_sparse::{dense, CsrMatrix, DenseBlock, LinearOperator};
use std::cell::RefCell;

/// The operator `x ↦ L_P⁺ L_G x`, restricted to mean-zero vectors.
///
/// Self-adjoint in the `L_P` inner product, so power iterations with the
/// generalized Rayleigh quotient `(xᵀ L_G x)/(xᵀ L_P x)` converge to the
/// extreme generalized eigenvalues.
///
/// # Example
///
/// ```
/// use sass_eigen::pencil::GeneralizedPencil;
/// use sass_graph::Graph;
/// use sass_solver::GroundedSolver;
///
/// # fn main() -> Result<(), sass_eigen::EigenError> {
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])?;
/// let lg = g.laplacian();
/// // P = G: every generalized eigenvalue is 1.
/// let solver = GroundedSolver::new(&lg, Default::default())
///     .map_err(sass_eigen::EigenError::from)?;
/// let pencil = GeneralizedPencil::new(&lg, &lg, &solver);
/// let (lmax, _) = pencil.power_max(20, 7);
/// assert!((lmax - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GeneralizedPencil<'a> {
    lg: &'a CsrMatrix,
    lp: &'a CsrMatrix,
    solver: &'a GroundedSolver,
    // `L_G x` staging buffer plus solver scratch, reused across
    // applications so power iterations allocate nothing per step.
    scratch: RefCell<(Vec<f64>, GroundedScratch)>,
}

impl<'a> GeneralizedPencil<'a> {
    /// Builds the pencil operator from the two Laplacians and a grounded
    /// factorization of `lp`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn new(lg: &'a CsrMatrix, lp: &'a CsrMatrix, solver: &'a GroundedSolver) -> Self {
        assert_eq!(lg.nrows(), lp.nrows(), "pencil: dimension mismatch");
        assert_eq!(lg.nrows(), solver.n(), "pencil: solver dimension mismatch");
        let scratch = RefCell::new((vec![0.0; lg.nrows()], GroundedScratch::new()));
        GeneralizedPencil {
            lg,
            lp,
            solver,
            scratch,
        }
    }

    /// The original-graph Laplacian.
    pub fn lg(&self) -> &CsrMatrix {
        self.lg
    }

    /// The sparsifier Laplacian.
    pub fn lp(&self) -> &CsrMatrix {
        self.lp
    }

    /// Generalized Rayleigh quotient `(xᵀ L_G x) / (xᵀ L_P x)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the dimension.
    pub fn rayleigh(&self, x: &[f64]) -> f64 {
        let num = self.lg.quad_form(x);
        let den = self.lp.quad_form(x);
        num / den.max(f64::MIN_POSITIVE)
    }

    /// `t`-step generalized power iteration from a seeded random vector;
    /// returns the Rayleigh-quotient estimate of `λ_max` and the iterate.
    ///
    /// Fewer than ten steps already give a good estimate because the top
    /// eigenvalues of spanning-tree pencils are well separated
    /// (Spielman–Woo); the estimate is a lower bound on the true `λ_max`.
    pub fn power_max(&self, t: usize, seed: u64) -> (f64, Vec<f64>) {
        let n = self.lg.nrows();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        dense::center(&mut x);
        dense::normalize(&mut x);
        let mut y = vec![0.0; n];
        for _ in 0..t {
            self.apply(&x, &mut y);
            std::mem::swap(&mut x, &mut y);
            if dense::normalize(&mut x) == 0.0 {
                // Nullspace hit (can only happen for degenerate inputs).
                x = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                dense::center(&mut x);
                dense::normalize(&mut x);
            }
        }
        (self.rayleigh(&x), x)
    }

    /// Multi-probe generalized power iteration: advances `probes` random
    /// start vectors *side by side* as one [`DenseBlock`], so every step
    /// streams the sparsifier factor once per block
    /// ([`GroundedSolver::solve_block_into_scratch`]) instead of once per
    /// probe. Returns the best Rayleigh-quotient estimate over the probes
    /// and its iterate — still a lower bound on `λ_max`, but with the
    /// single-probe risk of starting orthogonal to the dominant eigenvector
    /// driven down exponentially in `probes`.
    ///
    /// `power_max_block(t, 1, seed)` follows the same trajectory as
    /// [`GeneralizedPencil::power_max`] `(t, seed)`.
    pub fn power_max_block(&self, t: usize, probes: usize, seed: u64) -> (f64, Vec<f64>) {
        let n = self.lg.nrows();
        let probes = probes.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = DenseBlock::zeros(n, probes);
        for col in x.columns_mut() {
            for v in col.iter_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
            dense::center(col);
            dense::normalize(col);
        }
        let mut y = DenseBlock::zeros(n, probes);
        let mut scratch = GroundedScratch::new();
        for _ in 0..t {
            for (xc, yc) in x.columns().zip(y.columns_mut()) {
                self.lg.apply(xc, yc);
            }
            self.solver
                .solve_block_into_scratch(&y, &mut x, &mut scratch);
            for col in x.columns_mut() {
                if dense::normalize(col) == 0.0 {
                    // Nullspace hit (degenerate input): restart this probe.
                    for v in col.iter_mut() {
                        *v = rng.gen_range(-1.0..1.0);
                    }
                    dense::center(col);
                    dense::normalize(col);
                }
            }
        }
        let (mut best_val, mut best_col) = (f64::NEG_INFINITY, 0);
        for (c, col) in x.columns().enumerate() {
            let r = self.rayleigh(col);
            if r > best_val {
                best_val = r;
                best_col = c;
            }
        }
        (best_val, x.col(best_col).to_vec())
    }
}

impl LinearOperator for GeneralizedPencil<'_> {
    fn dim(&self) -> usize {
        self.lg.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let (tmp, grounded) = &mut *self.scratch.borrow_mut();
        self.lg.apply(x, tmp);
        self.solver.solve_into_scratch(tmp, y, grounded);
    }
}

/// All `n − 1` nontrivial generalized eigenvalues of `(L_G, L_P)` by dense
/// reduction — for validation on small graphs (`n ≲ 200`).
///
/// Both Laplacians are grounded at vertex 0 (exact for connected graphs:
/// quadratic forms are invariant along the shared all-ones nullspace), the
/// grounded `B` is Cholesky-factorized densely, and the symmetric standard
/// problem `L⁻¹ A L⁻ᵀ` is solved by Jacobi. Eigenvalues come back ascending.
///
/// # Errors
///
/// Returns [`EigenError::InvalidParameter`] for mismatched dimensions or a
/// non-positive-definite grounded `lp` (disconnected sparsifier).
pub fn dense_generalized_eigenvalues(lg: &CsrMatrix, lp: &CsrMatrix) -> Result<Vec<f64>> {
    if lg.nrows() != lp.nrows() || lg.nrows() != lg.ncols() || lp.nrows() != lp.ncols() {
        return Err(EigenError::InvalidParameter {
            context: "pencil matrices must be square with equal sizes".to_string(),
        });
    }
    let n = lg.nrows();
    if n <= 1 {
        return Ok(Vec::new());
    }
    let m = n - 1;
    // Grounded dense copies (drop row/col 0).
    let mut a = vec![vec![0.0; m]; m];
    let mut b = vec![vec![0.0; m]; m];
    for i in 1..n {
        let (cols, vals) = lg.row(i);
        for (c, v) in cols.iter().zip(vals) {
            if *c as usize >= 1 {
                a[i - 1][*c as usize - 1] = *v;
            }
        }
        let (cols, vals) = lp.row(i);
        for (c, v) in cols.iter().zip(vals) {
            if *c as usize >= 1 {
                b[i - 1][*c as usize - 1] = *v;
            }
        }
    }
    // Dense Cholesky B = L Lᵀ.
    let mut l = vec![vec![0.0; m]; m];
    for i in 0..m {
        for j in 0..=i {
            let mut s = b[i][j];
            for k in 0..j {
                s -= l[i][k] * l[j][k];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(EigenError::InvalidParameter {
                        context: "grounded L_P is not positive definite (disconnected sparsifier?)"
                            .to_string(),
                    });
                }
                l[i][j] = s.sqrt();
            } else {
                l[i][j] = s / l[j][j];
            }
        }
    }
    // C = L⁻¹ A L⁻ᵀ: first W = L⁻¹ A (forward solves per column), then
    // C = W L⁻ᵀ i.e. Cᵀ = L⁻¹ Wᵀ.
    let mut w = vec![vec![0.0; m]; m];
    for col in 0..m {
        // Solve L y = A[:, col].
        for i in 0..m {
            let mut s = a[i][col];
            for k in 0..i {
                s -= l[i][k] * w[k][col];
            }
            w[i][col] = s / l[i][i];
        }
    }
    let mut c = vec![vec![0.0; m]; m];
    for row in 0..m {
        // Solve L z = W[row, :]ᵀ; then C[row, :] = zᵀ.
        for i in 0..m {
            let mut s = w[row][i];
            for k in 0..i {
                s -= l[i][k] * c[row][k];
            }
            c[row][i] = s / l[i][i];
        }
    }
    // Symmetrize roundoff and diagonalize.
    for i in 0..m {
        for j in (i + 1)..m {
            let avg = 0.5 * (c[i][j] + c[j][i]);
            c[i][j] = avg;
            c[j][i] = avg;
        }
    }
    let (vals, _) = dense_symmetric_eig(&c)?;
    Ok(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_graph::generators::{grid2d, WeightModel};
    use sass_graph::{spanning, Graph, RootedTree};
    use sass_sparse::ordering::OrderingKind;

    #[test]
    fn identical_graphs_have_unit_spectrum() {
        let g = grid2d(4, 4, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
        let l = g.laplacian();
        let vals = dense_generalized_eigenvalues(&l, &l).unwrap();
        for v in vals {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn subgraph_pencil_eigenvalues_at_least_one() {
        let g = grid2d(5, 4, WeightModel::Unit, 3);
        let tree_ids = spanning::max_weight_spanning_tree(&g).unwrap();
        let p = g.subgraph_with_edges(tree_ids.iter().copied());
        let vals = dense_generalized_eigenvalues(&g.laplacian(), &p.laplacian()).unwrap();
        for v in &vals {
            assert!(*v >= 1.0 - 1e-9, "eigenvalue {v} below 1");
        }
    }

    #[test]
    fn trace_equals_total_stretch_for_tree() {
        // Trace(L_T^+ L_G) = st_T(G) (paper Eq. 4).
        let g = grid2d(4, 5, WeightModel::Uniform { lo: 0.3, hi: 3.0 }, 9);
        let tree_ids = spanning::max_weight_spanning_tree(&g).unwrap();
        let tree = RootedTree::new(&g, tree_ids.clone(), 0).unwrap();
        let stats = sass_graph::stretch::stretch_stats(&g, &tree).unwrap();
        let p = g.subgraph_with_edges(tree_ids.iter().copied());
        let vals = dense_generalized_eigenvalues(&g.laplacian(), &p.laplacian()).unwrap();
        let trace: f64 = vals.iter().sum();
        assert!(
            (trace - stats.total).abs() < 1e-7 * stats.total,
            "trace {trace} vs total stretch {}",
            stats.total
        );
    }

    #[test]
    fn power_max_approaches_dense_lambda_max() {
        let g = grid2d(5, 5, WeightModel::Unit, 2);
        let tree_ids = spanning::max_weight_spanning_tree(&g).unwrap();
        let p = g.subgraph_with_edges(tree_ids.iter().copied());
        let lg = g.laplacian();
        let lp = p.laplacian();
        let solver = GroundedSolver::new(&lp, OrderingKind::MinDegree).unwrap();
        let pencil = GeneralizedPencil::new(&lg, &lp, &solver);
        let (est, _) = pencil.power_max(10, 3);
        let vals = dense_generalized_eigenvalues(&lg, &lp).unwrap();
        let exact = *vals.last().unwrap();
        assert!(est <= exact + 1e-9, "estimate must be a lower bound");
        assert!(est > 0.85 * exact, "estimate {est} too far below {exact}");
    }

    #[test]
    fn rayleigh_of_generalized_eigenvector_is_eigenvalue() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)]).unwrap();
        let lg = g.laplacian();
        let tree = g.subgraph_with_edges([0u32, 2, 3]);
        let lp = tree.laplacian();
        let solver = GroundedSolver::new(&lp, OrderingKind::Natural).unwrap();
        let pencil = GeneralizedPencil::new(&lg, &lp, &solver);
        let (lmax, v) = pencil.power_max(50, 1);
        assert!((pencil.rayleigh(&v) - lmax).abs() < 1e-12);
    }

    #[test]
    fn power_max_block_bounds_and_beats_single_probe() {
        let g = grid2d(6, 5, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 4);
        let tree_ids = spanning::max_weight_spanning_tree(&g).unwrap();
        let p = g.subgraph_with_edges(tree_ids.iter().copied());
        let lg = g.laplacian();
        let lp = p.laplacian();
        let solver = GroundedSolver::new(&lp, OrderingKind::MinDegree).unwrap();
        let pencil = GeneralizedPencil::new(&lg, &lp, &solver);
        let vals = dense_generalized_eigenvalues(&lg, &lp).unwrap();
        let exact = *vals.last().unwrap();
        // One probe through the blocked path follows the scalar trajectory.
        let (single, _) = pencil.power_max(8, 11);
        let (block1, _) = pencil.power_max_block(8, 1, 11);
        assert!((single - block1).abs() < 1e-12, "{single} vs {block1}");
        // More probes: still a lower bound, and no worse than the best
        // probe run individually (it *is* the max over those runs).
        let (multi, v) = pencil.power_max_block(8, 6, 11);
        assert!(multi <= exact + 1e-9);
        assert!(multi >= block1 - 1e-12);
        assert!((pencil.rayleigh(&v) - multi).abs() < 1e-12);
    }

    #[test]
    fn rejects_mismatched_sizes() {
        let g2 = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let g3 = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(dense_generalized_eigenvalues(&g2.laplacian(), &g3.laplacian()).is_err());
    }
}
