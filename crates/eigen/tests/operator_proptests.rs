//! Property-based tests for the operator layer hoisted into `sass-sparse`:
//! every [`LinearOperator`] in the workspace — the stored [`CsrMatrix`], the
//! factorized [`PseudoinverseOp`], and the composed [`GeneralizedPencil`] —
//! must agree with a dense ground truth on randomized inputs.

use proptest::prelude::*;
use sass_eigen::lanczos::PseudoinverseOp;
use sass_eigen::pencil::GeneralizedPencil;
use sass_graph::Graph;
use sass_solver::GroundedSolver;
use sass_sparse::{dense, LinearOperator};

/// Strategy: a connected weighted graph on `n in [3, 20]` vertices — a
/// random spanning tree plus random extra edges.
fn connected_graph() -> impl Strategy<Value = Graph> {
    (3usize..20).prop_flat_map(|n| {
        let tree_weights = proptest::collection::vec(0.1f64..10.0, n - 1);
        let extra = proptest::collection::vec((0usize..n, 0usize..n, 0.1f64..10.0), 0..2 * n);
        (Just(n), tree_weights, extra).prop_map(|(n, tw, extra)| {
            let mut edges: Vec<(usize, usize, f64)> = tw
                .iter()
                .enumerate()
                .map(|(i, &w)| (i, (i + 1) % n.max(2), w))
                .collect();
            for &(u, v, w) in &extra {
                if u != v {
                    edges.push((u.min(v), u.max(v), w));
                }
            }
            Graph::from_edges(n, &edges).expect("valid edge list")
        })
    })
}

/// Dense reference product `A x` from the CSR's dense image.
fn dense_mul(a: &sass_sparse::CsrMatrix, x: &[f64]) -> Vec<f64> {
    let d = a.to_dense();
    d.iter()
        .map(|row| row.iter().zip(x).map(|(aij, xj)| aij * xj).sum())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_operator_apply_matches_dense(g in connected_graph(), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let l = g.laplacian();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..g.n()).map(|_| rng.gen_range(-2.0..2.0)).collect();
        // Through the LinearOperator route (hits the parallel dispatch).
        let y = l.apply_vec(&x);
        let want = dense_mul(&l, &x);
        for (yi, wi) in y.iter().zip(&want) {
            prop_assert!((yi - wi).abs() < 1e-10 * wi.abs().max(1.0),
                         "{yi} vs {wi}");
        }
    }

    #[test]
    fn pseudoinverse_op_is_a_laplacian_pseudoinverse(g in connected_graph(), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let l = g.laplacian();
        let solver = GroundedSolver::new(&l, Default::default()).unwrap();
        let op = PseudoinverseOp::new(&solver);
        prop_assert_eq!(op.dim(), g.n());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b: Vec<f64> = (0..g.n()).map(|_| rng.gen_range(-2.0..2.0)).collect();
        dense::center(&mut b);
        // x = L⁺ b must be mean-zero and satisfy L x = b.
        let x = op.apply_vec(&b);
        prop_assert!(dense::mean(&x).abs() < 1e-9);
        let lx = l.apply_vec(&x);
        for (li, bi) in lx.iter().zip(&b) {
            prop_assert!((li - bi).abs() < 1e-7, "{li} vs {bi}");
        }
        // Applying through the operator twice reuses scratch; results must
        // be identical across calls (no state leakage).
        prop_assert_eq!(op.apply_vec(&b), x);
    }

    #[test]
    fn generalized_pencil_matches_dense_composition(g in connected_graph(), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let lg = g.laplacian();
        // P: the same topology with uniformly rescaled weights, so the
        // pencil is well-conditioned and nontrivial.
        let mut lp = lg.clone();
        for v in lp.data_mut() {
            *v *= 2.0;
        }
        let solver = GroundedSolver::new(&lp, Default::default()).unwrap();
        let pencil = GeneralizedPencil::new(&lg, &lp, &solver);
        prop_assert_eq!(pencil.dim(), g.n());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut x: Vec<f64> = (0..g.n()).map(|_| rng.gen_range(-2.0..2.0)).collect();
        dense::center(&mut x);
        // y = L_P⁺ L_G x must be mean-zero and satisfy L_P y = center(L_G x).
        let y = pencil.apply_vec(&x);
        prop_assert!(dense::mean(&y).abs() < 1e-9);
        let lgx = dense_mul(&lg, &x);
        let lpy = dense_mul(&lp, &y);
        for (ai, bi) in lpy.iter().zip(&lgx) {
            prop_assert!((ai - bi).abs() < 1e-7, "{ai} vs {bi}");
        }
        // With L_P = 2 L_G the pencil is exactly (1/2)·I on mean-zero
        // vectors — a closed-form ground truth.
        for (yi, xi) in y.iter().zip(&x) {
            prop_assert!((yi - xi / 2.0).abs() < 1e-8, "{yi} vs {}", xi / 2.0);
        }
    }
}
