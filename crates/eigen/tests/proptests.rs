//! Property-based tests for the eigensolvers: agreement between the
//! independent algorithms (Jacobi, tridiagonal QL, Lanczos, power
//! iteration) over randomized symmetric operators.

use proptest::prelude::*;
use sass_eigen::jacobi::dense_symmetric_eig;
use sass_eigen::lanczos::{lanczos_largest, LanczosOptions};
use sass_eigen::power::{power_iteration, PowerOptions};
use sass_eigen::tridiag::tridiagonal_eig;
use sass_sparse::{CooMatrix, CsrMatrix};

/// Random dense symmetric matrix of size `n in [2, 16]` as CSR.
fn symmetric_matrix() -> impl Strategy<Value = CsrMatrix> {
    (2usize..16).prop_flat_map(|n| {
        proptest::collection::vec(-2.0f64..2.0, n * (n + 1) / 2).prop_map(move |vals| {
            let mut coo = CooMatrix::new(n, n);
            let mut k = 0;
            for i in 0..n {
                for j in i..n {
                    let v = vals[k];
                    k += 1;
                    if v.abs() > 0.05 {
                        coo.push_sym(i, j, v);
                    } else if i == j {
                        coo.push(i, i, 0.0);
                    }
                }
            }
            coo.to_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn jacobi_eigenvalues_sum_to_trace(a in symmetric_matrix()) {
        let dense = a.to_dense();
        let trace: f64 = (0..a.nrows()).map(|i| dense[i][i]).sum();
        let (vals, _) = dense_symmetric_eig(&dense).unwrap();
        let sum: f64 = vals.iter().sum();
        prop_assert!((sum - trace).abs() < 1e-9 * trace.abs().max(1.0),
                     "eigenvalue sum {} vs trace {}", sum, trace);
    }

    #[test]
    fn jacobi_eigenvectors_diagonalize(a in symmetric_matrix()) {
        let dense = a.to_dense();
        let n = a.nrows();
        let (vals, vecs) = dense_symmetric_eig(&dense).unwrap();
        for (lam, v) in vals.iter().zip(&vecs) {
            for i in 0..n {
                let avi: f64 = (0..n).map(|j| dense[i][j] * v[j]).sum();
                prop_assert!((avi - lam * v[i]).abs() < 1e-8,
                             "residual at row {}: {} vs {}", i, avi, lam * v[i]);
            }
        }
    }

    #[test]
    fn tridiagonal_matches_jacobi(
        alpha in proptest::collection::vec(-2.0f64..2.0, 2..20),
    ) {
        let n = alpha.len();
        let beta: Vec<f64> = (0..n - 1).map(|i| 0.5 + 0.1 * (i as f64)).collect();
        let (tvals, _) = tridiagonal_eig(&alpha, &beta).unwrap();
        let mut dense = vec![vec![0.0; n]; n];
        for i in 0..n {
            dense[i][i] = alpha[i];
            if i + 1 < n {
                dense[i][i + 1] = beta[i];
                dense[i + 1][i] = beta[i];
            }
        }
        let (jvals, _) = dense_symmetric_eig(&dense).unwrap();
        for (t, j) in tvals.iter().zip(&jvals) {
            prop_assert!((t - j).abs() < 1e-8, "{} vs {}", t, j);
        }
    }

    #[test]
    fn lanczos_top_pair_matches_jacobi_on_psd(a in symmetric_matrix()) {
        // Shift to PSD so the largest eigenvalue is well defined for the
        // power-style methods: B = A + (|A|_inf + 1) I.
        let n = a.nrows();
        let dense = a.to_dense();
        let shift = dense.iter().flatten().map(|v| v.abs()).fold(0.0, f64::max) * n as f64 + 1.0;
        let mut coo = a.to_coo();
        for i in 0..n {
            coo.push(i, i, shift);
        }
        let b = coo.to_csr();
        let (jvals, _) = dense_symmetric_eig(&b.to_dense()).unwrap();
        let exact = *jvals.last().unwrap();
        let res = lanczos_largest(&b, 1, false, &LanczosOptions::default()).unwrap();
        prop_assert!((res.eigenvalues[0] - exact).abs() < 1e-6 * exact.abs().max(1.0),
                     "lanczos {} vs jacobi {}", res.eigenvalues[0], exact);
        let (p_lam, _) = power_iteration(&b, false, &PowerOptions {
            max_iter: 2000, tol: 1e-12, seed: 3,
        }).unwrap();
        // Power iteration can stall at a lower eigenvalue only if the start
        // vector is orthogonal to the top eigenvector (measure zero); allow
        // slightly looser agreement.
        prop_assert!(p_lam <= exact + 1e-9);
        prop_assert!(p_lam >= 0.9 * exact, "power {} vs exact {}", p_lam, exact);
    }
}
