//! Extreme generalized eigenvalue estimation (paper §3.6).
//!
//! - `λmax` of `L_P⁺ L_G`: a handful of generalized power iterations — fast
//!   because the top eigenvalues of spanning-tree-like pencils are well
//!   separated (Spielman–Woo). The Rayleigh-quotient estimate is a lower
//!   bound on the true value.
//! - `λmin`: inverse iterations are hopeless (the small eigenvalues crowd
//!   together), so the paper restricts the Courant–Fischer minimization to
//!   two-colorings `x ∈ {0,1}^V` and relaxes further to single-vertex
//!   indicators, giving `λ̃min = min_p L_G(p,p)/L_P(p,p)` — the minimum
//!   weighted-degree ratio, an upper bound on the true `λmin` that is exact
//!   when some vertex keeps all its edges in the sparsifier.

use sass_eigen::pencil::GeneralizedPencil;
use sass_graph::Graph;
use sass_solver::GroundedSolver;
use sass_sparse::CsrMatrix;

/// Estimated extreme generalized eigenvalues of `(L_G, L_P)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtremeEstimates {
    /// Power-iteration estimate of `λmax` (a lower bound).
    pub lambda_max: f64,
    /// Degree-ratio estimate of `λmin` (an upper bound, always ≥ 1 for
    /// subgraph sparsifiers).
    pub lambda_min: f64,
}

impl ExtremeEstimates {
    /// The implied relative-condition-number estimate `λmax/λmin`.
    pub fn condition(&self) -> f64 {
        self.lambda_max / self.lambda_min
    }
}

/// Estimates `λmax` by `iters` generalized power iterations (paper §3.6.1).
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn estimate_lambda_max(
    lg: &CsrMatrix,
    lp: &CsrMatrix,
    solver_p: &GroundedSolver,
    iters: usize,
    seed: u64,
) -> f64 {
    let pencil = GeneralizedPencil::new(lg, lp, solver_p);
    pencil.power_max(iters, seed).0
}

/// Multi-probe variant of [`estimate_lambda_max`]: `probes` generalized
/// power iterations advance side by side through the blocked grounded
/// solver (one factor sweep per block of probes, the sweeps themselves
/// level-parallel over the factor's elimination tree past the crossover),
/// and the best Rayleigh quotient is returned. Still a lower bound on
/// `λmax`; extra probes shrink the chance of a start vector nearly
/// orthogonal to the dominant eigenvector, at far less than `probes`× the
/// cost of the single-probe estimator.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn estimate_lambda_max_probes(
    lg: &CsrMatrix,
    lp: &CsrMatrix,
    solver_p: &GroundedSolver,
    iters: usize,
    probes: usize,
    seed: u64,
) -> f64 {
    let pencil = GeneralizedPencil::new(lg, lp, solver_p);
    pencil.power_max_block(iters, probes, seed).0
}

/// Estimates `λmin` by the node-coloring bound
/// `min_p deg_G(p) / deg_P(p)` (paper §3.6.2, Eq. 18).
///
/// `p_weighted_degree[v]` must hold the sparsifier's weighted degrees.
///
/// # Panics
///
/// Panics if the slice length differs from `g.n()` or some sparsifier
/// degree is zero (the sparsifier must be spanning).
pub fn estimate_lambda_min(g: &Graph, p_weighted_degree: &[f64]) -> f64 {
    assert_eq!(
        p_weighted_degree.len(),
        g.n(),
        "degree vector length mismatch"
    );
    let mut best = f64::INFINITY;
    for (v, &dp) in p_weighted_degree.iter().enumerate() {
        assert!(dp > 0.0, "sparsifier leaves vertex {v} isolated");
        let ratio = g.weighted_degree(v) / dp;
        if ratio < best {
            best = ratio;
        }
    }
    best
}

/// Tightened `λmin` bound by greedy set growth over the paper's general
/// two-coloring relaxation (Eq. 17): starting from the best single vertex,
/// neighbors are greedily added to the indicator set `S` while the cut
/// ratio `cut_G(S)/cut_P(S)` decreases. Still an upper bound on the true
/// `λmin` (every `{0,1}` vector is admissible in Courant–Fischer), but can
/// be substantially tighter on dense graphs where no single vertex loses
/// much of its degree to sparsification.
///
/// `p` must be the sparsifier as a subgraph of the same vertex set.
///
/// # Panics
///
/// Panics if graph sizes disagree.
pub fn estimate_lambda_min_set(g: &Graph, p: &Graph, max_grow: usize) -> f64 {
    assert_eq!(g.n(), p.n(), "graph size mismatch");
    let n = g.n();
    // Seed: the best single vertex (Eq. 18).
    let mut seed = 0usize;
    let mut best = f64::INFINITY;
    for v in 0..n {
        let ratio = g.weighted_degree(v) / p.weighted_degree(v).max(f64::MIN_POSITIVE);
        if ratio < best {
            best = ratio;
            seed = v;
        }
    }
    // Greedy growth: maintain cut weights of S in both graphs; adding v
    // flips its incident edges (in-S neighbors leave the cut, out-of-S
    // neighbors join).
    let mut in_s = vec![false; n];
    in_s[seed] = true;
    let mut cut_g = g.weighted_degree(seed);
    let mut cut_p = p.weighted_degree(seed);
    let mut frontier: Vec<usize> = g.neighbors(seed).map(|(nbr, _, _)| nbr as usize).collect();
    for _ in 0..max_grow {
        let mut best_gain: Option<(usize, f64, f64, f64)> = None;
        for &v in &frontier {
            if in_s[v] {
                continue;
            }
            let mut dg_in = 0.0;
            for (nbr, _, w) in g.neighbors(v) {
                if in_s[nbr as usize] {
                    dg_in += w;
                }
            }
            let mut dp_in = 0.0;
            for (nbr, _, w) in p.neighbors(v) {
                if in_s[nbr as usize] {
                    dp_in += w;
                }
            }
            let new_cut_g = cut_g + g.weighted_degree(v) - 2.0 * dg_in;
            let new_cut_p = cut_p + p.weighted_degree(v) - 2.0 * dp_in;
            if new_cut_p <= 0.0 {
                continue; // S would swallow a whole component of P
            }
            let ratio = new_cut_g / new_cut_p;
            if best_gain.is_none_or(|(_, r, _, _)| ratio < r) {
                best_gain = Some((v, ratio, new_cut_g, new_cut_p));
            }
        }
        // Plateau walking: accept the best neighbor even when the ratio
        // temporarily worsens — the minimum over the walk is what counts
        // (every indicator set remains an admissible Courant–Fischer
        // vector, so the bound stays sound).
        match best_gain {
            Some((v, ratio, ncg, ncp)) => {
                in_s[v] = true;
                best = best.min(ratio);
                cut_g = ncg;
                cut_p = ncp;
                frontier.extend(
                    g.neighbors(v)
                        .map(|(nbr, _, _)| nbr as usize)
                        .filter(|&u| !in_s[u]),
                );
            }
            None => break,
        }
    }
    best
}

/// Independent post-hoc verification of a sparsifier: builds its own
/// factorization and re-estimates the extremes from scratch (fresh seed
/// stream), so the result does not share state with whatever produced `p`.
///
/// The returned [`ExtremeEstimates::condition`] is a *sound lower bound*
/// on the true `κ(L_G, L_P)` divided by at most the λmin overestimate —
/// i.e. if it exceeds the intended `σ²`, the sparsifier definitely missed
/// its target.
///
/// # Errors
///
/// Propagates factorization failure (disconnected sparsifier).
///
/// # Example
///
/// ```
/// use sass_core::{sparsify, SparsifyConfig};
/// use sass_core::extremes::verify_extremes;
/// use sass_graph::generators::{grid2d, WeightModel};
///
/// # fn main() -> Result<(), sass_core::CoreError> {
/// let g = grid2d(10, 10, WeightModel::Unit, 1);
/// let sp = sparsify(&g, &SparsifyConfig::new(100.0))?;
/// let check = verify_extremes(&g, sp.graph(), 12, 99)?;
/// assert!(check.condition() <= 100.0 * 1.5);
/// # Ok(())
/// # }
/// ```
pub fn verify_extremes(
    g: &Graph,
    p: &Graph,
    power_iters: usize,
    seed: u64,
) -> crate::Result<ExtremeEstimates> {
    /// Independent verification runs a few probes (blocked, so the factor
    /// sweep is shared) rather than trusting a single start vector.
    const VERIFY_PROBES: usize = 4;
    let lg = g.laplacian();
    let lp = p.laplacian();
    let solver = GroundedSolver::new(&lp, Default::default())?;
    let lambda_max =
        estimate_lambda_max_probes(&lg, &lp, &solver, power_iters, VERIFY_PROBES, seed);
    Ok(ExtremeEstimates {
        lambda_max,
        lambda_min: degree_ratio_lambda_min(g, p),
    })
}

/// The degree-ratio `λmin` bound for a sparsifier given as a subgraph —
/// the one way every estimator in this module derives `λmin`.
fn degree_ratio_lambda_min(g: &Graph, p: &Graph) -> f64 {
    let degrees: Vec<f64> = (0..p.n()).map(|v| p.weighted_degree(v)).collect();
    estimate_lambda_min(g, &degrees)
}

/// Convenience: both estimates for a sparsifier given as a subgraph `p`.
///
/// # Panics
///
/// Panics on dimension mismatches (see the individual estimators).
pub fn estimate_extremes(
    g: &Graph,
    p: &Graph,
    lg: &CsrMatrix,
    lp: &CsrMatrix,
    solver_p: &GroundedSolver,
    power_iters: usize,
    seed: u64,
) -> ExtremeEstimates {
    let lambda_max = estimate_lambda_max(lg, lp, solver_p, power_iters, seed);
    ExtremeEstimates {
        lambda_max,
        lambda_min: degree_ratio_lambda_min(g, p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_eigen::pencil::dense_generalized_eigenvalues;
    use sass_graph::generators::{fem_mesh2d, grid2d, WeightModel};
    use sass_graph::spanning;
    use sass_sparse::ordering::OrderingKind;

    fn tree_sparsifier(g: &Graph) -> Graph {
        let ids = spanning::max_weight_spanning_tree(g).unwrap();
        g.subgraph_with_edges(ids)
    }

    #[test]
    fn lambda_min_is_upper_bound_and_at_least_one() {
        let g = fem_mesh2d(7, 7, 3);
        let p = tree_sparsifier(&g);
        let degrees: Vec<f64> = (0..p.n()).map(|v| p.weighted_degree(v)).collect();
        let est = estimate_lambda_min(&g, &degrees);
        assert!(est >= 1.0);
        let vals = dense_generalized_eigenvalues(&g.laplacian(), &p.laplacian()).unwrap();
        let exact_min = vals[0];
        assert!(
            est >= exact_min - 1e-9,
            "degree-ratio estimate {est} below exact λmin {exact_min}"
        );
        // Paper Table 1 reports errors around 4-11%; on small meshes the
        // bound should stay in the same ballpark (allow a loose factor).
        assert!(
            est <= 2.0 * exact_min,
            "estimate {est} vs exact {exact_min}"
        );
    }

    #[test]
    fn lambda_max_is_lower_bound_and_close() {
        let g = grid2d(6, 6, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 8);
        let p = tree_sparsifier(&g);
        let lg = g.laplacian();
        let lp = p.laplacian();
        let solver = GroundedSolver::new(&lp, OrderingKind::MinDegree).unwrap();
        let est = estimate_lambda_max(&lg, &lp, &solver, 10, 5);
        let vals = dense_generalized_eigenvalues(&lg, &lp).unwrap();
        let exact = *vals.last().unwrap();
        assert!(est <= exact + 1e-9);
        // Paper Table 1: λmax errors of 2-6% with <10 iterations.
        assert!(
            est >= 0.85 * exact,
            "estimate {est} too far below exact {exact}"
        );
    }

    #[test]
    fn multi_probe_lambda_max_stays_a_lower_bound() {
        let g = grid2d(6, 6, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 8);
        let p = tree_sparsifier(&g);
        let lg = g.laplacian();
        let lp = p.laplacian();
        let solver = GroundedSolver::new(&lp, OrderingKind::MinDegree).unwrap();
        let exact = *dense_generalized_eigenvalues(&lg, &lp)
            .unwrap()
            .last()
            .unwrap();
        let single = estimate_lambda_max(&lg, &lp, &solver, 10, 5);
        let multi = estimate_lambda_max_probes(&lg, &lp, &solver, 10, 4, 5);
        assert!(multi <= exact + 1e-9, "multi-probe estimate exceeded λmax");
        // The blocked estimator's first probe is the single-probe run, so
        // taking the max can only help.
        assert!(multi >= single - 1e-12, "{multi} vs {single}");
    }

    #[test]
    fn identical_graphs_give_condition_one() {
        let g = grid2d(5, 5, WeightModel::Unit, 0);
        let lg = g.laplacian();
        let solver = GroundedSolver::new(&lg, OrderingKind::MinDegree).unwrap();
        let est = estimate_extremes(&g, &g, &lg, &lg, &solver, 10, 1);
        assert!((est.lambda_max - 1.0).abs() < 1e-9);
        assert!((est.lambda_min - 1.0).abs() < 1e-12);
        assert!((est.condition() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn set_estimate_tightens_single_vertex_bound_on_dense_graph() {
        // Dense geometric graph: the single-vertex bound is loose (every
        // vertex keeps its tree edges plus little else, but the *best* cut
        // separates a cluster). The set-grown bound must be at least as
        // tight and still above the exact lambda_min.
        let g = sass_graph::generators::random_geometric3d(220, 0.25, true, 7);
        let p = tree_sparsifier(&g);
        let degrees: Vec<f64> = (0..p.n()).map(|v| p.weighted_degree(v)).collect();
        let single = estimate_lambda_min(&g, &degrees);
        let grown = estimate_lambda_min_set(&g, &p, 24);
        assert!(
            grown <= single + 1e-12,
            "set bound {grown} worse than single {single}"
        );
        let vals = dense_generalized_eigenvalues(&g.laplacian(), &p.laplacian()).unwrap();
        assert!(
            grown >= vals[0] - 1e-9,
            "set bound {grown} below exact {}",
            vals[0]
        );
    }

    #[test]
    fn set_estimate_equals_single_when_growth_disabled() {
        let g = grid2d(6, 6, WeightModel::Unit, 1);
        let p = tree_sparsifier(&g);
        let degrees: Vec<f64> = (0..p.n()).map(|v| p.weighted_degree(v)).collect();
        let single = estimate_lambda_min(&g, &degrees);
        let grown = estimate_lambda_min_set(&g, &p, 0);
        assert!((single - grown).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn panics_on_isolated_vertex() {
        let g = grid2d(3, 3, WeightModel::Unit, 0);
        let mut degrees: Vec<f64> = (0..9).map(|_| 1.0).collect();
        degrees[4] = 0.0;
        estimate_lambda_min(&g, &degrees);
    }
}
