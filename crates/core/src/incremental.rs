//! Incremental sparsification under edge churn: localized re-filtering
//! plus elimination-tree-subtree factor patching.
//!
//! The batch pipeline ([`sparsify`](crate::sparsify)) recomputes
//! everything from scratch; for workloads that edit a handful of edges
//! between solves (circuit back-annotation, interactive partitioning,
//! streaming graphs) that is almost entirely wasted work. This module
//! maintains a live sparsifier across edits by splitting the pipeline
//! into a **frozen scoring basis** and the cheap per-edit work that
//! re-evaluates against it:
//!
//! - The probe iterates ([`probe_embedding`]) and the heat threshold
//!   `θσ` are computed once at construction (or [`IncrementalSparsifier::refresh`]) and then
//!   **frozen**. Joule heat under a fixed embedding is a pure function
//!   of each edge's endpoints and weight, so an edit dirties exactly
//!   the edited edges' heats and no others.
//! - The spanning-tree backbone is the **canonical** maximum-weight
//!   tree, maintained by matroid exchange rules
//!   ([`DynamicTree`]) — bit-identical after every edit to what
//!   from-scratch Kruskal on the edited graph would build.
//! - The grounded LDLᵀ factor of the selected subgraph is **patched**:
//!   numeric factorization re-runs only on the elimination-tree
//!   ancestor closure of the changed columns
//!   ([`sass_solver::GroundedSolver::refactor`]), falling back to a
//!   full numeric pass past a fill-ratio crossover and to a full
//!   rebuild on a sparsity-pattern change.
//!
//! The maintained invariant, pinned by [`IncrementalSparsifier::oracle_rebuild`]
//! and the crate's proptests: after any edit sequence, the selected
//! edge set and the factor are **identical** — bit for bit — to
//! re-running selection and factorization from scratch on the current
//! graph with the same frozen basis.

use std::collections::{BTreeMap, BTreeSet};

use crate::embedding::{heat_from_embedding, probe_embedding};
use crate::extremes::{estimate_lambda_max, estimate_lambda_min};
use crate::filter::{heat_threshold, select_edges};
use crate::similarity::filter_similar;
use crate::{CoreError, Result, SparsifyConfig};
use sass_graph::spanning::{canonical_max_weight_spanning_tree, DynamicTree};
use sass_graph::{Graph, GraphEdit, LcaIndex, RootedTree};
use sass_solver::GroundedSolver;
use sass_sparse::{DenseBlock, RefactorStats};

/// Default affected-fraction threshold past which a partial numeric
/// refactorization gives up and re-runs every column (the ancestor
/// closure has grown so large that masking overhead outweighs the skip).
pub const DEFAULT_REFACTOR_CROSSOVER: f64 = 0.25;

/// What one [`IncrementalSparsifier::apply_edits`] batch did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnReport {
    /// Off-tree/edge heats re-scored against the frozen embedding (the
    /// dirty set: exactly the edited edges plus any new ids).
    pub dirty_edges: usize,
    /// Whether the selected edge set (as vertex pairs) changed.
    pub selection_changed: bool,
    /// Factor maintenance performed: `None` when the selected subgraph
    /// was untouched (zero factor work), otherwise the partial/full
    /// refactorization statistics.
    pub refactor: Option<RefactorStats>,
}

/// Accumulated schedule-reuse statistics over the lifetime of an
/// [`IncrementalSparsifier`] — the `table2` diagnostics report these.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChurnTotals {
    /// Edit batches applied.
    pub batches: usize,
    /// Individual edits across all batches.
    pub edits: usize,
    /// Columns whose numeric factorization re-ran (partial or full).
    pub cols_refactored: usize,
    /// Total factor columns across all refactorizations (the
    /// denominator of the reuse ratio).
    pub cols_total: usize,
    /// Batches that fell back to a full numeric pass or rebuild.
    pub full_refactors: usize,
    /// Batches where the selected subgraph was untouched and the factor
    /// was reused without any numeric work.
    pub factors_skipped: usize,
}

/// A live sparsifier maintained across edge edits.
///
/// Construction runs one full scoring pass (canonical tree, probe
/// embedding, threshold, filter, factor) and freezes the scoring basis;
/// [`IncrementalSparsifier::apply_edits`] then keeps the selection and
/// the grounded factor exactly in sync with the evolving graph at a
/// fraction of the from-scratch cost. Call
/// [`IncrementalSparsifier::refresh`] to re-freeze the basis once the
/// graph has drifted far from the one it was scored on.
///
/// # Example
///
/// ```
/// use sass_core::incremental::IncrementalSparsifier;
/// use sass_core::SparsifyConfig;
/// use sass_graph::generators::{grid2d, WeightModel};
///
/// # fn main() -> Result<(), sass_core::CoreError> {
/// let g = grid2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
/// let mut inc = IncrementalSparsifier::new(&g, &SparsifyConfig::new(100.0))?;
/// let report = inc.add_edge(0, 63, 1.25)?;
/// assert_eq!(report.dirty_edges, 1);
/// // The maintained state equals a from-scratch recompute, bit for bit.
/// let oracle = inc.oracle_rebuild()?;
/// assert_eq!(inc.selected_edge_ids(), oracle.selected_edge_ids());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalSparsifier {
    g: Graph,
    config: SparsifyConfig,
    crossover: f64,
    // Frozen scoring basis.
    embedding: DenseBlock,
    theta: f64,
    // Maintained structures.
    tree: DynamicTree,
    tree_ids: Vec<u32>,
    rooted: RootedTree,
    lca: LcaIndex,
    heats: Vec<f64>,
    selected: Vec<u32>,
    solver: GroundedSolver,
    totals: ChurnTotals,
}

impl IncrementalSparsifier {
    /// Builds the sparsifier and freezes the scoring basis.
    ///
    /// The spanning-tree backbone is always the canonical maximum-weight
    /// tree (`config.tree` is ignored): incremental maintenance needs a
    /// tree that is a *unique, deterministic* function of the edge set,
    /// which the randomized/heuristic constructions are not.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for nonsensical knobs or a graph
    /// with fewer than two vertices, [`CoreError::Graph`] if `g` is
    /// disconnected, [`CoreError::Solver`] on factorization failure.
    pub fn new(g: &Graph, config: &SparsifyConfig) -> Result<Self> {
        // Negated comparisons deliberately reject NaN as well.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(config.sigma2 > 1.0) || !config.sigma2.is_finite() {
            return Err(CoreError::InvalidConfig {
                context: format!(
                    "sigma2 must be a finite value above 1, got {}",
                    config.sigma2
                ),
            });
        }
        if config.t_steps == 0 {
            return Err(CoreError::InvalidConfig {
                context: "t_steps must be at least 1".to_string(),
            });
        }
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(config.max_add_frac > 0.0) {
            return Err(CoreError::InvalidConfig {
                context: "max_add_frac must be positive".to_string(),
            });
        }
        let n = g.n();
        if n < 2 {
            return Err(CoreError::InvalidConfig {
                context: format!("incremental sparsification needs at least 2 vertices, got {n}"),
            });
        }

        let tree_ids = canonical_max_weight_spanning_tree(g)?;
        let rooted = RootedTree::new(g, tree_ids.clone(), 0)?;
        let lca = LcaIndex::new(&rooted);
        let lp = g.laplacian_of_edges(&tree_ids);
        let tree_solver = GroundedSolver::new(&lp, config.ordering)?;
        let lg = g.laplacian();

        // The frozen basis: probe iterates against the tree backbone, and
        // the threshold from the backbone's condition estimate.
        let r = config.resolved_num_vectors(n);
        let embedding = probe_embedding(&lg, &tree_solver, config.t_steps, r, config.seed);
        let lambda_max = estimate_lambda_max(
            &lg,
            &lp,
            &tree_solver,
            config.lambda_max_iters,
            config.seed ^ 0x1e7,
        );
        let mut p_wdeg = vec![0.0f64; n];
        for &id in &tree_ids {
            let e = g.edge(id as usize);
            p_wdeg[e.u as usize] += e.weight;
            p_wdeg[e.v as usize] += e.weight;
        }
        let lambda_min = estimate_lambda_min(g, &p_wdeg);
        let theta = heat_threshold(config.sigma2, lambda_min, lambda_max, config.t_steps);

        // Score every edge once; heat under a frozen embedding is a pure
        // per-edge function, so tree/off-tree status can change later
        // without invalidating these values.
        let all_ids: Vec<u32> = (0..g.m() as u32).collect();
        let heats = heat_from_embedding(g, &all_ids, &embedding).heat;

        let selected = Self::select(g, &tree_ids, &rooted, &lca, &heats, theta, config);
        let solver = GroundedSolver::new(&g.laplacian_of_edges(&selected), config.ordering)?;
        let tree = DynamicTree::new(g, &tree_ids);
        Ok(IncrementalSparsifier {
            g: g.clone(),
            config: config.clone(),
            crossover: DEFAULT_REFACTOR_CROSSOVER,
            embedding,
            theta,
            tree,
            tree_ids,
            rooted,
            lca,
            heats,
            selected,
            solver,
            totals: ChurnTotals::default(),
        })
    }

    /// Sets the partial-refactorization crossover (affected fraction of
    /// columns past which the whole numeric phase re-runs). Builder-style.
    pub fn with_refactor_crossover(mut self, crossover: f64) -> Self {
        self.crossover = crossover;
        self
    }

    /// The frozen filter: selection on `g` given tree, heats and θ. Both
    /// the incremental path and the oracle call exactly this.
    fn select(
        g: &Graph,
        tree_ids: &[u32],
        rooted: &RootedTree,
        lca: &LcaIndex,
        heats: &[f64],
        theta: f64,
        config: &SparsifyConfig,
    ) -> Vec<u32> {
        // Off-tree ids are the complement of the (sorted) tree ids — a
        // single merge-scan, cheaper than masking the whole edge set.
        let mut off = Vec::with_capacity(g.m() - tree_ids.len());
        let mut next_tree = tree_ids.iter().copied().peekable();
        for id in 0..g.m() as u32 {
            if next_tree.peek() == Some(&id) {
                next_tree.next();
            } else {
                off.push(id);
            }
        }
        let off_heats: Vec<f64> = off.iter().map(|&id| heats[id as usize]).collect();
        let heat_max = off_heats.iter().copied().fold(0.0, f64::max);
        let budget = ((config.max_add_frac * g.n() as f64).ceil() as usize).max(1);
        let candidates = select_edges(&off, &off_heats, heat_max, theta, budget);
        let mut accepted = filter_similar(config.similarity, g, rooted, lca, &candidates);
        // Merge of two sorted disjoint id lists (tree ∪ accepted).
        accepted.sort_unstable();
        let mut selected = Vec::with_capacity(tree_ids.len() + accepted.len());
        let (mut i, mut j) = (0, 0);
        while i < tree_ids.len() && j < accepted.len() {
            if tree_ids[i] < accepted[j] {
                selected.push(tree_ids[i]);
                i += 1;
            } else {
                selected.push(accepted[j]);
                j += 1;
            }
        }
        selected.extend_from_slice(&tree_ids[i..]);
        selected.extend_from_slice(&accepted[j..]);
        selected
    }

    /// Applies a batch of edits, updating the graph, the canonical tree,
    /// the dirty heats, the selection and the factor — everything a
    /// from-scratch recompute with the same frozen basis would produce,
    /// at localized cost.
    ///
    /// Edits apply sequentially with [`Graph::apply_edits`] semantics
    /// (`AddEdge` merges by weight summation, `RemoveEdge` deletes the
    /// edge entirely). On error nothing is modified.
    ///
    /// # Errors
    ///
    /// [`CoreError::Graph`] for invalid edits or an edit that
    /// disconnects the graph, [`CoreError::Solver`] if the patched
    /// factorization hits a zero pivot.
    pub fn apply_edits(&mut self, edits: &[GraphEdit]) -> Result<ChurnReport> {
        if edits.is_empty() {
            return Ok(ChurnReport {
                dirty_edges: 0,
                selection_changed: false,
                refactor: None,
            });
        }
        // The graph first: validates the whole batch atomically.
        let (g2, map) = self.g.apply_edits(edits)?;

        // Replay the edits on a scratch copy of the tree under the
        // matroid exchange rules, tracking the dirty vertex pairs and
        // whether the tree's pair set changed. A small overlay over the
        // base edge list supplies merged weights for offers and the
        // current edge set for cut repair; `DynamicTree::remove` only
        // consumes that set on a genuine tree-edge cut, so off-tree
        // removals never pay for the scan.
        let mut dt = self.tree.clone();
        let mut overlay: BTreeMap<(u32, u32), Option<f64>> = BTreeMap::new();
        let mut dirty_pairs: BTreeSet<(u32, u32)> = BTreeSet::new();
        let mut topo_changed = false;
        for edit in edits {
            match *edit {
                GraphEdit::AddEdge { u, v, weight } => {
                    let (a, b) = (u.min(v) as u32, u.max(v) as u32);
                    let base = match overlay.get(&(a, b)) {
                        Some(&state) => state,
                        None => self
                            .g
                            .find_edge(a as usize, b as usize)
                            .map(|id| self.g.edge(id as usize).weight),
                    };
                    let w = base.unwrap_or(0.0) + weight;
                    overlay.insert((a, b), Some(w));
                    if dt.offer(a, b, w).is_some() {
                        topo_changed = true;
                    }
                    dirty_pairs.insert((a, b));
                }
                GraphEdit::RemoveEdge { u, v } => {
                    let (a, b) = (u.min(v) as u32, u.max(v) as u32);
                    overlay.insert((a, b), None);
                    // Pairs born inside this batch (absent from the base
                    // edge list) chained after the overlay-filtered base.
                    let born: Vec<(u32, u32, f64)> = overlay
                        .iter()
                        .filter_map(|(&(x, y), &state)| match state {
                            Some(w) if self.g.find_edge(x as usize, y as usize).is_none() => {
                                Some((x, y, w))
                            }
                            _ => None,
                        })
                        .collect();
                    let current = self
                        .g
                        .edges()
                        .iter()
                        .filter_map(|e| match overlay.get(&(e.u, e.v)) {
                            Some(&Some(w)) => Some((e.u, e.v, w)),
                            Some(&None) => None,
                            None => Some((e.u, e.v, e.weight)),
                        })
                        .chain(born);
                    if dt.remove(a, b, current)?.is_some() {
                        topo_changed = true;
                    }
                    dirty_pairs.insert((a, b));
                }
            }
        }
        // Tree edge ids in the edited graph. A topology-preserving batch
        // keeps every tree pair, so the old ids remap through the edit
        // map (which is monotone — the result stays sorted); otherwise
        // rebuild from the maintained pair set.
        let tree_ids: Vec<u32> = if topo_changed {
            let mut ids: Vec<u32> = dt
                .pairs()
                .iter()
                .map(|&(u, v)| {
                    g2.find_edge(u as usize, v as usize)
                        .expect("maintained tree edge must exist in the edited graph")
                })
                .collect();
            ids.sort_unstable();
            ids
        } else {
            self.tree_ids
                .iter()
                .map(|&id| {
                    map.new_id(id)
                        .expect("a topology-preserving batch keeps every tree edge")
                })
                .collect()
        };
        // Rooted view and LCA index: when the topology survived, remap
        // the existing rooted structure (recomputing path resistances
        // from the edited weights) and keep the LCA index, which depends
        // only on parent/depth topology; otherwise rebuild both.
        let remapped = if topo_changed {
            None
        } else {
            self.rooted.remapped(&g2, |id| map.new_id(id))
        };
        let (rooted, lca_new) = match remapped {
            Some(r) => (r, None),
            None => {
                let r = RootedTree::new(&g2, tree_ids.clone(), 0)?;
                let l = LcaIndex::new(&r);
                (r, Some(l))
            }
        };
        let lca = lca_new.as_ref().unwrap_or(&self.lca);

        // Heat maintenance: carry clean heats across the id renumbering;
        // re-score exactly the dirty set against the frozen embedding.
        let m2 = g2.m();
        let mut heats = vec![f64::NAN; m2];
        for old_id in 0..map.old_m() {
            if let Some(nid) = map.new_id(old_id as u32) {
                heats[nid as usize] = self.heats[old_id];
            }
        }
        let mut dirty: Vec<u32> = Vec::new();
        for (id, heat) in heats.iter().enumerate() {
            let e = g2.edge(id);
            if dirty_pairs.contains(&(e.u, e.v)) || !heat.is_finite() {
                dirty.push(id as u32);
            }
        }
        let rescored = heat_from_embedding(&g2, &dirty, &self.embedding);
        for (k, &id) in dirty.iter().enumerate() {
            heats[id as usize] = rescored.heat[k];
        }

        let selected = Self::select(
            &g2,
            &tree_ids,
            &rooted,
            lca,
            &heats,
            self.theta,
            &self.config,
        );

        // Factor maintenance: diff the selected subgraphs as weighted
        // vertex pairs (ids are renumbered, pairs are stable). Identical
        // pairs and weights ⇒ zero factor work; otherwise the endpoints
        // of every differing pair seed the subtree refactorization. Both
        // selections ascend by edge id and edge lists are pair-sorted,
        // so one merge pass finds every difference.
        let mut changed: Vec<usize> = Vec::new();
        let mut selection_changed = false;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.selected.len() || j < selected.len() {
            let oe = (i < self.selected.len()).then(|| self.g.edge(self.selected[i] as usize));
            let ne = (j < selected.len()).then(|| g2.edge(selected[j] as usize));
            // An exhausted side never advances: its sentinel pair sorts
            // after every real pair.
            let op = oe.map_or((u32::MAX, u32::MAX), |e| (e.u, e.v));
            let np = ne.map_or((u32::MAX, u32::MAX), |e| (e.u, e.v));
            match op.cmp(&np) {
                std::cmp::Ordering::Equal => {
                    let (oe, ne) = (oe.expect("both present"), ne.expect("both present"));
                    if oe.weight != ne.weight {
                        changed.push(oe.u as usize);
                        changed.push(oe.v as usize);
                    }
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    selection_changed = true;
                    changed.push(op.0 as usize);
                    changed.push(op.1 as usize);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    selection_changed = true;
                    changed.push(np.0 as usize);
                    changed.push(np.1 as usize);
                    j += 1;
                }
            }
        }
        changed.sort_unstable();
        changed.dedup();
        let refactor = if changed.is_empty() {
            None
        } else {
            let l_new = g2.laplacian_of_edges(&selected);
            Some(self.solver.refactor(&l_new, &changed, self.crossover)?)
        };

        // Commit (everything fallible is behind us).
        self.g = g2;
        self.tree = dt;
        self.tree_ids = tree_ids;
        self.rooted = rooted;
        if let Some(l) = lca_new {
            self.lca = l;
        }
        self.heats = heats;
        self.selected = selected;
        self.totals.batches += 1;
        self.totals.edits += edits.len();
        match &refactor {
            Some(s) => {
                self.totals.cols_refactored += s.cols_refactored;
                self.totals.cols_total += s.total_cols;
                if s.full {
                    self.totals.full_refactors += 1;
                }
            }
            None => self.totals.factors_skipped += 1,
        }
        Ok(ChurnReport {
            dirty_edges: dirty.len(),
            selection_changed,
            refactor,
        })
    }

    /// Single-edge convenience: `AddEdge { u, v, weight }` (merges with
    /// an existing edge by weight summation).
    ///
    /// # Errors
    ///
    /// As [`IncrementalSparsifier::apply_edits`].
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) -> Result<ChurnReport> {
        self.apply_edits(&[GraphEdit::AddEdge { u, v, weight }])
    }

    /// Single-edge convenience: `RemoveEdge { u, v }` (deletes the edge
    /// entirely).
    ///
    /// # Errors
    ///
    /// As [`IncrementalSparsifier::apply_edits`].
    pub fn remove_edge(&mut self, u: usize, v: usize) -> Result<ChurnReport> {
        self.apply_edits(&[GraphEdit::RemoveEdge { u, v }])
    }

    /// Re-freezes the scoring basis (embedding and threshold) against the
    /// current graph. Accumulated [`ChurnTotals`] survive the refresh.
    ///
    /// # Errors
    ///
    /// As [`IncrementalSparsifier::new`].
    pub fn refresh(&mut self) -> Result<()> {
        let mut fresh = Self::new(&self.g.clone(), &self.config.clone())?;
        fresh.crossover = self.crossover;
        fresh.totals = self.totals.clone();
        *self = fresh;
        Ok(())
    }

    /// Ground truth for the maintained contract: re-derives tree,
    /// selection and factor **from scratch** on the current graph with
    /// the same frozen basis. After any edit sequence,
    /// `self.selected_edge_ids() == oracle.selected_edge_ids()` and the
    /// two factors produce bit-identical solves.
    ///
    /// # Errors
    ///
    /// [`CoreError::Graph`] / [`CoreError::Solver`] if the current graph
    /// no longer admits a spanning tree or a factorization (cannot
    /// happen after successful edits).
    pub fn oracle_rebuild(&self) -> Result<IncrementalSparsifier> {
        let tree_ids = canonical_max_weight_spanning_tree(&self.g)?;
        let rooted = RootedTree::new(&self.g, tree_ids.clone(), 0)?;
        let lca = LcaIndex::new(&rooted);
        let all_ids: Vec<u32> = (0..self.g.m() as u32).collect();
        let heats = heat_from_embedding(&self.g, &all_ids, &self.embedding).heat;
        let selected = Self::select(
            &self.g,
            &tree_ids,
            &rooted,
            &lca,
            &heats,
            self.theta,
            &self.config,
        );
        let solver =
            GroundedSolver::new(&self.g.laplacian_of_edges(&selected), self.config.ordering)?;
        let tree = DynamicTree::new(&self.g, &tree_ids);
        Ok(IncrementalSparsifier {
            g: self.g.clone(),
            config: self.config.clone(),
            crossover: self.crossover,
            embedding: self.embedding.clone(),
            theta: self.theta,
            tree,
            tree_ids,
            rooted,
            lca,
            heats,
            selected,
            solver,
            totals: ChurnTotals::default(),
        })
    }

    /// The current graph.
    pub fn graph(&self) -> &Graph {
        &self.g
    }

    /// Sorted edge ids (in the current graph) of the maintained
    /// selection: spanning tree plus filter survivors.
    pub fn selected_edge_ids(&self) -> &[u32] {
        &self.selected
    }

    /// Sorted edge ids of the canonical spanning-tree backbone.
    pub fn tree_edge_ids(&self) -> &[u32] {
        &self.tree_ids
    }

    /// The sparsifier as a standalone graph (same vertex set).
    pub fn sparsifier_graph(&self) -> Graph {
        self.g.subgraph_with_edges(self.selected.iter().copied())
    }

    /// The maintained grounded factorization of the selected subgraph's
    /// Laplacian.
    pub fn solver(&self) -> &GroundedSolver {
        &self.solver
    }

    /// The frozen normalized-heat threshold `θσ`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The configuration this sparsifier was built with.
    pub fn config(&self) -> &SparsifyConfig {
        &self.config
    }

    /// Accumulated schedule-reuse statistics.
    pub fn totals(&self) -> &ChurnTotals {
        &self.totals
    }

    /// Approximate resident bytes held by the maintained state: the
    /// grounded factorization, the frozen probe embedding, the cached
    /// heats, the graph's edge list, and the tree/selection structures.
    ///
    /// This is the accounting unit of the `sass-serve` cache's LRU byte
    /// budget — an estimate of the dominant allocations, not an exact
    /// allocator measurement.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let embedding = self.embedding.nrows() * self.embedding.ncols() * size_of::<f64>();
        let heats = self.heats.len() * size_of::<f64>();
        let edges = self.g.m() * size_of::<sass_graph::Edge>();
        let ids = (self.tree_ids.len() + self.selected.len()) * size_of::<u32>();
        // DynamicTree / RootedTree / LcaIndex are O(n) word structures:
        // parent, depth, weight, and the LCA jump table (~log n levels).
        let n = self.g.n();
        let tree_structs =
            n * size_of::<u64>() * (4 + usize::BITS as usize - n.leading_zeros() as usize);
        self.solver.memory_bytes() + embedding + heats + edges + ids + tree_structs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_graph::generators::{barabasi_albert, grid2d, WeightModel};
    use sass_sparse::dense;

    fn check_matches_oracle(inc: &IncrementalSparsifier) {
        let oracle = inc.oracle_rebuild().unwrap();
        assert_eq!(
            inc.selected_edge_ids(),
            oracle.selected_edge_ids(),
            "selected edge set drifted from the from-scratch recompute"
        );
        assert_eq!(inc.tree_edge_ids(), oracle.tree_edge_ids());
        // The factor contract: bit-identical solves on shared RHS.
        let n = inc.graph().n();
        let mut b: Vec<f64> = (0..n).map(|i| ((i * 7 % 23) as f64) - 11.0).collect();
        dense::center(&mut b);
        assert_eq!(
            inc.solver().solve(&b),
            oracle.solver().solve(&b),
            "patched factor diverged from the from-scratch factor"
        );
    }

    #[test]
    fn single_add_matches_oracle() {
        let g = grid2d(9, 9, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 3);
        let mut inc = IncrementalSparsifier::new(&g, &SparsifyConfig::new(50.0)).unwrap();
        check_matches_oracle(&inc);
        let report = inc.add_edge(0, 80, 1.4).unwrap();
        assert_eq!(report.dirty_edges, 1);
        check_matches_oracle(&inc);
    }

    #[test]
    fn single_remove_matches_oracle() {
        let g = grid2d(9, 9, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 5);
        let mut inc = IncrementalSparsifier::new(&g, &SparsifyConfig::new(50.0)).unwrap();
        // Remove an off-tree edge (always safe for connectivity).
        let off = inc.rooted.off_tree_edges(&g);
        let e = g.edge(off[off.len() / 2] as usize);
        inc.remove_edge(e.u as usize, e.v as usize).unwrap();
        check_matches_oracle(&inc);
    }

    #[test]
    fn tree_edge_removal_matches_oracle() {
        let g = grid2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 9);
        let mut inc = IncrementalSparsifier::new(&g, &SparsifyConfig::new(80.0)).unwrap();
        // Remove a spanning-tree edge: the exchange rules must adopt the
        // strongest cut-crossing replacement (the grid stays connected).
        let tid = inc.tree_edge_ids()[10];
        let e = g.edge(tid as usize);
        let report = inc.remove_edge(e.u as usize, e.v as usize).unwrap();
        assert!(report.selection_changed);
        check_matches_oracle(&inc);
    }

    #[test]
    fn batched_edits_match_oracle_on_scale_free() {
        let g = barabasi_albert(300, 3, 43);
        let mut inc = IncrementalSparsifier::new(&g, &SparsifyConfig::new(60.0)).unwrap();
        let edits = vec![
            GraphEdit::AddEdge {
                u: 0,
                v: 299,
                weight: 0.8,
            },
            GraphEdit::AddEdge {
                u: 5,
                v: 250,
                weight: 1.6,
            },
            GraphEdit::RemoveEdge { u: 0, v: 299 },
            GraphEdit::AddEdge {
                u: 1,
                v: 2,
                weight: 0.5,
            }, // likely a merge
        ];
        let report = inc.apply_edits(&edits).unwrap();
        assert!(report.dirty_edges >= 2);
        check_matches_oracle(&inc);
        // And again on top — churn compounds.
        inc.apply_edits(&[GraphEdit::AddEdge {
            u: 10,
            v: 200,
            weight: 2.2,
        }])
        .unwrap();
        check_matches_oracle(&inc);
    }

    #[test]
    fn disconnecting_edit_fails_atomically() {
        // A path graph: removing any interior edge disconnects it.
        let g =
            Graph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]).unwrap();
        let mut inc = IncrementalSparsifier::new(&g, &SparsifyConfig::new(50.0)).unwrap();
        let before = inc.clone();
        let err = inc.remove_edge(1, 2).unwrap_err();
        assert!(matches!(err, CoreError::Graph(_)));
        assert_eq!(inc.selected_edge_ids(), before.selected_edge_ids());
        assert_eq!(inc.graph().m(), before.graph().m());
        // Still fully usable afterwards.
        inc.add_edge(0, 4, 2.0).unwrap();
        check_matches_oracle(&inc);
    }

    #[test]
    fn untouched_selection_skips_factor_work() {
        let g = grid2d(10, 10, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 7);
        let mut inc = IncrementalSparsifier::new(&g, &SparsifyConfig::new(30.0)).unwrap();
        // A feather-weight off-tree edge far below the threshold: scored,
        // rejected, selection unchanged, factor untouched.
        let report = inc.add_edge(0, 99, 1e-9).unwrap();
        if !report.selection_changed {
            assert_eq!(report.refactor, None);
            assert_eq!(inc.totals().factors_skipped, 1);
        }
        check_matches_oracle(&inc);
    }

    #[test]
    fn refresh_refreezes_and_keeps_totals() {
        let g = grid2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 2);
        let mut inc = IncrementalSparsifier::new(&g, &SparsifyConfig::new(60.0)).unwrap();
        inc.add_edge(0, 63, 1.1).unwrap();
        let batches = inc.totals().batches;
        inc.refresh().unwrap();
        assert_eq!(inc.totals().batches, batches);
        check_matches_oracle(&inc);
        // The refreshed basis equals a fresh construction on the current graph.
        let fresh = IncrementalSparsifier::new(inc.graph(), inc.config()).unwrap();
        assert_eq!(inc.selected_edge_ids(), fresh.selected_edge_ids());
        assert_eq!(inc.theta(), fresh.theta());
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let tiny = Graph::from_edges(1, &[]).unwrap();
        assert!(matches!(
            IncrementalSparsifier::new(&tiny, &SparsifyConfig::new(50.0)),
            Err(CoreError::InvalidConfig { .. })
        ));
        let g = grid2d(4, 4, WeightModel::Unit, 0);
        assert!(matches!(
            IncrementalSparsifier::new(&g, &SparsifyConfig::new(0.5)),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn churn_totals_accumulate() {
        let g = grid2d(9, 9, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 13);
        let mut inc = IncrementalSparsifier::new(&g, &SparsifyConfig::new(40.0)).unwrap();
        inc.add_edge(0, 80, 1.7).unwrap();
        inc.add_edge(3, 77, 1.3).unwrap();
        let t = inc.totals();
        assert_eq!(t.batches, 2);
        assert_eq!(t.edits, 2);
        assert!(t.cols_total == 0 || t.cols_refactored <= t.cols_total);
    }
}
