//! Similarity-aware spectral graph sparsification by edge filtering.
//!
//! This crate implements the primary contribution of
//! *Z. Feng, "Similarity-Aware Spectral Sparsification by Edge Filtering",
//! DAC 2018*: given a weighted undirected graph `G` and a target spectral
//! similarity `σ²`, it extracts an ultra-sparse subgraph `P` (a spanning
//! tree plus a filtered set of off-tree edges) whose relative condition
//! number `κ(L_G, L_P) = λmax/λmin` is driven below `σ²`.
//!
//! The pipeline (paper §3):
//!
//! 1. a low-stretch / spectrally-critical **spanning tree** backbone
//!    ([`sass_graph::spanning`]),
//! 2. **spectral embedding** of off-tree edges: `t`-step generalized power
//!    iterations attach a *Joule heat* to every off-tree edge
//!    ([`embedding`]),
//! 3. **edge filtering**: only edges whose normalized heat exceeds
//!    `θσ ≈ (σ²·λmin/λmax)^(2t+1)` are recovered ([`filter`]),
//! 4. **extreme eigenvalue estimation**: `λmax` by generalized power
//!    iterations, `λmin` by the node-coloring degree-ratio bound
//!    ([`extremes`]),
//! 5. **similarity-aware pruning** of mutually-redundant candidate edges
//!    ([`similarity`]),
//! 6. an **iterative graph densification** loop tying it together
//!    ([`densify`], with [`sparsify`] as the entry point).
//!
//! # Example
//!
//! ```
//! use sass_core::{sparsify, SparsifyConfig};
//! use sass_graph::generators::circuit_grid;
//!
//! # fn main() -> Result<(), sass_core::CoreError> {
//! let g = circuit_grid(24, 24, 0.1, 7);
//! let config = SparsifyConfig::new(100.0); // target sigma^2 = 100
//! let sp = sparsify(&g, &config)?;
//! assert!(sp.condition_estimate() <= 100.0);
//! assert!(sp.graph().m() < g.m());           // strictly sparser
//! assert!(sp.graph().m() >= g.n() - 1);      // at least the tree
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod config;
mod error;
mod sparsifier;

pub mod baseline;
pub mod densify;
pub mod embedding;
pub mod extremes;
pub mod filter;
pub mod fingerprint;
pub mod incremental;
pub mod similarity;
pub mod solve;

pub use config::SparsifyConfig;
pub use densify::sparsify;
pub use error::CoreError;
pub use fingerprint::{cache_key, config_fingerprint, graph_fingerprint};
pub use incremental::{ChurnReport, ChurnTotals, IncrementalSparsifier};
pub use similarity::SimilarityPolicy;
pub use solve::{SolveStrategy, SparsifierSolver};
pub use sparsifier::{RoundStats, Sparsifier};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
