//! Spectral embedding of off-tree edges via generalized power iterations
//! (paper §3.2).
//!
//! Starting from `r` random vectors `h₀`, the `t`-step iterate
//! `h_t = (L_P⁺ L_G)^t h₀` amplifies the components along generalized
//! eigenvectors with large eigenvalues by `λᵢ^t`. The *Joule heat* of an
//! off-tree edge `(p, q)` under `h_t`,
//!
//! ```text
//! heat(p,q) = w_pq · Σ_j (h_t,j(p) − h_t,j(q))²
//! ```
//!
//! (summed over the `r` probes), therefore ranks edges by how strongly they
//! interact with the dominant generalized eigenvalues — the edges whose
//! recovery most reduces `λmax` (paper Eq. 6).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sass_graph::Graph;
use sass_solver::{GroundedScratch, GroundedSolver};
use sass_sparse::{dense, kernel, pool, DenseBlock, SparseBackend};

/// Below this many off-tree edges the heat accumulation stays serial
/// under automatic pool sizing (see [`sass_sparse::pool::Pool::workers_for`]).
const MIN_PAR_HEAT_EDGES: usize = 8_192;
/// Off-tree edges per pool lane above the crossover.
const HEAT_EDGES_PER_WORKER: usize = 4_096;
/// Minimum `n × r` work for parallelizing the per-column power-step
/// products over probe columns.
const MIN_PAR_PROBE_WORK: usize = 65_536;

/// Per-edge Joule heat of the off-tree edges, plus the probe vectors'
/// final iterates (useful for diagnostics and the GSP crate).
#[derive(Debug, Clone)]
pub struct OffTreeHeat {
    /// Joule heat per off-tree edge, parallel to the `off_tree` id slice
    /// passed to [`off_tree_heat`].
    pub heat: Vec<f64>,
    /// The maximum heat over all off-tree edges (0 when there are none).
    pub heat_max: f64,
}

impl OffTreeHeat {
    /// Normalized heat `θ(e) = heat(e)/heat_max` per off-tree edge.
    pub fn normalized(&self) -> Vec<f64> {
        if self.heat_max <= 0.0 {
            return vec![0.0; self.heat.len()];
        }
        self.heat.iter().map(|h| h / self.heat_max).collect()
    }
}

/// Computes the Joule heat of each off-tree edge by `t`-step generalized
/// power iterations with `r` random probe vectors.
///
/// `lg` must be the Laplacian of `g` — in any storage backend with `f64`
/// scalars ([`SparseBackend`]): the power-step products are bit-identical
/// across CSR/CSC/BCSR, so the backend choice is a pure bandwidth knob —
/// and `solver_p` a grounded factorization of the current sparsifier's
/// Laplacian. Iterates are normalized per step for floating-point safety,
/// which rescales all heats of one probe uniformly and leaves normalized
/// heats unchanged.
///
/// All `r` probes advance together as one [`DenseBlock`]: each power step
/// applies `L_G` per column and then performs one *blocked* grounded solve
/// ([`GroundedSolver::solve_block_into_scratch`]), so the sparsifier factor
/// is streamed once per block of probes instead of once per probe — the
/// multi-RHS amortization the sparsifier itself is built to exploit.
///
/// Above a size crossover (or always, under an explicit `SASS_THREADS` /
/// [`sass_sparse::pool::set_threads`] override) the per-column power-step
/// products and the per-edge Joule-heat accumulation are spread over the
/// persistent worker pool, and the triangular sweeps inside each blocked
/// grounded solve run level-parallel over the sparsifier factor's
/// elimination tree. Every kernel preserves the serial loop's
/// floating-point association exactly, so heats are bit-for-bit identical
/// at every worker count.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if dimensions disagree or an off-tree edge id is out of range.
///
/// # Example
///
/// ```
/// use sass_core::embedding::off_tree_heat;
/// use sass_graph::{spanning, Graph, RootedTree};
/// use sass_solver::GroundedSolver;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)])?;
/// let tree_ids = spanning::bfs_spanning_tree(&g, 0)?;
/// let tree = RootedTree::new(&g, tree_ids.clone(), 0)?;
/// let off: Vec<u32> = tree.off_tree_edges(&g);
/// let p = g.subgraph_with_edges(tree_ids);
/// let solver = GroundedSolver::new(&p.laplacian(), Default::default())?;
/// let res = off_tree_heat(&g, &off, &g.laplacian(), &solver, 2, 4, 1);
/// assert_eq!(res.heat.len(), off.len());
/// assert!(res.heat_max > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn off_tree_heat<B: SparseBackend<Scalar = f64>>(
    g: &Graph,
    off_tree: &[u32],
    lg: &B,
    solver_p: &GroundedSolver,
    t: usize,
    r: usize,
    seed: u64,
) -> OffTreeHeat {
    let n = g.n();
    assert_eq!(lg.nrows(), n, "laplacian dimension mismatch");
    let h = probe_embedding(lg, solver_p, t, r, seed);
    heat_from_embedding(g, off_tree, &h)
}

/// The probe iterates alone: `r` seeded random vectors advanced `t`
/// generalized power steps, returned as an `n × r` [`DenseBlock`].
///
/// This is the expensive, *graph-global* half of [`off_tree_heat`] — the
/// incremental sparsifier caches it as a **frozen scoring basis** and
/// re-evaluates only [`heat_from_embedding`] (a pure per-edge function)
/// after edits. For a fixed `(lg, solver_p, t, r, seed)` the returned
/// block is bit-identical to the iterates [`off_tree_heat`] uses
/// internally.
///
/// # Panics
///
/// Panics if `solver_p.n() != lg.nrows()`.
pub fn probe_embedding<B: SparseBackend<Scalar = f64>>(
    lg: &B,
    solver_p: &GroundedSolver,
    t: usize,
    r: usize,
    seed: u64,
) -> DenseBlock {
    let n = lg.nrows();
    assert_eq!(solver_p.n(), n, "solver dimension mismatch");
    let mut rng = StdRng::seed_from_u64(seed);
    let r = r.max(1);
    if n == 0 {
        return DenseBlock::zeros(0, r);
    }
    // Probe initialization draws in probe order, so results are identical
    // to the historical one-probe-at-a-time loop for any given seed.
    let mut h = DenseBlock::zeros(n, r);
    for col in h.columns_mut() {
        for hi in col.iter_mut() {
            *hi = rng.gen_range(-1.0f64..1.0);
        }
        dense::center(col);
        dense::normalize(col);
    }
    let mut tmp = DenseBlock::zeros(n, r);
    let mut scratch = GroundedScratch::new();
    let p = pool::Pool::global();
    // One probe column per work item: each lane runs the serial SpMV
    // kernel on its own columns, so the block product is bit-identical to
    // the column-by-column loop at any worker count.
    let col_workers = p
        .workers_for(n * r, MIN_PAR_PROBE_WORK, MIN_PAR_PROBE_WORK)
        .min(r);
    let col_spans = pool::even_spans(r, col_workers);
    for _step in 0..t {
        p.parallel_for_disjoint_mut(
            tmp.data_mut(),
            &pool::scale_spans(&col_spans, n),
            |s, chunk| {
                let (clo, chi) = col_spans[s];
                for (k, tcol) in chunk.chunks_exact_mut(n).enumerate() {
                    debug_assert!(clo + k < chi);
                    lg.mul_vec_into(h.col(clo + k), tcol);
                }
            },
        );
        solver_p.solve_block_into_scratch(&tmp, &mut h, &mut scratch);
        for col in h.columns_mut() {
            dense::normalize(col);
        }
    }
    h
}

/// Joule heat of the given edges evaluated against a *fixed* embedding
/// `h` (the second half of [`off_tree_heat`]).
///
/// Heat is a pure function of each edge's endpoints and weight once the
/// iterates are fixed: `heat(e) = w_e · Σ_j (h_j(u) − h_j(v))²`. Editing
/// one edge therefore dirties exactly that edge's heat and no other —
/// the locality the incremental sparsifier's dirty-set rule is built on.
///
/// # Panics
///
/// Panics if `h.nrows() != g.n()` or an edge id is out of range.
pub fn heat_from_embedding(g: &Graph, off_tree: &[u32], h: &DenseBlock) -> OffTreeHeat {
    let n = g.n();
    assert_eq!(h.nrows(), n, "embedding dimension mismatch");
    let mut heat = vec![0.0f64; off_tree.len()];
    if n == 0 || off_tree.is_empty() {
        return OffTreeHeat {
            heat,
            heat_max: 0.0,
        };
    }
    let p = pool::Pool::global();
    // Heat accumulation: spans of off-tree edges through the SIMD-
    // dispatched Joule-heat kernel (one edge per lane, probe columns
    // summed in column order) — the same floating-point association as
    // the serial column-outer loop, so heats are bit-identical at any
    // worker count and SIMD level. Endpoints and weights are gathered
    // into flat arrays once so each lane's kernel call is branch-free.
    let mut us = Vec::with_capacity(off_tree.len());
    let mut vs = Vec::with_capacity(off_tree.len());
    let mut ws = Vec::with_capacity(off_tree.len());
    for &id in off_tree {
        let e = g.edge(id as usize);
        us.push(e.u);
        vs.push(e.v);
        ws.push(e.weight);
    }
    let heat_workers = p.workers_for(off_tree.len(), MIN_PAR_HEAT_EDGES, HEAT_EDGES_PER_WORKER);
    let heat_spans = pool::even_spans(off_tree.len(), heat_workers);
    p.parallel_for_disjoint_mut(&mut heat, &heat_spans, |s, chunk| {
        let (lo, hi) = heat_spans[s];
        kernel::joule_heat(&us[lo..hi], &vs[lo..hi], &ws[lo..hi], h.data(), n, chunk);
    });
    let heat_max = heat.iter().copied().fold(0.0, f64::max);
    OffTreeHeat { heat, heat_max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_graph::generators::{grid2d, WeightModel};
    use sass_graph::{spanning, LcaIndex, RootedTree};
    use sass_sparse::ordering::OrderingKind;

    /// Heat setup over a grid with its max-weight spanning tree.
    fn setup(nx: usize, ny: usize, seed: u64) -> (Graph, Vec<u32>, OffTreeHeat, RootedTree) {
        let g = grid2d(nx, ny, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
        let tree_ids = spanning::max_weight_spanning_tree(&g).unwrap();
        let tree = RootedTree::new(&g, tree_ids.clone(), 0).unwrap();
        let off = tree.off_tree_edges(&g);
        let p = g.subgraph_with_edges(tree_ids);
        let solver = GroundedSolver::new(&p.laplacian(), OrderingKind::MinDegree).unwrap();
        let res = off_tree_heat(&g, &off, &g.laplacian(), &solver, 2, 6, 42);
        (g, off, res, tree)
    }

    /// The split halves composed by hand must equal the one-shot API
    /// bit-for-bit — the incremental sparsifier's frozen-basis contract.
    #[test]
    fn split_halves_compose_to_off_tree_heat() {
        let (g, off, baseline, _) = setup(7, 6, 11);
        let tree_ids = spanning::max_weight_spanning_tree(&g).unwrap();
        let p = g.subgraph_with_edges(tree_ids);
        let solver = GroundedSolver::new(&p.laplacian(), OrderingKind::MinDegree).unwrap();
        let h = probe_embedding(&g.laplacian(), &solver, 2, 6, 42);
        let res = heat_from_embedding(&g, &off, &h);
        assert_eq!(res.heat, baseline.heat);
        assert_eq!(res.heat_max, baseline.heat_max);
    }

    #[test]
    fn heats_are_positive_and_bounded() {
        let (_, off, res, _) = setup(8, 8, 1);
        assert_eq!(res.heat.len(), off.len());
        assert!(res.heat.iter().all(|&h| h >= 0.0));
        let normalized = res.normalized();
        assert!(normalized.iter().all(|&t| (0.0..=1.0).contains(&t)));
        assert!(normalized.contains(&1.0));
    }

    #[test]
    fn heat_correlates_with_stretch() {
        // "Spectrally unique" analysis (paper §3.3): stretch ≈ λ_i, and heat
        // ranks by λ^(2t+1). Check rank agreement at the top: the highest-heat
        // edge should be among the top decile by stretch.
        let (g, off, res, tree) = setup(10, 10, 3);
        let lca = LcaIndex::new(&tree);
        let stretches: Vec<f64> = off
            .iter()
            .map(|&id| sass_graph::stretch::edge_stretch(&g, &tree, &lca, id))
            .collect();
        let top_heat_idx = res
            .heat
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let mut sorted = stretches.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let decile = sorted[sorted.len() / 10];
        assert!(
            stretches[top_heat_idx] >= decile,
            "top-heat edge stretch {} below decile {decile}",
            stretches[top_heat_idx]
        );
    }

    /// The power steps only see the Laplacian through the backend trait,
    /// and the f64 backends are bit-identical — so heats must be too.
    #[test]
    fn heats_identical_across_storage_backends() {
        use sass_sparse::{BcsrMatrix, CscMatrix};
        let (g, off, baseline, _) = setup(8, 8, 5);
        let tree_ids = spanning::max_weight_spanning_tree(&g).unwrap();
        let p = g.subgraph_with_edges(tree_ids);
        let solver = GroundedSolver::new(&p.laplacian(), OrderingKind::MinDegree).unwrap();
        let csc: CscMatrix = g.laplacian_in();
        let bcsr: BcsrMatrix = g.laplacian_in();
        let via_csc = off_tree_heat(&g, &off, &csc, &solver, 2, 6, 42);
        let via_bcsr = off_tree_heat(&g, &off, &bcsr, &solver, 2, 6, 42);
        assert_eq!(via_csc.heat, baseline.heat);
        assert_eq!(via_bcsr.heat, baseline.heat);
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, off, _, _) = setup(6, 6, 2);
        let tree_ids = spanning::max_weight_spanning_tree(&g).unwrap();
        let p = g.subgraph_with_edges(tree_ids);
        let solver = GroundedSolver::new(&p.laplacian(), OrderingKind::MinDegree).unwrap();
        let a = off_tree_heat(&g, &off, &g.laplacian(), &solver, 2, 4, 9);
        let b = off_tree_heat(&g, &off, &g.laplacian(), &solver, 2, 4, 9);
        assert_eq!(a.heat, b.heat);
        let c = off_tree_heat(&g, &off, &g.laplacian(), &solver, 2, 4, 10);
        assert_ne!(a.heat, c.heat);
    }

    #[test]
    fn no_off_tree_edges_is_fine() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let solver = GroundedSolver::new(&g.laplacian(), OrderingKind::Natural).unwrap();
        let res = off_tree_heat(&g, &[], &g.laplacian(), &solver, 2, 4, 0);
        assert!(res.heat.is_empty());
        assert_eq!(res.heat_max, 0.0);
        assert!(res.normalized().is_empty());
    }

    #[test]
    fn more_probes_stabilize_ranking() {
        // With many probes the top edge should be stable across seeds.
        let (g, off, _, _) = setup(8, 8, 7);
        let tree_ids = spanning::max_weight_spanning_tree(&g).unwrap();
        let p = g.subgraph_with_edges(tree_ids);
        let solver = GroundedSolver::new(&p.laplacian(), OrderingKind::MinDegree).unwrap();
        let top_set = |seed: u64| -> std::collections::HashSet<usize> {
            let res = off_tree_heat(&g, &off, &g.laplacian(), &solver, 2, 24, seed);
            let mut order: Vec<usize> = (0..res.heat.len()).collect();
            order.sort_by(|&a, &b| res.heat[b].partial_cmp(&res.heat[a]).unwrap());
            order.into_iter().take(8).collect()
        };
        let (a, b) = (top_set(1), top_set(2));
        let common = a.intersection(&b).count();
        assert!(common >= 5, "top-8 heat sets share only {common} edges");
    }
}
