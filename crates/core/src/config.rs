use crate::similarity::SimilarityPolicy;
use crate::solve::SolveStrategy;
use sass_graph::spanning::TreeKind;
use sass_sparse::ordering::OrderingKind;

/// Configuration of the similarity-aware sparsification pipeline.
///
/// The only mandatory choice is the spectral similarity target `σ²` (the
/// upper bound on the relative condition number `κ(L_G, L_P)`); every other
/// knob defaults to the paper's settings (`t = 2` generalized power steps,
/// `r = O(log |V|)` random vectors, AKPW-style tree backbone).
///
/// # Example
///
/// ```
/// use sass_core::{SparsifyConfig, SimilarityPolicy};
///
/// let config = SparsifyConfig::new(50.0)
///     .with_t_steps(2)
///     .with_num_vectors(8)
///     .with_similarity(SimilarityPolicy::EndpointMark)
///     .with_seed(42);
/// assert_eq!(config.sigma2, 50.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparsifyConfig {
    /// Target spectral similarity: upper bound on `κ(L_G, L_P)`.
    pub sigma2: f64,
    /// Number of generalized power iteration steps `t` in the edge
    /// embedding (paper recommends `t = 2`).
    pub t_steps: usize,
    /// Number of random probe vectors `r`; `None` picks
    /// `⌈log₂ |V|⌉` clamped to `[4, 32]` (the paper's `O(log |V|)`).
    pub num_vectors: Option<usize>,
    /// Cap on densification rounds.
    pub max_rounds: usize,
    /// Cap on edges added per round, as a fraction of `|V|` ("small
    /// portions of off-tree edges", paper §3.7).
    pub max_add_frac: f64,
    /// Spanning-tree backbone construction.
    pub tree: TreeKind,
    /// Redundant-edge pruning policy (paper step 6).
    pub similarity: SimilarityPolicy,
    /// Fill-reducing ordering for the sparsifier factorization.
    pub ordering: OrderingKind,
    /// Generalized power iterations used to estimate `λmax` (fewer than ten
    /// suffice, paper §3.6.1).
    pub lambda_max_iters: usize,
    /// Seed for all randomized pieces (probe vectors, tree randomness).
    pub seed: u64,
    /// How exact solves with the sparsifier Laplacian are served
    /// downstream ([`Sparsifier::build_solver`](crate::Sparsifier::build_solver)):
    /// one monolithic grounded factor (default), or opt-in
    /// domain-decomposed substructured solves ([`crate::SolveStrategy`]).
    pub solve_strategy: SolveStrategy,
}

impl SparsifyConfig {
    /// Creates a configuration targeting the given `σ²` with paper-default
    /// settings for everything else.
    pub fn new(sigma2: f64) -> Self {
        SparsifyConfig {
            sigma2,
            t_steps: 2,
            num_vectors: None,
            max_rounds: 24,
            max_add_frac: 0.25,
            tree: TreeKind::default(),
            similarity: SimilarityPolicy::default(),
            ordering: OrderingKind::MinDegree,
            lambda_max_iters: 10,
            seed: 0x5a55_c0de,
            solve_strategy: SolveStrategy::default(),
        }
    }

    /// Sets the number of generalized power steps `t`.
    pub fn with_t_steps(mut self, t: usize) -> Self {
        self.t_steps = t;
        self
    }

    /// Sets the number of random probe vectors `r`.
    pub fn with_num_vectors(mut self, r: usize) -> Self {
        self.num_vectors = Some(r);
        self
    }

    /// Sets the densification round cap.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Sets the per-round edge budget as a fraction of `|V|`.
    pub fn with_max_add_frac(mut self, frac: f64) -> Self {
        self.max_add_frac = frac;
        self
    }

    /// Sets the spanning-tree backbone kind.
    pub fn with_tree(mut self, tree: TreeKind) -> Self {
        self.tree = tree;
        self
    }

    /// Sets the edge-similarity pruning policy.
    pub fn with_similarity(mut self, policy: SimilarityPolicy) -> Self {
        self.similarity = policy;
        self
    }

    /// Sets the fill-reducing ordering used on the sparsifier.
    pub fn with_ordering(mut self, ordering: OrderingKind) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sparsifier solve strategy (monolithic grounded factor
    /// vs. sharded substructured solves).
    pub fn with_solve_strategy(mut self, strategy: SolveStrategy) -> Self {
        self.solve_strategy = strategy;
        self
    }

    /// Resolved probe-vector count for a graph with `n` vertices.
    pub fn resolved_num_vectors(&self, n: usize) -> usize {
        self.num_vectors.unwrap_or_else(|| {
            let log = (usize::BITS - n.max(2).leading_zeros()) as usize;
            log.clamp(4, 32)
        })
    }
}

impl Default for SparsifyConfig {
    /// Defaults to `σ² = 100`, a mid-range similarity suitable for both
    /// preconditioning and partitioning.
    fn default() -> Self {
        SparsifyConfig::new(100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = SparsifyConfig::new(50.0)
            .with_t_steps(3)
            .with_num_vectors(5)
            .with_max_rounds(7)
            .with_max_add_frac(0.1)
            .with_seed(1);
        assert_eq!(c.t_steps, 3);
        assert_eq!(c.num_vectors, Some(5));
        assert_eq!(c.max_rounds, 7);
        assert_eq!(c.max_add_frac, 0.1);
        assert_eq!(c.seed, 1);
    }

    #[test]
    fn vector_count_scales_logarithmically() {
        let c = SparsifyConfig::default();
        assert_eq!(c.resolved_num_vectors(16), 5);
        assert_eq!(c.resolved_num_vectors(1 << 20), 21);
        assert_eq!(c.resolved_num_vectors(2), 4); // clamped low
        assert!(c.resolved_num_vectors(usize::MAX) <= 32); // clamped high
    }

    #[test]
    fn explicit_vector_count_wins() {
        let c = SparsifyConfig::default().with_num_vectors(3);
        assert_eq!(c.resolved_num_vectors(1 << 20), 3);
    }
}
