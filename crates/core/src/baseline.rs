//! The Spielman–Srivastava effective-resistance sampling baseline
//! (paper reference \[17\]).
//!
//! The classical spectral sparsification alternative to edge filtering:
//! sample edges with replacement with probability proportional to
//! `w_e · R_eff(e)` (their *leverage score*) and reweight by the inverse
//! sampling probability. Resistances are estimated with the
//! Johnson–Lindenstrauss projection trick — `O(log n)` Laplacian solves
//! against random signed incidence combinations.
//!
//! Two contrasts with the similarity-aware method motivate the paper:
//!
//! 1. SS needs solves **with the original graph** `L_G` (expensive — the
//!    very problem sparsification is supposed to avoid), while edge
//!    filtering only ever solves with the sparsifier `L_P`;
//! 2. SS offers no direct control of the achieved similarity `σ²`; the
//!    sample count is chosen blindly, while edge filtering certifies its
//!    target with running `λmax/λmin` estimates.
//!
//! The `baseline_ss` Criterion bench compares both on equal edge budgets.

use crate::{CoreError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sass_graph::{Graph, GraphBuilder};
use sass_solver::GroundedSolver;

/// Effective resistance of every edge, estimated by Johnson–Lindenstrauss
/// projection: `R_eff(u,v) ≈ ‖Z(e_u − e_v)‖²` where the rows of `Z` are
/// `L⁺ Bᵀ W^{1/2} q_i` for `k` random ±1 vectors `q_i` over edges.
///
/// The multiplicative error is `1 ± ε` with `k = O(log(n)/ε²)`; `k = 32`
/// gives usable leverage scores for sampling purposes.
///
/// # Errors
///
/// Propagates factorization failure of `L_G` (disconnected graph).
///
/// # Example
///
/// ```
/// use sass_core::baseline::effective_resistances_jl;
/// use sass_graph::Graph;
/// use sass_solver::GroundedSolver;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // On a tree, every edge has leverage w_e * R_e = 1 exactly.
/// let g = Graph::from_edges(3, &[(0, 1, 2.0), (1, 2, 0.5)])?;
/// let solver = GroundedSolver::new(&g.laplacian(), Default::default())?;
/// let r = effective_resistances_jl(&g, &solver, 64, 1)?;
/// for (e, ri) in g.edges().iter().zip(&r) {
///     assert!((e.weight * ri - 1.0).abs() < 0.4); // JL is approximate
/// }
/// # Ok(())
/// # }
/// ```
pub fn effective_resistances_jl(
    g: &Graph,
    solver_g: &GroundedSolver,
    k_dims: usize,
    seed: u64,
) -> Result<Vec<f64>> {
    if solver_g.n() != g.n() {
        return Err(CoreError::InvalidConfig {
            context: "solver dimension does not match graph".to_string(),
        });
    }
    let n = g.n();
    let m = g.m();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r_est = vec![0.0f64; m];
    let mut y = vec![0.0f64; n];
    let mut z = vec![0.0f64; n];
    let scale = 1.0 / k_dims as f64;
    for _ in 0..k_dims.max(1) {
        // y = Bᵀ W^{1/2} q with q ∈ {±1}^m.
        for yi in y.iter_mut() {
            *yi = 0.0;
        }
        for e in g.edges() {
            let s = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let v = s * e.weight.sqrt();
            y[e.u as usize] += v;
            y[e.v as usize] -= v;
        }
        solver_g.solve_into(&y, &mut z);
        for (slot, e) in r_est.iter_mut().zip(g.edges()) {
            let d = z[e.u as usize] - z[e.v as usize];
            *slot += scale * d * d;
        }
    }
    Ok(r_est)
}

/// Exact effective resistance of every edge by one grounded solve per
/// edge — `O(m)` solves, for validation and small graphs only.
///
/// # Errors
///
/// Propagates factorization failure (disconnected graph).
pub fn effective_resistances_exact(g: &Graph, solver_g: &GroundedSolver) -> Result<Vec<f64>> {
    let n = g.n();
    let mut out = Vec::with_capacity(g.m());
    let mut b = vec![0.0f64; n];
    let mut x = vec![0.0f64; n];
    for e in g.edges() {
        b[e.u as usize] = 1.0;
        b[e.v as usize] = -1.0;
        solver_g.solve_into(&b, &mut x);
        out.push(x[e.u as usize] - x[e.v as usize]);
        b[e.u as usize] = 0.0;
        b[e.v as usize] = 0.0;
    }
    Ok(out)
}

/// Configuration for [`spielman_srivastava`].
#[derive(Debug, Clone, PartialEq)]
pub struct SsConfig {
    /// Number of samples drawn (with replacement). The classical theory
    /// uses `O(n log n / ε²)`; in practice a small multiple of `n`.
    pub samples: usize,
    /// JL projection dimension for resistance estimation.
    pub jl_dims: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SsConfig {
    fn default() -> Self {
        SsConfig {
            samples: 0,
            jl_dims: 32,
            seed: 0x55aa,
        }
    }
}

impl SsConfig {
    /// `samples = factor · n` for a graph with `n` vertices.
    pub fn with_sample_factor(n: usize, factor: f64) -> Self {
        SsConfig {
            samples: ((n as f64 * factor).ceil() as usize).max(1),
            ..Default::default()
        }
    }
}

/// Spielman–Srivastava sparsification by effective-resistance sampling.
///
/// Draws `config.samples` edges with replacement with probability
/// `p_e ∝ w_e·R_eff(e)` and adds each draw with weight `w_e/(q·p_e)`
/// (multiple draws of one edge accumulate), giving an unbiased Laplacian
/// estimator. The result is **not** a subgraph — weights are rescaled —
/// so generalized eigenvalues can fall below 1, unlike edge filtering.
///
/// # Errors
///
/// Propagates factorization failure and invalid configurations.
pub fn spielman_srivastava(g: &Graph, config: &SsConfig) -> Result<Graph> {
    if config.samples == 0 {
        return Err(CoreError::InvalidConfig {
            context: "SsConfig::samples must be positive".to_string(),
        });
    }
    let lg = g.laplacian();
    let solver = GroundedSolver::new(&lg, Default::default())?;
    let r_est = effective_resistances_jl(g, &solver, config.jl_dims, config.seed)?;

    // Leverage-score distribution.
    let scores: Vec<f64> = g
        .edges()
        .iter()
        .zip(&r_est)
        .map(|(e, &r)| (e.weight * r).max(1e-300))
        .collect();
    let total: f64 = scores.iter().sum();
    let mut cdf = Vec::with_capacity(scores.len());
    let mut acc = 0.0;
    for s in &scores {
        acc += s;
        cdf.push(acc);
    }

    let q = config.samples;
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5151);
    let mut accum = vec![0.0f64; g.m()];
    for _ in 0..q {
        let x = rng.gen_range(0.0..total);
        let idx = cdf.partition_point(|&c| c <= x).min(g.m() - 1);
        let p = scores[idx] / total;
        accum[idx] += g.edge(idx).weight / (q as f64 * p);
    }
    let mut b = GraphBuilder::new(g.n());
    let mut total_w = 0.0;
    let mut kept = 0usize;
    for (idx, &w) in accum.iter().enumerate() {
        if w > 0.0 {
            let e = g.edge(idx);
            b.add_edge(e.u as usize, e.v as usize, w);
            total_w += w;
            kept += 1;
        }
    }
    let sparsified = b.build();
    // Sampling gives no connectivity guarantee (unlike the tree-backbone
    // method -- one of the paper's selling points). Patch disconnections
    // with mean-weight links so downstream solvers stay usable while the
    // spectral penalty of the failure remains visible.
    let patch_w = if kept > 0 { total_w / kept as f64 } else { 1.0 };
    Ok(sass_graph::generators::connect_components(
        sparsified, patch_w,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_eigen::pencil::dense_generalized_eigenvalues;
    use sass_graph::generators::{circuit_grid, fem_mesh2d, grid2d, WeightModel};

    #[test]
    fn foster_theorem_exact() {
        // Σ_e w_e R_eff(e) = n − 1 for any connected graph.
        let g = fem_mesh2d(8, 8, 1);
        let solver = GroundedSolver::new(&g.laplacian(), Default::default()).unwrap();
        let r = effective_resistances_exact(&g, &solver).unwrap();
        let total: f64 = g.edges().iter().zip(&r).map(|(e, &ri)| e.weight * ri).sum();
        assert!(
            (total - (g.n() as f64 - 1.0)).abs() < 1e-8,
            "Foster sum {total} vs {}",
            g.n() - 1
        );
    }

    #[test]
    fn jl_estimates_track_exact() {
        let g = grid2d(9, 9, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 2);
        let solver = GroundedSolver::new(&g.laplacian(), Default::default()).unwrap();
        let exact = effective_resistances_exact(&g, &solver).unwrap();
        let jl = effective_resistances_jl(&g, &solver, 64, 3).unwrap();
        for (e, j) in exact.iter().zip(&jl) {
            assert!(*j > 0.3 * e && *j < 3.0 * e, "JL {j} vs exact {e}");
        }
        // Foster's sum should hold approximately for the JL estimates too.
        let total: f64 = g
            .edges()
            .iter()
            .zip(&jl)
            .map(|(e, &ri)| e.weight * ri)
            .sum();
        let expect = g.n() as f64 - 1.0;
        assert!(
            (total - expect).abs() < 0.25 * expect,
            "JL Foster sum {total}"
        );
    }

    #[test]
    fn tree_edges_have_unit_leverage() {
        // On a tree every edge has w_e R_eff(e) = 1.
        let g =
            sass_graph::Graph::from_edges(5, &[(0, 1, 2.0), (1, 2, 0.5), (1, 3, 3.0), (3, 4, 1.0)])
                .unwrap();
        let solver = GroundedSolver::new(&g.laplacian(), Default::default()).unwrap();
        let r = effective_resistances_exact(&g, &solver).unwrap();
        for (e, &ri) in g.edges().iter().zip(&r) {
            assert!((e.weight * ri - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ss_sparsifier_quality_improves_with_samples() {
        let g = circuit_grid(10, 10, 0.2, 4);
        let lg = g.laplacian();
        let kappa = |p: &Graph| -> f64 {
            let vals = dense_generalized_eigenvalues(&lg, &p.laplacian()).unwrap();
            vals.last().unwrap() / vals.first().unwrap()
        };
        let light = spielman_srivastava(&g, &SsConfig::with_sample_factor(g.n(), 2.0)).unwrap();
        let heavy = spielman_srivastava(&g, &SsConfig::with_sample_factor(g.n(), 12.0)).unwrap();
        let (kl, kh) = (kappa(&light), kappa(&heavy));
        assert!(
            kh < kl,
            "more samples should improve condition: light {kl} vs heavy {kh}"
        );
    }

    #[test]
    fn ss_output_is_sparser_than_input_for_dense_graphs() {
        let g = sass_graph::generators::dense_random(300, 6_000, 5);
        let sp = spielman_srivastava(&g, &SsConfig::with_sample_factor(g.n(), 4.0)).unwrap();
        assert!(sp.m() < g.m());
        assert!(sass_graph::traverse::is_connected(&sp));
    }

    #[test]
    fn ss_rejects_zero_samples() {
        let g = grid2d(4, 4, WeightModel::Unit, 0);
        assert!(matches!(
            spielman_srivastava(&g, &SsConfig::default()),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn ss_expected_laplacian_is_unbiased_in_total_weight() {
        // The estimator is unbiased edge-by-edge; with many samples the
        // total weight should approach the original's.
        let g = grid2d(8, 8, WeightModel::Unit, 6);
        let sp = spielman_srivastava(&g, &SsConfig::with_sample_factor(g.n(), 40.0)).unwrap();
        let ratio = sp.total_weight() / g.total_weight();
        assert!((0.7..1.3).contains(&ratio), "total weight ratio {ratio}");
    }
}
