//! Opt-in solve strategies for sparsifier Laplacians.
//!
//! The pipeline's downstream consumers (preconditioning, embeddings,
//! effective-resistance queries) all reduce to repeated exact solves with
//! the sparsifier Laplacian `L_P`. [`SolveStrategy`] picks how those
//! solves are served:
//!
//! - [`SolveStrategy::Monolithic`] (default): one grounded LDLᵀ factor of
//!   the whole sparsifier ([`sass_solver::GroundedSolver`]).
//! - [`SolveStrategy::Sharded`]: domain-decomposed substructuring
//!   ([`sass_solver::ShardedSolver`]) — per-domain factors built
//!   concurrently around a separator Schur complement, optionally
//!   out-of-core (at most one domain factor resident). Results agree
//!   with the monolithic path to the tolerance documented in
//!   [`sass_solver::substructure`].
//!
//! The strategy lives on [`SparsifyConfig`]
//! ([`with_solve_strategy`](crate::SparsifyConfig::with_solve_strategy)),
//! and [`Sparsifier::build_solver`](crate::Sparsifier::build_solver)
//! materializes the chosen solver for a finished sparsifier.

use crate::{Result, Sparsifier, SparsifyConfig};
use sass_solver::{GroundedSolver, ShardOptions, ShardedSolver};
use sass_sparse::CsrMatrix;

/// How exact solves against the sparsifier Laplacian are served — see
/// the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveStrategy {
    /// One grounded LDLᵀ factorization of the whole Laplacian.
    #[default]
    Monolithic,
    /// Domain-decomposed substructured solves (vertex-separator domains,
    /// per-domain factors, separator Schur complement).
    Sharded {
        /// Requested domain count; `0` picks a size-based heuristic.
        domains: usize,
        /// Spill domain matrices to disk and keep at most one domain
        /// factor resident at a time.
        out_of_core: bool,
    },
}

/// A solver for the sparsifier Laplacian, built per
/// [`SolveStrategy`] — one exact-solve interface over both backends.
#[derive(Debug)]
pub enum SparsifierSolver {
    /// The monolithic grounded factorization.
    Grounded(Box<GroundedSolver>),
    /// The substructured (domain-decomposed) solver.
    Sharded(Box<ShardedSolver>),
}

impl SparsifierSolver {
    /// Builds the solver chosen by `config.solve_strategy` for the
    /// Laplacian `l`, using `config.ordering` for every sparse factor.
    ///
    /// # Errors
    ///
    /// Propagates solver construction failures
    /// ([`CoreError::Solver`](crate::CoreError::Solver) — singular
    /// grounded system, spill I/O).
    pub fn build(l: &CsrMatrix, config: &SparsifyConfig) -> Result<Self> {
        match config.solve_strategy {
            SolveStrategy::Monolithic => Ok(SparsifierSolver::Grounded(Box::new(
                GroundedSolver::new(l, config.ordering)?,
            ))),
            SolveStrategy::Sharded {
                domains,
                out_of_core,
            } => {
                let opts = ShardOptions {
                    domains,
                    out_of_core,
                    spill_dir: None,
                };
                Ok(SparsifierSolver::Sharded(Box::new(ShardedSolver::new(
                    l,
                    config.ordering,
                    &opts,
                )?)))
            }
        }
    }

    /// Short lowercase strategy name for bench labels and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            SparsifierSolver::Grounded(_) => "monolithic",
            SparsifierSolver::Sharded(_) => "sharded",
        }
    }

    /// Dimension of the system.
    pub fn n(&self) -> usize {
        match self {
            SparsifierSolver::Grounded(s) => s.n(),
            SparsifierSolver::Sharded(s) => s.n(),
        }
    }

    /// Solves `L x = center(b)`, returning the mean-zero solution
    /// `L⁺ b` (both strategies share the grounded convention).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        match self {
            SparsifierSolver::Grounded(s) => s.solve(b),
            SparsifierSolver::Sharded(s) => s.solve(b),
        }
    }

    /// Solves against many right-hand sides through the strategy's
    /// blocked multi-RHS path.
    ///
    /// # Panics
    ///
    /// Panics if any right-hand side has the wrong length.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        match self {
            SparsifierSolver::Grounded(s) => s.solve_many(rhs),
            SparsifierSolver::Sharded(s) => s.solve_many(rhs),
        }
    }

    /// Approximate resident memory held by the factorization(s), in
    /// bytes. For an out-of-core sharded solver this is the currently
    /// resident footprint, not the on-disk total.
    pub fn memory_bytes(&self) -> usize {
        match self {
            SparsifierSolver::Grounded(s) => s.memory_bytes(),
            SparsifierSolver::Sharded(s) => s.memory_bytes(),
        }
    }
}

impl Sparsifier {
    /// Materializes the exact solver for this sparsifier's Laplacian,
    /// honoring the configuration's
    /// [`solve_strategy`](SparsifyConfig::solve_strategy).
    ///
    /// # Errors
    ///
    /// Propagates solver construction failures (see
    /// [`SparsifierSolver::build`]).
    ///
    /// # Example
    ///
    /// ```
    /// use sass_core::{sparsify, SolveStrategy, SparsifyConfig};
    /// use sass_graph::generators::{grid2d, WeightModel};
    ///
    /// # fn main() -> Result<(), sass_core::CoreError> {
    /// let g = grid2d(12, 12, WeightModel::Unit, 1);
    /// let config = SparsifyConfig::new(200.0)
    ///     .with_solve_strategy(SolveStrategy::Sharded { domains: 3, out_of_core: false });
    /// let sp = sparsify(&g, &config)?;
    /// let solver = sp.build_solver()?;
    /// assert_eq!(solver.name(), "sharded");
    /// let mut b: Vec<f64> = (0..g.n()).map(|i| (i as f64).sin()).collect();
    /// sass_sparse::dense::center(&mut b);
    /// let x = solver.solve(&b);
    /// assert!(sp.graph().laplacian().residual_norm(&x, &b) < 1e-8);
    /// # Ok(())
    /// # }
    /// ```
    pub fn build_solver(&self) -> Result<SparsifierSolver> {
        SparsifierSolver::build(&self.graph.laplacian(), &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparsify;
    use sass_graph::generators::{grid2d, WeightModel};
    use sass_sparse::dense;

    #[test]
    fn strategies_agree_on_a_sparsifier() {
        let g = grid2d(14, 10, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 3);
        let mono_cfg = SparsifyConfig::new(150.0);
        let sp = sparsify(&g, &mono_cfg).unwrap();
        let mono = sp.build_solver().unwrap();
        assert_eq!(mono.name(), "monolithic");
        let shard_cfg = mono_cfg
            .clone()
            .with_solve_strategy(SolveStrategy::Sharded {
                domains: 4,
                out_of_core: false,
            });
        let sharded = SparsifierSolver::build(&sp.graph().laplacian(), &shard_cfg).unwrap();
        assert_eq!(sharded.name(), "sharded");
        assert_eq!(mono.n(), sharded.n());
        let mut b: Vec<f64> = (0..g.n())
            .map(|i| ((i * 5 % 17) as f64 * 0.21).cos())
            .collect();
        dense::center(&mut b);
        assert!(dense::rel_diff(&mono.solve(&b), &sharded.solve(&b)) < 1e-8);
        let rhs = vec![b.clone(), b.iter().map(|v| -v).collect()];
        let mm = mono.solve_many(&rhs);
        let sm = sharded.solve_many(&rhs);
        for (a, b) in mm.iter().zip(&sm) {
            assert!(dense::rel_diff(a, b) < 1e-8);
        }
        assert!(mono.memory_bytes() > 0);
        assert!(sharded.memory_bytes() > 0);
    }

    #[test]
    fn out_of_core_strategy_round_trips() {
        let g = grid2d(10, 10, WeightModel::Unit, 5);
        let cfg = SparsifyConfig::new(150.0).with_solve_strategy(SolveStrategy::Sharded {
            domains: 3,
            out_of_core: true,
        });
        let sp = sparsify(&g, &cfg).unwrap();
        let solver = sp.build_solver().unwrap();
        let mut b: Vec<f64> = (0..g.n()).map(|i| (i as f64 * 0.4).sin()).collect();
        dense::center(&mut b);
        let x = solver.solve(&b);
        assert!(sp.graph().laplacian().residual_norm(&x, &b) < 1e-8);
    }

    #[test]
    fn default_strategy_is_monolithic() {
        assert_eq!(SolveStrategy::default(), SolveStrategy::Monolithic);
        assert_eq!(
            SparsifyConfig::default().solve_strategy,
            SolveStrategy::Monolithic
        );
    }
}
