//! Off-tree edge filtering by normalized Joule heat (paper §3.4–3.5).
//!
//! Spectral sparsification acts as a *low-pass graph filter*: the sparsifier
//! must preserve the smooth (low-frequency) Laplacian eigenvectors, and the
//! off-tree edges worth recovering are the ones carrying high Joule heat
//! under the dominant-eigenvector embedding. The paper turns the desired
//! similarity `σ²` into an explicit heat threshold
//!
//! ```text
//! θσ ≈ (σ² · λmin / λmax)^(2t+1)        (Eq. 15)
//! ```
//!
//! and keeps exactly the edges with `heat(e)/heat_max ≥ θσ`.

use sass_sparse::{kernel, pool};

/// Below this many candidates [`select_edges`] scores serially under
/// automatic pool sizing.
const MIN_PAR_CANDIDATES: usize = 16_384;
/// Candidates per pool lane above the crossover.
const CANDIDATES_PER_WORKER: usize = 8_192;

/// The normalized-heat threshold `θσ` of paper Eq. 15.
///
/// Returns a value clamped to `(0, 1]`: when the current condition estimate
/// `λmax/λmin` already meets `σ²`, the threshold saturates at 1 and no edge
/// passes the filter.
///
/// A *non-finite* ratio — e.g. infinite `λmin` and `λmax` estimates from a
/// degenerate pencil dividing to NaN — also saturates to 1 rather than
/// leaking NaN through the clamp: an unusable condition estimate means no
/// edge can justify recovery, and the documented `(0, 1]` contract holds
/// for every input the asserts admit.
///
/// # Panics
///
/// Panics if any argument is non-positive or NaN.
///
/// # Example
///
/// ```
/// use sass_core::filter::heat_threshold;
///
/// // Far from the target: tiny threshold, many edges pass.
/// let theta = heat_threshold(100.0, 1.0, 10_000.0, 2);
/// assert!((theta - 0.01f64.powi(5)).abs() < 1e-18);
/// // Already at the target: threshold saturates.
/// assert_eq!(heat_threshold(100.0, 1.0, 50.0, 2), 1.0);
/// ```
pub fn heat_threshold(sigma2: f64, lambda_min: f64, lambda_max: f64, t: usize) -> f64 {
    assert!(sigma2 > 0.0, "sigma2 must be positive");
    assert!(lambda_min > 0.0, "lambda_min must be positive");
    assert!(lambda_max > 0.0, "lambda_max must be positive");
    let ratio = sigma2 * lambda_min / lambda_max;
    // `f64::min` would already pick 1.0 over NaN, but that NaN-swallowing
    // is an accident of Rust's min semantics — saturate explicitly so the
    // (0, 1] guarantee survives ∞/∞ and 0·∞ estimates by design.
    let ratio = if ratio.is_finite() {
        ratio.min(1.0)
    } else {
        1.0
    };
    ratio.powi(2 * t as i32 + 1)
}

/// Candidate off-tree edges that pass the heat filter, sorted by
/// descending heat (ties broken by ascending edge id) and truncated to
/// `max_count`.
///
/// Returns `(edge id, heat)` pairs. Edges with zero heat never pass, and
/// *non-finite* heats (a NaN or infinite value from a degenerate embedding
/// with zero effective resistance) are filtered out before the cutoff
/// comparison — a poisoned candidate drops out instead of panicking the
/// sparsification pipeline or outranking every finite edge.
///
/// Large candidate sets are scored in parallel over the persistent worker
/// pool: each lane filters a contiguous span and the per-span survivors
/// are concatenated **in span order**, so the pre-sort candidate order —
/// and therefore the final (stably sorted) selection — is identical to
/// the serial filter at every worker count.
///
/// # Panics
///
/// Panics if `off_tree.len() != heats.len()`.
pub fn select_edges(
    off_tree: &[u32],
    heats: &[f64],
    heat_max: f64,
    theta: f64,
    max_count: usize,
) -> Vec<(u32, f64)> {
    assert_eq!(off_tree.len(), heats.len(), "heat vector length mismatch");
    if heat_max <= 0.0 || max_count == 0 {
        return Vec::new();
    }
    let cutoff = theta * heat_max;
    let p = pool::Pool::global();
    let workers = p.workers_for(off_tree.len(), MIN_PAR_CANDIDATES, CANDIDATES_PER_WORKER);
    let spans = pool::even_spans(off_tree.len(), workers);
    let mut passing: Vec<(u32, f64)> = p
        .parallel_reduce(
            &spans,
            |_, (lo, hi)| {
                // SIMD-dispatched scan; selects the same pairs in the same
                // order as the scalar filter (see `kernel`), so the
                // span-order concatenation below stays deterministic.
                kernel::scan_heat_candidates(&off_tree[lo..hi], &heats[lo..hi], cutoff)
            },
            |mut a, b| {
                a.extend(b);
                a
            },
        )
        .unwrap_or_default();
    // Heat-descending with ascending-id tie-break — a strict total order
    // (ids are unique), so the result equals the old stable sort of the
    // id-ordered scan, while `select_nth_unstable_by` caps the sort at
    // the `max_count` survivors instead of the whole passing set.
    let by_heat_desc =
        |a: &(u32, f64), b: &(u32, f64)| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0));
    if passing.len() > max_count {
        passing.select_nth_unstable_by(max_count - 1, by_heat_desc);
        passing.truncate(max_count);
    }
    passing.sort_unstable_by(by_heat_desc);
    passing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_monotone_in_sigma() {
        // Larger sigma^2 target => larger threshold => fewer edges kept.
        let t50 = heat_threshold(50.0, 1.2, 5000.0, 2);
        let t200 = heat_threshold(200.0, 1.2, 5000.0, 2);
        assert!(t200 > t50);
        assert!(t50 > 0.0 && t200 <= 1.0);
    }

    #[test]
    fn threshold_grows_as_condition_improves() {
        // As lambda_max shrinks toward sigma^2 * lambda_min the threshold
        // approaches 1 (fewer and fewer edges needed).
        let early = heat_threshold(100.0, 1.0, 50_000.0, 2);
        let late = heat_threshold(100.0, 1.0, 200.0, 2);
        assert!(late > early);
        assert_eq!(heat_threshold(100.0, 1.0, 100.0, 2), 1.0);
    }

    #[test]
    fn select_respects_threshold_and_order() {
        let ids = [10u32, 11, 12, 13];
        let heats = [0.5, 1.0, 0.05, 0.2];
        let picked = select_edges(&ids, &heats, 1.0, 0.1, 10);
        let got: Vec<u32> = picked.iter().map(|&(id, _)| id).collect();
        assert_eq!(got, vec![11, 10, 13]); // 12 is filtered out (0.05 < 0.1)
    }

    #[test]
    fn select_truncates() {
        let ids = [0u32, 1, 2, 3, 4];
        let heats = [5.0, 4.0, 3.0, 2.0, 1.0];
        let picked = select_edges(&ids, &heats, 5.0, 0.0, 2);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].0, 0);
        assert_eq!(picked[1].0, 1);
    }

    #[test]
    fn empty_inputs() {
        assert!(select_edges(&[], &[], 0.0, 0.5, 10).is_empty());
        let picked = select_edges(&[1], &[1.0], 1.0, 0.5, 0);
        assert!(picked.is_empty());
    }

    #[test]
    #[should_panic(expected = "sigma2")]
    fn rejects_bad_sigma() {
        heat_threshold(0.0, 1.0, 10.0, 2);
    }

    /// Regression: a NaN heat in the candidate list (degenerate embedding
    /// with zero effective resistance) used to be able to reach a
    /// `partial_cmp().expect()` sort — it must silently drop out instead.
    #[test]
    fn select_drops_non_finite_heats() {
        let ids = [1u32, 2, 3, 4, 5];
        let heats = [0.9, f64::NAN, 0.5, f64::INFINITY, f64::NEG_INFINITY];
        let picked = select_edges(&ids, &heats, 1.0, 0.1, 10);
        let got: Vec<u32> = picked.iter().map(|&(id, _)| id).collect();
        assert_eq!(got, vec![1, 3]);
        // All-NaN heats: nothing passes, nothing panics.
        assert!(select_edges(&[7], &[f64::NAN], 1.0, 0.1, 10).is_empty());
    }

    /// Regression: a non-finite condition estimate must saturate the
    /// threshold at 1 instead of returning NaN through the `.min` clamp.
    #[test]
    fn threshold_saturates_on_non_finite_ratio() {
        // λmin = λmax = ∞ passes the positivity asserts but divides to NaN.
        let theta = heat_threshold(100.0, f64::INFINITY, f64::INFINITY, 2);
        assert_eq!(theta, 1.0);
        // An infinite ratio (λmin = ∞, finite λmax) saturates too.
        assert_eq!(heat_threshold(100.0, f64::INFINITY, 1.0, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "lambda_max")]
    fn rejects_nan_lambda_max() {
        heat_threshold(100.0, 1.0, f64::NAN, 2);
    }
}
