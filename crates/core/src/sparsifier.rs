use crate::SparsifyConfig;
use sass_graph::Graph;

/// Telemetry of one densification round (paper §3.7).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStats {
    /// 1-based round number.
    pub round: usize,
    /// Edges in the sparsifier when the round started.
    pub edges: usize,
    /// `λmax` estimate at the start of the round.
    pub lambda_max: f64,
    /// `λmin` estimate at the start of the round.
    pub lambda_min: f64,
    /// Condition estimate `λmax/λmin` at the start of the round.
    pub condition: f64,
    /// Heat threshold `θσ` used for filtering (1.0 when already converged).
    pub threshold: f64,
    /// Off-tree edges passing the heat filter.
    pub candidates: usize,
    /// Edges actually added after similarity pruning.
    pub added: usize,
}

/// The result of similarity-aware sparsification: the sparsified subgraph
/// plus full provenance (tree backbone, recovered edges, per-round stats).
///
/// Edge ids refer to the *original* graph's edge list.
#[derive(Debug, Clone)]
pub struct Sparsifier {
    pub(crate) graph: Graph,
    pub(crate) tree_edges: Vec<u32>,
    pub(crate) added_edges: Vec<u32>,
    pub(crate) rounds: Vec<RoundStats>,
    pub(crate) converged: bool,
    pub(crate) config: SparsifyConfig,
}

impl Sparsifier {
    /// The sparsified graph `P` (same vertex set as the input).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the sparsifier, returning the subgraph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Host-graph ids of the spanning-tree backbone edges.
    pub fn tree_edge_ids(&self) -> &[u32] {
        &self.tree_edges
    }

    /// Host-graph ids of the off-tree edges recovered by filtering.
    pub fn added_edge_ids(&self) -> &[u32] {
        &self.added_edges
    }

    /// Host-graph ids of all sparsifier edges (tree + recovered), sorted.
    pub fn edge_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self
            .tree_edges
            .iter()
            .chain(&self.added_edges)
            .copied()
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Per-round telemetry, in order.
    pub fn rounds(&self) -> &[RoundStats] {
        &self.rounds
    }

    /// Whether the `σ²` target was certified met by the estimates.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The final condition estimate `λmax/λmin` (from the last round's
    /// measurement).
    pub fn condition_estimate(&self) -> f64 {
        self.rounds.last().map_or(1.0, |r| r.condition)
    }

    /// Edge count of the sparsifier.
    pub fn edge_count(&self) -> usize {
        self.graph.m()
    }

    /// Density `|Es| / |V|` — the paper's Table 2 metric.
    pub fn density(&self) -> f64 {
        if self.graph.n() == 0 {
            0.0
        } else {
            self.graph.m() as f64 / self.graph.n() as f64
        }
    }

    /// The configuration that produced this sparsifier.
    pub fn config(&self) -> &SparsifyConfig {
        &self.config
    }
}

impl std::fmt::Display for Sparsifier {
    /// Renders a human-readable run report: summary line plus the
    /// per-round densification table.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sparsifier: {} vertices, {} edges ({} tree + {} recovered), \
             target sigma^2 = {}, condition ~{:.1}, {}",
            self.graph.n(),
            self.graph.m(),
            self.tree_edges.len(),
            self.added_edges.len(),
            self.config.sigma2,
            self.condition_estimate(),
            if self.converged {
                "converged"
            } else {
                "NOT converged"
            },
        )?;
        writeln!(
            f,
            "{:>5} {:>8} {:>12} {:>10} {:>10} {:>10} {:>6}",
            "round", "edges", "lambda_max", "lambda_min", "condition", "candidates", "added"
        )?;
        for r in &self.rounds {
            writeln!(
                f,
                "{:>5} {:>8} {:>12.2} {:>10.4} {:>10.1} {:>10} {:>6}",
                r.round, r.edges, r.lambda_max, r.lambda_min, r.condition, r.candidates, r.added
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_are_consistent() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let sp = Sparsifier {
            graph: g.clone(),
            tree_edges: vec![0, 1],
            added_edges: vec![],
            rounds: vec![RoundStats {
                round: 1,
                edges: 2,
                lambda_max: 3.0,
                lambda_min: 1.5,
                condition: 2.0,
                threshold: 1.0,
                candidates: 0,
                added: 0,
            }],
            converged: true,
            config: SparsifyConfig::default(),
        };
        assert_eq!(sp.edge_count(), 2);
        assert_eq!(sp.edge_ids(), vec![0, 1]);
        assert!((sp.density() - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(sp.condition_estimate(), 2.0);
        assert!(sp.converged());
        assert_eq!(sp.rounds().len(), 1);
        assert_eq!(sp.config().sigma2, 100.0);
        let report = sp.to_string();
        assert!(report.contains("converged"));
        assert!(report.contains("round"));
        assert_eq!(sp.into_graph().m(), 2);
    }
}
