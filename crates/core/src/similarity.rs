//! Similarity-aware pruning of candidate off-tree edges (paper §3.7 step 6).
//!
//! Two off-tree edges are *spectrally similar* when they fix the same large
//! generalized eigenvalue — adding both wastes budget. The paper prescribes
//! "check the similarity of each selected off-tree edge and only add
//! dissimilar edges" without fixing the test, so this module offers three
//! policies of increasing fidelity/cost (ablated in `sass-bench`):
//!
//! - [`SimilarityPolicy::None`]: accept everything the filter passed,
//! - [`SimilarityPolicy::EndpointMark`] *(default)*: accept an edge only if
//!   at least one endpoint is untouched by a previously accepted edge this
//!   round — a cheap proxy for "fixes a different eigenvector",
//! - [`SimilarityPolicy::PathOverlap`]: accept an edge only if at most a
//!   fraction of its tree path is already covered by accepted edges — the
//!   closest to the spectral meaning (overlapping tree paths ⇒ overlapping
//!   heat), at the cost of walking tree paths.
//!
//! Unlike the heat scoring and filtering stages, nothing here routes
//! through the SIMD kernel layer ([`sass_sparse::kernel`]): the policies
//! are boolean endpoint marking and tree-path walks with no
//! floating-point inner loops for a vector unit to help with.

use sass_graph::{Graph, LcaIndex, RootedTree};

/// Policy deciding which filtered candidate edges are mutually redundant.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum SimilarityPolicy {
    /// No pruning.
    None,
    /// Skip edges whose both endpoints were already touched this round.
    #[default]
    EndpointMark,
    /// Skip edges whose tree path is more than `max_overlap` covered by
    /// previously accepted edges this round (`0.0 ⇒ disjoint paths only`).
    PathOverlap {
        /// Maximum tolerated covered fraction of the candidate's tree path.
        max_overlap: f64,
    },
}

/// Applies the policy to heat-descending candidates, returning the accepted
/// edge ids (still heat-descending).
///
/// `candidates` must be sorted by descending heat (as produced by
/// [`crate::filter::select_edges`]) so that the highest-impact edge of each
/// similarity class is the one kept.
///
/// # Panics
///
/// Panics if an edge id is out of range for `g`.
///
/// # Example
///
/// ```
/// use sass_core::similarity::{filter_similar, SimilarityPolicy};
/// use sass_graph::{spanning, Graph, LcaIndex, RootedTree};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0),
///                                (0, 2, 1.0), (0, 3, 1.0)])?;
/// let tree = RootedTree::new(&g, spanning::bfs_spanning_tree(&g, 0)?, 0)?;
/// let lca = LcaIndex::new(&tree);
/// let candidates: Vec<(u32, f64)> =
///     tree.off_tree_edges(&g).into_iter().map(|id| (id, 1.0)).collect();
/// let kept = filter_similar(SimilarityPolicy::EndpointMark, &g, &tree, &lca, &candidates);
/// assert!(!kept.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn filter_similar(
    policy: SimilarityPolicy,
    g: &Graph,
    tree: &RootedTree,
    lca: &LcaIndex,
    candidates: &[(u32, f64)],
) -> Vec<u32> {
    match policy {
        SimilarityPolicy::None => candidates.iter().map(|&(id, _)| id).collect(),
        SimilarityPolicy::EndpointMark => {
            let mut touched = vec![false; g.n()];
            let mut accepted = Vec::new();
            for &(id, _) in candidates {
                let e = g.edge(id as usize);
                let (u, v) = (e.u as usize, e.v as usize);
                if touched[u] && touched[v] {
                    continue;
                }
                touched[u] = true;
                touched[v] = true;
                accepted.push(id);
            }
            accepted
        }
        SimilarityPolicy::PathOverlap { max_overlap } => {
            let mut covered = vec![false; g.m()];
            let mut accepted = Vec::new();
            let mut path: Vec<u32> = Vec::new();
            for &(id, _) in candidates {
                let e = g.edge(id as usize);
                let (u, v) = (e.u as usize, e.v as usize);
                let l = lca.lca(u, v);
                path.clear();
                let mut walk = |mut x: usize| {
                    while x != l {
                        let pe = tree.parent_edge(x).expect("non-root on path has parent");
                        path.push(pe);
                        x = tree.parent(x).expect("non-root on path has parent");
                    }
                };
                walk(u);
                walk(v);
                let overlap = path.iter().filter(|&&pe| covered[pe as usize]).count() as f64;
                if path.is_empty() || overlap / path.len() as f64 <= max_overlap {
                    for &pe in &path {
                        covered[pe as usize] = true;
                    }
                    accepted.push(id);
                }
            }
            accepted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_graph::spanning;

    /// Ladder graph: two rails 0-1-2-3 and 4-5-6-7 plus rungs.
    fn ladder() -> (Graph, RootedTree, LcaIndex) {
        let mut edges = Vec::new();
        for i in 0..3 {
            edges.push((i, i + 1, 1.0));
            edges.push((i + 4, i + 5, 1.0));
        }
        for i in 0..4 {
            edges.push((i, i + 4, 1.0));
        }
        let g = Graph::from_edges(8, &edges).unwrap();
        let ids = spanning::bfs_spanning_tree(&g, 0).unwrap();
        let tree = RootedTree::new(&g, ids, 0).unwrap();
        let lca = LcaIndex::new(&tree);
        (g, tree, lca)
    }

    fn off_tree_candidates(g: &Graph, tree: &RootedTree) -> Vec<(u32, f64)> {
        tree.off_tree_edges(g)
            .into_iter()
            .enumerate()
            .map(|(i, id)| (id, 100.0 - i as f64)) // fake descending heats
            .collect()
    }

    #[test]
    fn none_accepts_all() {
        let (g, tree, lca) = ladder();
        let cands = off_tree_candidates(&g, &tree);
        let got = filter_similar(SimilarityPolicy::None, &g, &tree, &lca, &cands);
        assert_eq!(got.len(), cands.len());
    }

    #[test]
    fn endpoint_mark_rejects_shared_endpoints() {
        let g = Graph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
            ],
        )
        .unwrap();
        let ids = spanning::bfs_spanning_tree(&g, 0).unwrap();
        let tree = RootedTree::new(&g, ids, 0).unwrap();
        let lca = LcaIndex::new(&tree);
        // Candidates share endpoint 0; with both endpoints already marked
        // after the first acceptance the second must check (0 marked,
        // 3 or 2 fresh) — so both are accepted (only *both*-marked skips).
        let cands: Vec<(u32, f64)> = tree
            .off_tree_edges(&g)
            .into_iter()
            .map(|id| (id, 1.0))
            .collect();
        let got = filter_similar(SimilarityPolicy::EndpointMark, &g, &tree, &lca, &cands);
        assert_eq!(got.len(), 2);
        // But a third edge whose endpoints are both already touched is
        // dropped: simulate by repeating the candidate list.
        let doubled: Vec<(u32, f64)> = cands.iter().chain(&cands).copied().collect();
        let got2 = filter_similar(SimilarityPolicy::EndpointMark, &g, &tree, &lca, &doubled);
        assert_eq!(got2.len(), 2);
    }

    #[test]
    fn path_overlap_zero_keeps_disjoint_paths() {
        let (g, tree, lca) = ladder();
        let cands = off_tree_candidates(&g, &tree);
        let strict = filter_similar(
            SimilarityPolicy::PathOverlap { max_overlap: 0.0 },
            &g,
            &tree,
            &lca,
            &cands,
        );
        let lax = filter_similar(
            SimilarityPolicy::PathOverlap { max_overlap: 1.0 },
            &g,
            &tree,
            &lca,
            &cands,
        );
        assert!(strict.len() <= lax.len());
        assert_eq!(lax.len(), cands.len());
        assert!(!strict.is_empty());
    }

    #[test]
    fn first_candidate_always_accepted() {
        let (g, tree, lca) = ladder();
        let cands = off_tree_candidates(&g, &tree);
        for policy in [
            SimilarityPolicy::None,
            SimilarityPolicy::EndpointMark,
            SimilarityPolicy::PathOverlap { max_overlap: 0.0 },
        ] {
            let got = filter_similar(policy, &g, &tree, &lca, &cands);
            assert_eq!(got.first(), Some(&cands[0].0), "{policy:?}");
        }
    }

    #[test]
    fn empty_candidates() {
        let (g, tree, lca) = ladder();
        let got = filter_similar(SimilarityPolicy::EndpointMark, &g, &tree, &lca, &[]);
        assert!(got.is_empty());
    }
}
