use std::error::Error;
use std::fmt;

/// Errors produced by the sparsification pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying graph operation failed.
    Graph(sass_graph::GraphError),
    /// An underlying solver operation failed.
    Solver(sass_solver::SolverError),
    /// An underlying eigensolver operation failed.
    Eigen(sass_eigen::EigenError),
    /// The configuration is invalid.
    InvalidConfig {
        /// Description of the bad setting.
        context: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Solver(e) => write!(f, "solver error: {e}"),
            CoreError::Eigen(e) => write!(f, "eigen error: {e}"),
            CoreError::InvalidConfig { context } => write!(f, "invalid config: {context}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Graph(e) => Some(e),
            CoreError::Solver(e) => Some(e),
            CoreError::Eigen(e) => Some(e),
            CoreError::InvalidConfig { .. } => None,
        }
    }
}

impl From<sass_graph::GraphError> for CoreError {
    fn from(e: sass_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<sass_solver::SolverError> for CoreError {
    fn from(e: sass_solver::SolverError) -> Self {
        CoreError::Solver(e)
    }
}

impl From<sass_eigen::EigenError> for CoreError {
    fn from(e: sass_eigen::EigenError) -> Self {
        CoreError::Eigen(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = sass_graph::GraphError::Disconnected { components: 2 }.into();
        assert!(e.to_string().contains("graph"));
        assert!(e.source().is_some());
        let c = CoreError::InvalidConfig {
            context: "sigma2 must exceed 1".into(),
        };
        assert!(c.to_string().contains("sigma2"));
    }
}
