//! The iterative graph densification driver (paper §3.7).
//!
//! Each round: factor the current sparsifier, estimate the extreme
//! generalized eigenvalues, stop if `λmax/λmin ≤ σ²`, otherwise embed the
//! remaining off-tree edges, filter them by normalized Joule heat against
//! `θσ`, prune mutually-similar candidates, add the survivors, repeat.

use crate::embedding::off_tree_heat;
use crate::extremes::{estimate_lambda_max, estimate_lambda_min};
use crate::filter::{heat_threshold, select_edges};
use crate::similarity::filter_similar;
use crate::{CoreError, Result, RoundStats, Sparsifier, SparsifyConfig};
use sass_graph::{spanning, Graph, LcaIndex, RootedTree};
use sass_solver::GroundedSolver;
use sass_sparse::{CooMatrix, CsrMatrix};

/// Builds the Laplacian of the subgraph of `g` given by `edge_ids` without
/// materializing the subgraph.
fn laplacian_of_edges(g: &Graph, edge_ids: &[u32]) -> CsrMatrix {
    let n = g.n();
    let mut coo = CooMatrix::with_capacity(n, n, n + 2 * edge_ids.len());
    let mut diag = vec![0.0f64; n];
    for &id in edge_ids {
        let e = g.edge(id as usize);
        coo.push(e.u as usize, e.v as usize, -e.weight);
        coo.push(e.v as usize, e.u as usize, -e.weight);
        diag[e.u as usize] += e.weight;
        diag[e.v as usize] += e.weight;
    }
    for (v, &d) in diag.iter().enumerate() {
        coo.push(v, v, d);
    }
    coo.to_csr()
}

/// Runs similarity-aware spectral sparsification on a connected graph.
///
/// Returns a [`Sparsifier`] whose relative condition number against `g` is
/// estimated to be at most `config.sigma2`. The guarantee is as strong as
/// the paper's: `λmax` is a power-iteration lower bound and `λmin` a
/// degree-ratio upper bound, so the reported condition estimate can
/// understate the truth by a modest factor (validated against dense
/// eigensolves in this crate's tests).
///
/// # Errors
///
/// - [`CoreError::InvalidConfig`] if `σ² ≤ 1` or other nonsensical knobs,
/// - [`CoreError::Graph`] if `g` is disconnected (no spanning tree),
/// - [`CoreError::Solver`] on factorization failure.
///
/// # Example
///
/// ```
/// use sass_core::{sparsify, SparsifyConfig};
/// use sass_graph::generators::{grid2d, WeightModel};
///
/// # fn main() -> Result<(), sass_core::CoreError> {
/// let g = grid2d(16, 16, WeightModel::Unit, 1);
/// let sp = sparsify(&g, &SparsifyConfig::new(200.0))?;
/// assert!(sp.converged());
/// assert!(sp.graph().m() <= g.m());
/// # Ok(())
/// # }
/// ```
pub fn sparsify(g: &Graph, config: &SparsifyConfig) -> Result<Sparsifier> {
    // Negated comparison deliberately rejects NaN as well.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(config.sigma2 > 1.0) || !config.sigma2.is_finite() {
        return Err(CoreError::InvalidConfig {
            context: format!(
                "sigma2 must be a finite value above 1, got {}",
                config.sigma2
            ),
        });
    }
    if config.t_steps == 0 {
        return Err(CoreError::InvalidConfig {
            context: "t_steps must be at least 1".to_string(),
        });
    }
    // Negated comparison deliberately rejects NaN too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(config.max_add_frac > 0.0) {
        return Err(CoreError::InvalidConfig {
            context: "max_add_frac must be positive".to_string(),
        });
    }
    let n = g.n();
    if n <= 1 {
        return Ok(Sparsifier {
            graph: g.clone(),
            tree_edges: Vec::new(),
            added_edges: Vec::new(),
            rounds: Vec::new(),
            converged: true,
            config: config.clone(),
        });
    }

    let tree_ids = spanning::spanning_tree(g, config.tree)?;
    let rooted = RootedTree::new(g, tree_ids.clone(), 0)?;
    let lca = LcaIndex::new(&rooted);
    let lg = g.laplacian();

    let mut current: Vec<u32> = tree_ids.clone();
    let mut off_tree: Vec<u32> = rooted.off_tree_edges(g);
    let mut added: Vec<u32> = Vec::new();
    // Weighted degrees of the sparsifier, maintained incrementally for the
    // λmin degree-ratio estimate.
    let mut p_wdeg = vec![0.0f64; n];
    for &id in &current {
        let e = g.edge(id as usize);
        p_wdeg[e.u as usize] += e.weight;
        p_wdeg[e.v as usize] += e.weight;
    }

    let r = config.resolved_num_vectors(n);
    let budget = ((config.max_add_frac * n as f64).ceil() as usize).max(1);
    let mut rounds: Vec<RoundStats> = Vec::new();
    let mut converged = false;

    for round in 1..=config.max_rounds {
        let lp = laplacian_of_edges(g, &current);
        let solver = GroundedSolver::new(&lp, config.ordering)?;
        let lambda_max = estimate_lambda_max(
            &lg,
            &lp,
            &solver,
            config.lambda_max_iters,
            config.seed ^ (round as u64) << 8,
        );
        let lambda_min = estimate_lambda_min(g, &p_wdeg);
        let condition = lambda_max / lambda_min;

        if condition <= config.sigma2 || off_tree.is_empty() {
            converged = condition <= config.sigma2;
            rounds.push(RoundStats {
                round,
                edges: current.len(),
                lambda_max,
                lambda_min,
                condition,
                threshold: 1.0,
                candidates: 0,
                added: 0,
            });
            break;
        }

        let heat = off_tree_heat(
            g,
            &off_tree,
            &lg,
            &solver,
            config.t_steps,
            r,
            config.seed ^ 0x9e37_79b9 ^ (round as u64),
        );
        let theta = heat_threshold(config.sigma2, lambda_min, lambda_max, config.t_steps);
        let candidates = select_edges(&off_tree, &heat.heat, heat.heat_max, theta, budget);
        let accepted = filter_similar(config.similarity, g, &rooted, &lca, &candidates);

        rounds.push(RoundStats {
            round,
            edges: current.len(),
            lambda_max,
            lambda_min,
            condition,
            threshold: theta,
            candidates: candidates.len(),
            added: accepted.len(),
        });

        if accepted.is_empty() {
            // Cannot happen while off-tree edges remain (the max-heat edge
            // always passes and the first candidate is always accepted),
            // but guard against stalling anyway.
            break;
        }
        for &id in &accepted {
            let e = g.edge(id as usize);
            p_wdeg[e.u as usize] += e.weight;
            p_wdeg[e.v as usize] += e.weight;
        }
        current.extend_from_slice(&accepted);
        let accepted_set: std::collections::HashSet<u32> = accepted.iter().copied().collect();
        off_tree.retain(|id| !accepted_set.contains(id));

        if round == config.max_rounds {
            // Final round used its budget; measure once more for the books.
            let lp = laplacian_of_edges(g, &current);
            let solver = GroundedSolver::new(&lp, config.ordering)?;
            let lambda_max = estimate_lambda_max(
                &lg,
                &lp,
                &solver,
                config.lambda_max_iters,
                config.seed ^ 0xdead,
            );
            let lambda_min = estimate_lambda_min(g, &p_wdeg);
            let condition = lambda_max / lambda_min;
            converged = condition <= config.sigma2;
            rounds.push(RoundStats {
                round: round + 1,
                edges: current.len(),
                lambda_max,
                lambda_min,
                condition,
                threshold: 1.0,
                candidates: 0,
                added: 0,
            });
        }
    }

    current.sort_unstable();
    // tree_ids comes back sorted from spanning_tree(); binary search keeps
    // this provenance split O(m log n) instead of O(m n).
    added.extend(
        current
            .iter()
            .copied()
            .filter(|id| tree_ids.binary_search(id).is_err()),
    );
    Ok(Sparsifier {
        graph: g.subgraph_with_edges(current.iter().copied()),
        tree_edges: tree_ids,
        added_edges: added,
        rounds,
        converged,
        config: config.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimilarityPolicy;
    use sass_eigen::pencil::dense_generalized_eigenvalues;
    use sass_graph::generators::{circuit_grid, fem_mesh2d, grid2d, WeightModel};

    #[test]
    fn meets_sigma2_certified_by_dense_eigensolve() {
        // Small enough for the dense generalized eigensolver to check the
        // actual condition number, not just our estimates.
        let g = fem_mesh2d(9, 9, 5);
        let sigma2 = 30.0;
        let sp = sparsify(&g, &SparsifyConfig::new(sigma2).with_seed(3)).unwrap();
        assert!(sp.converged());
        let vals = dense_generalized_eigenvalues(&g.laplacian(), &sp.graph().laplacian()).unwrap();
        let exact_cond = vals.last().unwrap() / vals.first().unwrap();
        // The estimates can understate the truth (λmax is a lower bound);
        // allow 2x slack on the certified target.
        assert!(
            exact_cond <= 2.0 * sigma2,
            "exact condition {exact_cond} far above target {sigma2}"
        );
    }

    #[test]
    fn tighter_target_keeps_more_edges() {
        let g = circuit_grid(20, 20, 0.15, 11);
        let tight = sparsify(&g, &SparsifyConfig::new(20.0)).unwrap();
        let loose = sparsify(&g, &SparsifyConfig::new(500.0)).unwrap();
        assert!(
            tight.edge_count() > loose.edge_count(),
            "tight {} vs loose {}",
            tight.edge_count(),
            loose.edge_count()
        );
        // Both contain at least the spanning tree.
        assert!(loose.edge_count() >= g.n() - 1);
    }

    #[test]
    fn condition_estimates_decrease_across_rounds() {
        let g = grid2d(24, 24, WeightModel::Unit, 2);
        let sp = sparsify(&g, &SparsifyConfig::new(30.0).with_max_add_frac(0.05)).unwrap();
        let conds: Vec<f64> = sp.rounds().iter().map(|r| r.condition).collect();
        assert!(conds.len() >= 2, "expected multiple rounds, got {conds:?}");
        assert!(
            conds.last().unwrap() < conds.first().unwrap(),
            "conditions did not improve: {conds:?}"
        );
    }

    #[test]
    fn loose_target_returns_tree_only() {
        // With a huge sigma2 the spanning tree alone suffices.
        let g = grid2d(10, 10, WeightModel::Unit, 0);
        let sp = sparsify(&g, &SparsifyConfig::new(1e9)).unwrap();
        assert!(sp.converged());
        assert_eq!(sp.edge_count(), g.n() - 1);
        assert!(sp.added_edge_ids().is_empty());
    }

    #[test]
    fn rejects_bad_configs_and_graphs() {
        let g = grid2d(4, 4, WeightModel::Unit, 0);
        assert!(matches!(
            sparsify(&g, &SparsifyConfig::new(0.5)),
            Err(CoreError::InvalidConfig { .. })
        ));
        let disconnected = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(matches!(
            sparsify(&disconnected, &SparsifyConfig::new(100.0)),
            Err(CoreError::Graph(_))
        ));
    }

    #[test]
    fn trivial_graphs() {
        let single = Graph::from_edges(1, &[]).unwrap();
        let sp = sparsify(&single, &SparsifyConfig::new(10.0)).unwrap();
        assert!(sp.converged());
        assert_eq!(sp.edge_count(), 0);
    }

    #[test]
    fn deterministic_for_seed() {
        let g = circuit_grid(12, 12, 0.2, 4);
        let a = sparsify(&g, &SparsifyConfig::new(50.0).with_seed(7)).unwrap();
        let b = sparsify(&g, &SparsifyConfig::new(50.0).with_seed(7)).unwrap();
        assert_eq!(a.edge_ids(), b.edge_ids());
    }

    #[test]
    fn all_similarity_policies_converge() {
        let g = circuit_grid(14, 14, 0.1, 9);
        for policy in [
            SimilarityPolicy::None,
            SimilarityPolicy::EndpointMark,
            SimilarityPolicy::PathOverlap { max_overlap: 0.5 },
        ] {
            let sp = sparsify(&g, &SparsifyConfig::new(80.0).with_similarity(policy)).unwrap();
            assert!(sp.converged(), "{policy:?} failed to converge");
        }
    }

    #[test]
    fn provenance_partitions_edges() {
        let g = circuit_grid(10, 10, 0.2, 1);
        let sp = sparsify(&g, &SparsifyConfig::new(30.0)).unwrap();
        let total = sp.tree_edge_ids().len() + sp.added_edge_ids().len();
        assert_eq!(total, sp.edge_count());
        // Tree and added sets are disjoint.
        for id in sp.added_edge_ids() {
            assert!(!sp.tree_edge_ids().contains(id));
        }
    }
}
