//! Content fingerprints for graphs and configurations — the cache keys
//! of the serving layer.
//!
//! `sass-serve` keeps sparsifiers and their factorizations warm across
//! requests in a cache keyed by *content*, not identity: two clients
//! submitting the same graph under the same configuration must land on
//! the same entry, and a mutated graph must produce the same key whether
//! it was edited in place (via
//! [`IncrementalSparsifier::apply_edits`](crate::IncrementalSparsifier::apply_edits))
//! or resubmitted from scratch. That forces the fingerprint to be a pure
//! function of the canonical graph representation — the sorted,
//! merged edge list [`Graph`] maintains — plus every configuration knob
//! that changes the sparsifier.
//!
//! The hash is FNV-1a over a fixed little-endian serialization (64-bit,
//! offset basis `0xcbf29ce484222325`, prime `0x100000001b3`). It is a
//! *content* hash for cache addressing, not a cryptographic digest: an
//! adversarial client can manufacture collisions, so the serving layer
//! must treat a key as naming whatever entry it maps to, never as proof
//! of graph equality.

use crate::SparsifyConfig;
use sass_graph::Graph;

/// 64-bit FNV-1a running state.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// FNV-1a offset basis.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a prime.
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// Folds a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds an `f64` by its exact bit pattern (so `-0.0 != 0.0` and
    /// every NaN payload is distinguished — weights are validated finite
    /// and positive upstream, so this never matters in practice, but the
    /// fingerprint should not be the layer that canonicalizes floats).
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Content fingerprint of a graph: vertex count plus the canonical
/// (sorted, merged) edge list with exact weight bits.
///
/// Stable across process runs and platforms (fixed little-endian
/// serialization), and insensitive to construction order because
/// [`Graph`] canonicalizes its edge list.
///
/// # Example
///
/// ```
/// use sass_core::fingerprint::graph_fingerprint;
/// use sass_graph::Graph;
///
/// # fn main() -> Result<(), sass_graph::GraphError> {
/// let a = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)])?;
/// let b = Graph::from_edges(3, &[(2, 1, 2.0), (1, 0, 1.0)])?; // same content
/// assert_eq!(graph_fingerprint(&a), graph_fingerprint(&b));
/// let c = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.5)])?; // weight differs
/// assert_ne!(graph_fingerprint(&a), graph_fingerprint(&c));
/// # Ok(())
/// # }
/// ```
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(g.n() as u64);
    h.write_u64(g.m() as u64);
    for e in g.edges() {
        h.write_u64(u64::from(e.u));
        h.write_u64(u64::from(e.v));
        h.write_f64(e.weight);
    }
    h.finish()
}

/// Content fingerprint of a sparsification configuration: every knob
/// that changes the produced sparsifier or its factorization.
///
/// Two configurations with equal fingerprints produce identical
/// sparsifiers on identical graphs (the converse does not hold — this is
/// a hash). Enum knobs are folded by their discriminant index, so adding
/// a variant changes no existing fingerprint.
pub fn config_fingerprint(config: &SparsifyConfig) -> u64 {
    use crate::{SimilarityPolicy, SolveStrategy};
    use sass_graph::spanning::TreeKind;
    use sass_sparse::ordering::OrderingKind;

    let mut h = Fnv1a::new();
    h.write_f64(config.sigma2);
    h.write_u64(config.t_steps as u64);
    // Option<usize> is disambiguated from usize by a presence byte.
    match config.num_vectors {
        Some(r) => {
            h.write(&[1]);
            h.write_u64(r as u64);
        }
        None => h.write(&[0]),
    }
    h.write_u64(config.max_rounds as u64);
    h.write_f64(config.max_add_frac);
    match config.tree {
        TreeKind::MaxWeight => h.write_u64(0),
        TreeKind::Akpw => h.write_u64(1),
        TreeKind::Bfs => h.write_u64(2),
        TreeKind::Random(seed) => {
            h.write_u64(3);
            h.write_u64(seed);
        }
        // Non-exhaustive upstream enum: a future kind must still hash
        // distinctly from every current one, so fold its Debug form.
        other => {
            h.write_u64(u64::MAX);
            h.write(format!("{other:?}").as_bytes());
        }
    }
    match config.similarity {
        SimilarityPolicy::None => h.write_u64(0),
        SimilarityPolicy::EndpointMark => h.write_u64(1),
        SimilarityPolicy::PathOverlap { max_overlap } => {
            h.write_u64(2);
            h.write_f64(max_overlap);
        }
    }
    match config.ordering {
        OrderingKind::Natural => h.write_u64(0),
        OrderingKind::Rcm => h.write_u64(1),
        OrderingKind::MinDegree => h.write_u64(2),
        OrderingKind::NestedDissection => h.write_u64(3),
        // Non-exhaustive upstream enum — same Debug-fold scheme as above.
        other => {
            h.write_u64(u64::MAX);
            h.write(format!("{other:?}").as_bytes());
        }
    }
    h.write_u64(config.lambda_max_iters as u64);
    h.write_u64(config.seed);
    match config.solve_strategy {
        SolveStrategy::Monolithic => h.write_u64(0),
        SolveStrategy::Sharded {
            domains,
            out_of_core,
        } => {
            h.write_u64(1);
            h.write_u64(domains as u64);
            h.write(&[u8::from(out_of_core)]);
        }
    }
    h.finish()
}

/// Combined cache key: graph content × configuration content.
///
/// This is the key `sass-serve` addresses its sparsifier cache with —
/// see `docs/PROTOCOL.md` for the wire-level contract.
pub fn cache_key(g: &Graph, config: &SparsifyConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(graph_fingerprint(g));
    h.write_u64(config_fingerprint(config));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_graph::generators::{grid2d, WeightModel};

    #[test]
    fn fnv_vectors() {
        // Classic FNV-1a test vectors.
        let mut h = Fnv1a::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn graph_fingerprint_is_content_addressed() {
        let g1 = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 2.0)]).unwrap();
        let g2 = Graph::from_edges(4, &[(3, 2, 2.0), (1, 0, 1.0)]).unwrap();
        assert_eq!(graph_fingerprint(&g1), graph_fingerprint(&g2));
        // Vertex count matters even with identical edges.
        let g3 = Graph::from_edges(5, &[(0, 1, 1.0), (2, 3, 2.0)]).unwrap();
        assert_ne!(graph_fingerprint(&g1), graph_fingerprint(&g3));
    }

    #[test]
    fn edits_converge_to_resubmission_fingerprint() {
        // Editing in place and resubmitting the edited graph must agree.
        let g = grid2d(5, 5, WeightModel::Unit, 1);
        let (edited, _) = g
            .apply_edits(&[sass_graph::GraphEdit::AddEdge {
                u: 0,
                v: 24,
                weight: 0.75,
            }])
            .unwrap();
        let mut edges: Vec<(usize, usize, f64)> = g
            .edges()
            .iter()
            .map(|e| (e.u as usize, e.v as usize, e.weight))
            .collect();
        edges.push((0, 24, 0.75));
        let resubmitted = Graph::from_edges(g.n(), &edges).unwrap();
        assert_eq!(graph_fingerprint(&edited), graph_fingerprint(&resubmitted));
    }

    #[test]
    fn config_knobs_change_the_fingerprint() {
        let base = SparsifyConfig::new(100.0);
        let same = SparsifyConfig::new(100.0);
        assert_eq!(config_fingerprint(&base), config_fingerprint(&same));
        for other in [
            SparsifyConfig::new(50.0),
            SparsifyConfig::new(100.0).with_seed(1),
            SparsifyConfig::new(100.0).with_t_steps(3),
            SparsifyConfig::new(100.0).with_num_vectors(8),
            SparsifyConfig::new(100.0).with_solve_strategy(crate::SolveStrategy::Sharded {
                domains: 2,
                out_of_core: false,
            }),
        ] {
            assert_ne!(config_fingerprint(&base), config_fingerprint(&other));
        }
    }

    #[test]
    fn cache_key_mixes_both_halves() {
        let g = grid2d(4, 4, WeightModel::Unit, 0);
        let h = grid2d(4, 4, WeightModel::Unit, 0);
        let c1 = SparsifyConfig::new(100.0);
        let c2 = SparsifyConfig::new(100.0).with_seed(7);
        assert_eq!(cache_key(&g, &c1), cache_key(&h, &c1));
        assert_ne!(cache_key(&g, &c1), cache_key(&g, &c2));
    }
}
