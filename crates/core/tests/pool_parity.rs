//! Cross-worker-count parity for the pool-routed pipeline kernels.
//!
//! Every parallel kernel in the sparsification pipeline — Joule-heat
//! embedding, heat filtering, and the grounded solver's blocked column
//! passes — must produce **bit-for-bit identical** results at any worker
//! count. `pool::set_threads` is a standing override that skips the
//! per-kernel size crossovers, so even the small graphs generated here go
//! through real multi-lane dispatch on the persistent pool.

use proptest::prelude::*;
use sass_core::embedding::off_tree_heat;
use sass_core::filter::select_edges;
use sass_graph::generators::{grid2d, WeightModel};
use sass_graph::{spanning, Graph, RootedTree};
use sass_solver::GroundedSolver;
use sass_sparse::ordering::OrderingKind;
use sass_sparse::{pool, DenseBlock};

/// Serializes every test in this binary that overrides the global pool's
/// lane count: the serial reference must really be computed at one lane,
/// not under a concurrent test's forced fan-out. (`unwrap_or_else` keeps
/// the guard usable after a poisoning assertion failure.)
fn pool_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` once per forced worker count and once serially, asserting the
/// forced results equal the serial reference.
fn assert_parity_across_workers<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let _guard = pool_guard();
    pool::set_threads(1);
    let serial = f();
    for workers in [2usize, 3, 8] {
        pool::set_threads(workers);
        let got = f();
        pool::set_threads(0);
        assert_eq!(got, serial, "workers = {workers}");
    }
    pool::set_threads(0);
}

fn heat_setup(side: usize, seed: u64) -> (Graph, Vec<u32>, GroundedSolver) {
    let g = grid2d(side, side, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
    let tree_ids = spanning::max_weight_spanning_tree(&g).unwrap();
    let tree = RootedTree::new(&g, tree_ids.clone(), 0).unwrap();
    let off = tree.off_tree_edges(&g);
    let p = g.subgraph_with_edges(tree_ids);
    let solver = GroundedSolver::new(&p.laplacian(), OrderingKind::MinDegree).unwrap();
    (g, off, solver)
}

#[test]
fn off_tree_heat_bit_identical_across_worker_counts() {
    let (g, off, solver) = heat_setup(9, 5);
    let lg = g.laplacian();
    assert_parity_across_workers(|| off_tree_heat(&g, &off, &lg, &solver, 2, 6, 42).heat);
}

#[test]
fn grounded_solve_block_bit_identical_across_worker_counts() {
    let g = grid2d(7, 6, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 11);
    let solver = GroundedSolver::with_ground(&g.laplacian(), 13, OrderingKind::MinDegree).unwrap();
    for ncols in [1usize, 3, 9] {
        let cols: Vec<Vec<f64>> = (0..ncols)
            .map(|c| {
                (0..g.n())
                    .map(|i| ((i * (3 * c + 2)) as f64 * 0.23).sin())
                    .collect()
            })
            .collect();
        let b = DenseBlock::from_columns(&cols);
        assert_parity_across_workers(|| solver.solve_block(&b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Heat scoring (the pipeline's dominant per-edge stage) across
    /// random probe/step counts and seeds.
    #[test]
    fn off_tree_heat_parity_randomized(
        side in 4usize..9, t in 1usize..3, r in 1usize..8, seed in 0u64..200
    ) {
        let (g, off, solver) = heat_setup(side, seed);
        let lg = g.laplacian();
        let _guard = pool_guard();
        pool::set_threads(1);
        let serial = off_tree_heat(&g, &off, &lg, &solver, t, r, seed).heat;
        for workers in [2usize, 3, 8] {
            pool::set_threads(workers);
            let got = off_tree_heat(&g, &off, &lg, &solver, t, r, seed).heat;
            pool::set_threads(0);
            prop_assert_eq!(&got, &serial, "workers = {}", workers);
        }
        pool::set_threads(0);
    }

    /// Edge selection: span-ordered concatenation must reproduce the
    /// serial filter's candidate order (and thus the identical final
    /// selection) at every worker count, including with non-finite heats
    /// in the mix.
    #[test]
    fn select_edges_parity_randomized(
        m in 1usize..400, theta in 0.0f64..1.0, max_count in 1usize..64, seed in 0u64..200
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ids: Vec<u32> = (0..m as u32).collect();
        let heats: Vec<f64> = (0..m)
            .map(|_| match rng.gen_range(0u32..20) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => rng.gen_range(0.0f64..2.0),
            })
            .collect();
        let heat_max = heats.iter().copied().filter(|h| h.is_finite()).fold(0.0, f64::max);
        let _guard = pool_guard();
        pool::set_threads(1);
        let serial = select_edges(&ids, &heats, heat_max, theta, max_count);
        for workers in [2usize, 3, 8] {
            pool::set_threads(workers);
            let got = select_edges(&ids, &heats, heat_max, theta, max_count);
            pool::set_threads(0);
            prop_assert_eq!(&got, &serial, "workers = {}", workers);
        }
        pool::set_threads(0);
    }
}
