//! The incremental sparsifier's ground-truth contract, randomized.
//!
//! After ANY edit sequence — adds (new edges and weight merges), off-tree
//! removals, and spanning-tree-edge deletions — the maintained selection
//! and the patched factor must be **identical** to a from-scratch
//! recompute on the current graph with the same frozen scoring basis
//! ([`IncrementalSparsifier::oracle_rebuild`]): the selected edge set as
//! ids, and the factor bit-exactly (pinned through bit-equal solves).
//!
//! Every sequence runs at forced pool widths 1, 2, 3 and 8 — the same
//! widths the kernel parity suites pin down — and the width-w runs must
//! reproduce the serial run exactly: the partial refactorization and the
//! dirty-set re-scoring go through real multi-lane dispatch here.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sass_core::{CoreError, IncrementalSparsifier, SparsifyConfig};
use sass_graph::generators::{grid2d, WeightModel};
use sass_sparse::{dense, pool};

/// Serializes pool-width overrides across concurrently running tests.
fn pool_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Applies a seeded random edit sequence, asserting the oracle contract
/// midway and at the end; returns a fingerprint (selection + one solve)
/// for cross-width comparison.
fn churn(side: usize, seed: u64, edits: usize) -> (Vec<u32>, Vec<f64>) {
    let g = grid2d(side, side, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed);
    let config = SparsifyConfig::new(60.0).with_seed(seed);
    let mut inc = IncrementalSparsifier::new(&g, &config).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x00c0_ffee);
    let check = |inc: &IncrementalSparsifier| {
        let oracle = inc.oracle_rebuild().unwrap();
        assert_eq!(
            inc.selected_edge_ids(),
            oracle.selected_edge_ids(),
            "selection drifted from the from-scratch recompute"
        );
        let mut b: Vec<f64> = (0..inc.graph().n())
            .map(|i| ((i * 5 % 19) as f64) - 9.0)
            .collect();
        dense::center(&mut b);
        let x = inc.solver().solve(&b);
        assert_eq!(
            x,
            oracle.solver().solve(&b),
            "patched factor is not bit-identical to the from-scratch factor"
        );
        (inc.selected_edge_ids().to_vec(), x)
    };
    for k in 0..edits {
        let n = inc.graph().n();
        match rng.gen_range(0u32..4) {
            0 | 1 => {
                // Insert (a brand-new edge or a weight merge onto an
                // existing one — both go through the same offer rule).
                let u = rng.gen_range(0..n);
                let mut v = rng.gen_range(0..n);
                if v == u {
                    v = (v + 1) % n;
                }
                let w = rng.gen_range(0.1f64..3.0);
                inc.add_edge(u, v, w).unwrap();
            }
            2 => {
                // Remove a uniformly random edge (tree or off-tree); a
                // disconnecting removal must fail atomically.
                let id = rng.gen_range(0..inc.graph().m());
                let e = inc.graph().edge(id);
                match inc.remove_edge(e.u as usize, e.v as usize) {
                    Ok(_) | Err(CoreError::Graph(_)) => {}
                    Err(other) => panic!("unexpected error: {other}"),
                }
            }
            _ => {
                // Explicitly delete a spanning-tree edge: the adversarial
                // case — the exchange rules must adopt the canonical
                // replacement across the severed cut.
                let tid = {
                    let ids = inc.tree_edge_ids();
                    ids[rng.gen_range(0..ids.len())]
                };
                let e = inc.graph().edge(tid as usize);
                match inc.remove_edge(e.u as usize, e.v as usize) {
                    Ok(_) | Err(CoreError::Graph(_)) => {}
                    Err(other) => panic!("unexpected error: {other}"),
                }
            }
        }
        if k == edits / 2 {
            check(&inc);
        }
    }
    check(&inc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized edit sequences: incremental == from-scratch oracle at
    /// every forced pool width, and every width reproduces the serial
    /// run's selection and solve bit-for-bit.
    #[test]
    fn incremental_matches_oracle_at_every_pool_width(
        side in 5usize..8, seed in 0u64..1000, edits in 3usize..10
    ) {
        let _guard = pool_guard();
        pool::set_threads(1);
        let reference = churn(side, seed, edits);
        for workers in [2usize, 3, 8] {
            pool::set_threads(workers);
            let got = churn(side, seed, edits);
            pool::set_threads(0);
            prop_assert_eq!(&got, &reference, "workers = {}", workers);
        }
        pool::set_threads(0);
    }
}

/// Deterministic adversarial case at every width: a batch that deletes a
/// tree edge AND its canonical replacement's runner-up in one go, forcing
/// two exchange steps against the same cut.
#[test]
fn tree_edge_batch_deletion_matches_oracle_at_every_width() {
    let _guard = pool_guard();
    for workers in [1usize, 2, 3, 8] {
        pool::set_threads(workers);
        let g = grid2d(7, 7, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 21);
        let mut inc = IncrementalSparsifier::new(&g, &SparsifyConfig::new(50.0)).unwrap();
        let t0 = inc.tree_edge_ids()[5];
        let t1 = inc.tree_edge_ids()[20];
        let (e0, e1) = (g.edge(t0 as usize), g.edge(t1 as usize));
        inc.apply_edits(&[
            sass_graph::GraphEdit::RemoveEdge {
                u: e0.u as usize,
                v: e0.v as usize,
            },
            sass_graph::GraphEdit::RemoveEdge {
                u: e1.u as usize,
                v: e1.v as usize,
            },
        ])
        .unwrap();
        let oracle = inc.oracle_rebuild().unwrap();
        assert_eq!(
            inc.selected_edge_ids(),
            oracle.selected_edge_ids(),
            "workers = {workers}"
        );
        let mut b: Vec<f64> = (0..g.n()).map(|i| (i as f64 * 0.7).cos()).collect();
        dense::center(&mut b);
        assert_eq!(
            inc.solver().solve(&b),
            oracle.solver().solve(&b),
            "workers = {workers}"
        );
        pool::set_threads(0);
    }
}
