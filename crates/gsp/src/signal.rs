//! Graph signals and smoothness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sass_solver::GroundedSolver;
use sass_sparse::{dense, CsrMatrix};

/// Smoothness of a signal: the Laplacian quadratic form
/// `x L x = Σ_e w_e (x_u − x_v)²`. Smaller is smoother.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn smoothness(l: &CsrMatrix, x: &[f64]) -> f64 {
    l.quad_form(x)
}

/// Normalized smoothness `xᵀLx / xᵀx` — the Rayleigh quotient, i.e. the
/// signal's mean frequency in graph-spectral terms.
///
/// # Panics
///
/// Panics if dimensions disagree or `x` is the zero vector.
pub fn normalized_smoothness(l: &CsrMatrix, x: &[f64]) -> f64 {
    let xx = dense::dot(x, x);
    assert!(xx > 0.0, "signal must be nonzero");
    l.quad_form(x) / xx
}

/// A random "white" signal: i.i.d. uniform, mean-centered, unit norm —
/// energy spread over the whole spectrum.
pub fn white_signal(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    dense::center(&mut x);
    dense::normalize(&mut x);
    x
}

/// A smooth ("low-frequency") signal: white noise passed through `L⁺`
/// `passes` times, which damps eigencomponents by `1/λ^passes`.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn smooth_signal(solver: &GroundedSolver, passes: usize, seed: u64) -> Vec<f64> {
    let mut x = white_signal(solver.n(), seed);
    let mut y = vec![0.0; solver.n()];
    for _ in 0..passes {
        solver.solve_into(&x, &mut y);
        std::mem::swap(&mut x, &mut y);
        dense::normalize(&mut x);
    }
    x
}

/// An oscillatory ("high-frequency") signal: white noise passed through
/// `L` `passes` times, amplifying eigencomponents by `λ^passes`.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn oscillatory_signal(l: &CsrMatrix, passes: usize, seed: u64) -> Vec<f64> {
    let mut x = white_signal(l.nrows(), seed);
    let mut y = vec![0.0; l.nrows()];
    for _ in 0..passes {
        l.mul_vec_into(&x, &mut y);
        std::mem::swap(&mut x, &mut y);
        dense::center(&mut x);
        dense::normalize(&mut x);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_graph::generators::{grid2d, WeightModel};
    use sass_sparse::ordering::OrderingKind;

    #[test]
    fn smooth_signals_are_smoother_than_white() {
        let g = grid2d(12, 12, WeightModel::Unit, 0);
        let l = g.laplacian();
        let solver = GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap();
        let white = white_signal(g.n(), 1);
        let smooth = smooth_signal(&solver, 3, 1);
        let rough = oscillatory_signal(&l, 3, 1);
        let sw = normalized_smoothness(&l, &white);
        let ss = normalized_smoothness(&l, &smooth);
        let sr = normalized_smoothness(&l, &rough);
        assert!(ss < sw, "smooth {ss} vs white {sw}");
        assert!(sw < sr, "white {sw} vs rough {sr}");
    }

    #[test]
    fn constant_signal_has_zero_smoothness() {
        let g = grid2d(5, 5, WeightModel::Unit, 0);
        let l = g.laplacian();
        assert!(smoothness(&l, &[2.0; 25]).abs() < 1e-12);
    }

    #[test]
    fn signals_are_unit_and_centered() {
        let x = white_signal(100, 3);
        assert!((dense::norm2(&x) - 1.0).abs() < 1e-12);
        assert!(dense::mean(&x).abs() < 1e-12);
    }
}
