//! Spectral graph drawing (paper Fig. 1).
//!
//! Plotting each vertex at the coordinates given by the first two
//! nontrivial Laplacian eigenvectors (Koren's spectral drawing) reveals a
//! graph's global geometry. The paper's Fig. 1 shows an airfoil mesh and
//! its sparsifier drawn this way — nearly indistinguishable, because the
//! sparsifier preserves exactly those low eigenvectors.

use crate::Result;
use sass_eigen::lanczos::{lanczos_smallest_laplacian, LanczosOptions};
use sass_sparse::ordering::OrderingKind;
use sass_sparse::CsrMatrix;

/// Computes spectral coordinates: vertex `v` maps to
/// `(u₂(v), u₃(v), ...)` for the `dim` smallest nontrivial eigenvectors.
///
/// # Errors
///
/// Propagates eigensolver failures (e.g. disconnected graphs).
pub fn spectral_coordinates(l: &CsrMatrix, dim: usize) -> Result<Vec<Vec<f64>>> {
    let res =
        lanczos_smallest_laplacian(l, dim, OrderingKind::MinDegree, &LanczosOptions::default())?;
    let n = l.nrows();
    let mut coords = vec![vec![0.0; dim]; n];
    for (d, vector) in res.eigenvectors.iter().enumerate() {
        for (v, &val) in vector.iter().enumerate() {
            coords[v][d] = val;
        }
    }
    Ok(coords)
}

/// Pearson correlation between two coordinate columns, maximized over sign —
/// used to compare the drawing of a graph against its sparsifier's (eigenvectors
/// are defined up to sign).
///
/// # Panics
///
/// Panics if lengths differ or a column is constant.
pub fn drawing_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "column length mismatch");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    assert!(va > 0.0 && vb > 0.0, "constant coordinate column");
    (cov / (va.sqrt() * vb.sqrt())).abs()
}

/// Renders 2-D points as an ASCII scatter plot (row-major string), for
/// terminal-friendly reproduction of the paper's figures.
///
/// # Panics
///
/// Panics if a point is not 2-D or `width`/`height` are below 2.
pub fn ascii_scatter(points: &[Vec<f64>], width: usize, height: usize) -> String {
    assert!(width >= 2 && height >= 2, "canvas must be at least 2x2");
    let mut grid = vec![vec![' '; width]; height];
    if points.is_empty() {
        return render(&grid);
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        assert_eq!(p.len(), 2, "points must be 2-D");
        xmin = xmin.min(p[0]);
        xmax = xmax.max(p[0]);
        ymin = ymin.min(p[1]);
        ymax = ymax.max(p[1]);
    }
    let dx = (xmax - xmin).max(1e-12);
    let dy = (ymax - ymin).max(1e-12);
    for p in points {
        let col = (((p[0] - xmin) / dx) * (width - 1) as f64).round() as usize;
        let row = (((p[1] - ymin) / dy) * (height - 1) as f64).round() as usize;
        grid[height - 1 - row][col] = '*';
    }
    render(&grid)
}

fn render(grid: &[Vec<char>]) -> String {
    let mut out = String::with_capacity(grid.len() * (grid[0].len() + 1));
    for row in grid {
        out.extend(row.iter());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_core::{sparsify, SparsifyConfig};
    use sass_graph::generators::airfoil_mesh;

    #[test]
    fn airfoil_drawing_matches_between_graph_and_sparsifier() {
        // The heart of the paper's Fig. 1: the sparsifier's spectral drawing
        // correlates strongly with the original's.
        let (g, _) = airfoil_mesh(10, 30, 1);
        let coords_g = spectral_coordinates(&g.laplacian(), 2).unwrap();
        let sp = sparsify(&g, &SparsifyConfig::new(30.0).with_seed(4)).unwrap();
        let coords_p = spectral_coordinates(&sp.graph().laplacian(), 2).unwrap();
        for d in 0..2 {
            let a: Vec<f64> = coords_g.iter().map(|c| c[d]).collect();
            let b: Vec<f64> = coords_p.iter().map(|c| c[d]).collect();
            let corr = drawing_correlation(&a, &b);
            assert!(corr > 0.9, "dimension {d} correlation {corr}");
        }
    }

    #[test]
    fn coordinates_shape() {
        let (g, _) = airfoil_mesh(6, 18, 0);
        let coords = spectral_coordinates(&g.laplacian(), 3).unwrap();
        assert_eq!(coords.len(), g.n());
        assert!(coords.iter().all(|c| c.len() == 3));
    }

    #[test]
    fn scatter_renders_extents() {
        let pts = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.5, 0.5]];
        let art = ascii_scatter(&pts, 11, 5);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0].chars().count(), 11);
        assert_eq!(art.matches('*').count(), 3);
        // Corners are hit.
        assert_eq!(lines[4].chars().next(), Some('*'));
        assert_eq!(lines[0].chars().last(), Some('*'));
    }

    #[test]
    fn correlation_is_sign_invariant() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((drawing_correlation(&a, &b) - 1.0).abs() < 1e-12);
    }
}
