//! Low-pass behaviour of spectral sparsifiers, measured per frequency band.
//!
//! For each Laplacian eigenvector `u_i` of the original graph `G`, the
//! sparsifier `P` preserves the quadratic form with relative error
//! `|u_iᵀ L_P u_i / u_iᵀ L_G u_i − 1|`. The paper's low-pass claim (§3.4)
//! is that this error is small for low `λ_i` and grows toward the top of
//! the spectrum. [`band_preservation`] quantifies exactly that.

use crate::Result;
use sass_eigen::jacobi::{csr_to_dense, dense_symmetric_eig};
use sass_sparse::CsrMatrix;

/// Quadratic-form preservation per eigenvector of `L_G`.
#[derive(Debug, Clone)]
pub struct BandPreservation {
    /// Eigenvalues of `L_G` (ascending, trivial eigenvalue dropped).
    pub frequencies: Vec<f64>,
    /// `u_iᵀ L_P u_i / u_iᵀ L_G u_i` per eigenvector (1.0 = perfect).
    pub ratios: Vec<f64>,
}

impl BandPreservation {
    /// Mean absolute deviation from 1 over the lowest `k` frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn low_band_error(&self, k: usize) -> f64 {
        assert!(k > 0, "k must be positive");
        let k = k.min(self.ratios.len());
        self.ratios[..k]
            .iter()
            .map(|r| (r - 1.0).abs())
            .sum::<f64>()
            / k as f64
    }

    /// Mean absolute deviation from 1 over the highest `k` frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn high_band_error(&self, k: usize) -> f64 {
        assert!(k > 0, "k must be positive");
        let k = k.min(self.ratios.len());
        let start = self.ratios.len() - k;
        self.ratios[start..]
            .iter()
            .map(|r| (r - 1.0).abs())
            .sum::<f64>()
            / k as f64
    }
}

/// Computes per-eigenvector quadratic-form preservation of `lp` against
/// `lg` by dense eigendecomposition — small graphs only (`n ≲ 300`).
///
/// # Errors
///
/// Propagates dense eigensolver failures (non-symmetric input).
pub fn band_preservation(lg: &CsrMatrix, lp: &CsrMatrix) -> Result<BandPreservation> {
    let (vals, vecs) = dense_symmetric_eig(&csr_to_dense(lg))?;
    let mut frequencies = Vec::with_capacity(vals.len().saturating_sub(1));
    let mut ratios = Vec::with_capacity(vals.len().saturating_sub(1));
    for (lam, u) in vals.iter().zip(&vecs) {
        if *lam < 1e-9 {
            continue; // trivial (constant) eigenvector
        }
        let qg = lg.quad_form(u);
        let qp = lp.quad_form(u);
        frequencies.push(*lam);
        ratios.push(qp / qg);
    }
    Ok(BandPreservation {
        frequencies,
        ratios,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_core::{sparsify, SparsifyConfig};
    use sass_graph::generators::fem_mesh2d;

    #[test]
    fn sparsifier_is_a_low_pass_filter() {
        // The paper's §3.4 claim: low-frequency quadratic forms are
        // preserved better than high-frequency ones. Measured on a
        // small-world graph — the effect is robust on expander-like
        // topologies, while on regular meshes the band profile is flat and
        // the comparison is a coin flip (see the averaged integration
        // test in `tests/applications.rs`).
        let g = sass_graph::generators::watts_strogatz(100, 6, 0.2, 3);
        let sp = sparsify(&g, &SparsifyConfig::new(20.0).with_seed(2)).unwrap();
        let bp = band_preservation(&g.laplacian(), &sp.graph().laplacian()).unwrap();
        let k = bp.ratios.len() / 4;
        let low = bp.low_band_error(k);
        let high = bp.high_band_error(k);
        assert!(
            low < high,
            "low-band error {low} should be below high-band error {high}"
        );
        // Subgraph quadratic forms never exceed the original.
        assert!(bp.ratios.iter().all(|&r| r <= 1.0 + 1e-9));
    }

    #[test]
    fn identical_graphs_preserve_everything() {
        let g = fem_mesh2d(5, 5, 1);
        let l = g.laplacian();
        let bp = band_preservation(&l, &l).unwrap();
        assert!(bp.ratios.iter().all(|&r| (r - 1.0).abs() < 1e-9));
        assert_eq!(bp.frequencies.len(), g.n() - 1);
    }

    #[test]
    fn frequencies_are_ascending() {
        let g = fem_mesh2d(6, 4, 2);
        let l = g.laplacian();
        let bp = band_preservation(&l, &l).unwrap();
        assert!(bp.frequencies.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }
}
