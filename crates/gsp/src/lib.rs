//! Graph signal processing utilities (paper §3.4).
//!
//! The paper frames spectral sparsification as a **low-pass graph filter**:
//! the sparsifier preserves smooth ("low-frequency") signals — combinations
//! of Laplacian eigenvectors with small eigenvalues — much more faithfully
//! than oscillatory ones. This crate provides the vocabulary to state and
//! measure that claim, plus the spectral drawing used in the paper's
//! Fig. 1:
//!
//! - [`signal`]: graph signals, smoothness (Laplacian quadratic form),
//!   synthetic smooth/oscillatory signal generators,
//! - [`filtering`]: per-frequency-band quadratic-form preservation between
//!   a graph and its sparsifier,
//! - [`drawing`]: spectral drawings (first two nontrivial eigenvectors as
//!   coordinates) with an ASCII renderer,
//! - [`chebyshev`]: explicit polynomial graph filters (low-pass, heat
//!   kernel) — the reference filters the sparsifier is compared against.

#![deny(missing_docs)]

pub mod chebyshev;
pub mod drawing;
pub mod filtering;
pub mod signal;

pub use sass_eigen::EigenError;

/// Crate-wide result alias (errors come from the eigensolvers).
pub type Result<T> = std::result::Result<T, EigenError>;
