//! Chebyshev-polynomial graph filters.
//!
//! The graph-signal-processing view of sparsification (paper §3.4) treats a
//! sparsifier as an implicit low-pass filter. This module provides the
//! *explicit* counterpart — polynomial approximations `p(L)x` of ideal
//! spectral filters `h(λ)` — both as a reference to compare sparsifiers
//! against and as a generally useful GSP primitive (it is the standard
//! trick behind fast spectral clustering and graph CNNs, paper ref \[7\]).
//!
//! The filter is evaluated with the three-term Chebyshev recurrence on the
//! spectrum-normalized operator `2L/λmax − I`; Jackson damping suppresses
//! the Gibbs oscillation of the truncated expansion.

use sass_sparse::{dense, LinearOperator};

/// A Chebyshev polynomial approximation of a spectral transfer function
/// `h : [0, λmax] → R`.
///
/// # Example
///
/// ```
/// use sass_gsp::chebyshev::ChebyshevFilter;
///
/// // Ideal low-pass on [0, 4] keeping lambda < 1, degree-48 approximation.
/// let f = ChebyshevFilter::low_pass(4.0, 1.0, 48);
/// assert!((f.response(0.2) - 1.0).abs() < 0.05); // pass band
/// assert!(f.response(3.5).abs() < 0.05);         // stop band
/// ```
#[derive(Debug, Clone)]
pub struct ChebyshevFilter {
    /// Chebyshev coefficients `c_0 .. c_K` (Jackson-damped).
    coeffs: Vec<f64>,
    /// Upper end of the spectral interval (`λmax` bound of the operator).
    lambda_max: f64,
}

impl ChebyshevFilter {
    /// Builds a degree-`degree` approximation of an arbitrary transfer
    /// function `h` on `[0, lambda_max]` (plain Chebyshev expansion —
    /// near-machine accuracy for smooth `h`; chain
    /// [`ChebyshevFilter::with_jackson_damping`] for discontinuous ones).
    ///
    /// # Panics
    ///
    /// Panics if `lambda_max <= 0` or `degree == 0`.
    pub fn from_response<H: Fn(f64) -> f64>(lambda_max: f64, degree: usize, h: H) -> Self {
        assert!(lambda_max > 0.0, "lambda_max must be positive");
        assert!(degree > 0, "degree must be positive");
        let k = degree;
        // Chebyshev-Gauss quadrature for the expansion coefficients of
        // h(lambda(t)), t in [-1, 1], lambda = (t + 1) * lambda_max / 2.
        let quad_points = 4 * (k + 1);
        let mut coeffs = vec![0.0f64; k + 1];
        for (j, c) in coeffs.iter_mut().enumerate() {
            let mut acc = 0.0;
            for q in 0..quad_points {
                let theta = std::f64::consts::PI * (q as f64 + 0.5) / quad_points as f64;
                let t = theta.cos();
                let lambda = (t + 1.0) * lambda_max / 2.0;
                acc += h(lambda) * (j as f64 * theta).cos();
            }
            *c = 2.0 * acc / quad_points as f64;
            if j == 0 {
                *c /= 2.0;
            }
        }
        ChebyshevFilter { coeffs, lambda_max }
    }

    /// Applies Jackson damping to the coefficients, trading approximation
    /// accuracy for suppression of Gibbs oscillation around jumps in the
    /// transfer function. Essential for the ideal low-pass; harmful for
    /// smooth responses like the heat kernel.
    pub fn with_jackson_damping(mut self) -> Self {
        let kp1 = self.coeffs.len() as f64;
        let a = std::f64::consts::PI / kp1;
        for (j, c) in self.coeffs.iter_mut().enumerate() {
            let g = ((kp1 - j as f64) * (a * j as f64).cos() * a.sin()
                + (a * j as f64).sin() * a.cos())
                / (kp1 * a.sin());
            *c *= g;
        }
        self
    }

    /// Ideal low-pass filter: `h(λ) = 1` for `λ ≤ cutoff`, else `0`.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` is outside `(0, lambda_max]`.
    pub fn low_pass(lambda_max: f64, cutoff: f64, degree: usize) -> Self {
        assert!(
            cutoff > 0.0 && cutoff <= lambda_max,
            "cutoff must lie in (0, lambda_max]"
        );
        Self::from_response(lambda_max, degree, |l| if l <= cutoff { 1.0 } else { 0.0 })
            .with_jackson_damping()
    }

    /// Heat-kernel filter `h(λ) = exp(−τλ)`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` is negative.
    pub fn heat_kernel(lambda_max: f64, tau: f64, degree: usize) -> Self {
        assert!(tau >= 0.0, "tau must be non-negative");
        Self::from_response(lambda_max, degree, |l| (-tau * l).exp())
    }

    /// Polynomial degree of the filter.
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates the scalar transfer function the filter realizes at `λ`.
    pub fn response(&self, lambda: f64) -> f64 {
        let t = 2.0 * lambda / self.lambda_max - 1.0;
        let mut t_prev = 1.0;
        let mut t_cur = t;
        let mut acc = self.coeffs[0];
        for &c in &self.coeffs[1..] {
            acc += c * t_cur;
            let t_next = 2.0 * t * t_cur - t_prev;
            t_prev = t_cur;
            t_cur = t_next;
        }
        acc
    }

    /// Applies the filter to a signal: `y = p(L) x`.
    ///
    /// `op` must have spectrum within `[0, lambda_max]` (use a safe upper
    /// bound such as twice the maximum weighted degree). Any
    /// [`LinearOperator`] works — a [`sass_sparse::CsrMatrix`], either of the other
    /// storage backends ([`sass_sparse::CscMatrix`] /
    /// [`sass_sparse::BcsrMatrix`], bit-identical in `f64`), or their
    /// `f32` variants when ranking precision suffices (the `storage-f32`
    /// feature).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the operator dimension.
    pub fn apply<L: LinearOperator + ?Sized>(&self, op: &L, x: &[f64]) -> Vec<f64> {
        let n = op.dim();
        assert_eq!(x.len(), n, "signal length mismatch");
        // Three-term recurrence: w_j = T_j(S)x with S = 2L/lmax − I:
        //   w_0 = x,  w_1 = S x,  w_{j+1} = 2 S w_j − w_{j−1}.
        let scale = 2.0 / self.lambda_max;
        let shifted = |v: &[f64], out: &mut [f64]| {
            op.apply(v, out);
            for (o, vi) in out.iter_mut().zip(v) {
                *o = scale * *o - vi;
            }
        };
        let mut w_prev = x.to_vec();
        let mut w_cur = vec![0.0; n];
        shifted(x, &mut w_cur);

        let mut y: Vec<f64> = x.iter().map(|v| self.coeffs[0] * v).collect();
        if self.coeffs.len() > 1 {
            dense::axpy(self.coeffs[1], &w_cur, &mut y);
        }
        let mut s_cur = vec![0.0; n];
        for &c in &self.coeffs[2..] {
            shifted(&w_cur, &mut s_cur);
            // w_next = 2 * s_cur - w_prev, reusing w_prev's storage.
            for (pv, sv) in w_prev.iter_mut().zip(&s_cur) {
                *pv = 2.0 * sv - *pv;
            }
            std::mem::swap(&mut w_prev, &mut w_cur);
            dense::axpy(c, &w_cur, &mut y);
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_eigen::jacobi::{csr_to_dense, dense_symmetric_eig};
    use sass_graph::generators::{grid2d, WeightModel};
    use sass_graph::Graph;

    /// Safe spectral upper bound: 2 * max weighted degree.
    fn lmax_bound(g: &Graph) -> f64 {
        (0..g.n()).map(|v| g.weighted_degree(v)).fold(0.0, f64::max) * 2.0
    }

    #[test]
    fn matches_exact_spectral_filter() {
        // Compare p(L)x against the exact h(L)x computed by dense
        // eigendecomposition; with a smooth response (heat kernel) the
        // Chebyshev approximation is very accurate.
        let g = grid2d(5, 4, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
        let l = g.laplacian();
        let lmax = lmax_bound(&g);
        let tau = 0.7;
        let filter = ChebyshevFilter::heat_kernel(lmax, tau, 40);
        let (vals, vecs) = dense_symmetric_eig(&csr_to_dense(&l)).unwrap();
        let x: Vec<f64> = (0..g.n()).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        // Exact: y = sum_i exp(-tau*lam_i) <u_i, x> u_i.
        let mut exact = vec![0.0; g.n()];
        for (lam, u) in vals.iter().zip(&vecs) {
            let coef = (-tau * lam).exp() * dense::dot(u, &x);
            dense::axpy(coef, u, &mut exact);
        }
        let approx = filter.apply(&l, &x);
        assert!(
            dense::rel_diff(&approx, &exact) < 1e-3,
            "rel diff {}",
            dense::rel_diff(&approx, &exact)
        );
    }

    /// The filter consumes any `LinearOperator`; the f64 storage
    /// backends apply bit-identically, so the filtered signals match
    /// exactly.
    #[test]
    fn backends_filter_identically() {
        use sass_sparse::{BcsrMatrix, CscMatrix};
        let g = grid2d(6, 6, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 4);
        let l = g.laplacian();
        let filter = ChebyshevFilter::heat_kernel(lmax_bound(&g), 0.5, 24);
        let x: Vec<f64> = (0..g.n()).map(|i| ((i * 11 % 17) as f64) - 8.0).collect();
        let want = filter.apply(&l, &x);
        let csc: CscMatrix = g.laplacian_in();
        let bcsr: BcsrMatrix = g.laplacian_in();
        assert_eq!(filter.apply(&csc, &x), want);
        assert_eq!(filter.apply(&bcsr, &x), want);
    }

    #[test]
    fn low_pass_attenuates_high_frequencies() {
        let g = grid2d(8, 8, WeightModel::Unit, 2);
        let l = g.laplacian();
        let lmax = lmax_bound(&g);
        let filter = ChebyshevFilter::low_pass(lmax, 0.5, 32);
        let smooth = crate::signal::smooth_signal(
            &sass_solver::GroundedSolver::new(&l, Default::default()).unwrap(),
            3,
            1,
        );
        let rough = crate::signal::oscillatory_signal(&l, 3, 1);
        let keep = |x: &[f64]| {
            let y = filter.apply(&l, x);
            dense::dot(&y, &y) / dense::dot(x, x)
        };
        let ks = keep(&smooth);
        let kr = keep(&rough);
        assert!(ks > 0.5, "smooth signal kept only {ks}");
        assert!(kr < 0.2, "rough signal kept {kr}");
    }

    #[test]
    fn response_matches_transfer_function() {
        let filter = ChebyshevFilter::heat_kernel(8.0, 0.5, 48);
        for lambda in [0.0f64, 0.5, 2.0, 5.0, 8.0] {
            let want = (-0.5 * lambda).exp();
            let got = filter.response(lambda);
            assert!(
                (got - want).abs() < 1e-3,
                "h({lambda}) = {got}, want {want}"
            );
        }
        assert_eq!(filter.degree(), 48);
    }

    #[test]
    fn constant_signal_passes_low_pass_unchanged() {
        let g = grid2d(4, 4, WeightModel::Unit, 0);
        let l = g.laplacian();
        let filter = ChebyshevFilter::low_pass(lmax_bound(&g), 1.0, 32);
        let x = vec![1.0; 16];
        let y = filter.apply(&l, &x);
        // The constant vector has frequency 0: response ~ 1.
        for v in &y {
            assert!((v - 1.0).abs() < 0.05, "constant component distorted: {v}");
        }
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn rejects_bad_cutoff() {
        ChebyshevFilter::low_pass(4.0, 5.0, 8);
    }
}
