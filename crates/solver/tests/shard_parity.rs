//! Property tests pinning [`ShardedSolver`] to [`GroundedSolver`] across
//! the table-workload shapes (2-D mesh, scale-free, circuit grid) at
//! forced pool widths 1/2/3/8 — the substructured path must reproduce the
//! monolithic grounded answer within the documented `1e-8` relative
//! tolerance, bit-identically across worker counts (span-ordered
//! deterministic fan-in), with the degenerate single-domain,
//! empty-separator, and out-of-core configurations all round-tripping.

use proptest::prelude::*;
use sass_graph::generators::{barabasi_albert, circuit_grid, grid2d, WeightModel};
use sass_graph::Graph;
use sass_solver::{GroundedSolver, ShardOptions, ShardedSolver};
use sass_sparse::ordering::OrderingKind;
use sass_sparse::{dense, pool};

/// Forced global pool widths: degenerate, even, odd, oversubscribed (the
/// same sweep as the race-check CI lane).
const WIDTHS: [usize; 4] = [1, 2, 3, 8];
/// The documented agreement contract vs the monolithic grounded answer
/// (see `sass_solver::substructure`).
const TOL: f64 = 1e-8;

fn opts(domains: usize, out_of_core: bool) -> ShardOptions {
    ShardOptions {
        domains,
        out_of_core,
        spill_dir: None,
    }
}

/// Strategy over the three table-workload shapes at proptest scale.
fn table_shapes() -> impl Strategy<Value = Graph> {
    (0usize..3, 0u64..(1 << 16), 4usize..13, 4usize..11).prop_map(|(shape, seed, a, b)| match shape
    {
        0 => grid2d(a, b, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, seed),
        1 => barabasi_albert(8 * a + b, 2, seed),
        _ => circuit_grid(a, b, 0.15, seed),
    })
}

/// A deterministic centered probe right-hand side.
fn probe_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n)
        .map(|i| ((i as u64 * 7 + seed * 13 + 1) as f64 * 0.37).sin())
        .collect();
    dense::center(&mut b);
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole parity guarantee: at every forced pool width the
    /// sharded answer agrees with the grounded one within [`TOL`], and
    /// the sharded answers are bit-identical across widths.
    #[test]
    fn sharded_matches_grounded_at_forced_widths(g in table_shapes(), k in 2usize..6) {
        let l = g.laplacian();
        let grounded = GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap();
        let b = probe_rhs(g.n(), k as u64);
        let reference = grounded.solve(&b);
        let mut first: Option<Vec<f64>> = None;
        for w in WIDTHS {
            pool::set_threads(w);
            let sharded = ShardedSolver::new(&l, OrderingKind::MinDegree, &opts(k, false))
                .expect("sharded build");
            let x = sharded.solve(&b);
            pool::set_threads(0);
            let rel = dense::rel_diff(&reference, &x);
            prop_assert!(rel < TOL, "width {}: rel diff {:.3e}", w, rel);
            match &first {
                None => first = Some(x),
                Some(x0) => prop_assert_eq!(x0, &x, "width {} not bit-identical", w),
            }
        }
    }

    /// The blocked multi-RHS path agrees column by column too.
    #[test]
    fn sharded_solve_many_matches_grounded(g in table_shapes(), k in 2usize..6, seed in 0u64..512) {
        let l = g.laplacian();
        let grounded = GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap();
        let sharded = ShardedSolver::new(&l, OrderingKind::MinDegree, &opts(k, false))
            .expect("sharded build");
        let rhs: Vec<Vec<f64>> = (0..5).map(|j| probe_rhs(g.n(), seed + j)).collect();
        let want = grounded.solve_many(&rhs);
        let got = sharded.solve_many(&rhs);
        prop_assert_eq!(got.len(), want.len());
        for (w, x) in want.iter().zip(&got) {
            prop_assert!(dense::rel_diff(w, x) < TOL);
        }
    }

    /// `k = 1` degenerates to one domain with an empty separator and must
    /// still reproduce the grounded answer (no Schur complement at all).
    #[test]
    fn single_domain_is_degenerate_but_exact(g in table_shapes()) {
        let l = g.laplacian();
        let sharded = ShardedSolver::new(&l, OrderingKind::MinDegree, &opts(1, false))
            .expect("sharded build");
        prop_assert_eq!(sharded.domain_count(), 1);
        prop_assert_eq!(sharded.separator_len(), 0);
        let grounded = GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap();
        let b = probe_rhs(g.n(), 1);
        prop_assert!(dense::rel_diff(&grounded.solve(&b), &sharded.solve(&b)) < TOL);
    }

    /// Out-of-core round-trip: spilled domains reload to the same answer
    /// (same factors, so far tighter than the cross-backend tolerance),
    /// and residency bookkeeping reports a positive spilled peak.
    #[test]
    fn out_of_core_round_trips(g in table_shapes(), k in 2usize..5) {
        let l = g.laplacian();
        let in_core = ShardedSolver::new(&l, OrderingKind::MinDegree, &opts(k, false))
            .expect("in-core build");
        let ooc = ShardedSolver::new(&l, OrderingKind::MinDegree, &opts(k, true))
            .expect("out-of-core build");
        prop_assert!(ooc.is_out_of_core());
        prop_assert!(!in_core.is_out_of_core());
        prop_assert!(ooc.peak_resident_bytes() > 0);
        let b = probe_rhs(g.n(), k as u64);
        prop_assert!(dense::rel_diff(&in_core.solve(&b), &ooc.solve(&b)) < 1e-12);
    }
}

/// The empty-separator free-split case at `k > 1`: grounding a star's hub
/// leaves the reduced pattern with no edges at all, so every bisection
/// splits regions for free and the separator stays empty — yet the solver
/// must still match the grounded answer on the *connected* original graph.
#[test]
fn star_hub_grounding_yields_empty_separator_at_k_gt_1() {
    let n = 9;
    let edges: Vec<(usize, usize, f64)> = (1..n).map(|v| (0, v, 1.0 + 0.1 * v as f64)).collect();
    let g = Graph::from_edges(n, &edges).expect("star graph");
    let l = g.laplacian();
    let sharded =
        ShardedSolver::new(&l, OrderingKind::MinDegree, &opts(4, false)).expect("sharded build");
    assert_eq!(
        sharded.separator_len(),
        0,
        "free splits consume no separator"
    );
    assert!(
        sharded.domain_count() > 1,
        "the reduced diagonal must split"
    );
    let grounded = GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap();
    let b = probe_rhs(n, 7);
    assert!(dense::rel_diff(&grounded.solve(&b), &sharded.solve(&b)) < TOL);
}
