//! Property-based tests pinning the blocked multi-RHS grounded solves to
//! the per-RHS path on random connected graphs — the same serial/blocked
//! equivalence discipline as the SpMV proptests in `sass-sparse`.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sass_graph::Graph;
use sass_solver::{GroundedScratch, GroundedSolver};
use sass_sparse::ordering::OrderingKind;

/// Strategy: a random *connected* weighted graph — a Hamiltonian path
/// guarantees connectivity, random extra edges add cycles (duplicates are
/// merged by the builder).
fn connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..28).prop_flat_map(|n| {
        let path_weights = proptest::collection::vec(0.1f64..4.0, n - 1);
        let extras = proptest::collection::vec((0usize..n, 0usize..n, 0.1f64..4.0), 0..2 * n);
        (Just(n), path_weights, extras).prop_map(|(n, path_weights, extras)| {
            let mut edges: Vec<(usize, usize, f64)> = path_weights
                .iter()
                .enumerate()
                .map(|(i, &w)| (i, i + 1, w))
                .collect();
            for &(u, v, w) in &extras {
                if u != v {
                    edges.push((u.min(v), u.max(v), w));
                }
            }
            Graph::from_edges(n, &edges).expect("valid edge list")
        })
    })
}

fn random_rhs(n: usize, count: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..n).map(|_| rng.gen_range(-3.0f64..3.0)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole guarantee: blocked `solve_many` agrees with per-RHS
    /// `solve` to ≤ 1e-14 across block sizes exercising single columns,
    /// partial tail blocks (7, 9, 33 = 4·8 + 1), and exact full blocks (8).
    #[test]
    fn solve_many_matches_per_rhs_solve(g in connected_graph(), seed in 0u64..1000) {
        let l = g.laplacian();
        let solver = GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap();
        for count in [1usize, 7, 8, 9, 33] {
            let rhs = random_rhs(g.n(), count, seed ^ count as u64);
            let blocked = solver.solve_many(&rhs);
            prop_assert_eq!(blocked.len(), count);
            for (b, x) in rhs.iter().zip(&blocked) {
                let single = solver.solve(b);
                for (bx, sx) in x.iter().zip(&single) {
                    prop_assert!(
                        (bx - sx).abs() <= 1e-14 * sx.abs().max(1.0),
                        "count={}: blocked {} vs single {}", count, bx, sx
                    );
                }
            }
        }
    }

    /// The scratch variant returns the same solutions as the allocating
    /// one, batch after batch through one reused scratch.
    #[test]
    fn solve_many_into_matches_solve_many(g in connected_graph(), seed in 0u64..1000) {
        let l = g.laplacian();
        let solver = GroundedSolver::new(&l, OrderingKind::Rcm).unwrap();
        let mut scratch = GroundedScratch::new();
        for count in [9usize, 2] {
            let rhs = random_rhs(g.n(), count, seed.wrapping_add(count as u64));
            let mut out = vec![vec![0.0; g.n()]; count];
            solver.solve_many_into(&rhs, &mut out, &mut scratch);
            prop_assert_eq!(out, solver.solve_many(&rhs));
        }
    }

    /// Blocked solutions satisfy the defining properties of `L⁺ b`: zero
    /// mean and `L x = center(b)`.
    #[test]
    fn blocked_solutions_are_mean_zero_pseudoinverse(g in connected_graph(), seed in 0u64..1000) {
        let l = g.laplacian();
        let solver = GroundedSolver::new(&l, OrderingKind::NestedDissection).unwrap();
        let rhs = random_rhs(g.n(), 5, seed);
        for (b, x) in rhs.iter().zip(solver.solve_many(&rhs)) {
            prop_assert!(x.iter().sum::<f64>().abs() < 1e-9);
            let mut centered = b.clone();
            sass_sparse::dense::center(&mut centered);
            prop_assert!(l.residual_norm(&x, &centered) < 1e-8);
        }
    }

    /// An empty right-hand-side list round-trips as an empty answer.
    #[test]
    fn empty_rhs_list_is_empty_answer(g in connected_graph()) {
        let solver = GroundedSolver::new(&g.laplacian(), OrderingKind::Natural).unwrap();
        prop_assert!(solver.solve_many(&[]).is_empty());
        let mut scratch = GroundedScratch::new();
        solver.solve_many_into(&[], &mut [], &mut scratch);
    }
}
