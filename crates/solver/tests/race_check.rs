//! Canaries and transparency checks for the sharded solver's per-domain
//! pool dispatches under the `race-check` shadow write-set tracker.
//!
//! The substructured solver fans out over *domain spans* through
//! `parallel_for_with_scratch` twice per solve (gather → per-domain solve
//! → coupling, then the back-substitution pass) and once per build (the
//! per-domain factorizations); none of those dispatches has upfront span
//! validation, so the tracker is the only line of defense against
//! overlapping-domain writes. The canaries prove it fires; the
//! transparency tests prove the armed tracker changes nothing on the
//! clean path at every forced width.
//!
//! Compiled only with `--features race-check`; CI runs it in the
//! feature-matrix `race-check` lane.
#![cfg(feature = "race-check")]

use sass_graph::generators::{circuit_grid, grid2d, WeightModel};
use sass_solver::{GroundedSolver, ShardOptions, ShardedSolver};
use sass_sparse::ordering::OrderingKind;
use sass_sparse::pool::{self, Pool};
use sass_sparse::{dense, CsrMatrix};

const WIDTHS: [usize; 4] = [1, 2, 3, 8];

fn opts(domains: usize, out_of_core: bool) -> ShardOptions {
    ShardOptions {
        domains,
        out_of_core,
        spill_dir: None,
    }
}

fn sharded(l: &CsrMatrix, domains: usize) -> ShardedSolver {
    ShardedSolver::new(l, OrderingKind::MinDegree, &opts(domains, false)).expect("sharded build")
}

/// The overlapping-domain canary: sliding one domain span into its
/// neighbor (the corruption hook reproduces exactly what a partitioning
/// bug would hand the solve fan-out) must trip the tracker — the
/// per-domain slot writes are no longer disjoint in tracker terms.
#[test]
#[should_panic(expected = "race-check")]
fn corrupted_domain_spans_trip_the_tracker_on_solve() {
    let g = grid2d(12, 12, WeightModel::Unit, 3);
    let l = g.laplacian();
    let mut s = sharded(&l, 4);
    s.corrupt_domain_spans_for_test();
    let _ = s.solve(&vec![1.0; g.n()]);
}

/// Same canary through the blocked multi-RHS entry point, which reuses
/// the identical per-domain fan-out.
#[test]
#[should_panic(expected = "race-check")]
fn corrupted_domain_spans_trip_the_tracker_on_solve_many() {
    let g = circuit_grid(10, 10, 0.15, 5);
    let l = g.laplacian();
    let mut s = sharded(&l, 3);
    s.corrupt_domain_spans_for_test();
    let _ = s.solve_many(&[vec![1.0; g.n()], vec![-1.0; g.n()]]);
}

/// The factorization fan-out's dispatch shape — per-domain factor slots
/// handed out by span — with two domains overlapping by one vertex, as
/// an off-by-one in the separator renumbering would produce.
#[test]
#[should_panic(expected = "race-check")]
fn overlapping_factor_fanout_spans_trip_the_tracker() {
    let pool = Pool::with_threads(2);
    let mut slots: Vec<Option<usize>> = vec![None; 2];
    pool.parallel_for_with_scratch(&[(0, 10), (9, 20)], &mut slots, |d, _, slot| {
        *slot = Some(d);
    });
}

/// Transparency: with the tracker armed, build + both solve paths + the
/// out-of-core reload stay silent at every forced width and return
/// bit-identical answers (the sharded solver's determinism contract).
#[test]
fn sharded_paths_stay_silent_and_deterministic_under_tracker() {
    let g = grid2d(14, 10, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 9);
    let l = g.laplacian();
    let grounded = GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap();
    let mut b: Vec<f64> = (0..g.n())
        .map(|i| ((i * 3 + 1) as f64 * 0.29).cos())
        .collect();
    dense::center(&mut b);
    let reference = grounded.solve(&b);
    let mut first: Option<Vec<f64>> = None;
    for w in WIDTHS {
        pool::set_threads(w);
        let s = sharded(&l, 4);
        let x = s.solve(&b);
        assert_eq!(
            s.solve_many(&[b.clone()])[0],
            x,
            "width {w}: solve_many diverged"
        );
        let ooc = ShardedSolver::new(&l, OrderingKind::MinDegree, &opts(4, true))
            .expect("out-of-core build");
        assert!(dense::rel_diff(&x, &ooc.solve(&b)) < 1e-12, "width {w}");
        pool::set_threads(0);
        assert!(dense::rel_diff(&reference, &x) < 1e-8, "width {w}");
        match &first {
            None => first = Some(x),
            Some(x0) => assert_eq!(x0, &x, "width {w} not bit-identical"),
        }
    }
}
