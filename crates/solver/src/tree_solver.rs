use sass_graph::{Graph, RootedTree};
use sass_sparse::dense;

/// O(n) exact solver for spanning-tree Laplacian systems.
///
/// For a tree, `L_T x = b` (with `Σb = 0`) solves in two sweeps without any
/// factorization: a leaves-to-root pass accumulates the subtree sums
/// `S_v = Σ_{u ∈ subtree(v)} b_u` (the net current through each tree edge in
/// the circuit analogy), and a root-to-leaves pass integrates the potential
/// drops `x_v = x_parent + S_v / w_(v,parent)`. The result is re-centered to
/// the mean-zero representative `L_T⁺ b`.
///
/// This is the cheapest preconditioner in the workspace and the degenerate
/// case of the sparsifier preconditioner (a sparsifier with zero off-tree
/// edges).
///
/// # Example
///
/// ```
/// use sass_graph::{Graph, RootedTree};
/// use sass_solver::TreeSolver;
///
/// # fn main() -> Result<(), sass_solver::SolverError> {
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)])?;
/// let tree = RootedTree::new(&g, vec![0, 1], 0)?;
/// let solver = TreeSolver::new(&g, &tree);
/// let b = [1.0, 0.0, -1.0];
/// let x = solver.solve(&b);
/// assert!(g.laplacian().residual_norm(&x, &b) < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TreeSolver {
    /// BFS order (parents before children).
    order: Vec<u32>,
    parent: Vec<u32>,
    /// Weight of the parent edge of each vertex (unused at the root).
    parent_weight: Vec<f64>,
}

impl TreeSolver {
    /// Builds the solver from a rooted spanning tree of `g`.
    ///
    /// # Panics
    ///
    /// Panics if the tree does not belong to `g` (edge ids out of range).
    pub fn new(g: &Graph, tree: &RootedTree) -> Self {
        let n = tree.n();
        let mut parent = vec![u32::MAX; n];
        let mut parent_weight = vec![0.0; n];
        for v in 0..n {
            if let Some(p) = tree.parent(v) {
                parent[v] = p as u32;
                let Some(id) = tree.parent_edge(v) else {
                    unreachable!("vertex {v} has a parent but no parent edge");
                };
                parent_weight[v] = g.edge(id as usize).weight;
            }
        }
        TreeSolver {
            order: tree.bfs_order().to_vec(),
            parent,
            parent_weight,
        }
    }

    /// Dimension of the system.
    pub fn n(&self) -> usize {
        self.order.len()
    }

    /// Solves `L_T x = center(b)`, returning the mean-zero solution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n()];
        self.solve_into(b, &mut x);
        x
    }

    /// In-place variant of [`TreeSolver::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n()` or `x.len() != n()`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n();
        assert_eq!(b.len(), n, "solve: b length mismatch");
        assert_eq!(x.len(), n, "solve: x length mismatch");
        let mean = dense::mean(b);
        // Subtree sums, leaves to root (reverse BFS order).
        let mut s: Vec<f64> = b.iter().map(|&v| v - mean).collect();
        for &v in self.order.iter().rev() {
            let v = v as usize;
            let p = self.parent[v];
            if p != u32::MAX {
                s[p as usize] += s[v];
            }
        }
        // Potentials, root to leaves.
        for &v in &self.order {
            let v = v as usize;
            let p = self.parent[v];
            x[v] = if p == u32::MAX {
                0.0
            } else {
                x[p as usize] + s[v] / self.parent_weight[v]
            };
        }
        dense::center(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_graph::generators::{grid2d, WeightModel};
    use sass_graph::spanning;
    use sass_sparse::ordering::OrderingKind;

    fn tree_of(g: &Graph) -> RootedTree {
        let ids = spanning::max_weight_spanning_tree(g).unwrap();
        RootedTree::new(g, ids, 0).unwrap()
    }

    #[test]
    fn matches_direct_solver_on_random_tree() {
        let g = grid2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 3.0 }, 5);
        let tree = tree_of(&g);
        let tg = g.subgraph_with_edges(tree.edge_ids().iter().copied());
        let lt = tg.laplacian();
        let ts = TreeSolver::new(&g, &tree);
        let direct = crate::GroundedSolver::new(&lt, OrderingKind::MinDegree).unwrap();
        let mut b: Vec<f64> = (0..g.n()).map(|i| ((i % 11) as f64) - 5.0).collect();
        dense::center(&mut b);
        let x_tree = ts.solve(&b);
        let x_direct = direct.solve(&b);
        assert!(dense::rel_diff(&x_tree, &x_direct) < 1e-10);
        assert!(lt.residual_norm(&x_tree, &b) < 1e-10);
    }

    #[test]
    fn star_tree_has_closed_form() {
        // Star at 0 with unit weights: x_leaf - x_hub = b_leaf.
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)]).unwrap();
        let tree = RootedTree::new(&g, vec![0, 1, 2], 0).unwrap();
        let ts = TreeSolver::new(&g, &tree);
        let b = [-3.0, 1.0, 1.0, 1.0];
        let x = ts.solve(&b);
        for leaf in 1..4 {
            assert!((x[leaf] - x[0] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn handles_path_with_varying_weights() {
        let g = Graph::from_edges(4, &[(0, 1, 2.0), (1, 2, 0.5), (2, 3, 4.0)]).unwrap();
        let tree = RootedTree::new(&g, vec![0, 1, 2], 3).unwrap();
        let ts = TreeSolver::new(&g, &tree);
        let b = [1.0, -2.0, 2.0, -1.0];
        let x = ts.solve(&b);
        assert!(g.laplacian().residual_norm(&x, &b) < 1e-12);
        assert!(x.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn single_vertex() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let tree = RootedTree::new(&g, vec![], 0).unwrap();
        let ts = TreeSolver::new(&g, &tree);
        assert_eq!(ts.solve(&[5.0]), vec![0.0]);
    }
}
