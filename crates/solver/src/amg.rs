//! Aggregation-based algebraic multigrid (AMG) preconditioner.
//!
//! The paper solves its sparsifier systems with graph-theoretic AMG
//! (LAMG [13] / SAMG [24]). This module provides the classic plain-
//! aggregation variant of that family for SDD/Laplacian matrices:
//!
//! - **Setup**: vertices are greedily aggregated along their strongest
//!   off-diagonal connections; the Galerkin coarse operator with a
//!   piecewise-constant prolongator is exactly the Laplacian of the
//!   *contracted* graph, so the whole hierarchy stays SDD. Coarsening
//!   repeats until the system is small enough for a direct grounded solve.
//! - **Apply**: one symmetric V-cycle (damped-Jacobi pre/post smoothing
//!   around a coarse-grid correction), which is a symmetric positive
//!   semi-definite operation and therefore a valid PCG preconditioner.
//!
//! AMG complements the exact [`LaplacianPrec`](crate::LaplacianPrec):
//! cheaper setup and memory on huge meshes, weaker per-iteration
//! contraction (benched against each other in `sass-bench`).

use crate::{Preconditioner, Result, SolverError};
use sass_sparse::ordering::OrderingKind;
use sass_sparse::{dense, CooMatrix, CsrMatrix};

/// Options controlling AMG hierarchy construction and cycling.
#[derive(Debug, Clone, PartialEq)]
pub struct AmgOptions {
    /// Stop coarsening below this many rows (direct solve there).
    pub coarse_size: usize,
    /// Damped-Jacobi weight (2/3 is the classic choice).
    pub jacobi_weight: f64,
    /// Pre- and post-smoothing sweeps per level.
    pub smoothing_sweeps: usize,
    /// Maximum hierarchy depth (safety cap).
    pub max_levels: usize,
}

impl Default for AmgOptions {
    fn default() -> Self {
        AmgOptions {
            coarse_size: 200,
            jacobi_weight: 2.0 / 3.0,
            smoothing_sweeps: 1,
            max_levels: 20,
        }
    }
}

/// One level of the hierarchy.
#[derive(Debug, Clone)]
struct Level {
    a: CsrMatrix,
    inv_diag: Vec<f64>,
    /// Aggregate id of each row (prolongator is the indicator matrix).
    agg: Vec<u32>,
    /// Rows of the next-coarser level.
    n_coarse: usize,
}

/// Aggregation-based AMG V-cycle preconditioner for SDD matrices.
///
/// # Example
///
/// ```
/// use sass_graph::generators::{grid2d, WeightModel};
/// use sass_solver::{pcg, AmgPrec, PcgOptions};
///
/// # fn main() -> Result<(), sass_solver::SolverError> {
/// let g = grid2d(24, 24, WeightModel::Unit, 0);
/// let l = g.laplacian();
/// let amg = AmgPrec::new(&l, &Default::default())?;
/// let mut b = vec![0.0; g.n()];
/// b[0] = 1.0;
/// b[g.n() - 1] = -1.0;
/// let (_, stats) = pcg(&l, &b, &amg, &PcgOptions { tol: 1e-8, ..Default::default() });
/// assert!(stats.converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AmgPrec {
    levels: Vec<Level>,
    coarse: crate::GroundedSolver,
    options: AmgOptions,
}

/// Greedy strength-based aggregation: each unaggregated vertex merges with
/// its strongest unaggregated neighbor (seeding a pair), then remaining
/// singletons join their strongest neighbor's aggregate.
fn aggregate(a: &CsrMatrix) -> (Vec<u32>, usize) {
    let n = a.nrows();
    let mut agg = vec![u32::MAX; n];
    let mut next = 0u32;
    // Pass 1: pair each vertex with its strongest free neighbor.
    for v in 0..n {
        if agg[v] != u32::MAX {
            continue;
        }
        let (cols, vals) = a.row(v);
        let mut best: Option<(usize, f64)> = None;
        for (c, val) in cols.iter().zip(vals) {
            let u = *c as usize;
            if u != v && agg[u] == u32::MAX {
                let s = val.abs();
                if best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((u, s));
                }
            }
        }
        match best {
            Some((u, _)) => {
                agg[v] = next;
                agg[u] = next;
                next += 1;
            }
            None => {
                // No free neighbor: join the strongest aggregated one (or
                // become a singleton aggregate in a degenerate matrix).
                let mut best: Option<(u32, f64)> = None;
                for (c, val) in cols.iter().zip(vals) {
                    let u = *c as usize;
                    if u != v && agg[u] != u32::MAX {
                        let s = val.abs();
                        if best.is_none_or(|(_, bs)| s > bs) {
                            best = Some((agg[u], s));
                        }
                    }
                }
                agg[v] = best.map_or_else(
                    || {
                        let id = next;
                        next += 1;
                        id
                    },
                    |(id, _)| id,
                );
            }
        }
    }
    (agg, next as usize)
}

/// Galerkin coarse operator `Pᵀ A P` for the piecewise-constant
/// prolongator given by `agg` — the Laplacian of the contracted graph.
fn galerkin(a: &CsrMatrix, agg: &[u32], n_coarse: usize) -> CsrMatrix {
    let mut coo = CooMatrix::with_capacity(n_coarse, n_coarse, a.nnz());
    for i in 0..a.nrows() {
        let (cols, vals) = a.row(i);
        let ai = agg[i] as usize;
        for (c, v) in cols.iter().zip(vals) {
            coo.push(ai, agg[*c as usize] as usize, *v);
        }
    }
    coo.to_csr()
}

impl AmgPrec {
    /// Builds the hierarchy for an SDD matrix (typically a connected-graph
    /// Laplacian).
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::GroundedSingular`] if the coarsest system is
    /// singular after grounding (disconnected input) and
    /// [`SolverError::ShapeMismatch`] for rectangular input.
    pub fn new(a: &CsrMatrix, options: &AmgOptions) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SolverError::ShapeMismatch {
                context: format!("matrix is {}x{}", a.nrows(), a.ncols()),
            });
        }
        let mut levels = Vec::new();
        let mut current = a.clone();
        while current.nrows() > options.coarse_size && levels.len() < options.max_levels {
            let (agg, n_coarse) = aggregate(&current);
            if n_coarse >= current.nrows() {
                break; // aggregation stalled (already maximally coarse)
            }
            let coarse = galerkin(&current, &agg, n_coarse);
            let inv_diag = current
                .diagonal()
                .into_iter()
                .map(|d| if d != 0.0 { 1.0 / d } else { 0.0 })
                .collect();
            levels.push(Level {
                a: current,
                inv_diag,
                agg,
                n_coarse,
            });
            current = coarse;
        }
        let coarse = crate::GroundedSolver::new(&current, OrderingKind::MinDegree)?;
        Ok(AmgPrec {
            levels,
            coarse,
            options: options.clone(),
        })
    }

    /// Number of levels including the coarse direct solve.
    pub fn depth(&self) -> usize {
        self.levels.len() + 1
    }

    /// Total stored nonzeros across the hierarchy (memory proxy).
    pub fn hierarchy_nnz(&self) -> usize {
        self.levels.iter().map(|l| l.a.nnz()).sum::<usize>() + self.coarse.nnz_factor()
    }

    /// Damped-Jacobi sweeps: `x ← x + ω D⁻¹ (b − A x)`.
    fn smooth(&self, level: &Level, b: &[f64], x: &mut [f64], sweeps: usize) {
        let n = level.a.nrows();
        let mut r = vec![0.0; n];
        for _ in 0..sweeps {
            level.a.mul_vec_into(x, &mut r);
            for ((xi, &bi), (&ri, &di)) in x.iter_mut().zip(b).zip(r.iter().zip(&level.inv_diag)) {
                *xi += self.options.jacobi_weight * di * (bi - ri);
            }
        }
    }

    /// One symmetric V-cycle starting at `depth`.
    fn vcycle(&self, depth: usize, b: &[f64], x: &mut [f64]) {
        if depth == self.levels.len() {
            self.coarse.solve_into(b, x);
            return;
        }
        let level = &self.levels[depth];
        let n = level.a.nrows();
        for xi in x.iter_mut() {
            *xi = 0.0;
        }
        self.smooth(level, b, x, self.options.smoothing_sweeps);
        // Residual and restriction.
        let mut r = vec![0.0; n];
        level.a.mul_vec_into(x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let mut rc = vec![0.0; level.n_coarse];
        for (i, &a_of_i) in level.agg.iter().enumerate() {
            rc[a_of_i as usize] += r[i];
        }
        // Coarse correction.
        let mut xc = vec![0.0; level.n_coarse];
        self.vcycle(depth + 1, &rc, &mut xc);
        for (i, &a_of_i) in level.agg.iter().enumerate() {
            x[i] += xc[a_of_i as usize];
        }
        self.smooth(level, b, x, self.options.smoothing_sweeps);
    }
}

impl Preconditioner for AmgPrec {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(
            r.len(),
            self.levels.first().map_or(self.coarse.n(), |l| l.a.nrows()),
            "amg: dimension mismatch"
        );
        self.vcycle(0, r, z);
        dense::center(z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pcg, JacobiPrec, PcgOptions};
    use sass_graph::generators::{circuit_grid, grid2d, WeightModel};

    fn centered_rhs(n: usize, seed: u64) -> Vec<f64> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        dense::center(&mut b);
        b
    }

    #[test]
    fn hierarchy_coarsens_geometrically() {
        let g = grid2d(40, 40, WeightModel::Unit, 0);
        let amg = AmgPrec::new(&g.laplacian(), &Default::default()).unwrap();
        assert!(amg.depth() >= 3, "expected a multi-level hierarchy");
        assert!(amg.hierarchy_nnz() < 3 * g.laplacian().nnz());
    }

    #[test]
    fn beats_jacobi_on_mesh() {
        let g = grid2d(32, 32, WeightModel::Unit, 1);
        let l = g.laplacian();
        let b = centered_rhs(g.n(), 2);
        let opts = PcgOptions {
            tol: 1e-8,
            ..Default::default()
        };
        let amg = AmgPrec::new(&l, &Default::default()).unwrap();
        let (x, s_amg) = pcg(&l, &b, &amg, &opts);
        let (_, s_jac) = pcg(&l, &b, &JacobiPrec::new(&l), &opts);
        assert!(s_amg.converged);
        assert!(l.residual_norm(&x, &b) < 1e-6);
        assert!(
            s_amg.iterations * 2 < s_jac.iterations,
            "amg {} vs jacobi {}",
            s_amg.iterations,
            s_jac.iterations
        );
    }

    #[test]
    fn works_on_weighted_circuit_graphs() {
        let g = circuit_grid(28, 28, 0.15, 3);
        let l = g.laplacian();
        let b = centered_rhs(g.n(), 4);
        let amg = AmgPrec::new(&l, &Default::default()).unwrap();
        let (x, stats) = pcg(
            &l,
            &b,
            &amg,
            &PcgOptions {
                tol: 1e-8,
                max_iter: 2000,
                ..Default::default()
            },
        );
        assert!(stats.converged, "{stats:?}");
        assert!(l.residual_norm(&x, &b) < 1e-6);
    }

    #[test]
    fn vcycle_is_symmetric() {
        // A symmetric preconditioner satisfies z1·r2 == z2·r1.
        let g = grid2d(12, 12, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 5);
        let amg = AmgPrec::new(&g.laplacian(), &Default::default()).unwrap();
        let r1 = centered_rhs(g.n(), 6);
        let r2 = centered_rhs(g.n(), 7);
        let mut z1 = vec![0.0; g.n()];
        let mut z2 = vec![0.0; g.n()];
        amg.apply(&r1, &mut z1);
        amg.apply(&r2, &mut z2);
        let a = dense::dot(&z1, &r2);
        let b = dense::dot(&z2, &r1);
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
            "asymmetry: {a} vs {b}"
        );
    }

    #[test]
    fn small_matrix_is_direct_solve_only() {
        let g = grid2d(5, 5, WeightModel::Unit, 0);
        let l = g.laplacian();
        let amg = AmgPrec::new(&l, &Default::default()).unwrap();
        assert_eq!(amg.depth(), 1); // below coarse_size: pure direct
        let b = centered_rhs(25, 1);
        let mut z = vec![0.0; 25];
        amg.apply(&b, &mut z);
        assert!(l.residual_norm(&z, &b) < 1e-10);
    }

    #[test]
    fn disconnected_is_detected() {
        let g = sass_graph::Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(AmgPrec::new(&g.laplacian(), &Default::default()).is_err());
    }
}
