use sass_sparse::CsrMatrix;

/// A symmetric linear operator `y = A x`, the abstraction consumed by
/// [`pcg`](crate::pcg) and the eigensolvers in `sass-eigen`.
///
/// Implemented for [`CsrMatrix`] directly; matrix-free operators (e.g. the
/// generalized pencil `L_P⁺ L_G`) implement it in their own crates.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x.len()` or `y.len()` differ from
    /// [`LinearOperator::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Convenience allocating form of [`LinearOperator::apply`].
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.mul_vec_into(x, y);
    }
}

impl<T: LinearOperator + ?Sized> LinearOperator for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_sparse::CooMatrix;

    #[test]
    fn csr_is_an_operator() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 3.0);
        let a = coo.to_csr();
        let y = a.apply_vec(&[1.0, 1.0]);
        assert_eq!(y, vec![2.0, 3.0]);
        assert_eq!(LinearOperator::dim(&a), 2);
    }

    #[test]
    fn references_are_operators() {
        let a = CsrMatrix::identity(3);
        let r: &CsrMatrix = &a;
        assert_eq!(LinearOperator::dim(&r), 3);
        let y = r.apply_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
    }
}
