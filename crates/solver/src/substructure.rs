//! Substructured (domain-decomposed) exact Laplacian solves.
//!
//! [`ShardedSolver`] is the domain-decomposition counterpart of
//! [`crate::GroundedSolver`]: it grounds the Laplacian at vertex 0 (the
//! reduced matrix is SPD for a connected graph), splits the reduced
//! system with a vertex separator
//! ([`sass_sparse::ordering::vertex_separator`]) into `k` mutually
//! non-adjacent interior domains plus one separator, and solves by
//! *substructuring*:
//!
//! ```text
//!   ┌ A_00      A_0s ┐   per-domain LDLᵀ factors A_dd = L_d D_d L_dᵀ
//!   │   A_11    A_1s │   (built concurrently, one pool lane per domain)
//!   │     ⋱      ⋮   │
//!   │ sym     A_kk ⋮ │   separator Schur complement
//!   └ ⋯  ⋯  ⋯   A_ss ┘   S = A_ss − Σ_d A_sd A_dd⁻¹ A_ds  (dense LDLᵀ)
//! ```
//!
//! A solve is then two embarrassingly-parallel domain sweeps around one
//! small separator solve: `t_d = A_dd⁻¹ r_d`, `g = r_s − Σ A_dsᵀ t_d`,
//! `x_s = S⁻¹ g`, `x_d = A_dd⁻¹ (r_d − A_ds x_s)`. The Schur columns
//! `A_dd⁻¹ A_ds` are produced through the blocked multi-right-hand-side
//! factor path ([`LdlFactor::solve_block_into_scratch`]), a chunk of
//! [`LDL_BLOCK_WIDTH`]-column sweeps at a time.
//!
//! # Tolerance contract
//!
//! [`ShardedSolver::solve`] computes the same mean-zero pseudoinverse
//! representative as [`crate::GroundedSolver::solve`] but along a
//! different elimination order, so results agree to **relative
//! difference ≤ 1e-8** on the paper's table workloads (meshes,
//! scale-free graphs, circuit grids) rather than bit-for-bit — the
//! `shard_parity` proptests pin this down at forced pool widths 1/2/3/8.
//! Results of the sharded solver itself are bit-identical across worker
//! counts: every per-domain product lands in a private slot and all
//! cross-domain folds run in fixed domain order.
//!
//! # Out-of-core mode
//!
//! With [`ShardOptions::out_of_core`] set, domain matrices are spilled
//! to disk ([`sass_sparse::SpillStore`], Matrix Market files in a
//! uniquely-named temp subdirectory) and at most one domain **factor**
//! is resident at a time; a domain solve re-reads and re-factorizes on
//! demand. That trades solve time for a peak resident footprint of one
//! domain instead of the whole factor — [`ShardedSolver::peak_resident_bytes`]
//! reports the high-water mark the shard bench compares against the
//! monolithic factor's memory.

use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

use crate::{Result, SolverError};
use sass_sparse::ordering::{vertex_separator, OrderingKind, SeparatorParts};
use sass_sparse::pool::{self, Span};
use sass_sparse::{
    dense, extract_blocks, CsrMatrix, DenseBlock, LdlFactor, ShardOptions, SparseError, SpillStore,
    LDL_BLOCK_WIDTH,
};

/// Columns per blocked Schur right-hand-side chunk: a full
/// [`LDL_BLOCK_WIDTH`]-wide sweep times 8, capping the dense scratch at
/// `8 · LDL_BLOCK_WIDTH · n_d` per domain while keeping every sweep full.
const SCHUR_RHS_CHUNK: usize = 8 * LDL_BLOCK_WIDTH;

/// Maps a factorization failure onto the solver's error vocabulary: a
/// zero pivot in any domain block (or the Schur complement) means the
/// grounded system is singular — the graph is disconnected.
fn factor_err(e: SparseError) -> SolverError {
    match e {
        SparseError::ZeroPivot { .. } => SolverError::GroundedSingular,
        e => e.into(),
    }
}

/// Dense LDLᵀ of the separator Schur complement (column-major; unit
/// lower triangle below the diagonal, `D` on the diagonal). The
/// separator is small relative to the domains by construction, so the
/// `O(n_s³)` factorization and `O(n_s²)` storage stay negligible next
/// to the sparse domain factors.
#[derive(Debug, Clone)]
struct DenseLdl {
    n: usize,
    ld: Vec<f64>,
}

impl DenseLdl {
    /// Factorizes the column-major `n × n` matrix `a` in place
    /// (left-looking, column by column).
    ///
    /// # Errors
    ///
    /// [`SolverError::GroundedSingular`] on a non-positive (or
    /// non-finite) pivot — the Schur complement of an SPD matrix is SPD,
    /// so this only fires when the grounded system was singular.
    fn new(mut a: Vec<f64>, n: usize) -> Result<Self> {
        debug_assert_eq!(a.len(), n * n);
        for j in 0..n {
            // Columns 0..j are finished L columns; split so we can read
            // them while updating column j.
            let (done, rest) = a.split_at_mut(j * n);
            let col_j = &mut rest[j..n];
            for k in 0..j {
                let dk = done[k * n + k];
                let ljk = done[k * n + j];
                if ljk == 0.0 {
                    continue;
                }
                let scale = dk * ljk;
                let col_k = &done[k * n + j..k * n + n];
                for (cj, &ck) in col_j.iter_mut().zip(col_k) {
                    *cj -= scale * ck;
                }
            }
            let d = col_j[0];
            // `d <= 0.0` is false for NaN, but NaN is non-finite and so
            // still rejected by the second arm.
            if d <= 0.0 || !d.is_finite() {
                return Err(SolverError::GroundedSingular);
            }
            for v in &mut col_j[1..] {
                *v /= d;
            }
        }
        Ok(DenseLdl { n, ld: a })
    }

    /// Solves `(L D Lᵀ) x = b` in place.
    fn solve_in_place(&self, x: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(x.len(), n);
        for j in 0..n {
            let xj = x[j];
            if xj != 0.0 {
                let col = &self.ld[j * n + j + 1..j * n + n];
                for (xi, &l) in x[j + 1..].iter_mut().zip(col) {
                    *xi -= l * xj;
                }
            }
        }
        for (j, xj) in x.iter_mut().enumerate() {
            *xj /= self.ld[j * n + j];
        }
        for j in (0..n).rev() {
            let col = &self.ld[j * n + j + 1..j * n + n];
            let mut s = x[j];
            for (&xi, &l) in x[j + 1..].iter().zip(col) {
                s -= l * xi;
            }
            x[j] = s;
        }
    }

    fn memory_bytes(&self) -> usize {
        self.ld.len() * std::mem::size_of::<f64>()
    }
}

/// Where the per-domain LDLᵀ factors live.
enum FactorStore {
    /// All `k` factors resident — the fast path.
    InCore(Vec<LdlFactor>),
    /// Domain matrices on disk; at most one factor resident, rebuilt
    /// from its spilled matrix on demand.
    OutOfCore {
        store: Arc<SpillStore>,
        resident: Box<Mutex<Option<(usize, LdlFactor)>>>,
        /// High-water mark of resident bytes (domain matrix + its
        /// factor), the out-of-core memory headline.
        peak_resident: AtomicUsize,
    },
}

/// Per-domain workspace one pool lane owns during a solve pass: the
/// gathered domain right-hand sides, the domain solution block, the
/// separator-coupling product, and the factor-solve scratch.
#[derive(Default)]
struct DomainSlot {
    rhs: DenseBlock,
    x: DenseBlock,
    /// `A_dsᵀ t_d` (`n_s × ncols`) — this domain's contribution to the
    /// separator right-hand side.
    coupling: DenseBlock,
    work: Vec<f64>,
}

/// Exact grounded-Laplacian solver by domain decomposition — see the
/// [module docs](self) for the decomposition, the tolerance contract
/// against [`crate::GroundedSolver`], and the out-of-core mode.
///
/// # Example
///
/// ```
/// use sass_graph::generators::{grid2d, WeightModel};
/// use sass_solver::ShardedSolver;
/// use sass_sparse::ShardOptions;
///
/// # fn main() -> Result<(), sass_solver::SolverError> {
/// let g = grid2d(12, 9, WeightModel::Unit, 0);
/// let l = g.laplacian();
/// let opts = ShardOptions { domains: 3, ..Default::default() };
/// let s = ShardedSolver::new(&l, Default::default(), &opts)?;
/// let mut b: Vec<f64> = (0..g.n()).map(|i| (i as f64).sin()).collect();
/// sass_sparse::dense::center(&mut b);
/// let x = s.solve(&b);
/// assert!(l.residual_norm(&x, &b) < 1e-8);
/// assert!(x.iter().sum::<f64>().abs() < 1e-8); // mean-zero representative
/// # Ok(())
/// # }
/// ```
pub struct ShardedSolver {
    /// Dimension of the original (ungrounded) system.
    n: usize,
    /// Reduced dimension (`n - 1`; vertex 0 is the ground).
    rn: usize,
    parts: SeparatorParts,
    /// Domain spans in the (domains…, separator) renumbering — the units
    /// of every per-domain pool dispatch, and what the race-check shadow
    /// tracker audits for disjointness.
    spans: Vec<Span>,
    /// Domain→separator couplings `A_ds` (domain-local rows,
    /// separator-local columns), always resident.
    a_ds: Vec<CsrMatrix>,
    schur: DenseLdl,
    store: FactorStore,
    ordering: OrderingKind,
    /// Total bytes of all domain factors (what in-core mode keeps
    /// resident; out-of-core rebuilds them one at a time).
    factor_bytes: usize,
}

impl ShardedSolver {
    /// Builds the substructured solver for the Laplacian `l`, grounded
    /// at vertex 0.
    ///
    /// `opts.domains` requests the domain count (`0` picks a size-based
    /// heuristic); the achieved decomposition is readable back through
    /// [`ShardedSolver::domain_count`] / [`ShardedSolver::separator_len`].
    ///
    /// # Errors
    ///
    /// [`SolverError::ShapeMismatch`] for a rectangular or empty matrix,
    /// [`SolverError::GroundedSingular`] when any domain factor or the
    /// Schur complement hits a zero pivot (the graph is disconnected),
    /// and spill I/O failures surface as [`SolverError::Sparse`] in
    /// out-of-core mode.
    pub fn new(l: &CsrMatrix, ordering: OrderingKind, opts: &ShardOptions) -> Result<Self> {
        let n = l.nrows();
        if n != l.ncols() || n == 0 {
            return Err(SolverError::ShapeMismatch {
                context: format!("sharded solver: laplacian is {}x{}", n, l.ncols()),
            });
        }
        let rn = n - 1;
        let mut keep = vec![true; n];
        keep[0] = false;
        let (reduced, _) = l.principal_submatrix(&keep);
        let k = if opts.domains == 0 {
            // Mirror the sharded backend's heuristic: one domain per
            // ~64k reduced rows, at least 2 so small systems still
            // exercise the substructured path.
            (rn / 65_536).clamp(2, 16)
        } else {
            opts.domains
        };
        let parts = vertex_separator(&reduced, k);
        let blocks = extract_blocks(&reduced, &parts);
        let offsets = parts.offsets();
        let k = parts.domain_count();
        let ns = parts.separator().len();
        let spans: Vec<Span> = (0..k).map(|d| (offsets[d], offsets[d + 1])).collect();

        // Dense column-major A_ss, the Schur complement's starting point.
        let mut s_dense = vec![0.0; ns * ns];
        for i in 0..ns {
            let (cols, vals) = blocks.a_ss.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                s_dense[c as usize * ns + i] = v;
            }
        }

        let mut factor_bytes = 0usize;
        let store = if opts.out_of_core {
            // Serial domain sweep: factorize, fold the Schur
            // contribution, spill the matrix, drop the factor — at most
            // one domain resident at any point after this loop.
            let mut peak = 0usize;
            for d in 0..k {
                let f = LdlFactor::new(&blocks.a_dd[d], ordering).map_err(factor_err)?;
                factor_bytes += f.memory_bytes();
                peak = peak.max(blocks.a_dd[d].memory_bytes() + f.memory_bytes());
                schur_accumulate(&f, &blocks.a_ds[d], ns, &mut s_dense);
            }
            let store = SpillStore::create(&blocks.a_dd, opts.spill_dir.as_deref())
                .map_err(SolverError::from)?;
            FactorStore::OutOfCore {
                store,
                resident: Box::new(Mutex::new(None)),
                peak_resident: AtomicUsize::new(peak),
            }
        } else {
            // Concurrent per-domain factorization: one pool lane per
            // domain, each writing its private slot (the spans are the
            // domain ranges the race-check shadow tracker audits).
            let mut slots: Vec<Option<std::result::Result<LdlFactor, SparseError>>> =
                (0..k).map(|_| None).collect();
            pool::Pool::global().parallel_for_with_scratch(&spans, &mut slots, |d, _span, slot| {
                *slot = Some(LdlFactor::new(&blocks.a_dd[d], ordering));
            });
            let mut factors = Vec::with_capacity(k);
            for slot in slots {
                let f = slot
                    .unwrap_or_else(|| unreachable!("factor fan-out fills every slot"))
                    .map_err(factor_err)?;
                factor_bytes += f.memory_bytes();
                factors.push(f);
            }
            // Schur assembly: per-domain contributions mapped
            // concurrently, folded elementwise **in span order** so the
            // sum is bit-stable across worker counts.
            let contribution = pool::Pool::global().parallel_reduce(
                &spans,
                |d, _span| {
                    let mut buf = vec![0.0; ns * ns];
                    schur_accumulate(&factors[d], &blocks.a_ds[d], ns, &mut buf);
                    buf
                },
                |mut acc, buf| {
                    for (a, b) in acc.iter_mut().zip(&buf) {
                        *a += b;
                    }
                    acc
                },
            );
            if let Some(contribution) = contribution {
                for (s, c) in s_dense.iter_mut().zip(&contribution) {
                    *s += c;
                }
            }
            FactorStore::InCore(factors)
        };
        let schur = DenseLdl::new(s_dense, ns)?;
        Ok(ShardedSolver {
            n,
            rn,
            parts,
            spans,
            a_ds: blocks.a_ds,
            schur,
            store,
            ordering,
            factor_bytes,
        })
    }

    /// Dimension of the original (ungrounded) system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of interior domains.
    pub fn domain_count(&self) -> usize {
        self.parts.domain_count()
    }

    /// Separator size.
    pub fn separator_len(&self) -> usize {
        self.parts.separator().len()
    }

    /// The vertex-separator decomposition of the grounded system
    /// (reduced indices: original vertex `v > 0` appears as `v - 1`).
    pub fn parts(&self) -> &SeparatorParts {
        &self.parts
    }

    /// Whether domain matrices live on disk (factors rebuilt on demand).
    pub fn is_out_of_core(&self) -> bool {
        matches!(self.store, FactorStore::OutOfCore { .. })
    }

    /// Approximate resident memory, in bytes: factors currently held
    /// (all of them in core, at most one out of core), the dense Schur
    /// factor, and the coupling blocks.
    pub fn memory_bytes(&self) -> usize {
        let factors = match &self.store {
            FactorStore::InCore(_) => self.factor_bytes,
            FactorStore::OutOfCore { resident, .. } => {
                let slot = match resident.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                slot.as_ref().map_or(0, |(_, f)| f.memory_bytes())
            }
        };
        factors
            + self.schur.memory_bytes()
            + self.a_ds.iter().map(CsrMatrix::memory_bytes).sum::<usize>()
    }

    /// High-water mark of resident domain bytes: all domain factors in
    /// core; the largest (domain matrix + factor) pair seen so far out
    /// of core — the number the shard bench compares against a
    /// monolithic factor's [`crate::GroundedSolver::memory_bytes`].
    pub fn peak_resident_bytes(&self) -> usize {
        match &self.store {
            FactorStore::InCore(_) => self.factor_bytes,
            FactorStore::OutOfCore { peak_resident, .. } => {
                peak_resident.load(AtomicOrdering::Relaxed)
            }
        }
    }

    /// Total bytes of every domain factor (resident or not) — the
    /// in-core footprint an out-of-core solver avoids.
    pub fn factor_bytes(&self) -> usize {
        self.factor_bytes
    }

    /// Solves `L x = center(b)`, returning the mean-zero solution
    /// `L⁺ b` (same convention as [`crate::GroundedSolver::solve`]; see
    /// the [module docs](self) for the agreement tolerance).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// In-place variant of [`ShardedSolver::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n()` or `x.len() != n()`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n, "solve: b length mismatch");
        assert_eq!(x.len(), self.n, "solve: x length mismatch");
        let bin = DenseBlock::from_columns(std::slice::from_ref(&b.to_vec()));
        let out = self.solve_block(&bin);
        x.copy_from_slice(out.col(0));
    }

    /// Solves against many right-hand sides, amortizing every domain
    /// factor sweep over the whole batch (and, out of core, every
    /// domain reload).
    ///
    /// # Panics
    ///
    /// Panics if any right-hand side has the wrong length.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        if rhs.is_empty() {
            return Vec::new();
        }
        for b in rhs {
            assert_eq!(b.len(), self.n, "solve_many: rhs length mismatch");
        }
        self.solve_block(&DenseBlock::from_columns(rhs))
            .into_columns()
    }

    /// Solves `L X = center(B)` column-wise, returning the mean-zero
    /// solutions `L⁺ B` — the blocked counterpart of
    /// [`ShardedSolver::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows() != n()`.
    pub fn solve_block(&self, b: &DenseBlock) -> DenseBlock {
        assert_eq!(b.nrows(), self.n, "solve_block: b row-count mismatch");
        let ncols = b.ncols();
        let mut x = DenseBlock::zeros(self.n, ncols);
        if ncols == 0 {
            return x;
        }
        // Centered, ground-row-elided right-hand sides (the grounded
        // convention: solve against the projection onto range(L)).
        let mut rb = DenseBlock::zeros(self.rn, ncols);
        for (rcol, bcol) in rb.columns_mut().zip(b.columns()) {
            let mean = dense::mean(bcol);
            for (r, &bi) in rcol.iter_mut().zip(&bcol[1..]) {
                *r = bi - mean;
            }
        }
        let rx = self.solve_reduced(&rb);
        // Re-insert the ground row as zero and project each solution
        // onto mean-zero (the canonical pseudoinverse representative).
        for (xcol, rcol) in x.columns_mut().zip(rx.columns()) {
            xcol[0] = 0.0;
            xcol[1..].copy_from_slice(rcol);
            dense::center(xcol);
        }
        x
    }

    /// The substructured core on the reduced (grounded) system:
    /// `t_d = A_dd⁻¹ r_d`, `g = r_s − Σ A_dsᵀ t_d`, `x_s = S⁻¹ g`,
    /// `x_d = A_dd⁻¹ (r_d − A_ds x_s)`.
    fn solve_reduced(&self, rb: &DenseBlock) -> DenseBlock {
        let k = self.domain_count();
        let ns = self.separator_len();
        let ncols = rb.ncols();
        let mut out = DenseBlock::zeros(self.rn, ncols);
        if self.rn == 0 {
            return out;
        }
        // Separator right-hand sides, folded into `g` in domain order.
        let mut g = DenseBlock::zeros(ns, ncols);
        for (c, gcol) in g.columns_mut().enumerate() {
            for (gi, &v) in gcol.iter_mut().zip(self.parts.separator()) {
                *gi = rb.col(c)[v];
            }
        }
        match &self.store {
            FactorStore::InCore(factors) => {
                let mut slots: Vec<DomainSlot> = (0..k).map(|_| DomainSlot::default()).collect();
                let p = pool::Pool::global();
                // Pass 1 — per-domain fan-out: each lane owns one slot
                // and one domain span; the shadow tracker audits the
                // spans for disjoint exact coverage under race-check.
                p.parallel_for_with_scratch(&self.spans, &mut slots, |d, _span, slot| {
                    self.gather_domain(d, rb, &mut slot.rhs);
                    slot.x.reshape(slot.rhs.nrows(), ncols);
                    factors[d].solve_block_into_scratch(&slot.rhs, &mut slot.x, &mut slot.work);
                    self.couple(d, &slot.x, &mut slot.coupling);
                });
                for slot in &slots {
                    for (gv, uv) in g.data_mut().iter_mut().zip(slot.coupling.data()) {
                        *gv -= uv;
                    }
                }
                self.solve_separator(&mut g);
                if ns == 0 {
                    // Empty separator (k = 1, or disconnected pieces):
                    // pass 1 already solved every domain exactly.
                    for (d, slot) in slots.iter().enumerate() {
                        self.scatter_domain(d, &slot.x, &mut out);
                    }
                    return out;
                }
                let x_s = &g;
                // Pass 2 — same fan-out, now with the separator values
                // folded into each domain's right-hand side.
                p.parallel_for_with_scratch(&self.spans, &mut slots, |d, _span, slot| {
                    self.subtract_coupling(d, x_s, &mut slot.rhs);
                    factors[d].solve_block_into_scratch(&slot.rhs, &mut slot.x, &mut slot.work);
                });
                for (d, slot) in slots.iter().enumerate() {
                    self.scatter_domain(d, &slot.x, &mut out);
                }
                self.scatter_separator(x_s, &mut out);
            }
            FactorStore::OutOfCore { .. } => {
                // Serial two-pass sweep, one resident factor at a time.
                let mut slots: Vec<DomainSlot> = (0..k).map(|_| DomainSlot::default()).collect();
                for (d, slot) in slots.iter_mut().enumerate() {
                    self.gather_domain(d, rb, &mut slot.rhs);
                    slot.x.reshape(slot.rhs.nrows(), ncols);
                    self.with_factor(d, |f| {
                        f.solve_block_into_scratch(&slot.rhs, &mut slot.x, &mut slot.work);
                    });
                    self.couple(d, &slot.x, &mut slot.coupling);
                    for (gv, uv) in g.data_mut().iter_mut().zip(slot.coupling.data()) {
                        *gv -= uv;
                    }
                }
                self.solve_separator(&mut g);
                if ns == 0 {
                    for (d, slot) in slots.iter().enumerate() {
                        self.scatter_domain(d, &slot.x, &mut out);
                    }
                    return out;
                }
                let x_s = &g;
                // Reverse order so the factor left resident by pass 1
                // (the last domain) is reused without a reload.
                for d in (0..k).rev() {
                    let slot = &mut slots[d];
                    self.subtract_coupling(d, x_s, &mut slot.rhs);
                    self.with_factor(d, |f| {
                        f.solve_block_into_scratch(&slot.rhs, &mut slot.x, &mut slot.work);
                    });
                }
                for (d, slot) in slots.iter().enumerate() {
                    self.scatter_domain(d, &slot.x, &mut out);
                }
                self.scatter_separator(x_s, &mut out);
            }
        }
        out
    }

    /// Gathers domain `d`'s rows of `rb` into `rhs` (`n_d × ncols`).
    fn gather_domain(&self, d: usize, rb: &DenseBlock, rhs: &mut DenseBlock) {
        let rows = self.parts.domain(d);
        rhs.reshape(rows.len(), rb.ncols());
        for (c, rcol) in rhs.columns_mut().enumerate() {
            let src = rb.col(c);
            for (ri, &v) in rcol.iter_mut().zip(rows) {
                *ri = src[v];
            }
        }
    }

    /// `coupling = A_dsᵀ x_d` (`n_s × ncols`), this domain's imprint on
    /// the separator system.
    fn couple(&self, d: usize, x_d: &DenseBlock, coupling: &mut DenseBlock) {
        let ns = self.separator_len();
        let ds = &self.a_ds[d];
        coupling.reshape(ns, x_d.ncols());
        coupling.data_mut().fill(0.0);
        for (c, ucol) in coupling.columns_mut().enumerate() {
            let xcol = x_d.col(c);
            for (r, &xv) in xcol.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let (cols, vals) = ds.row(r);
                for (&sc, &v) in cols.iter().zip(vals) {
                    ucol[sc as usize] += v * xv;
                }
            }
        }
    }

    /// `rhs -= A_ds x_s` for domain `d` (pass-2 right-hand side).
    fn subtract_coupling(&self, d: usize, x_s: &DenseBlock, rhs: &mut DenseBlock) {
        let ds = &self.a_ds[d];
        for (c, rcol) in rhs.columns_mut().enumerate() {
            let scol = x_s.col(c);
            for (r, rv) in rcol.iter_mut().enumerate() {
                let (cols, vals) = ds.row(r);
                let mut acc = 0.0;
                for (&sc, &v) in cols.iter().zip(vals) {
                    acc += v * scol[sc as usize];
                }
                *rv -= acc;
            }
        }
    }

    /// Solves `S x_s = g` column-wise in place.
    fn solve_separator(&self, g: &mut DenseBlock) {
        for col in g.columns_mut() {
            self.schur.solve_in_place(col);
        }
    }

    /// Scatters domain `d`'s solution block back to reduced numbering.
    fn scatter_domain(&self, d: usize, x_d: &DenseBlock, out: &mut DenseBlock) {
        let rows = self.parts.domain(d);
        for (c, xcol) in x_d.columns().enumerate() {
            let dst = out.col_mut(c);
            for (&v, &xi) in rows.iter().zip(xcol) {
                dst[v] = xi;
            }
        }
    }

    /// Scatters the separator solution back to reduced numbering.
    fn scatter_separator(&self, x_s: &DenseBlock, out: &mut DenseBlock) {
        for (c, scol) in x_s.columns().enumerate() {
            let dst = out.col_mut(c);
            for (&v, &xi) in self.parts.separator().iter().zip(scol) {
                dst[v] = xi;
            }
        }
    }

    /// Runs `f` with domain `d`'s factor, rebuilding it from the spilled
    /// matrix first in out-of-core mode (evicting the previous resident).
    ///
    /// # Panics
    ///
    /// Panics if an out-of-core spill file cannot be re-read or no
    /// longer factorizes — the solve APIs this feeds have no error
    /// channel, and either condition means the solver's storage
    /// invariant is gone.
    fn with_factor<R>(&self, d: usize, f: impl FnOnce(&LdlFactor) -> R) -> R {
        match &self.store {
            FactorStore::InCore(factors) => f(&factors[d]),
            FactorStore::OutOfCore {
                store,
                resident,
                peak_resident,
            } => {
                let mut slot = match resident.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let cached = matches!(slot.as_ref(), Some((idx, _)) if *idx == d);
                if !cached {
                    *slot = None; // evict before loading: one resident max
                    let a = match store.load(d) {
                        Ok(m) => m,
                        Err(e) => {
                            panic!("sharded solver: spill reload of domain {d} failed: {e}")
                        }
                    };
                    let factor = match LdlFactor::new(&a, self.ordering) {
                        Ok(f) => f,
                        Err(e) => {
                            panic!("sharded solver: refactorization of domain {d} failed: {e}")
                        }
                    };
                    peak_resident.fetch_max(
                        a.memory_bytes() + factor.memory_bytes(),
                        AtomicOrdering::Relaxed,
                    );
                    *slot = Some((d, factor));
                }
                let Some((_, factor)) = slot.as_ref() else {
                    unreachable!("resident slot was just filled");
                };
                f(factor)
            }
        }
    }

    /// Corrupts the stored domain spans so the next in-core solve hands
    /// the pool an overlapping fan-out — the race-check canary tests use
    /// this to prove the shadow tracker catches overlapping-domain
    /// dispatches. Test-only; meaningless (and absent) in normal builds.
    #[cfg(feature = "race-check")]
    #[doc(hidden)]
    pub fn corrupt_domain_spans_for_test(&mut self) {
        if self.spans.len() >= 2 && self.spans[0].1 > 0 {
            // Slide span 1 back so it overlaps the tail of span 0.
            self.spans[1].0 = self.spans[0].1 - 1;
        }
    }
}

impl std::fmt::Debug for ShardedSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSolver")
            .field("n", &self.n)
            .field("domains", &self.domain_count())
            .field("separator", &self.separator_len())
            .field("out_of_core", &self.is_out_of_core())
            .finish()
    }
}

/// Folds one domain's Schur contribution `A_sd A_dd⁻¹ A_ds` into
/// `s_dense` **negated** (i.e. `s_dense -= A_sd A_dd⁻¹ A_ds`), chunking
/// the right-hand sides through the blocked factor path and skipping
/// separator columns this domain never touches.
fn schur_accumulate(factor: &LdlFactor, a_ds: &CsrMatrix, ns: usize, s_dense: &mut [f64]) {
    let nd = a_ds.nrows();
    if ns == 0 || nd == 0 || a_ds.nnz() == 0 {
        return;
    }
    // Separator columns with support in this domain.
    let mut used: Vec<usize> = a_ds.indices().iter().map(|&c| c as usize).collect();
    used.sort_unstable();
    used.dedup();
    let mut pos = vec![usize::MAX; ns];
    for (p, &c) in used.iter().enumerate() {
        pos[c] = p;
    }
    let mut work = Vec::new();
    let mut w = DenseBlock::zeros(0, 0);
    for (chunk_idx, chunk) in used.chunks(SCHUR_RHS_CHUNK).enumerate() {
        let lo = chunk_idx * SCHUR_RHS_CHUNK;
        let mut rhs = DenseBlock::zeros(nd, chunk.len());
        for r in 0..nd {
            let (cols, vals) = a_ds.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let p = pos[c as usize];
                if p >= lo && p < lo + chunk.len() {
                    rhs.col_mut(p - lo)[r] = v;
                }
            }
        }
        w.reshape(nd, chunk.len());
        factor.solve_block_into_scratch(&rhs, &mut w, &mut work);
        // s_dense[:, cs] -= A_dsᵀ w_j for every chunk column.
        for (j, &cs) in chunk.iter().enumerate() {
            let wcol = w.col(j);
            let out = &mut s_dense[cs * ns..(cs + 1) * ns];
            for (r, &wv) in wcol.iter().enumerate() {
                if wv == 0.0 {
                    continue;
                }
                let (cols, vals) = a_ds.row(r);
                for (&sc, &v) in cols.iter().zip(vals) {
                    out[sc as usize] -= v * wv;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroundedSolver;
    use sass_graph::generators::{grid2d, WeightModel};
    use sass_graph::Graph;

    fn probe(n: usize, seed: usize) -> Vec<f64> {
        let mut b: Vec<f64> = (0..n)
            .map(|i| (((i * (seed + 3)) % 29) as f64 * 0.31).sin())
            .collect();
        dense::center(&mut b);
        b
    }

    fn opts(k: usize) -> ShardOptions {
        ShardOptions {
            domains: k,
            ..Default::default()
        }
    }

    #[test]
    fn matches_grounded_solver_on_grid() {
        let g = grid2d(13, 9, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 5);
        let l = g.laplacian();
        let reference = GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap();
        for k in [1usize, 2, 3, 5] {
            let s = ShardedSolver::new(&l, OrderingKind::MinDegree, &opts(k)).unwrap();
            let b = probe(g.n(), k);
            let x = s.solve(&b);
            assert!(l.residual_norm(&x, &b) < 1e-9, "k={k}");
            assert!(dense::rel_diff(&x, &reference.solve(&b)) < 1e-8, "k={k}");
            assert!(x.iter().sum::<f64>().abs() < 1e-8, "k={k}: mean-zero");
        }
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let g = grid2d(10, 8, WeightModel::Unit, 2);
        let l = g.laplacian();
        let s = ShardedSolver::new(&l, OrderingKind::MinDegree, &opts(3)).unwrap();
        let rhs: Vec<Vec<f64>> = (0..5).map(|k| probe(g.n(), k)).collect();
        let many = s.solve_many(&rhs);
        for (b, x) in rhs.iter().zip(&many) {
            assert!(dense::rel_diff(x, &s.solve(b)) < 1e-13);
            assert!(l.residual_norm(x, b) < 1e-9);
        }
        assert!(s.solve_many(&[]).is_empty());
    }

    #[test]
    fn out_of_core_matches_in_core_and_bounds_residency() {
        let g = grid2d(12, 12, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 9);
        let l = g.laplacian();
        let in_core = ShardedSolver::new(&l, OrderingKind::MinDegree, &opts(4)).unwrap();
        let ooc_opts = ShardOptions {
            domains: 4,
            out_of_core: true,
            spill_dir: None,
        };
        let ooc = ShardedSolver::new(&l, OrderingKind::MinDegree, &ooc_opts).unwrap();
        assert!(ooc.is_out_of_core());
        let b = probe(g.n(), 7);
        let x = ooc.solve(&b);
        assert!(l.residual_norm(&x, &b) < 1e-9);
        assert!(dense::rel_diff(&x, &in_core.solve(&b)) < 1e-12);
        // One resident (matrix + factor) pair must undercut holding
        // every factor at once.
        assert!(ooc.peak_resident_bytes() > 0);
        assert!(
            ooc.peak_resident_bytes() < in_core.factor_bytes() + l.memory_bytes(),
            "{} vs {}",
            ooc.peak_resident_bytes(),
            in_core.factor_bytes()
        );
        assert!(ooc.memory_bytes() < in_core.memory_bytes());
    }

    #[test]
    fn degenerate_systems() {
        // k = 1: empty separator, single-domain exact solve.
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0)]).unwrap();
        let l = g.laplacian();
        let s = ShardedSolver::new(&l, OrderingKind::Natural, &opts(1)).unwrap();
        assert_eq!(s.domain_count(), 1);
        assert_eq!(s.separator_len(), 0);
        let b = probe(4, 1);
        assert!(l.residual_norm(&s.solve(&b), &b) < 1e-12);
        // One-vertex system: the reduced system is empty.
        let tiny = Graph::from_edges(1, &[]).unwrap();
        let s1 = ShardedSolver::new(&tiny.laplacian(), OrderingKind::Natural, &opts(1)).unwrap();
        assert_eq!(s1.solve(&[5.0]), vec![0.0]);
    }

    #[test]
    fn disconnected_graph_is_detected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let err = ShardedSolver::new(&g.laplacian(), OrderingKind::Natural, &opts(2)).unwrap_err();
        assert_eq!(err, SolverError::GroundedSingular);
    }

    #[test]
    fn rejects_bad_shapes() {
        let coo = sass_sparse::CooMatrix::new(0, 0);
        assert!(matches!(
            ShardedSolver::new(&coo.to_csr(), OrderingKind::Natural, &opts(1)),
            Err(SolverError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn dense_ldl_solves_spd_systems() {
        // 3×3 SPD matrix, column-major.
        let a = vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.25, 0.5, 0.25, 2.0];
        let ldl = DenseLdl::new(a.clone(), 3).unwrap();
        let mut x = [1.0, -2.0, 0.5];
        let b = x;
        ldl.solve_in_place(&mut x);
        for i in 0..3 {
            let mut acc = 0.0;
            for j in 0..3 {
                acc += a[j * 3 + i] * x[j];
            }
            assert!((acc - b[i]).abs() < 1e-12, "row {i}");
        }
        // Indefinite input must be rejected, not silently factorized.
        let bad = vec![1.0, 2.0, 2.0, 1.0];
        assert_eq!(
            DenseLdl::new(bad, 2).unwrap_err(),
            SolverError::GroundedSingular
        );
    }
}
