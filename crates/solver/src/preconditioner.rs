use crate::{GroundedScratch, GroundedSolver, TreeSolver};
use sass_sparse::CsrMatrix;
use std::cell::RefCell;

/// Application of an (approximate) inverse: `z ≈ A⁻¹ r`.
///
/// Implementations must be symmetric positive (semi-)definite operators for
/// use inside [`pcg`](crate::pcg). For Laplacian systems the convention in
/// this workspace is that `z` comes back mean-centered.
pub trait Preconditioner {
    /// Computes `z ≈ A⁻¹ r`.
    ///
    /// # Panics
    ///
    /// Implementations panic on slice-length mismatch.
    fn apply(&self, r: &[f64], z: &mut [f64]);
}

/// The identity preconditioner (plain conjugate gradient).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPrec;

impl Preconditioner for IdentityPrec {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Jacobi (diagonal) preconditioner: `z = D⁻¹ r`.
#[derive(Debug, Clone)]
pub struct JacobiPrec {
    inv_diag: Vec<f64>,
}

impl JacobiPrec {
    /// Builds the preconditioner from the diagonal of `a`.
    ///
    /// Zero diagonal entries are passed through unscaled (treated as 1).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn new(a: &CsrMatrix) -> Self {
        let inv_diag = a
            .diagonal()
            .into_iter()
            .map(|d| if d != 0.0 { 1.0 / d } else { 1.0 })
            .collect();
        JacobiPrec { inv_diag }
    }
}

impl Preconditioner for JacobiPrec {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.inv_diag.len(), "jacobi: length mismatch");
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
}

/// Preconditioning by an exact solve with a (sparsified) Laplacian:
/// `z = L_P⁺ r`. This is the paper's use of the spectral sparsifier — the
/// PCG iteration count is then governed by the relative condition number
/// `κ(L_G, L_P) ≤ σ²`. Each application is a pair of triangular factor
/// sweeps, which run level-parallel over the factor's elimination tree on
/// the worker pool once the factor is past the size/width crossover — so
/// PCG iterations get multicore preconditioner applies for free.
#[derive(Debug, Clone)]
pub struct LaplacianPrec {
    solver: GroundedSolver,
    // Reused across applications so the PCG hot loop is allocation-free.
    // (Makes the preconditioner !Sync; clone it per thread instead of
    // sharing one across threads.)
    scratch: RefCell<GroundedScratch>,
}

impl LaplacianPrec {
    /// Wraps a grounded factorization of the preconditioning Laplacian.
    pub fn new(solver: GroundedSolver) -> Self {
        LaplacianPrec {
            solver,
            scratch: RefCell::new(GroundedScratch::new()),
        }
    }

    /// Access to the underlying grounded solver.
    pub fn solver(&self) -> &GroundedSolver {
        &self.solver
    }
}

impl Preconditioner for LaplacianPrec {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.solver
            .solve_into_scratch(r, z, &mut self.scratch.borrow_mut());
    }
}

/// Preconditioning by an O(n) spanning-tree solve: `z = L_T⁺ r`.
#[derive(Debug, Clone)]
pub struct TreePrec {
    solver: TreeSolver,
}

impl TreePrec {
    /// Wraps a tree solver.
    pub fn new(solver: TreeSolver) -> Self {
        TreePrec { solver }
    }
}

impl Preconditioner for TreePrec {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.solver.solve_into(r, z);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_graph::Graph;
    use sass_sparse::ordering::OrderingKind;

    #[test]
    fn identity_copies() {
        let r = [1.0, 2.0];
        let mut z = [0.0; 2];
        IdentityPrec.apply(&r, &mut z);
        assert_eq!(z, r);
    }

    #[test]
    fn jacobi_scales_by_diagonal() {
        let g = Graph::from_edges(3, &[(0, 1, 2.0), (1, 2, 2.0)]).unwrap();
        let l = g.laplacian();
        let m = JacobiPrec::new(&l);
        let mut z = [0.0; 3];
        m.apply(&[2.0, 4.0, 2.0], &mut z);
        assert_eq!(z, [1.0, 1.0, 1.0]);
    }

    #[test]
    fn laplacian_prec_is_pseudoinverse() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let l = g.laplacian();
        let m = LaplacianPrec::new(GroundedSolver::new(&l, OrderingKind::Natural).unwrap());
        let r = [1.0, 0.0, -1.0];
        let mut z = [0.0; 3];
        m.apply(&r, &mut z);
        assert!(l.residual_norm(&z, &r) < 1e-12);
        assert_eq!(m.solver().n(), 3);
    }
}
