use crate::{Result, SolverError};
use sass_sparse::ordering::OrderingKind;
use sass_sparse::{dense, CsrMatrix, LdlFactor, SparseError};

/// Exact solver for (connected) graph-Laplacian systems via *grounding*.
///
/// A graph Laplacian is singular — its nullspace is the all-ones vector —
/// but deleting the row and column of one *ground* vertex leaves an SPD
/// matrix whenever the graph is connected. `GroundedSolver` factorizes that
/// principal submatrix once (sparse LDLᵀ with a fill-reducing ordering) and
/// then answers `L x = b` for any right-hand side with `Σb = 0`, returning
/// the unique solution with zero mean (i.e. `x = L⁺ b`).
///
/// Right-hand sides are centered defensively, so passing a `b` with nonzero
/// mean solves against its projection onto `range(L)`.
///
/// # Example
///
/// ```
/// use sass_graph::Graph;
/// use sass_solver::GroundedSolver;
///
/// # fn main() -> Result<(), sass_solver::SolverError> {
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])?;
/// let l = g.laplacian();
/// let solver = GroundedSolver::new(&l, Default::default())?;
/// let x = solver.solve(&[1.0, 0.0, -1.0]);
/// assert!(l.residual_norm(&x, &[1.0, 0.0, -1.0]) < 1e-12);
/// assert!(x.iter().sum::<f64>().abs() < 1e-12); // mean-zero representative
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GroundedSolver {
    n: usize,
    ground: usize,
    factor: LdlFactor,
}

impl GroundedSolver {
    /// Factorizes the Laplacian `l` grounded at vertex 0.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] for a rectangular matrix,
    /// and [`SolverError::GroundedSingular`] when factorization hits a zero
    /// pivot — which for a Laplacian means the underlying graph is
    /// disconnected.
    pub fn new(l: &CsrMatrix, ordering: OrderingKind) -> Result<Self> {
        Self::with_ground(l, 0, ordering)
    }

    /// Factorizes the Laplacian grounded at a chosen vertex.
    ///
    /// # Errors
    ///
    /// See [`GroundedSolver::new`]; additionally rejects an out-of-range
    /// ground vertex.
    pub fn with_ground(l: &CsrMatrix, ground: usize, ordering: OrderingKind) -> Result<Self> {
        let n = l.nrows();
        if n != l.ncols() {
            return Err(SolverError::ShapeMismatch {
                context: format!("laplacian is {}x{}", n, l.ncols()),
            });
        }
        if ground >= n {
            return Err(SolverError::ShapeMismatch {
                context: format!("ground vertex {ground} out of range for n = {n}"),
            });
        }
        let mut keep = vec![true; n];
        keep[ground] = false;
        let (reduced, _) = l.principal_submatrix(&keep);
        let factor = match LdlFactor::new(&reduced, ordering) {
            Ok(f) => f,
            Err(SparseError::ZeroPivot { .. }) => return Err(SolverError::GroundedSingular),
            Err(e) => return Err(e.into()),
        };
        Ok(GroundedSolver { n, ground, factor })
    }

    /// Dimension of the original (ungrounded) system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The grounded vertex.
    pub fn ground(&self) -> usize {
        self.ground
    }

    /// Off-diagonal nonzeros in the factor (memory/fill proxy).
    pub fn nnz_factor(&self) -> usize {
        self.factor.nnz_l()
    }

    /// Approximate memory held by the factorization, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.factor.memory_bytes()
    }

    /// Solves `L x = center(b)`, returning the mean-zero solution `L⁺ b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves against many right-hand sides, amortizing the factorization —
    /// the paper's Table 2 motivation ("multiple RHS vectors").
    ///
    /// # Panics
    ///
    /// Panics if any right-hand side has the wrong length.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rhs.iter().map(|b| self.solve(b)).collect()
    }

    /// In-place variant of [`GroundedSolver::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n()` or `x.len() != n()`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        self.solve_into_scratch(b, x, &mut GroundedScratch::new());
    }

    /// [`GroundedSolver::solve_into`] with caller-owned scratch buffers, so
    /// repeated solves against one factorization (power/Lanczos iterations,
    /// PCG preconditioning, embeddings over many right-hand sides) allocate
    /// nothing after the first call.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n()` or `x.len() != n()`.
    pub fn solve_into_scratch(&self, b: &[f64], x: &mut [f64], scratch: &mut GroundedScratch) {
        assert_eq!(b.len(), self.n, "solve: b length mismatch");
        assert_eq!(x.len(), self.n, "solve: x length mismatch");
        let mean = dense::mean(b);
        // Reduced RHS skips the ground entry.
        let rb = &mut scratch.rb;
        rb.clear();
        rb.reserve(self.n - 1);
        for (i, &bi) in b.iter().enumerate() {
            if i != self.ground {
                rb.push(bi - mean);
            }
        }
        scratch.rx.resize(self.n - 1, 0.0);
        self.factor
            .solve_into_scratch(rb, &mut scratch.rx, &mut scratch.work);
        let mut k = 0;
        for (i, xi) in x.iter_mut().enumerate() {
            if i == self.ground {
                *xi = 0.0;
            } else {
                *xi = scratch.rx[k];
                k += 1;
            }
        }
        dense::center(x);
    }
}

/// Reusable buffers for [`GroundedSolver::solve_into_scratch`].
///
/// One scratch serves solvers of any size (buffers resize lazily); keep it
/// per call site, not shared across threads.
#[derive(Debug, Clone, Default)]
pub struct GroundedScratch {
    rb: Vec<f64>,
    rx: Vec<f64>,
    work: Vec<f64>,
}

impl GroundedScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_graph::generators::{grid2d, WeightModel};
    use sass_graph::Graph;

    #[test]
    fn exact_on_grid_laplacian() {
        let g = grid2d(9, 7, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 3);
        let l = g.laplacian();
        let s = GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap();
        let mut b: Vec<f64> = (0..g.n()).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        dense::center(&mut b);
        let x = s.solve(&b);
        assert!(l.residual_norm(&x, &b) < 1e-10);
    }

    #[test]
    fn solution_is_mean_zero_pseudoinverse() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (3, 0, 1.0)]).unwrap();
        let l = g.laplacian();
        let s = GroundedSolver::new(&l, OrderingKind::Natural).unwrap();
        let b = [1.0, -1.0, 1.0, -1.0];
        let x = s.solve(&b);
        assert!(x.iter().sum::<f64>().abs() < 1e-12);
        // L (L+ b) = b for centered b.
        assert!(l.residual_norm(&x, &b) < 1e-12);
    }

    #[test]
    fn uncentered_rhs_is_projected() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let l = g.laplacian();
        let s = GroundedSolver::new(&l, OrderingKind::Natural).unwrap();
        let b = [2.0, 1.0, 0.0]; // mean 1
        let x = s.solve(&b);
        let centered = [1.0, 0.0, -1.0];
        assert!(l.residual_norm(&x, &centered) < 1e-12);
    }

    #[test]
    fn disconnected_graph_is_detected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let err = GroundedSolver::new(&g.laplacian(), OrderingKind::Natural).unwrap_err();
        assert_eq!(err, SolverError::GroundedSingular);
    }

    #[test]
    fn any_ground_vertex_gives_same_solution() {
        let g = grid2d(5, 5, WeightModel::Unit, 0);
        let l = g.laplacian();
        let mut b: Vec<f64> = (0..25).map(|i| (i as f64).cos()).collect();
        dense::center(&mut b);
        let x0 = GroundedSolver::with_ground(&l, 0, OrderingKind::MinDegree)
            .unwrap()
            .solve(&b);
        let x12 = GroundedSolver::with_ground(&l, 12, OrderingKind::Rcm)
            .unwrap()
            .solve(&b);
        assert!(dense::rel_diff(&x0, &x12) < 1e-10);
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let g = grid2d(6, 6, WeightModel::Unit, 1);
        let l = g.laplacian();
        let s = GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap();
        let rhs: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                let mut b: Vec<f64> = (0..36)
                    .map(|i| ((i * (k + 2)) as f64 * 0.1).sin())
                    .collect();
                dense::center(&mut b);
                b
            })
            .collect();
        let many = s.solve_many(&rhs);
        for (b, x) in rhs.iter().zip(&many) {
            assert!(dense::rel_diff(x, &s.solve(b)) < 1e-15);
            assert!(l.residual_norm(x, b) < 1e-10);
        }
    }

    #[test]
    fn rejects_bad_ground() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        assert!(GroundedSolver::with_ground(&g.laplacian(), 5, OrderingKind::Natural).is_err());
    }
}
