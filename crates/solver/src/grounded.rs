use crate::{Result, SolverError};
use sass_sparse::ordering::OrderingKind;
use sass_sparse::{dense, pool, CsrMatrix, DenseBlock, LdlFactor, SparseBackend, SparseError};

/// Minimum `n × ncols` work before the blocked solve's per-column
/// centering/mean-zero passes go parallel under automatic pool sizing (an
/// explicit `SASS_THREADS` / `pool::set_threads` override skips the
/// crossover). The triangular factor solves carry their own crossover
/// inside [`LdlFactor`]: they run level-parallel over the elimination
/// tree once the factor is big and bushy enough.
const MIN_PAR_BLOCK_WORK: usize = 32_768;

/// Exact solver for (connected) graph-Laplacian systems via *grounding*.
///
/// A graph Laplacian is singular — its nullspace is the all-ones vector —
/// but deleting the row and column of one *ground* vertex leaves an SPD
/// matrix whenever the graph is connected. `GroundedSolver` factorizes that
/// principal submatrix once (sparse LDLᵀ with a fill-reducing ordering) and
/// then answers `L x = b` for any right-hand side with `Σb = 0`, returning
/// the unique solution with zero mean (i.e. `x = L⁺ b`).
///
/// Right-hand sides are centered defensively, so passing a `b` with nonzero
/// mean solves against its projection onto `range(L)`.
///
/// # Example
///
/// ```
/// use sass_graph::Graph;
/// use sass_solver::GroundedSolver;
///
/// # fn main() -> Result<(), sass_solver::SolverError> {
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])?;
/// let l = g.laplacian();
/// let solver = GroundedSolver::new(&l, Default::default())?;
/// let x = solver.solve(&[1.0, 0.0, -1.0]);
/// assert!(l.residual_norm(&x, &[1.0, 0.0, -1.0]) < 1e-12);
/// assert!(x.iter().sum::<f64>().abs() < 1e-12); // mean-zero representative
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GroundedSolver {
    n: usize,
    ground: usize,
    ordering: OrderingKind,
    factor: LdlFactor,
    /// Lazy cache of the ground-row/column elimination, keyed on the
    /// incoming Laplacian's sparsity pattern: on a hit the reduced
    /// matrix's values are refreshed through `gather` instead of
    /// rebuilding the submatrix (see [`GroundedSolver::refactor`]).
    red_cache: Option<GroundCache>,
}

/// See [`GroundedSolver::red_cache`]: `gather[q]` is the position in the
/// full Laplacian's value array feeding `reduced.data()[q]` — exactly the
/// entries outside the ground row and column, in row-major order, which is
/// what [`CsrMatrix::principal_submatrix`] keeps.
#[derive(Debug, Clone)]
struct GroundCache {
    l_p: Vec<usize>,
    l_i: Vec<u32>,
    gather: Vec<u32>,
    reduced: CsrMatrix,
}

impl GroundedSolver {
    /// Factorizes the Laplacian `l` grounded at vertex 0.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::ShapeMismatch`] for a rectangular matrix,
    /// and [`SolverError::GroundedSingular`] when factorization hits a zero
    /// pivot — which for a Laplacian means the underlying graph is
    /// disconnected.
    pub fn new(l: &CsrMatrix, ordering: OrderingKind) -> Result<Self> {
        Self::with_ground(l, 0, ordering)
    }

    /// Factorizes a Laplacian held in any `f64` storage backend
    /// ([`SparseBackend`]), grounded at vertex 0.
    ///
    /// The factorization itself always runs on row-major `f64` storage —
    /// LDLᵀ needs full precision and row sweeps — so non-CSR backends are
    /// converted once up front; the factor's cost dwarfs that copy.
    ///
    /// # Errors
    ///
    /// Same as [`GroundedSolver::new`].
    pub fn from_backend<B: SparseBackend<Scalar = f64>>(
        l: &B,
        ordering: OrderingKind,
    ) -> Result<Self> {
        Self::new(&l.to_csr(), ordering)
    }

    /// Factorizes the Laplacian grounded at a chosen vertex.
    ///
    /// # Errors
    ///
    /// See [`GroundedSolver::new`]; additionally rejects an out-of-range
    /// ground vertex.
    pub fn with_ground(l: &CsrMatrix, ground: usize, ordering: OrderingKind) -> Result<Self> {
        let n = l.nrows();
        if n != l.ncols() {
            return Err(SolverError::ShapeMismatch {
                context: format!("laplacian is {}x{}", n, l.ncols()),
            });
        }
        if ground >= n {
            return Err(SolverError::ShapeMismatch {
                context: format!("ground vertex {ground} out of range for n = {n}"),
            });
        }
        let mut keep = vec![true; n];
        keep[ground] = false;
        let (reduced, _) = l.principal_submatrix(&keep);
        let factor = match LdlFactor::new(&reduced, ordering) {
            Ok(f) => f,
            Err(SparseError::ZeroPivot { .. }) => return Err(SolverError::GroundedSingular),
            Err(e) => return Err(e.into()),
        };
        Ok(GroundedSolver {
            n,
            ground,
            ordering,
            factor,
            red_cache: None,
        })
    }

    /// Updates the solver in place after the Laplacian changed at a known
    /// set of vertices, re-running numeric factorization only on the
    /// elimination-tree ancestor closure of the changed columns
    /// ([`LdlFactor::refactor_partial`]).
    ///
    /// `l` is the **new** Laplacian (same dimension, same ground vertex);
    /// `changed_vertices` lists every vertex whose row of `l` differs from
    /// the Laplacian this solver currently represents — for an edge edit
    /// `(u, v)` that is `u` and `v` (the ground vertex may be included and
    /// is ignored). `crossover` is the affected-fraction threshold past
    /// which the whole numeric phase is re-run on the existing symbolic
    /// analysis; a sparsity-pattern change falls back to a full
    /// re-factorization (fresh ordering) transparently.
    ///
    /// After a successful return the solver is exactly the solver
    /// [`GroundedSolver::with_ground`] would build for `l` — bit-identical
    /// when the pattern is unchanged (skipped columns keep values that a
    /// from-scratch run would reproduce, re-run columns execute the same
    /// factorization steps on the same inputs).
    ///
    /// # Errors
    ///
    /// [`SolverError::ShapeMismatch`] if `l` has a different dimension, and
    /// [`SolverError::GroundedSingular`] if a pivot vanishes — the solver
    /// is **poisoned** then and must be rebuilt before further solves.
    pub fn refactor(
        &mut self,
        l: &CsrMatrix,
        changed_vertices: &[usize],
        crossover: f64,
    ) -> Result<sass_sparse::RefactorStats> {
        if l.nrows() != self.n || l.ncols() != self.n {
            return Err(SolverError::ShapeMismatch {
                context: format!(
                    "refactor: solver is {}x{0}, laplacian is {1}x{2}",
                    self.n,
                    l.nrows(),
                    l.ncols()
                ),
            });
        }
        if let Some(&v) = changed_vertices.iter().find(|&&v| v >= self.n) {
            return Err(SolverError::ShapeMismatch {
                context: format!(
                    "refactor: changed vertex {v} out of range for n = {}",
                    self.n
                ),
            });
        }
        // Ground elimination: on a pattern hit against the cached
        // Laplacian, refresh the reduced matrix's values through the
        // stored gather map (the submatrix keeps full-matrix entries in
        // row-major order, so a pattern-equal input routes values to the
        // same slots); otherwise rebuild the submatrix and the map.
        let cached = matches!(
            &self.red_cache,
            Some(c) if c.l_p == l.indptr() && c.l_i == l.indices()
        );
        if cached {
            let Some(cache) = self.red_cache.as_mut() else {
                unreachable!("`cached` requires `red_cache` to be Some");
            };
            let src = l.data();
            for (dst, &p) in cache.reduced.data_mut().iter_mut().zip(&cache.gather) {
                *dst = src[p as usize];
            }
        } else {
            let mut keep = vec![true; self.n];
            keep[self.ground] = false;
            let (reduced, _) = l.principal_submatrix(&keep);
            self.red_cache = Some(Self::build_ground_cache(l, self.ground, reduced));
        }
        let Some(red_cache) = self.red_cache.as_ref() else {
            unreachable!("both branches above leave `red_cache` populated");
        };
        let reduced = &red_cache.reduced;
        // Grounded row index of vertex v: vertices above the ground shift
        // down by one; the ground row itself does not exist in the reduced
        // system (its incident-edge updates land on the other endpoints).
        let changed_rows: Vec<usize> = changed_vertices
            .iter()
            .filter(|&&v| v != self.ground)
            .map(|&v| if v > self.ground { v - 1 } else { v })
            .collect();
        match self
            .factor
            .refactor_partial(reduced, &changed_rows, crossover)
        {
            Ok(sass_sparse::RefactorOutcome::Patched(stats)) => Ok(stats),
            Ok(sass_sparse::RefactorOutcome::PatternChanged) => {
                let rn = reduced.nrows();
                match LdlFactor::new(reduced, self.ordering) {
                    Ok(f) => {
                        self.factor = f;
                        Ok(sass_sparse::RefactorStats {
                            cols_refactored: rn,
                            total_cols: rn,
                            full: true,
                        })
                    }
                    Err(SparseError::ZeroPivot { .. }) => Err(SolverError::GroundedSingular),
                    Err(e) => Err(e.into()),
                }
            }
            Err(SparseError::ZeroPivot { .. }) => Err(SolverError::GroundedSingular),
            Err(e) => Err(e.into()),
        }
    }

    /// Dimension of the original (ungrounded) system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The grounded vertex.
    pub fn ground(&self) -> usize {
        self.ground
    }

    /// Off-diagonal nonzeros in the factor (memory/fill proxy).
    pub fn nnz_factor(&self) -> usize {
        self.factor.nnz_l()
    }

    /// The underlying LDLᵀ factorization of the grounded Laplacian —
    /// exposes the elimination-tree observability surface
    /// ([`LdlFactor::level_count`], [`LdlFactor::max_level_width`],
    /// [`LdlFactor::memory_bytes`]) the bench binaries report.
    pub fn factor(&self) -> &LdlFactor {
        &self.factor
    }

    /// Builds the [`GroundCache`] for `l`: records `l`'s pattern and, for
    /// every entry outside the ground row and column in row-major order,
    /// the source position feeding the corresponding reduced-matrix slot.
    fn build_ground_cache(l: &CsrMatrix, ground: usize, reduced: CsrMatrix) -> GroundCache {
        assert!(
            l.nnz() < u32::MAX as usize,
            "ground cache gather indices must fit in u32"
        );
        let indptr = l.indptr();
        let indices = l.indices();
        let mut gather = Vec::with_capacity(reduced.nnz());
        for i in 0..l.nrows() {
            if i == ground {
                continue;
            }
            for (p, &col) in indices
                .iter()
                .enumerate()
                .take(indptr[i + 1])
                .skip(indptr[i])
            {
                if col as usize != ground {
                    gather.push(p as u32);
                }
            }
        }
        debug_assert_eq!(gather.len(), reduced.nnz());
        GroundCache {
            l_p: indptr.to_vec(),
            l_i: indices.to_vec(),
            gather,
            reduced,
        }
    }

    /// Approximate memory held by the factorization, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.factor.memory_bytes()
    }

    /// Solves `L x = center(b)`, returning the mean-zero solution `L⁺ b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves against many right-hand sides, amortizing the factorization —
    /// the paper's Table 2 motivation ("multiple RHS vectors").
    ///
    /// Right-hand sides are processed in blocks of
    /// [`sass_sparse::LDL_BLOCK_WIDTH`] columns: one sweep over the LDLᵀ
    /// factor's indices advances the whole block, so factor traffic is paid
    /// once per block instead of once per vector. Results agree with
    /// per-RHS [`GroundedSolver::solve`] to floating-point sign-of-zero.
    ///
    /// # Panics
    ///
    /// Panics if any right-hand side has the wrong length.
    pub fn solve_many(&self, rhs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        if rhs.is_empty() {
            return Vec::new();
        }
        for b in rhs {
            assert_eq!(b.len(), self.n, "solve_many: rhs length mismatch");
        }
        let block = DenseBlock::from_columns(rhs);
        self.solve_block(&block).into_columns()
    }

    /// [`GroundedSolver::solve_many`] into caller-provided buffers with
    /// caller-owned scratch, so repeated batched solves against one
    /// factorization allocate nothing after the first call.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != rhs.len()` or any vector on either side has
    /// the wrong length.
    ///
    /// # Example
    ///
    /// ```
    /// use sass_graph::Graph;
    /// use sass_solver::{GroundedScratch, GroundedSolver};
    ///
    /// # fn main() -> Result<(), sass_solver::SolverError> {
    /// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])?;
    /// let l = g.laplacian();
    /// let solver = GroundedSolver::new(&l, Default::default())?;
    /// let rhs = vec![vec![1.0, 0.0, -1.0], vec![0.0, 1.0, -1.0]];
    /// let mut out = vec![vec![0.0; 3]; 2];
    /// let mut scratch = GroundedScratch::new();
    /// solver.solve_many_into(&rhs, &mut out, &mut scratch);
    /// for (b, x) in rhs.iter().zip(&out) {
    ///     assert!(l.residual_norm(x, b) < 1e-12);
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn solve_many_into(
        &self,
        rhs: &[Vec<f64>],
        out: &mut [Vec<f64>],
        scratch: &mut GroundedScratch,
    ) {
        assert_eq!(out.len(), rhs.len(), "solve_many: output count mismatch");
        for b in rhs {
            assert_eq!(b.len(), self.n, "solve_many: rhs length mismatch");
        }
        for x in out.iter() {
            assert_eq!(x.len(), self.n, "solve_many: output length mismatch");
        }
        let mut bin = std::mem::take(&mut scratch.bin);
        bin.reshape(self.n, rhs.len());
        for (col, b) in bin.columns_mut().zip(rhs) {
            col.copy_from_slice(b);
        }
        let mut bout = std::mem::take(&mut scratch.bout);
        bout.reshape(self.n, rhs.len());
        self.solve_block_into_scratch(&bin, &mut bout, scratch);
        for (x, col) in out.iter_mut().zip(bout.columns()) {
            x.copy_from_slice(col);
        }
        scratch.bin = bin;
        scratch.bout = bout;
    }

    /// Solves `L X = center(B)` column-wise for a block of right-hand
    /// sides, returning the mean-zero solutions `L⁺ B`.
    ///
    /// The blocked counterpart of [`GroundedSolver::solve`]: centering,
    /// ground-row elision, and the mean-zero projection are applied to every
    /// column, and the factor solves run [`sass_sparse::LDL_BLOCK_WIDTH`]
    /// columns per sweep.
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows() != n()`.
    pub fn solve_block(&self, b: &DenseBlock) -> DenseBlock {
        let mut x = DenseBlock::zeros(self.n, b.ncols());
        self.solve_block_into_scratch(b, &mut x, &mut GroundedScratch::new());
        x
    }

    /// [`GroundedSolver::solve_block`] into a caller-provided block with
    /// caller-owned scratch.
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows() != n()` or `x` has a different shape than `b`.
    pub fn solve_block_into_scratch(
        &self,
        b: &DenseBlock,
        x: &mut DenseBlock,
        scratch: &mut GroundedScratch,
    ) {
        assert_eq!(b.nrows(), self.n, "solve_block: b row-count mismatch");
        assert_eq!(x.nrows(), self.n, "solve_block: x row-count mismatch");
        assert_eq!(x.ncols(), b.ncols(), "solve_block: column-count mismatch");
        if b.ncols() == 0 {
            return;
        }
        let rn = self.n - 1;
        let ncols = b.ncols();
        // Columns are independent in both dense passes, so they spread
        // over the worker pool above a size crossover; each column runs
        // the exact serial per-column code, keeping the blocked solve
        // bit-identical to the scalar path at any worker count.
        let p = pool::Pool::global();
        let workers = if rn == 0 {
            1
        } else {
            p.workers_for(self.n * ncols, MIN_PAR_BLOCK_WORK, MIN_PAR_BLOCK_WORK)
                .min(ncols)
        };
        let col_spans = pool::even_spans(ncols, workers);
        // Reduced right-hand sides: centered, ground row elided — the same
        // per-column convention as the scalar path, vectorized.
        let fill_rcol = |rcol: &mut [f64], bcol: &[f64]| {
            let mean = dense::mean(bcol);
            let mut k = 0;
            for (i, &bi) in bcol.iter().enumerate() {
                if i != self.ground {
                    rcol[k] = bi - mean;
                    k += 1;
                }
            }
        };
        let rb = &mut scratch.rb_block;
        rb.reshape(rn, ncols);
        if workers <= 1 {
            for (rcol, bcol) in rb.columns_mut().zip(b.columns()) {
                fill_rcol(rcol, bcol);
            }
        } else {
            let scaled = pool::scale_spans(&col_spans, rn);
            p.parallel_for_disjoint_mut(rb.data_mut(), &scaled, |s, chunk| {
                let clo = col_spans[s].0;
                for (k, rcol) in chunk.chunks_exact_mut(rn).enumerate() {
                    fill_rcol(rcol, b.col(clo + k));
                }
            });
        }
        let rx = &mut scratch.rx_block;
        rx.reshape(rn, ncols);
        self.factor
            .solve_block_into_scratch(&scratch.rb_block, rx, &mut scratch.work);
        // Re-insert the ground row as zero and project each solution onto
        // mean-zero (the canonical pseudoinverse representative).
        let store_xcol = |xcol: &mut [f64], rcol: &[f64]| {
            let mut k = 0;
            for (i, xi) in xcol.iter_mut().enumerate() {
                if i == self.ground {
                    *xi = 0.0;
                } else {
                    *xi = rcol[k];
                    k += 1;
                }
            }
            dense::center(xcol);
        };
        let rx = &scratch.rx_block;
        if workers <= 1 {
            for (xcol, rcol) in x.columns_mut().zip(rx.columns()) {
                store_xcol(xcol, rcol);
            }
        } else {
            let n = self.n;
            let scaled = pool::scale_spans(&col_spans, n);
            p.parallel_for_disjoint_mut(x.data_mut(), &scaled, |s, chunk| {
                let clo = col_spans[s].0;
                for (k, xcol) in chunk.chunks_exact_mut(n).enumerate() {
                    store_xcol(xcol, rx.col(clo + k));
                }
            });
        }
    }

    /// In-place variant of [`GroundedSolver::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n()` or `x.len() != n()`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        self.solve_into_scratch(b, x, &mut GroundedScratch::new());
    }

    /// [`GroundedSolver::solve_into`] with caller-owned scratch buffers, so
    /// repeated solves against one factorization (power/Lanczos iterations,
    /// PCG preconditioning, embeddings over many right-hand sides) allocate
    /// nothing after the first call.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n()` or `x.len() != n()`.
    pub fn solve_into_scratch(&self, b: &[f64], x: &mut [f64], scratch: &mut GroundedScratch) {
        assert_eq!(b.len(), self.n, "solve: b length mismatch");
        assert_eq!(x.len(), self.n, "solve: x length mismatch");
        let mean = dense::mean(b);
        // Reduced RHS skips the ground entry.
        let rb = &mut scratch.rb;
        rb.clear();
        rb.reserve(self.n - 1);
        for (i, &bi) in b.iter().enumerate() {
            if i != self.ground {
                rb.push(bi - mean);
            }
        }
        scratch.rx.resize(self.n - 1, 0.0);
        self.factor
            .solve_into_scratch(rb, &mut scratch.rx, &mut scratch.work);
        let mut k = 0;
        for (i, xi) in x.iter_mut().enumerate() {
            if i == self.ground {
                *xi = 0.0;
            } else {
                *xi = scratch.rx[k];
                k += 1;
            }
        }
        dense::center(x);
    }
}

/// Reusable buffers for [`GroundedSolver::solve_into_scratch`] and the
/// blocked variants ([`GroundedSolver::solve_block_into_scratch`],
/// [`GroundedSolver::solve_many_into`]).
///
/// One scratch serves solvers of any size and any block width (buffers
/// resize lazily); keep it per call site, not shared across threads.
#[derive(Debug, Clone, Default)]
pub struct GroundedScratch {
    rb: Vec<f64>,
    rx: Vec<f64>,
    work: Vec<f64>,
    rb_block: DenseBlock,
    rx_block: DenseBlock,
    bin: DenseBlock,
    bout: DenseBlock,
}

impl GroundedScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_graph::generators::{grid2d, WeightModel};
    use sass_graph::Graph;

    #[test]
    fn exact_on_grid_laplacian() {
        let g = grid2d(9, 7, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 3);
        let l = g.laplacian();
        let s = GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap();
        let mut b: Vec<f64> = (0..g.n()).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        dense::center(&mut b);
        let x = s.solve(&b);
        assert!(l.residual_norm(&x, &b) < 1e-10);
    }

    /// Any `f64` storage backend factorizes to the same solver: CSC and
    /// BCSR round-trip through CSR exactly, so solutions are identical to
    /// the CSR-constructed solver, not merely close.
    #[test]
    fn from_backend_matches_csr_construction_exactly() {
        use sass_sparse::{BcsrMatrix, CscMatrix};
        let g = grid2d(6, 5, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 11);
        let l = g.laplacian();
        let want_solver = GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap();
        let mut b: Vec<f64> = (0..g.n()).map(|i| ((i * 5 % 11) as f64) - 5.0).collect();
        dense::center(&mut b);
        let want = want_solver.solve(&b);
        let csc: CscMatrix = g.laplacian_in();
        let bcsr: BcsrMatrix = g.laplacian_in();
        let via_csc = GroundedSolver::from_backend(&csc, OrderingKind::MinDegree).unwrap();
        let via_bcsr = GroundedSolver::from_backend(&bcsr, OrderingKind::MinDegree).unwrap();
        assert_eq!(via_csc.solve(&b), want);
        assert_eq!(via_bcsr.solve(&b), want);
        assert_eq!(via_csc.n(), g.n());
    }

    #[test]
    fn solution_is_mean_zero_pseudoinverse() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (3, 0, 1.0)]).unwrap();
        let l = g.laplacian();
        let s = GroundedSolver::new(&l, OrderingKind::Natural).unwrap();
        let b = [1.0, -1.0, 1.0, -1.0];
        let x = s.solve(&b);
        assert!(x.iter().sum::<f64>().abs() < 1e-12);
        // L (L+ b) = b for centered b.
        assert!(l.residual_norm(&x, &b) < 1e-12);
    }

    #[test]
    fn uncentered_rhs_is_projected() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let l = g.laplacian();
        let s = GroundedSolver::new(&l, OrderingKind::Natural).unwrap();
        let b = [2.0, 1.0, 0.0]; // mean 1
        let x = s.solve(&b);
        let centered = [1.0, 0.0, -1.0];
        assert!(l.residual_norm(&x, &centered) < 1e-12);
    }

    #[test]
    fn disconnected_graph_is_detected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let err = GroundedSolver::new(&g.laplacian(), OrderingKind::Natural).unwrap_err();
        assert_eq!(err, SolverError::GroundedSingular);
    }

    #[test]
    fn any_ground_vertex_gives_same_solution() {
        let g = grid2d(5, 5, WeightModel::Unit, 0);
        let l = g.laplacian();
        let mut b: Vec<f64> = (0..25).map(|i| (i as f64).cos()).collect();
        dense::center(&mut b);
        let x0 = GroundedSolver::with_ground(&l, 0, OrderingKind::MinDegree)
            .unwrap()
            .solve(&b);
        let x12 = GroundedSolver::with_ground(&l, 12, OrderingKind::Rcm)
            .unwrap()
            .solve(&b);
        assert!(dense::rel_diff(&x0, &x12) < 1e-10);
    }

    #[test]
    fn solve_many_matches_individual_solves() {
        let g = grid2d(6, 6, WeightModel::Unit, 1);
        let l = g.laplacian();
        let s = GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap();
        let rhs: Vec<Vec<f64>> = (0..4)
            .map(|k| {
                let mut b: Vec<f64> = (0..36)
                    .map(|i| ((i * (k + 2)) as f64 * 0.1).sin())
                    .collect();
                dense::center(&mut b);
                b
            })
            .collect();
        let many = s.solve_many(&rhs);
        for (b, x) in rhs.iter().zip(&many) {
            assert!(dense::rel_diff(x, &s.solve(b)) < 1e-15);
            assert!(l.residual_norm(x, b) < 1e-10);
        }
    }

    #[test]
    fn rejects_bad_ground() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        assert!(GroundedSolver::with_ground(&g.laplacian(), 5, OrderingKind::Natural).is_err());
    }

    /// Block sizes straddling the LDL block width, including partial tails,
    /// and a non-default ground vertex (exercising the ground-row elision
    /// in the middle of the block rows).
    #[test]
    fn solve_block_matches_scalar_path_across_widths() {
        let g = grid2d(7, 5, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 4);
        let l = g.laplacian();
        let s = GroundedSolver::with_ground(&l, 17, OrderingKind::MinDegree).unwrap();
        for ncols in [1usize, 7, 8, 9, 20] {
            let cols: Vec<Vec<f64>> = (0..ncols)
                .map(|c| {
                    (0..g.n())
                        .map(|i| ((i * (2 * c + 3)) as f64 * 0.17).cos())
                        .collect()
                })
                .collect();
            let blocked = s.solve_block(&sass_sparse::DenseBlock::from_columns(&cols));
            for (c, b) in cols.iter().enumerate() {
                let single = s.solve(b);
                for (bx, sx) in blocked.col(c).iter().zip(&single) {
                    assert!(
                        (bx - sx).abs() <= 1e-14 * sx.abs().max(1.0),
                        "ncols={ncols} col={c}: {bx} vs {sx}"
                    );
                }
            }
        }
    }

    #[test]
    fn solve_many_into_reuses_scratch_and_matches() {
        let g = grid2d(6, 6, WeightModel::Unit, 2);
        let l = g.laplacian();
        let s = GroundedSolver::new(&l, OrderingKind::Rcm).unwrap();
        let rhs: Vec<Vec<f64>> = (0..11)
            .map(|k: usize| (0..36).map(|i| ((i + 3 * k) as f64 * 0.2).sin()).collect())
            .collect();
        let mut out = vec![vec![0.0; 36]; 11];
        let mut scratch = GroundedScratch::new();
        s.solve_many_into(&rhs, &mut out, &mut scratch);
        assert_eq!(out, s.solve_many(&rhs));
        // Second batch through the same scratch (different count) still
        // matches — buffers reshape rather than accumulate stale state.
        let rhs2: Vec<Vec<f64>> = rhs.into_iter().take(3).collect();
        let mut out2 = vec![vec![0.0; 36]; 3];
        s.solve_many_into(&rhs2, &mut out2, &mut scratch);
        assert_eq!(out2, s.solve_many(&rhs2));
    }

    /// Regression: a 1-vertex system reduces to zero-row blocks; the
    /// blocked path must still zero the ground row (and not leak stale
    /// scratch contents from a previous, larger batch).
    #[test]
    fn one_vertex_system_with_primed_scratch() {
        let big = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let s2 = GroundedSolver::new(&big.laplacian(), OrderingKind::Natural).unwrap();
        let mut scratch = GroundedScratch::new();
        let mut out2 = vec![vec![0.0; 2]];
        s2.solve_many_into(&[vec![1.0, -1.0]], &mut out2, &mut scratch);
        assert!((out2[0][0] - 0.5).abs() < 1e-15);

        let tiny = Graph::from_edges(1, &[]).unwrap();
        let s1 = GroundedSolver::new(&tiny.laplacian(), OrderingKind::Natural).unwrap();
        let mut out1 = vec![vec![9.0]];
        s1.solve_many_into(&[vec![5.0]], &mut out1, &mut scratch);
        assert_eq!(out1, vec![vec![0.0]]);
        assert_eq!(s1.solve_many(&[vec![5.0]]), vec![vec![0.0]]);
        assert_eq!(s1.solve(&[5.0]), vec![0.0]);
    }

    /// A weight-only edit keeps the grounded pattern, so `refactor` must
    /// reproduce the from-scratch solver bit-for-bit and report a partial
    /// (non-full) numeric re-run.
    #[test]
    fn refactor_after_weight_edit_matches_fresh_solver() {
        let g = grid2d(8, 8, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 7);
        let mut edges: Vec<(usize, usize, f64)> = g
            .edges()
            .iter()
            .map(|e| (e.u as usize, e.v as usize, e.weight))
            .collect();
        let mut s =
            GroundedSolver::with_ground(&g.laplacian(), 5, OrderingKind::MinDegree).unwrap();
        // Bump one edge weight; both endpoints are the changed vertices.
        let (u, v, w) = edges[40];
        edges[40] = (u, v, w + 1.5);
        let g2 = Graph::from_edges(g.n(), &edges).unwrap();
        let l2 = g2.laplacian();
        let stats = s.refactor(&l2, &[u, v], 0.9).unwrap();
        assert!(
            !stats.full,
            "two changed vertices on a grid must stay partial"
        );
        assert!(stats.cols_refactored < stats.total_cols);
        let fresh = GroundedSolver::with_ground(&l2, 5, OrderingKind::MinDegree).unwrap();
        let mut b: Vec<f64> = (0..g.n()).map(|i| ((i * 3 % 17) as f64) - 8.0).collect();
        dense::center(&mut b);
        assert_eq!(
            s.solve(&b),
            fresh.solve(&b),
            "patched factor must be bit-identical"
        );
    }

    /// An edit touching the ground vertex only perturbs the *other*
    /// endpoint's grounded row; the ground itself must be silently skipped.
    #[test]
    fn refactor_handles_ground_vertex_edits() {
        let g = grid2d(6, 6, WeightModel::Unit, 3);
        let mut edges: Vec<(usize, usize, f64)> = g
            .edges()
            .iter()
            .map(|e| (e.u as usize, e.v as usize, e.weight))
            .collect();
        let mut s = GroundedSolver::new(&g.laplacian(), OrderingKind::MinDegree).unwrap();
        let idx = edges.iter().position(|&(u, _, _)| u == 0).unwrap();
        let (u, v, w) = edges[idx];
        edges[idx] = (u, v, w + 0.75);
        let l2 = Graph::from_edges(g.n(), &edges).unwrap().laplacian();
        s.refactor(&l2, &[u, v], 0.9).unwrap();
        let fresh = GroundedSolver::new(&l2, OrderingKind::MinDegree).unwrap();
        let mut b: Vec<f64> = (0..g.n()).map(|i| (i as f64 * 0.3).sin()).collect();
        dense::center(&mut b);
        assert_eq!(s.solve(&b), fresh.solve(&b));
    }

    /// Adding an edge changes the grounded sparsity pattern; `refactor`
    /// must fall back to a full rebuild and still land on the fresh solver.
    #[test]
    fn refactor_pattern_change_falls_back_to_full_rebuild() {
        let g = grid2d(5, 5, WeightModel::Unit, 0);
        let mut edges: Vec<(usize, usize, f64)> = g
            .edges()
            .iter()
            .map(|e| (e.u as usize, e.v as usize, e.weight))
            .collect();
        let mut s = GroundedSolver::new(&g.laplacian(), OrderingKind::MinDegree).unwrap();
        edges.push((3, 21, 2.0)); // brand-new long-range edge
        let l2 = Graph::from_edges(g.n(), &edges).unwrap().laplacian();
        let stats = s.refactor(&l2, &[3, 21], 0.9).unwrap();
        assert!(stats.full, "a pattern change must go through the full path");
        assert_eq!(stats.cols_refactored, g.n() - 1);
        let fresh = GroundedSolver::new(&l2, OrderingKind::MinDegree).unwrap();
        let mut b: Vec<f64> = (0..g.n()).map(|i| ((i * 11 % 7) as f64) - 3.0).collect();
        dense::center(&mut b);
        assert_eq!(s.solve(&b), fresh.solve(&b));
    }

    #[test]
    fn refactor_rejects_bad_shapes_and_vertices() {
        let g = grid2d(4, 4, WeightModel::Unit, 0);
        let mut s = GroundedSolver::new(&g.laplacian(), OrderingKind::Natural).unwrap();
        let small = grid2d(3, 3, WeightModel::Unit, 0).laplacian();
        assert!(matches!(
            s.refactor(&small, &[1], 0.9),
            Err(SolverError::ShapeMismatch { .. })
        ));
        let l = g.laplacian();
        assert!(matches!(
            s.refactor(&l, &[99], 0.9),
            Err(SolverError::ShapeMismatch { .. })
        ));
    }

    /// Deleting a cut edge disconnects the graph: the numeric re-run hits a
    /// zero pivot and must surface as `GroundedSingular` (pattern of the
    /// Laplacian with an explicitly-zero edge kept; here we rebuild the
    /// edge list, so the pattern changes and the full rebuild catches it).
    #[test]
    fn refactor_disconnection_reports_singular() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let mut s = GroundedSolver::new(&g.laplacian(), OrderingKind::Natural).unwrap();
        let cut = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert_eq!(
            s.refactor(&cut.laplacian(), &[1, 2], 0.9).unwrap_err(),
            SolverError::GroundedSingular
        );
    }

    #[test]
    fn solve_many_empty_rhs_list() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let s = GroundedSolver::new(&g.laplacian(), OrderingKind::Natural).unwrap();
        assert!(s.solve_many(&[]).is_empty());
        let mut scratch = GroundedScratch::new();
        s.solve_many_into(&[], &mut [], &mut scratch);
    }
}
