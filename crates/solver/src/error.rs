use std::error::Error;
use std::fmt;

/// Errors produced by the linear solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolverError {
    /// An underlying sparse-matrix operation failed.
    Sparse(sass_sparse::SparseError),
    /// An underlying graph operation failed.
    Graph(sass_graph::GraphError),
    /// The matrix to ground was not square.
    ShapeMismatch {
        /// Human-readable description.
        context: String,
    },
    /// Factorization of the grounded matrix failed — the graph behind the
    /// Laplacian is most likely disconnected, making the grounded matrix
    /// singular.
    GroundedSingular,
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Sparse(e) => write!(f, "sparse error: {e}"),
            SolverError::Graph(e) => write!(f, "graph error: {e}"),
            SolverError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            SolverError::GroundedSingular => {
                write!(f, "grounded laplacian is singular (disconnected graph?)")
            }
        }
    }
}

impl Error for SolverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolverError::Sparse(e) => Some(e),
            SolverError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sass_sparse::SparseError> for SolverError {
    fn from(e: sass_sparse::SparseError) -> Self {
        SolverError::Sparse(e)
    }
}

impl From<sass_graph::GraphError> for SolverError {
    fn from(e: sass_graph::GraphError) -> Self {
        SolverError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sparse_errors() {
        let e: SolverError = sass_sparse::SparseError::NotSymmetric.into();
        assert!(e.to_string().contains("sparse"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolverError>();
    }
}
