use crate::{LinearOperator, Preconditioner};
use sass_sparse::dense;

/// Options controlling a [`pcg`] solve.
#[derive(Debug, Clone, PartialEq)]
pub struct PcgOptions {
    /// Convergence tolerance on the relative residual `‖r‖/‖b‖`.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Whether to record the full per-iteration residual history.
    pub record_history: bool,
    /// Mean-center all iterates (set for singular Laplacian systems; the
    /// default). Harmless for non-singular SPD systems whose solution is
    /// wanted in full space — disable there.
    pub center: bool,
}

impl Default for PcgOptions {
    fn default() -> Self {
        PcgOptions {
            tol: 1e-10,
            max_iter: 5000,
            record_history: false,
            center: true,
        }
    }
}

impl PcgOptions {
    /// The paper's Table 2 setting: `‖Ax − b‖ < 10⁻³ ‖b‖`.
    pub fn paper_accuracy() -> Self {
        PcgOptions {
            tol: 1e-3,
            ..Self::default()
        }
    }
}

/// Outcome statistics of a [`pcg`] solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveStats {
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖` (recurrence residual).
    pub relative_residual: f64,
    /// Whether the tolerance was reached within the iteration cap.
    pub converged: bool,
    /// Per-iteration relative residuals (empty unless requested).
    pub residual_history: Vec<f64>,
}

/// Reusable workspace for [`pcg_scratch`].
///
/// A PCG solve needs five working vectors; callers that solve repeatedly
/// with operators of the same dimension (inverse iterations, embeddings
/// over many right-hand sides) hand the same scratch back in and the hot
/// loop performs **no allocation at all**. Buffers are lazily resized, so
/// one scratch can serve operators of different sizes too.
#[derive(Debug, Clone, Default)]
pub struct PcgScratch {
    b: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl PcgScratch {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for dimension-`n` solves.
    pub fn with_dim(n: usize) -> Self {
        let mut s = Self::default();
        s.resize(n);
        s
    }

    fn resize(&mut self, n: usize) {
        self.b.resize(n, 0.0);
        self.r.resize(n, 0.0);
        self.z.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.ap.resize(n, 0.0);
    }
}

/// Preconditioned conjugate gradient for symmetric positive
/// (semi-)definite systems, starting from the zero vector.
///
/// For singular-but-consistent Laplacian systems, keep
/// [`PcgOptions::center`] enabled and pass a mean-zero `b`; all iterates
/// then stay in `range(A)` where the operator is positive definite.
///
/// Returns the solution and [`SolveStats`].
///
/// # Panics
///
/// Panics if `b.len()` differs from the operator dimension.
pub fn pcg<A, M>(a: &A, b: &[f64], m: &M, opts: &PcgOptions) -> (Vec<f64>, SolveStats)
where
    A: LinearOperator + ?Sized,
    M: Preconditioner + ?Sized,
{
    let mut x = vec![0.0; b.len()];
    let stats = pcg_scratch(a, b, &mut x, m, opts, &mut PcgScratch::new());
    (x, stats)
}

/// [`pcg`] with an explicit starting guess.
///
/// # Panics
///
/// Panics if vector lengths differ from the operator dimension.
pub fn pcg_with_x0<A, M>(
    a: &A,
    b: &[f64],
    x0: &[f64],
    m: &M,
    opts: &PcgOptions,
) -> (Vec<f64>, SolveStats)
where
    A: LinearOperator + ?Sized,
    M: Preconditioner + ?Sized,
{
    let mut x = x0.to_vec();
    let stats = pcg_scratch(a, b, &mut x, m, opts, &mut PcgScratch::new());
    (x, stats)
}

/// The allocation-free core of [`pcg`]: `x` carries the starting guess in
/// and the solution out, and all working vectors live in `scratch`.
///
/// Apart from the optional residual history, the solve performs no
/// allocation once `scratch` has reached the right dimension.
///
/// # Panics
///
/// Panics if `b.len()` or `x.len()` differ from the operator dimension.
pub fn pcg_scratch<A, M>(
    a: &A,
    b: &[f64],
    x: &mut [f64],
    m: &M,
    opts: &PcgOptions,
    scratch: &mut PcgScratch,
) -> SolveStats
where
    A: LinearOperator + ?Sized,
    M: Preconditioner + ?Sized,
{
    let n = a.dim();
    assert_eq!(b.len(), n, "pcg: b length mismatch");
    assert_eq!(x.len(), n, "pcg: x length mismatch");
    scratch.resize(n);
    let PcgScratch { b: bc, r, z, p, ap } = scratch;

    bc.copy_from_slice(b);
    if opts.center {
        dense::center(bc);
    }
    let bnorm = dense::norm2(bc).max(f64::MIN_POSITIVE);

    a.apply(x, r);
    for (ri, bi) in r.iter_mut().zip(bc.iter()) {
        *ri = bi - *ri;
    }
    if opts.center {
        dense::center(r);
    }

    m.apply(r, z);
    if opts.center {
        dense::center(z);
    }
    p.copy_from_slice(z);
    let mut rz = dense::dot(r, z);
    let mut history = Vec::new();

    let mut rel = dense::norm2(r) / bnorm;
    if opts.record_history {
        history.push(rel);
    }
    let mut iterations = 0;
    while rel > opts.tol && iterations < opts.max_iter {
        a.apply(p, ap);
        let pap = dense::dot(p, ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Breakdown: operator not SPD on this subspace; stop with what
            // we have rather than dividing by zero.
            break;
        }
        let alpha = rz / pap;
        dense::axpy(alpha, p, x);
        dense::axpy(-alpha, ap, r);
        if opts.center {
            dense::center(r);
        }
        iterations += 1;
        rel = dense::norm2(r) / bnorm;
        if opts.record_history {
            history.push(rel);
        }
        if rel <= opts.tol {
            break;
        }
        m.apply(r, z);
        if opts.center {
            dense::center(z);
        }
        let rz_new = dense::dot(r, z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(z.iter()) {
            *pi = zi + beta * *pi;
        }
    }
    if opts.center {
        dense::center(x);
    }
    SolveStats {
        iterations,
        relative_residual: rel,
        converged: rel <= opts.tol,
        residual_history: history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GroundedSolver, IdentityPrec, JacobiPrec, LaplacianPrec, TreePrec, TreeSolver};
    use sass_graph::generators::{grid2d, WeightModel};
    use sass_graph::{spanning, RootedTree};
    use sass_sparse::ordering::OrderingKind;
    use sass_sparse::CooMatrix;

    #[test]
    fn solves_spd_system_without_centering() {
        // Diagonally dominant SPD 2x2.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 4.0);
        coo.push(1, 1, 3.0);
        coo.push_sym(0, 1, 1.0);
        let a = coo.to_csr();
        let opts = PcgOptions {
            center: false,
            ..Default::default()
        };
        // Solution of [[4,1],[1,3]] x = [6, 7] is x = [1, 2].
        let (x, stats) = pcg(&a, &[6.0, 7.0], &IdentityPrec, &opts);
        assert!(stats.converged);
        assert!((x[0] - 1.0).abs() < 1e-8);
        assert!((x[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn laplacian_system_with_jacobi() {
        let g = grid2d(10, 10, WeightModel::Unit, 0);
        let l = g.laplacian();
        let mut b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        sass_sparse::dense::center(&mut b);
        let m = JacobiPrec::new(&l);
        let (x, stats) = pcg(&l, &b, &m, &PcgOptions::default());
        assert!(stats.converged, "stats: {stats:?}");
        assert!(l.residual_norm(&x, &b) < 1e-8);
    }

    #[test]
    fn exact_preconditioner_converges_immediately() {
        let g = grid2d(6, 6, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 1);
        let l = g.laplacian();
        let m = LaplacianPrec::new(GroundedSolver::new(&l, OrderingKind::MinDegree).unwrap());
        let mut b: Vec<f64> = (0..36).map(|i| i as f64).collect();
        sass_sparse::dense::center(&mut b);
        let (_, stats) = pcg(&l, &b, &m, &PcgOptions::default());
        assert!(
            stats.iterations <= 2,
            "took {} iterations",
            stats.iterations
        );
    }

    #[test]
    fn tree_preconditioner_beats_identity_on_ill_conditioned_graph() {
        // Tree preconditioning pays off when edge weights span orders of
        // magnitude (circuit-style graphs): the max-weight tree soaks up the
        // weight spread, while plain CG's iteration count scales with it.
        // (On *unit-weight* grids the tree preconditioner loses — the total
        // stretch exceeds the grid's condition number — which is exactly why
        // the paper recovers off-tree edges.)
        let g = sass_graph::generators::circuit_grid(16, 16, 0.1, 2);
        let l = g.laplacian();
        let tree_ids = spanning::max_weight_spanning_tree(&g).unwrap();
        let tree = RootedTree::new(&g, tree_ids, 0).unwrap();
        let tp = TreePrec::new(TreeSolver::new(&g, &tree));
        let mut b: Vec<f64> = (0..g.n()).map(|i| ((i % 17) as f64) - 8.0).collect();
        sass_sparse::dense::center(&mut b);
        let opts = PcgOptions {
            tol: 1e-8,
            max_iter: 20_000,
            ..Default::default()
        };
        let (_, s_tree) = pcg(&l, &b, &tp, &opts);
        let (_, s_id) = pcg(&l, &b, &IdentityPrec, &opts);
        assert!(s_tree.converged && s_id.converged);
        assert!(
            s_tree.iterations * 2 < s_id.iterations,
            "tree {} vs identity {}",
            s_tree.iterations,
            s_id.iterations
        );
    }

    #[test]
    fn history_is_monotone_enough_and_recorded() {
        let g = grid2d(8, 8, WeightModel::Unit, 0);
        let l = g.laplacian();
        let mut b = vec![0.0; 64];
        b[0] = 1.0;
        b[63] = -1.0;
        let opts = PcgOptions {
            record_history: true,
            ..Default::default()
        };
        let (_, stats) = pcg(&l, &b, &JacobiPrec::new(&l), &opts);
        assert_eq!(stats.residual_history.len(), stats.iterations + 1);
        assert!(stats.residual_history.last().unwrap() <= &opts.tol);
    }

    #[test]
    fn respects_iteration_cap() {
        let g = grid2d(12, 12, WeightModel::Unit, 0);
        let l = g.laplacian();
        let mut b: Vec<f64> = (0..g.n()).map(|i| (i as f64).sin()).collect();
        sass_sparse::dense::center(&mut b);
        let opts = PcgOptions {
            max_iter: 3,
            tol: 1e-14,
            ..Default::default()
        };
        let (_, stats) = pcg(&l, &b, &IdentityPrec, &opts);
        assert_eq!(stats.iterations, 3);
        assert!(!stats.converged);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let g = grid2d(4, 4, WeightModel::Unit, 0);
        let l = g.laplacian();
        let (x, stats) = pcg(&l, &[0.0; 16], &IdentityPrec, &PcgOptions::default());
        assert!(stats.converged);
        assert_eq!(stats.iterations, 0);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn warm_start_helps() {
        let g = grid2d(10, 10, WeightModel::Unit, 0);
        let l = g.laplacian();
        let mut b: Vec<f64> = (0..100).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        sass_sparse::dense::center(&mut b);
        let m = JacobiPrec::new(&l);
        let (x, _) = pcg(&l, &b, &m, &PcgOptions::default());
        let (_, stats) = pcg_with_x0(&l, &b, &x, &m, &PcgOptions::default());
        assert!(stats.iterations <= 1);
    }
}
