//! Linear solvers for SDD / graph-Laplacian systems.
//!
//! The sparsification pipeline needs two kinds of solves:
//!
//! 1. **Exact solves with the sparsifier** `L_P x = b` — used inside
//!    generalized power iterations and as the preconditioner application.
//!    [`GroundedSolver`] does this by *grounding* one vertex (deleting its
//!    row/column, which makes the Laplacian SPD for a connected graph),
//!    factorizing with the sparse LDLᵀ from [`sass_sparse`], and
//!    re-centering solutions against the all-ones nullspace.
//!    [`TreeSolver`] is the O(n) special case for spanning-tree Laplacians,
//!    and [`AmgPrec`] the aggregation-based algebraic-multigrid alternative
//!    (the paper's LAMG/SAMG role). [`ShardedSolver`] ([`substructure`]) is
//!    the domain-decomposed variant: per-domain LDLᵀ factors around a
//!    separator Schur complement, with an out-of-core mode that keeps at
//!    most one domain factor resident.
//! 2. **Iterative solves with the original graph** `L_G x = b` — the
//!    preconditioned conjugate gradient ([`pcg`]) with a pluggable
//!    [`Preconditioner`] (identity, Jacobi, grounded-Cholesky of a
//!    sparsifier, or tree).
//!
//! # Example
//!
//! Solve a Laplacian system with PCG preconditioned by an exact factorization
//! of the same Laplacian (converges in one iteration):
//!
//! ```
//! use sass_graph::generators::{grid2d, WeightModel};
//! use sass_solver::{pcg, GroundedSolver, LaplacianPrec, PcgOptions};
//!
//! # fn main() -> Result<(), sass_solver::SolverError> {
//! let g = grid2d(8, 8, WeightModel::Unit, 0);
//! let l = g.laplacian();
//! let solver = GroundedSolver::new(&l, Default::default())?;
//! let prec = LaplacianPrec::new(solver);
//! let mut b: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
//! sass_sparse::dense::center(&mut b);
//! let (x, stats) = pcg(&l, &b, &prec, &PcgOptions::default());
//! assert!(stats.converged);
//! assert!(stats.iterations <= 2);
//! assert!(l.residual_norm(&x, &b) < 1e-6);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod amg;
mod error;
mod grounded;
mod pcg;
mod preconditioner;
pub mod substructure;
mod tree_solver;

pub use amg::{AmgOptions, AmgPrec};
pub use error::SolverError;
pub use grounded::{GroundedScratch, GroundedSolver};
// Re-exported for compatibility: the trait moved down into `sass-sparse`
// (operators are a substrate primitive, not a solver concern), and new code
// should name it from there.
pub use pcg::{pcg, pcg_scratch, pcg_with_x0, PcgOptions, PcgScratch, SolveStats};
pub use preconditioner::{IdentityPrec, JacobiPrec, LaplacianPrec, Preconditioner, TreePrec};
// Re-exported so batched-solve call sites ([`GroundedSolver::solve_block`])
// can name the multivector type without importing sass-sparse directly — and
// so sharded-solver call sites can name its construction knobs.
pub use sass_sparse::{DenseBlock, LinearOperator, ShardOptions};
pub use substructure::ShardedSolver;
pub use tree_solver::TreeSolver;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SolverError>;
