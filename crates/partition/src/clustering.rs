//! Spectral clustering: k-dimensional Laplacian eigenvector embedding
//! followed by k-means.
//!
//! This is the classical pipeline the paper's introduction motivates
//! ("embed original graphs into low-dimensional space using the first few
//! nontrivial eigenvectors of graph Laplacians and subsequently perform
//! data clustering") and the workload behind its Table 4 `RCV-80NN` case —
//! where clustering the sparsified graph succeeds after the original
//! exhausts memory. The expensive step is the eigensolve, so running this
//! on a similarity-aware sparsifier instead of the original graph is the
//! paper's acceleration in one line.

use crate::{PartitionError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sass_eigen::lanczos::{lanczos_smallest_laplacian, LanczosOptions};
use sass_graph::Graph;
use sass_sparse::ordering::OrderingKind;

/// Options for [`spectral_clustering`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringOptions {
    /// Number of embedding dimensions (defaults to `k` when `None`).
    pub embed_dims: Option<usize>,
    /// Lanczos controls for the eigensolve.
    pub lanczos: LanczosOptions,
    /// k-means iteration cap.
    pub kmeans_iters: usize,
    /// Number of k-means++ restarts (best inertia wins).
    pub restarts: usize,
    /// RNG seed for k-means++ seeding.
    pub seed: u64,
}

impl Default for ClusteringOptions {
    fn default() -> Self {
        ClusteringOptions {
            embed_dims: None,
            lanczos: LanczosOptions::default(),
            kmeans_iters: 60,
            restarts: 4,
            seed: 0xc105,
        }
    }
}

/// Result of a spectral clustering run.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster id (`0..k`) per vertex.
    pub assignment: Vec<usize>,
    /// Number of clusters.
    pub k: usize,
    /// Final k-means inertia (sum of squared distances to centroids).
    pub inertia: f64,
    /// Total weight of edges crossing between clusters.
    pub cut_weight: f64,
}

/// Clusters the vertices of a connected graph into `k` groups by spectral
/// embedding + k-means.
///
/// To reproduce the paper's accelerated clustering, pass the *sparsified*
/// graph here: its low eigenvectors approximate the original's within the
/// `σ²` band, at a fraction of the eigensolve cost.
///
/// # Errors
///
/// Returns [`PartitionError::TooSmall`] when `k` is 0 or exceeds `n`, and
/// propagates eigensolver failures (disconnected input).
pub fn spectral_clustering(g: &Graph, k: usize, opts: &ClusteringOptions) -> Result<Clustering> {
    if k == 0 || k > g.n() {
        return Err(PartitionError::TooSmall { n: g.n() });
    }
    if k == 1 {
        return Ok(Clustering {
            assignment: vec![0; g.n()],
            k: 1,
            inertia: 0.0,
            cut_weight: 0.0,
        });
    }
    let dims = opts
        .embed_dims
        .unwrap_or(k)
        .clamp(1, g.n().saturating_sub(1));
    let eig =
        lanczos_smallest_laplacian(&g.laplacian(), dims, OrderingKind::MinDegree, &opts.lanczos)?;
    // Row-major embedding: point v = (u_2(v), ..., u_{dims+1}(v)).
    let n = g.n();
    let mut points = vec![vec![0.0f64; dims]; n];
    for (d, vector) in eig.eigenvectors.iter().enumerate() {
        for (v, &val) in vector.iter().enumerate() {
            points[v][d] = val;
        }
    }

    let mut best: Option<(Vec<usize>, f64)> = None;
    for restart in 0..opts.restarts.max(1) {
        let (assign, inertia) = kmeans(
            &points,
            k,
            opts.kmeans_iters,
            opts.seed ^ (restart as u64) << 16,
        );
        if best.as_ref().is_none_or(|(_, bi)| inertia < *bi) {
            best = Some((assign, inertia));
        }
    }
    let (assignment, inertia) = best.expect("at least one restart");
    let cut_weight = g
        .edges()
        .iter()
        .filter(|e| assignment[e.u as usize] != assignment[e.v as usize])
        .map(|e| e.weight)
        .sum();
    Ok(Clustering {
        assignment,
        k,
        inertia,
        cut_weight,
    })
}

/// Lloyd's k-means with k-means++ seeding. Returns `(assignment, inertia)`.
fn kmeans(points: &[Vec<f64>], k: usize, iters: usize, seed: u64) -> (Vec<usize>, f64) {
    let n = points.len();
    let dims = points[0].len();
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    let mut d2 = vec![0.0f64; n];
    while centroids.len() < k {
        let mut total = 0.0;
        for (i, p) in points.iter().enumerate() {
            let d = centroids
                .iter()
                .map(|c| dist2(p, c))
                .fold(f64::INFINITY, f64::min);
            d2[i] = d;
            total += d;
        }
        let next = if total > 0.0 {
            let x = rng.gen_range(0.0..total);
            let mut acc = 0.0;
            let mut pick = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                acc += d;
                if acc >= x {
                    pick = i;
                    break;
                }
            }
            pick
        } else {
            rng.gen_range(0..n)
        };
        centroids.push(points[next].clone());
    }

    let mut assignment = vec![0usize; n];
    let mut inertia = f64::INFINITY;
    for _ in 0..iters {
        // Assign.
        let mut changed = false;
        let mut new_inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (best_c, best_d) = centroids
                .iter()
                .enumerate()
                .map(|(c, cent)| (c, dist2(p, cent)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
                .expect("k >= 1");
            if assignment[i] != best_c {
                assignment[i] = best_c;
                changed = true;
            }
            new_inertia += best_d;
        }
        inertia = new_inertia;
        if !changed {
            break;
        }
        // Update.
        let mut sums = vec![vec![0.0f64; dims]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignment) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for ((cent, sum), &count) in centroids.iter_mut().zip(&sums).zip(&counts) {
            if count > 0 {
                for (c, &s) in cent.iter_mut().zip(sum) {
                    *c = s / count as f64;
                }
            } else {
                // Empty cluster: re-seed at the farthest point.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let da = centroids_dist(a, cent);
                        let db = centroids_dist(b, cent);
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                *cent = points[far].clone();
            }
        }
    }
    (assignment, inertia)
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn centroids_dist(a: &[f64], b: &[f64]) -> f64 {
    dist2(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_core::{sparsify, SparsifyConfig};
    use sass_graph::generators::stochastic_block_model;

    /// Fraction of vertex pairs whose same/different-cluster relation
    /// matches the planted blocks (Rand index).
    fn rand_index(assignment: &[usize], block_size: usize) -> f64 {
        let n = assignment.len();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let same_planted = i / block_size == j / block_size;
                let same_found = assignment[i] == assignment[j];
                if same_planted == same_found {
                    agree += 1;
                }
                total += 1;
            }
        }
        agree as f64 / total as f64
    }

    #[test]
    fn recovers_three_planted_blocks() {
        let g = stochastic_block_model(&[30, 30, 30], 0.5, 0.02, 7);
        let c = spectral_clustering(&g, 3, &ClusteringOptions::default()).unwrap();
        assert_eq!(c.k, 3);
        let ri = rand_index(&c.assignment, 30);
        assert!(ri > 0.95, "rand index {ri}");
    }

    #[test]
    fn clustering_on_sparsifier_matches_original() {
        // The paper's Table 4 play: cluster the sparsifier instead.
        // Clustering needs the top-k eigenspace intact, so use a tight
        // similarity target (the paper's RCV case used sigma^2 ~ 100 on a
        // much larger graph where blocks are far better separated).
        let g = stochastic_block_model(&[25, 25, 25], 0.5, 0.02, 9);
        let sp = sparsify(&g, &SparsifyConfig::new(8.0).with_seed(1)).unwrap();
        let c_orig = spectral_clustering(&g, 3, &ClusteringOptions::default()).unwrap();
        let c_sp = spectral_clustering(sp.graph(), 3, &ClusteringOptions::default()).unwrap();
        // Compare both against the planted truth.
        let ri_orig = rand_index(&c_orig.assignment, 25);
        let ri_sp = rand_index(&c_sp.assignment, 25);
        assert!(ri_orig > 0.9, "original rand index {ri_orig}");
        assert!(ri_sp > 0.9, "sparsified rand index {ri_sp}");
    }

    #[test]
    fn k_edge_cases() {
        let g = stochastic_block_model(&[10, 10], 0.6, 0.05, 3);
        let c1 = spectral_clustering(&g, 1, &ClusteringOptions::default()).unwrap();
        assert!(c1.assignment.iter().all(|&a| a == 0));
        assert_eq!(c1.cut_weight, 0.0);
        assert!(spectral_clustering(&g, 0, &ClusteringOptions::default()).is_err());
        assert!(spectral_clustering(&g, 21, &ClusteringOptions::default()).is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let g = stochastic_block_model(&[20, 20], 0.5, 0.02, 5);
        let a = spectral_clustering(&g, 2, &ClusteringOptions::default()).unwrap();
        let b = spectral_clustering(&g, 2, &ClusteringOptions::default()).unwrap();
        assert_eq!(a.assignment, b.assignment);
    }
}
