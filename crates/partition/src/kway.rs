//! K-way partitioning by recursive spectral bisection.
//!
//! The paper's partitioner is two-way; the standard extension — and a
//! natural consumer of cheap sparsifier-backed bisection — is recursion:
//! split the graph, then recurse on each side's induced subgraph until `k`
//! parts exist, always splitting the currently-largest part.

use crate::{partition, PartitionError, PartitionOptions, Result};
use sass_graph::Graph;

/// A k-way partition of a graph.
#[derive(Debug, Clone)]
pub struct KwayPartition {
    /// Part id (`0..k`) per vertex.
    pub assignment: Vec<usize>,
    /// Number of parts actually produced.
    pub parts: usize,
    /// Total weight of edges crossing between different parts.
    pub cut_weight: f64,
}

impl KwayPartition {
    /// Sizes of each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for &p in &self.assignment {
            sizes[p] += 1;
        }
        sizes
    }

    /// Imbalance: largest part size over the ideal `n/k`.
    pub fn imbalance(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let ideal = self.assignment.len() as f64 / self.parts.max(1) as f64;
        max / ideal.max(1.0)
    }
}

/// Splits a connected graph into `k` parts by recursive spectral bisection.
///
/// Each bisection uses [`partition`] with the given options — prefer
/// [`CutRule::Sweep`](crate::CutRule::Sweep) here: under recursion, near-degenerate eigenspaces
/// (symmetric clusters) rotate the Fiedler vector and the plain sign cut
/// can bisect through a cluster. Induced subgraphs that come out
/// disconnected are split along their components first (cheaper and
/// strictly better than a spectral cut there).
///
/// # Errors
///
/// Returns [`PartitionError::TooSmall`] if `k` exceeds the vertex count or
/// `k == 0`, and propagates bisection failures.
///
/// # Example
///
/// ```
/// use sass_graph::generators::{grid2d, WeightModel};
/// use sass_partition::kway::kway_partition;
/// use sass_partition::{Backend, CutRule, PartitionOptions};
///
/// # fn main() -> Result<(), sass_partition::PartitionError> {
/// let g = grid2d(12, 12, WeightModel::Unit, 0);
/// let opts = PartitionOptions {
///     backend: Backend::Direct { ordering: Default::default() },
///     cut: CutRule::Sweep { min_balance: 0.2 },
///     ..Default::default()
/// };
/// let kp = kway_partition(&g, 4, &opts)?;
/// assert_eq!(kp.parts, 4);
/// assert!(kp.imbalance() < 2.0);
/// # Ok(())
/// # }
/// ```
pub fn kway_partition(g: &Graph, k: usize, opts: &PartitionOptions) -> Result<KwayPartition> {
    if k == 0 || k > g.n() {
        return Err(PartitionError::TooSmall { n: g.n() });
    }
    let mut assignment = vec![0usize; g.n()];
    // Work list: (part id, vertices). Always split the largest part.
    let mut parts: Vec<Vec<usize>> = vec![(0..g.n()).collect()];
    while parts.len() < k {
        // Pick the largest part.
        let (idx, _) = parts
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.len())
            .expect("non-empty part list");
        let vertices = parts.swap_remove(idx);
        if vertices.len() < 2 {
            // Cannot split further; put it back and stop.
            parts.push(vertices);
            break;
        }
        let (sub, back) = g.induced_subgraph(&vertices);
        let (labels, ncomp) = sass_graph::traverse::connected_components(&sub);
        if ncomp > 1 {
            // Free split along components: largest component vs the rest.
            let mut sides: (Vec<usize>, Vec<usize>) = (Vec::new(), Vec::new());
            let mut comp_sizes = vec![0usize; ncomp];
            for &c in &labels {
                comp_sizes[c] += 1;
            }
            let biggest = comp_sizes
                .iter()
                .enumerate()
                .max_by_key(|(_, &s)| s)
                .unwrap()
                .0;
            for (v, &c) in labels.iter().enumerate() {
                if c == biggest {
                    sides.0.push(back[v]);
                } else {
                    sides.1.push(back[v]);
                }
            }
            parts.push(sides.0);
            parts.push(sides.1);
            continue;
        }
        let bi = partition(&sub, opts)?;
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for (v, &s) in bi.signs.iter().enumerate() {
            if s > 0 {
                pos.push(back[v]);
            } else {
                neg.push(back[v]);
            }
        }
        if pos.is_empty() || neg.is_empty() {
            // Degenerate cut; fall back to an arbitrary halving to make
            // progress (keeps k-way termination guaranteed).
            let mid = vertices.len() / 2;
            parts.push(vertices[..mid].to_vec());
            parts.push(vertices[mid..].to_vec());
        } else {
            parts.push(pos);
            parts.push(neg);
        }
    }
    let nparts = parts.len();
    for (pid, vs) in parts.iter().enumerate() {
        for &v in vs {
            assignment[v] = pid;
        }
    }
    let cut_weight = g
        .edges()
        .iter()
        .filter(|e| assignment[e.u as usize] != assignment[e.v as usize])
        .map(|e| e.weight)
        .sum();
    Ok(KwayPartition {
        assignment,
        parts: nparts,
        cut_weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Backend, CutRule};
    use sass_graph::generators::{grid2d, stochastic_block_model, WeightModel};
    use sass_sparse::ordering::OrderingKind;

    fn direct_opts() -> PartitionOptions {
        PartitionOptions {
            backend: Backend::Direct {
                ordering: OrderingKind::MinDegree,
            },
            // Sweep cuts are the robust choice under recursive bisection
            // (degenerate eigenspaces rotate the Fiedler vector).
            cut: CutRule::Sweep { min_balance: 0.2 },
            ..Default::default()
        }
    }

    #[test]
    fn four_way_grid_is_balanced() {
        let g = grid2d(16, 16, WeightModel::Unit, 0);
        let kp = kway_partition(&g, 4, &direct_opts()).unwrap();
        assert_eq!(kp.parts, 4);
        assert!(kp.imbalance() < 1.6, "imbalance {}", kp.imbalance());
        // A 16x16 grid split in 4 should cut roughly 2 lines ~ 2*16 edges.
        assert!(kp.cut_weight <= 80.0, "cut {}", kp.cut_weight);
    }

    #[test]
    fn four_way_cut_close_to_planted_cut() {
        // With 4 symmetric planted blocks λ2 is (nearly) degenerate, so
        // individual Fiedler cuts may rotate within the eigenspace — exact
        // block recovery is not guaranteed. The meaningful guarantee is
        // that the 4-way *cut weight* lands near the planted inter-block
        // cut (all p_out edges).
        let g = stochastic_block_model(&[25, 25, 25, 25], 0.4, 0.01, 3);
        let planted_cut: f64 = g
            .edges()
            .iter()
            .filter(|e| (e.u as usize) / 25 != (e.v as usize) / 25)
            .map(|e| e.weight)
            .sum();
        let kp = kway_partition(&g, 4, &direct_opts()).unwrap();
        assert_eq!(kp.parts, 4);
        assert!(
            kp.cut_weight <= 3.0 * planted_cut.max(1.0),
            "cut {} vs planted {planted_cut}",
            kp.cut_weight
        );
        assert!(kp.imbalance() < 2.0, "imbalance {}", kp.imbalance());
    }

    #[test]
    fn k_equals_one_is_identity() {
        let g = grid2d(5, 5, WeightModel::Unit, 0);
        let kp = kway_partition(&g, 1, &direct_opts()).unwrap();
        assert_eq!(kp.parts, 1);
        assert_eq!(kp.cut_weight, 0.0);
        assert!(kp.assignment.iter().all(|&p| p == 0));
    }

    #[test]
    fn rejects_bad_k() {
        let g = grid2d(3, 3, WeightModel::Unit, 0);
        assert!(kway_partition(&g, 0, &direct_opts()).is_err());
        assert!(kway_partition(&g, 10, &direct_opts()).is_err());
    }

    #[test]
    fn sparsified_backend_works_for_kway() {
        let g = grid2d(20, 20, WeightModel::Unit, 2);
        let kp = kway_partition(&g, 4, &PartitionOptions::default()).unwrap();
        assert_eq!(kp.parts, 4);
        assert!(kp.imbalance() < 1.8);
    }
}
