//! Spectral graph partitioning accelerated by spectral sparsifiers
//! (paper §4.3, Table 3).
//!
//! The classic two-way spectral partition computes the Fiedler vector of
//! the graph Laplacian and splits vertices by sign. The expensive part is
//! the linear solve inside each inverse power iteration; this crate offers
//! both of the paper's backends:
//!
//! - [`Backend::Direct`]: exact grounded factorization of the *full* graph
//!   (the CHOLMOD baseline — memory-hungry on meshes),
//! - [`Backend::Sparsified`]: PCG preconditioned by a similarity-aware
//!   sparsifier of the requested `σ²` (the paper's method — when the
//!   sparsifier is spectrally close, its Fiedler vector is already a good
//!   cut for the original graph).
//!
//! # Example
//!
//! ```
//! use sass_graph::generators::{grid2d, WeightModel};
//! use sass_partition::{partition, Backend, PartitionOptions};
//!
//! # fn main() -> Result<(), sass_partition::PartitionError> {
//! let g = grid2d(16, 8, WeightModel::Unit, 0);
//! let part = partition(&g, &PartitionOptions::default())?;
//! // A 16x8 grid should split into two balanced halves.
//! assert!(part.balance_ratio() < 1.3);
//! assert!(part.cut_weight > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod clustering;
pub mod kway;

use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

use sass_core::{sparsify, SparsifyConfig};
use sass_eigen::fiedler::{fiedler_vector_pcg, sign_disagreement, FiedlerOptions};
use sass_graph::Graph;
use sass_solver::{GroundedSolver, LaplacianPrec, PcgOptions};
use sass_sparse::ordering::OrderingKind;
pub use sass_sparse::ordering::SeparatorParts;

/// Errors produced by the partitioner.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PartitionError {
    /// Underlying sparsification failure.
    Core(sass_core::CoreError),
    /// Underlying eigensolver failure.
    Eigen(sass_eigen::EigenError),
    /// Underlying solver failure.
    Solver(sass_solver::SolverError),
    /// The graph cannot be partitioned (fewer than 2 vertices).
    TooSmall {
        /// Number of vertices.
        n: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Core(e) => write!(f, "sparsification error: {e}"),
            PartitionError::Eigen(e) => write!(f, "eigensolver error: {e}"),
            PartitionError::Solver(e) => write!(f, "solver error: {e}"),
            PartitionError::TooSmall { n } => {
                write!(f, "cannot partition a graph with {n} vertices")
            }
        }
    }
}

impl Error for PartitionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PartitionError::Core(e) => Some(e),
            PartitionError::Eigen(e) => Some(e),
            PartitionError::Solver(e) => Some(e),
            PartitionError::TooSmall { .. } => None,
        }
    }
}

impl From<sass_core::CoreError> for PartitionError {
    fn from(e: sass_core::CoreError) -> Self {
        PartitionError::Core(e)
    }
}

impl From<sass_eigen::EigenError> for PartitionError {
    fn from(e: sass_eigen::EigenError) -> Self {
        PartitionError::Eigen(e)
    }
}

impl From<sass_solver::SolverError> for PartitionError {
    fn from(e: sass_solver::SolverError) -> Self {
        PartitionError::Solver(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PartitionError>;

/// Which solver powers the inverse power iterations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Backend {
    /// Exact grounded factorization of the full Laplacian.
    Direct {
        /// Fill-reducing ordering for the full factorization.
        ordering: OrderingKind,
    },
    /// PCG preconditioned by a similarity-aware sparsifier.
    Sparsified {
        /// Sparsification configuration (σ² etc.).
        config: SparsifyConfig,
        /// PCG accuracy per inverse power step.
        pcg: PcgOptions,
    },
}

impl Default for Backend {
    fn default() -> Self {
        Backend::Sparsified {
            config: SparsifyConfig::new(200.0),
            pcg: PcgOptions {
                tol: 1e-6,
                ..Default::default()
            },
        }
    }
}

/// How the Fiedler vector is turned into a two-way cut.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub enum CutRule {
    /// Split by sign (the paper's rule, §4.3).
    #[default]
    Sign,
    /// Sweep cut: scan thresholds along the sorted Fiedler values and keep
    /// the split of minimum conductance among those whose smaller side
    /// holds at least `min_balance` of the vertices. More robust than the
    /// sign cut when `λ₂` is (nearly) degenerate — e.g. symmetric
    /// multi-cluster graphs.
    Sweep {
        /// Minimum fraction of vertices on the smaller side (e.g. `0.1`).
        min_balance: f64,
    },
}

/// Options for [`partition`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartitionOptions {
    /// Solver backend.
    pub backend: Backend,
    /// Inverse-power-iteration controls.
    pub fiedler: FiedlerOptions,
    /// Cut extraction rule.
    pub cut: CutRule,
}

/// A two-way spectral partition.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Per-vertex side: `+1` or `-1` (sign of the Fiedler vector).
    pub signs: Vec<i8>,
    /// The (approximate) Fiedler vector used for the cut.
    pub fiedler: Vec<f64>,
    /// The Rayleigh-quotient estimate of `λ₂`.
    pub lambda2: f64,
    /// Total weight of edges crossing the cut.
    pub cut_weight: f64,
    /// Estimated solver memory in bytes (factor storage; for the
    /// sparsified backend this is the sparsifier factor).
    pub solver_memory_bytes: usize,
    /// Time spent building the solver (sparsification + factorization).
    pub setup_time: Duration,
    /// Time spent in inverse power iterations (solves).
    pub solve_time: Duration,
    /// Total PCG iterations across all inverse power steps (0 for direct).
    pub pcg_iterations: usize,
}

impl Partition {
    /// Balance ratio `max(|V+|,|V−|) / min(|V+|,|V−|)` (≥ 1; the paper
    /// reports `|V+|/|V−|`, which fluctuates around 1).
    pub fn balance_ratio(&self) -> f64 {
        let pos = self.signs.iter().filter(|&&s| s > 0).count();
        let neg = self.signs.len() - pos;
        let (hi, lo) = (pos.max(neg), pos.min(neg));
        if lo == 0 {
            f64::INFINITY
        } else {
            hi as f64 / lo as f64
        }
    }

    /// The paper's signed ratio `|V+| / |V−|`.
    pub fn signed_ratio(&self) -> f64 {
        let pos = self.signs.iter().filter(|&&s| s > 0).count();
        let neg = self.signs.len() - pos;
        if neg == 0 {
            f64::INFINITY
        } else {
            pos as f64 / neg as f64
        }
    }

    /// Splits `g` into (at least) `k` interior domains plus one vertex
    /// separator with a stable renumbering — the decomposition behind
    /// sharded substructured solves ([`sass_solver::substructure`]) and
    /// the sharded storage backend ([`sass_sparse::ShardedBackend`]).
    ///
    /// No edge of `g` connects two distinct domains; every cross-domain
    /// path runs through the separator. Built on the same BFS level-set
    /// machinery as the nested-dissection ordering
    /// ([`sass_sparse::ordering::vertex_separator`], applied to the
    /// Laplacian pattern). Fewer than `k` domains can come back on
    /// graphs too small or shallow to split; more on disconnected
    /// graphs, whose components split for free with an empty separator.
    pub fn vertex_separator(g: &Graph, k: usize) -> SeparatorParts {
        sass_sparse::ordering::vertex_separator(&g.laplacian(), k)
    }
}

/// Fraction of vertices on which two partitions disagree (minimized over a
/// global flip) — the paper's Table 3 `Rel.Err.` column.
///
/// # Panics
///
/// Panics if the partitions have different sizes.
pub fn relative_error(a: &Partition, b: &Partition) -> f64 {
    sign_disagreement(&a.fiedler, &b.fiedler)
}

fn cut_weight(g: &Graph, signs: &[i8]) -> f64 {
    g.edges()
        .iter()
        .filter(|e| signs[e.u as usize] != signs[e.v as usize])
        .map(|e| e.weight)
        .sum()
}

/// Computes a two-way spectral partition of a connected graph.
///
/// # Errors
///
/// Returns [`PartitionError::TooSmall`] for graphs with fewer than two
/// vertices and propagates solver/sparsifier failures (e.g. disconnected
/// input).
pub fn partition(g: &Graph, opts: &PartitionOptions) -> Result<Partition> {
    if g.n() < 2 {
        return Err(PartitionError::TooSmall { n: g.n() });
    }
    let l = g.laplacian();
    let (lambda2, fiedler, memory, setup_time, solve_time, pcg_iterations) = match &opts.backend {
        Backend::Direct { ordering } => {
            let t0 = Instant::now();
            let solver = GroundedSolver::new(&l, *ordering)?;
            let setup = t0.elapsed();
            let memory = solver.memory_bytes();
            let t1 = Instant::now();
            // Inverse power iteration with exact solves.
            let opts_f = opts.fiedler.clone();
            let (l2, v) = {
                // Reuse the already-built solver rather than refactorizing.
                let solve = |x: &[f64]| solver.solve(x);
                inverse_power_with(&l, solve, &opts_f)
            };
            (l2, v, memory, setup, t1.elapsed(), 0)
        }
        Backend::Sparsified { config, pcg } => {
            let t0 = Instant::now();
            let sp = sparsify(g, config)?;
            let lp = sp.graph().laplacian();
            let solver = GroundedSolver::new(&lp, config.ordering)?;
            let setup = t0.elapsed();
            let memory = solver.memory_bytes();
            let prec = LaplacianPrec::new(solver);
            let t1 = Instant::now();
            let (l2, v, iters) = fiedler_vector_pcg(&l, &prec, pcg, &opts.fiedler);
            (l2, v, memory, setup, t1.elapsed(), iters)
        }
    };
    let signs = match opts.cut {
        CutRule::Sign => fiedler
            .iter()
            .map(|&x| if x >= 0.0 { 1i8 } else { -1 })
            .collect(),
        CutRule::Sweep { min_balance } => sweep_cut(g, &fiedler, min_balance),
    };
    let cut = cut_weight(g, &signs);
    Ok(Partition {
        signs,
        fiedler,
        lambda2,
        cut_weight: cut,
        solver_memory_bytes: memory,
        setup_time,
        solve_time,
        pcg_iterations,
    })
}

/// Minimum-conductance sweep cut along the sorted Fiedler values.
///
/// Vertices are sorted by Fiedler value; prefixes `S_k` (first `k`
/// vertices) are scanned with an incremental cut-weight update, and the
/// prefix minimizing `cut(S) / min(vol(S), vol(V∖S))` among those with
/// `min(k, n−k) ≥ min_balance·n` wins. Runs in `O(m + n log n)`.
fn sweep_cut(g: &Graph, fiedler: &[f64], min_balance: f64) -> Vec<i8> {
    let n = g.n();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| fiedler[a].partial_cmp(&fiedler[b]).expect("finite fiedler"));
    let total_vol: f64 = (0..n).map(|v| g.weighted_degree(v)).sum();
    let min_side = ((min_balance.clamp(0.0, 0.5) * n as f64).floor() as usize).max(1);

    let mut in_s = vec![false; n];
    let mut cut = 0.0f64;
    let mut vol_s = 0.0f64;
    let mut best_k = n / 2;
    let mut best_cond = f64::INFINITY;
    for (k, &v) in order.iter().enumerate().take(n - 1) {
        // Move v into S: edges to S stop crossing, edges to V∖S start.
        let mut to_s = 0.0;
        for (nbr, _, w) in g.neighbors(v) {
            if in_s[nbr as usize] {
                to_s += w;
            }
        }
        let dv = g.weighted_degree(v);
        cut += dv - 2.0 * to_s;
        vol_s += dv;
        in_s[v] = true;
        let side = k + 1;
        if side < min_side || n - side < min_side {
            continue;
        }
        let cond = cut / vol_s.min(total_vol - vol_s).max(f64::MIN_POSITIVE);
        if cond < best_cond {
            best_cond = cond;
            best_k = side;
        }
    }
    let mut signs = vec![-1i8; n];
    for &v in &order[..best_k] {
        signs[v] = 1;
    }
    signs
}

/// Inverse power iteration with a caller-provided exact solve (mirrors
/// `sass_eigen::fiedler` but reuses an existing factorization).
fn inverse_power_with<S>(
    l: &sass_sparse::CsrMatrix,
    mut solve: S,
    opts: &FiedlerOptions,
) -> (f64, Vec<f64>)
where
    S: FnMut(&[f64]) -> Vec<f64>,
{
    use rand::{Rng, SeedableRng};
    use sass_sparse::dense;
    let n = l.nrows();
    let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    dense::center(&mut x);
    dense::normalize(&mut x);
    for _ in 0..opts.max_iter {
        let mut y = solve(&x);
        dense::center(&mut y);
        dense::normalize(&mut y);
        if dense::dot(&x, &y) < 0.0 {
            dense::scale(-1.0, &mut y);
        }
        let mut diff = y.clone();
        dense::axpy(-1.0, &x, &mut diff);
        let delta = dense::norm2(&diff);
        x = y;
        if delta < opts.tol {
            break;
        }
    }
    (l.quad_form(&x), x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sass_graph::generators::{grid2d, stochastic_block_model, WeightModel};

    fn direct_opts() -> PartitionOptions {
        PartitionOptions {
            backend: Backend::Direct {
                ordering: OrderingKind::MinDegree,
            },
            ..Default::default()
        }
    }

    #[test]
    fn grid_partition_is_balanced() {
        let g = grid2d(20, 10, WeightModel::Unit, 0);
        let p = partition(&g, &direct_opts()).unwrap();
        assert!(p.balance_ratio() < 1.2, "balance {}", p.balance_ratio());
        // A 20x10 grid's best bisection cuts ~10 edges; spectral should be
        // in that ballpark.
        assert!(p.cut_weight <= 30.0, "cut {}", p.cut_weight);
    }

    #[test]
    fn sparsified_backend_matches_direct() {
        let g = grid2d(16, 16, WeightModel::Uniform { lo: 0.5, hi: 2.0 }, 7);
        let d = partition(&g, &direct_opts()).unwrap();
        let s = partition(&g, &PartitionOptions::default()).unwrap();
        let err = relative_error(&d, &s);
        assert!(err < 0.05, "relative error {err}");
        assert!(s.pcg_iterations > 0);
        assert!((d.lambda2 - s.lambda2).abs() / d.lambda2 < 0.05);
    }

    #[test]
    fn sparsified_backend_uses_less_memory_than_direct_on_mesh() {
        let g = grid2d(30, 30, WeightModel::Unit, 3);
        let d = partition(
            &g,
            &PartitionOptions {
                backend: Backend::Direct {
                    ordering: OrderingKind::NestedDissection,
                },
                ..Default::default()
            },
        )
        .unwrap();
        let s = partition(&g, &PartitionOptions::default()).unwrap();
        assert!(
            s.solver_memory_bytes < d.solver_memory_bytes,
            "sparsified {} vs direct {}",
            s.solver_memory_bytes,
            d.solver_memory_bytes
        );
    }

    #[test]
    fn recovers_planted_communities() {
        let g = stochastic_block_model(&[40, 40], 0.3, 0.01, 9);
        let p = partition(&g, &direct_opts()).unwrap();
        let planted: Vec<f64> = (0..80).map(|i| if i < 40 { 1.0 } else { -1.0 }).collect();
        let err = sign_disagreement(&p.fiedler, &planted);
        assert!(err < 0.05, "community error {err}");
    }

    #[test]
    fn rejects_tiny_graphs() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert!(matches!(
            partition(&g, &PartitionOptions::default()),
            Err(PartitionError::TooSmall { .. })
        ));
    }

    #[test]
    fn vertex_separator_domains_share_no_edge() {
        let g = grid2d(14, 10, WeightModel::Unit, 0);
        for k in [1usize, 2, 4] {
            let parts = Partition::vertex_separator(&g, k);
            assert!(parts.domain_count() >= k.min(2) || k == 1);
            let dom = parts.domain_of();
            for e in g.edges() {
                let (du, dv) = (dom[e.u as usize], dom[e.v as usize]);
                assert!(
                    du == dv || du == SeparatorParts::SEPARATOR || dv == SeparatorParts::SEPARATOR,
                    "edge ({}, {}) crosses domains",
                    e.u,
                    e.v
                );
            }
            let renum = parts.renumbering().unwrap();
            assert_eq!(renum.len(), g.n());
        }
        // k = 1 on a connected graph: one domain, empty separator.
        let parts = Partition::vertex_separator(&g, 1);
        assert_eq!(parts.domain_count(), 1);
        assert!(parts.separator().is_empty());
    }

    #[test]
    fn signed_ratio_near_one_on_symmetric_graphs() {
        let g = grid2d(12, 12, WeightModel::Unit, 0);
        let p = partition(&g, &direct_opts()).unwrap();
        assert!(
            (p.signed_ratio() - 1.0).abs() < 0.35,
            "ratio {}",
            p.signed_ratio()
        );
    }
}
