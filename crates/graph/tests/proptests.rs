//! Property-based tests for the graph substrate: generator validity across
//! parameter ranges and spanning-tree correctness on random graphs.

use proptest::prelude::*;
use sass_graph::generators::{
    barabasi_albert, circuit_grid, fem_mesh2d, grid2d, knn_graph, watts_strogatz, WeightModel,
};
use sass_graph::spanning::{self, AkpwParams, TreeKind};
use sass_graph::traverse::is_connected;
use sass_graph::{Graph, GraphBuilder, LcaIndex, RootedTree};

fn random_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let extra = proptest::collection::vec((0usize..n, 0usize..n, 0.01f64..100.0), 0..3 * n);
        (Just(n), extra).prop_map(|(n, extra)| {
            let mut b = GraphBuilder::new(n);
            for v in 1..n {
                b.add_edge(v, (v * 13 + 5) % v.max(1), 0.5 + v as f64 * 0.1);
            }
            for (u, v, w) in extra {
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grid_generators_always_connected(
        nx in 1usize..12, ny in 1usize..12, seed in 0u64..100
    ) {
        let g = grid2d(nx, ny, WeightModel::LogUniform { lo: 0.1, hi: 10.0 }, seed);
        prop_assert_eq!(g.n(), nx * ny);
        prop_assert!(is_connected(&g));
        prop_assert!(g.edges().iter().all(|e| e.weight > 0.0));
    }

    #[test]
    fn circuit_generator_valid(nx in 2usize..14, via in 0.0f64..0.5, seed in 0u64..50) {
        let g = circuit_grid(nx, nx, via, seed);
        prop_assert!(is_connected(&g));
        prop_assert!(g.edges().iter().all(|e| e.weight > 0.0 && e.weight.is_finite()));
    }

    #[test]
    fn mesh_generator_valid(nx in 2usize..12, ny in 2usize..12, seed in 0u64..50) {
        let g = fem_mesh2d(nx, ny, seed);
        prop_assert!(is_connected(&g));
        // Triangulated grid: edges between grid + one diagonal per cell.
        let expected = (nx - 1) * ny + nx * (ny - 1) + (nx - 1) * (ny - 1);
        prop_assert_eq!(g.m(), expected);
    }

    #[test]
    fn ba_generator_valid(n in 5usize..200, m_attach in 1usize..4, seed in 0u64..50) {
        prop_assume!(n > m_attach);
        let g = barabasi_albert(n, m_attach, seed);
        prop_assert!(is_connected(&g));
        prop_assert_eq!(g.n(), n);
    }

    #[test]
    fn ws_generator_valid(n in 6usize..100, beta in 0.0f64..1.0, seed in 0u64..50) {
        let g = watts_strogatz(n, 4, beta, seed);
        prop_assert!(is_connected(&g));
        prop_assert_eq!(g.n(), n);
    }

    #[test]
    fn knn_generator_valid(n in 5usize..120, k in 1usize..6, seed in 0u64..20) {
        prop_assume!(k < n);
        let pts = sass_graph::generators::gaussian_mixture_points(n, 3, 3, 0.3, seed);
        let g = knn_graph(&pts, k);
        prop_assert!(is_connected(&g));
        prop_assert_eq!(g.n(), n);
    }

    #[test]
    fn every_tree_kind_spans_random_graphs(g in random_connected_graph(), seed in 0u64..50) {
        for kind in [
            TreeKind::MaxWeight,
            TreeKind::Akpw,
            TreeKind::Bfs,
            TreeKind::Random(seed),
        ] {
            let ids = spanning::spanning_tree(&g, kind).unwrap();
            prop_assert_eq!(ids.len(), g.n() - 1, "{:?}", kind);
            // RootedTree::new validates spanning-ness and connectivity.
            let tree = RootedTree::new(&g, ids, 0).unwrap();
            prop_assert_eq!(tree.n(), g.n());
        }
    }

    #[test]
    fn akpw_respects_params(g in random_connected_graph(),
                            rho in 1.5f64..10.0, radius in 1usize..4) {
        let params = AkpwParams { class_growth: rho, ball_radius: radius, seed: 1 };
        let ids = spanning::akpw_spanning_tree(&g, &params).unwrap();
        RootedTree::new(&g, ids, 0).unwrap();
    }

    #[test]
    fn stretch_invariants_on_random_graphs(g in random_connected_graph()) {
        // Tree edges have stretch exactly 1; all stretches are positive and
        // finite; under the max-weight tree, every off-tree edge is no
        // heavier than the *bottleneck* (lightest edge) of its tree path —
        // the classic cycle property.
        let ids = spanning::max_weight_spanning_tree(&g).unwrap();
        let tree = RootedTree::new(&g, ids.clone(), 0).unwrap();
        let lca = LcaIndex::new(&tree);
        let stretches = sass_graph::stretch::all_stretches(&g, &tree, &lca);
        for &id in &ids {
            prop_assert!((stretches[id as usize] - 1.0).abs() < 1e-9);
        }
        for s in &stretches {
            prop_assert!(*s > 0.0 && s.is_finite());
        }
        // Cycle property via bottleneck: walk each off-tree edge's path.
        let in_tree = tree.edge_mask(g.m());
        for (eid, e) in g.edges().iter().enumerate() {
            if in_tree[eid] {
                continue;
            }
            let l = lca.lca(e.u as usize, e.v as usize);
            let mut bottleneck = f64::INFINITY;
            for mut x in [e.u as usize, e.v as usize] {
                while x != l {
                    let pe = tree.parent_edge(x).unwrap();
                    bottleneck = bottleneck.min(g.edge(pe as usize).weight);
                    x = tree.parent(x).unwrap();
                }
            }
            prop_assert!(e.weight <= bottleneck + 1e-12,
                         "off-tree edge ({}, {}) weight {} above bottleneck {}",
                         e.u, e.v, e.weight, bottleneck);
        }
    }

    /// Pool-routed stretch scoring must be bit-identical to the serial
    /// per-edge loop at every worker count. `pool::set_threads` is a
    /// standing override that skips the size crossover, so these small
    /// graphs still exercise real multi-lane dispatch.
    #[test]
    fn all_stretches_bit_identical_across_worker_counts(g in random_connected_graph()) {
        use sass_graph::stretch;
        use sass_sparse::pool;
        let ids = spanning::bfs_spanning_tree(&g, 0).unwrap();
        let tree = RootedTree::new(&g, ids, 0).unwrap();
        let lca = LcaIndex::new(&tree);
        let serial: Vec<f64> = (0..g.m() as u32)
            .map(|id| stretch::edge_stretch(&g, &tree, &lca, id))
            .collect();
        for workers in [1usize, 2, 3, 8] {
            pool::set_threads(workers);
            let parallel = stretch::all_stretches(&g, &tree, &lca);
            pool::set_threads(0);
            prop_assert_eq!(&parallel, &serial, "workers = {}", workers);
        }
        // Stats ride on the pool-routed vector; spot-check the fold.
        let stats = stretch::stretch_stats(&g, &tree).unwrap();
        prop_assert_eq!(stats.total, serial.iter().sum::<f64>());
    }

    #[test]
    fn euler_tour_resistances_match_direct_walk(g in random_connected_graph()) {
        let ids = spanning::bfs_spanning_tree(&g, 0).unwrap();
        let tree = RootedTree::new(&g, ids, 0).unwrap();
        let lca = LcaIndex::new(&tree);
        // For every vertex: resistance to root via path_resistance_via must
        // match resistance_to_root.
        for v in 0..g.n() {
            let l = lca.lca(v, tree.root());
            prop_assert_eq!(l, tree.root());
            let r = tree.path_resistance_via(v, tree.root(), l);
            prop_assert!((r - tree.resistance_to_root(v)).abs() < 1e-12);
        }
    }
}
