use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and tree extraction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint was not a valid vertex index.
    VertexOutOfBounds {
        /// The offending vertex index.
        vertex: usize,
        /// Number of vertices in the graph.
        n: usize,
    },
    /// A non-positive edge weight was supplied where positivity is required.
    NonPositiveWeight {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
        /// The offending weight.
        weight: f64,
    },
    /// An operation requiring a connected graph received a disconnected one.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
    /// An edge set did not form a spanning tree of the host graph.
    NotSpanningTree {
        /// Description of the violation.
        context: String,
    },
    /// A matrix could not be interpreted as a graph Laplacian.
    NotLaplacian {
        /// Description of the violation.
        context: String,
    },
    /// A generator or algorithm was asked for an impossible configuration.
    InvalidParameter {
        /// Description of the bad parameter.
        context: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfBounds { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of bounds for graph with {n} vertices"
                )
            }
            GraphError::NonPositiveWeight { u, v, weight } => {
                write!(f, "edge ({u}, {v}) has non-positive weight {weight}")
            }
            GraphError::Disconnected { components } => {
                write!(f, "graph is disconnected ({components} components)")
            }
            GraphError::NotSpanningTree { context } => {
                write!(f, "edge set is not a spanning tree: {context}")
            }
            GraphError::NotLaplacian { context } => {
                write!(f, "matrix is not a graph laplacian: {context}")
            }
            GraphError::InvalidParameter { context } => {
                write!(f, "invalid parameter: {context}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = GraphError::Disconnected { components: 3 };
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
