//! Synthetic workload generators.
//!
//! The DAC'18 paper evaluates on SuiteSparse matrices (circuit, thermal,
//! FEM), protein/social/data networks and synthesized meshes. Those exact
//! files are not redistributable here, so this module provides seeded
//! generators for the same structural families (see `DESIGN.md` §3 for the
//! per-test-case mapping):
//!
//! | paper case | generator |
//! |---|---|
//! | G2/G3_circuit | [`circuit_grid`] |
//! | thermal1/2, ecology2, tmt_sym | [`grid2d`] |
//! | parabolic_fem, raefsky3 | [`fem_mesh2d`] |
//! | fe_rotor, brack2, fe_tooth, auto | [`fem_mesh3d`], [`grid3d`] |
//! | pdb1HYS | [`random_geometric3d`] |
//! | appu | [`dense_random`] |
//! | coAuthorsDBLP | [`barabasi_albert`] |
//! | RCV-80NN | [`knn_graph`] on [`gaussian_mixture_points`] |
//! | airfoil (Fig 1) | [`airfoil_mesh`] |
//! | mesh 1M/4M/9M (Tab 3) | [`grid2d`] with random weights |
//!
//! All generators are deterministic in their `seed` argument and return
//! connected graphs (disconnected raw samples are patched by
//! [`connect_components`]).

mod grid;
mod kdtree;
mod mesh;
mod random;
mod scale_free;

pub use grid::{circuit_grid, grid2d, grid3d};
pub use kdtree::KdTree;
pub use mesh::{airfoil_mesh, fem_mesh2d, fem_mesh3d};
pub use random::{dense_random, gaussian_mixture_points, knn_graph, random_geometric3d};
pub use scale_free::{barabasi_albert, stochastic_block_model, watts_strogatz};

use crate::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::Rng;

/// Random edge-weight models used by the generators.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum WeightModel {
    /// All weights `1.0`.
    Unit,
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (must be positive).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Log-uniform on `[lo, hi)` — weights spread over orders of magnitude,
    /// as in circuit conductance matrices.
    LogUniform {
        /// Lower bound (must be positive).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl WeightModel {
    /// Draws one weight.
    ///
    /// # Panics
    ///
    /// Panics if the model's bounds are not positive and ordered.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            WeightModel::Unit => 1.0,
            WeightModel::Uniform { lo, hi } => {
                assert!(
                    lo > 0.0 && hi > lo,
                    "uniform bounds must satisfy 0 < lo < hi"
                );
                rng.gen_range(lo..hi)
            }
            WeightModel::LogUniform { lo, hi } => {
                assert!(
                    lo > 0.0 && hi > lo,
                    "log-uniform bounds must satisfy 0 < lo < hi"
                );
                let (a, b) = (lo.ln(), hi.ln());
                rng.gen_range(a..b).exp()
            }
        }
    }
}

/// Connects a possibly-disconnected graph by adding one edge between
/// consecutive components (linking their lowest-index vertices) with the
/// given weight. Returns the input unchanged when already connected.
pub fn connect_components(g: Graph, link_weight: f64) -> Graph {
    let (labels, k) = crate::traverse::connected_components(&g);
    if k <= 1 {
        return g;
    }
    let mut rep = vec![usize::MAX; k];
    for (v, &c) in labels.iter().enumerate() {
        if rep[c] == usize::MAX {
            rep[c] = v;
        }
    }
    let mut b = GraphBuilder::with_capacity(g.n(), g.m() + k - 1);
    for e in g.edges() {
        b.add_edge(e.u as usize, e.v as usize, e.weight);
    }
    for w in rep.windows(2) {
        b.add_edge(w[0], w[1], link_weight);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::is_connected;
    use rand::SeedableRng;

    #[test]
    fn weight_models_sample_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(WeightModel::Unit.sample(&mut rng), 1.0);
        for _ in 0..100 {
            let u = WeightModel::Uniform { lo: 0.5, hi: 2.0 }.sample(&mut rng);
            assert!((0.5..2.0).contains(&u));
            let l = WeightModel::LogUniform { lo: 1e-3, hi: 1e3 }.sample(&mut rng);
            assert!((1e-3..1e3).contains(&l));
        }
    }

    #[test]
    fn connect_components_links_everything() {
        let g = Graph::from_edges(6, &[(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0)]).unwrap();
        assert!(!is_connected(&g));
        let c = connect_components(g, 2.0);
        assert!(is_connected(&c));
        assert_eq!(c.m(), 5);
    }

    #[test]
    fn connect_components_is_noop_when_connected() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let m = g.m();
        let c = connect_components(g, 1.0);
        assert_eq!(c.m(), m);
    }
}
