/// A k-d tree over points in `R^dim` for exact k-nearest-neighbor queries.
///
/// Used by [`knn_graph`](super::knn_graph) to build the k-NN similarity
/// graphs that stand in for the paper's `RCV-80NN` test case. Construction
/// is `O(n log n)` by median splitting; queries prune subtrees by splitting
/// planes.
///
/// # Example
///
/// ```
/// use sass_graph::generators::KdTree;
///
/// let pts = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![5.0, 5.0]];
/// let tree = KdTree::build(&pts);
/// let nn = tree.k_nearest(&[0.9, 0.1], 1);
/// assert_eq!(nn[0].0, 1); // the point at (1, 0)
/// ```
#[derive(Debug, Clone)]
pub struct KdTree<'a> {
    points: &'a [Vec<f64>],
    dim: usize,
    /// Point indices arranged so each subtree occupies a contiguous range.
    order: Vec<u32>,
    /// Per subtree-root position: splitting axis.
    axis: Vec<u8>,
}

impl<'a> KdTree<'a> {
    /// Builds a tree over `points` (all must share a dimension).
    ///
    /// Points with a non-finite coordinate (NaN or ±∞) are *excluded from
    /// the index*: they have no well-defined distance or splitting side, so
    /// indexing them would silently corrupt subtree pruning — queries never
    /// return them, and [`KdTree::indexed_len`] reports how many points
    /// remain searchable.
    ///
    /// # Panics
    ///
    /// Panics if points have inconsistent dimensions.
    pub fn build(points: &'a [Vec<f64>]) -> Self {
        let dim = points.first().map_or(0, Vec::len);
        assert!(
            points.iter().all(|p| p.len() == dim),
            "all points must share a dimension"
        );
        let mut order: Vec<u32> = (0..points.len() as u32)
            .filter(|&i| points[i as usize].iter().all(|c| c.is_finite()))
            .collect();
        let m = order.len();
        let mut axis = vec![0u8; m];
        if m > 0 && dim > 0 {
            build_recursive(points, dim, &mut order, &mut axis, 0, m, 0);
        }
        KdTree {
            points,
            dim,
            order,
            axis,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of points actually indexed — [`KdTree::len`] minus the
    /// points excluded for non-finite coordinates.
    pub fn indexed_len(&self) -> usize {
        self.order.len()
    }

    /// The `k` nearest neighbors of `query` as `(point index, distance)`
    /// pairs sorted by ascending distance. A point at the query location is
    /// included (filter by index to exclude self-matches); points with
    /// non-finite coordinates are never returned (see [`KdTree::build`]).
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the tree's dimension (for a
    /// non-empty tree).
    pub fn k_nearest(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        // Simple bounded max-heap as a sorted Vec (k is small in practice).
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
        self.search(0, self.order.len(), query, k, &mut best);
        best
    }

    fn search(&self, lo: usize, hi: usize, query: &[f64], k: usize, best: &mut Vec<(usize, f64)>) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let idx = self.order[mid] as usize;
        let d = dist(&self.points[idx], query);
        if best.len() < k || d < best.last().expect("non-empty").1 {
            let pos = best.partition_point(|&(_, bd)| bd <= d);
            best.insert(pos, (idx, d));
            if best.len() > k {
                best.pop();
            }
        }
        let ax = self.axis[mid] as usize;
        let delta = query[ax] - self.points[idx][ax];
        let (near_lo, near_hi, far_lo, far_hi) = if delta < 0.0 {
            (lo, mid, mid + 1, hi)
        } else {
            (mid + 1, hi, lo, mid)
        };
        self.search(near_lo, near_hi, query, k, best);
        // Visit the far side only if the splitting plane is closer than the
        // current k-th best distance.
        if best.len() < k || delta.abs() < best.last().expect("non-empty").1 {
            self.search(far_lo, far_hi, query, k, best);
        }
    }
}

fn build_recursive(
    points: &[Vec<f64>],
    dim: usize,
    order: &mut [u32],
    axis: &mut [u8],
    lo: usize,
    hi: usize,
    depth: usize,
) {
    if hi - lo <= 1 {
        if hi > lo {
            axis[lo + (hi - lo) / 2] = (depth % dim) as u8;
        }
        return;
    }
    let ax = depth % dim;
    let mid = lo + (hi - lo) / 2;
    // `total_cmp` keeps the median split well-defined (and panic-free) for
    // coincident points and signed zeros; non-finite coordinates never
    // reach this comparator — `build` excludes those points up front.
    order[lo..hi].select_nth_unstable_by(mid - lo, |&a, &b| {
        points[a as usize][ax].total_cmp(&points[b as usize][ax])
    });
    axis[mid] = ax as u8;
    build_recursive(points, dim, order, axis, lo, mid, depth + 1);
    build_recursive(points, dim, order, axis, mid + 1, hi, depth + 1);
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn brute_knn(points: &[Vec<f64>], q: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut all: Vec<(usize, f64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (i, dist(p, q)))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1));
        all.truncate(k);
        all
    }

    #[test]
    fn matches_brute_force_in_3d() {
        let mut rng = StdRng::seed_from_u64(5);
        let points: Vec<Vec<f64>> = (0..300)
            .map(|_| (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let tree = KdTree::build(&points);
        for _ in 0..30 {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let got = tree.k_nearest(&q, 7);
            let want = brute_knn(&points, &q, 7);
            // Distances must agree exactly (ties may permute indices).
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matches_brute_force_high_dim() {
        let mut rng = StdRng::seed_from_u64(6);
        let points: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..8).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let tree = KdTree::build(&points);
        let q: Vec<f64> = (0..8).map(|_| rng.gen_range(0.0..1.0)).collect();
        let got = tree.k_nearest(&q, 5);
        let want = brute_knn(&points, &q, 5);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.1 - w.1).abs() < 1e-12);
        }
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let points = vec![vec![0.0], vec![1.0], vec![2.0]];
        let tree = KdTree::build(&points);
        let got = tree.k_nearest(&[0.4], 10);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, 0);
    }

    #[test]
    fn empty_tree_is_fine() {
        let points: Vec<Vec<f64>> = Vec::new();
        let tree = KdTree::build(&points);
        assert!(tree.is_empty());
        assert!(tree.k_nearest(&[], 3).is_empty());
    }

    /// Regression: coincident points used to be fine only by luck, and a
    /// NaN coordinate panicked the `partial_cmp().expect()` median split.
    /// Construction must survive both, and queries must stay *correct* —
    /// an indexed NaN point would silently corrupt subtree pruning, so
    /// non-finite points are excluded from the index entirely.
    #[test]
    fn degenerate_points_do_not_panic_or_corrupt_queries() {
        // Many coincident points (zero spread on every axis).
        let coincident = vec![vec![1.0, 2.0]; 50];
        let tree = KdTree::build(&coincident);
        let got = tree.k_nearest(&[1.0, 2.0], 5);
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|&(_, d)| d == 0.0));

        // A NaN point placed so that, if indexed, it would become the split
        // node whose pruning hides the true nearest neighbor (3.0 from a
        // query at 3.05). It must be ignored instead.
        let points = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![f64::NAN]];
        let tree = KdTree::build(&points);
        assert_eq!(tree.len(), 5);
        assert_eq!(tree.indexed_len(), 4);
        let got = tree.k_nearest(&[3.05], 1);
        assert_eq!(got[0].0, 3);
        assert!((got[0].1 - 0.05).abs() < 1e-12);
        // Every finite point is reachable; the NaN point never is.
        let all = tree.k_nearest(&[0.0], 10);
        let ids: Vec<usize> = all.iter().map(|&(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);

        // An all-non-finite point set yields an empty (but valid) index.
        let bad = vec![vec![f64::INFINITY], vec![f64::NAN]];
        let tree = KdTree::build(&bad);
        assert_eq!(tree.indexed_len(), 0);
        assert!(tree.k_nearest(&[0.0], 3).is_empty());
    }
}
