use crate::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Triangulated 2-D finite-element sheet: a grid with one random diagonal
/// per cell and mildly varying element weights — the `parabolic_fem` /
/// `raefsky3` family.
///
/// # Panics
///
/// Panics if a dimension is below 2.
pub fn fem_mesh2d(nx: usize, ny: usize, seed: u64) -> Graph {
    assert!(nx >= 2 && ny >= 2, "mesh dimensions must be at least 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |x: usize, y: usize| y * nx + x;
    let mut b = GraphBuilder::with_capacity(nx * ny, 3 * nx * ny);
    let w = |rng: &mut StdRng| rng.gen_range(0.5..2.0);
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                b.add_edge(id(x, y), id(x + 1, y), w(&mut rng));
            }
            if y + 1 < ny {
                b.add_edge(id(x, y), id(x, y + 1), w(&mut rng));
            }
            if x + 1 < nx && y + 1 < ny {
                // Random triangulation direction per cell.
                if rng.gen_bool(0.5) {
                    b.add_edge(id(x, y), id(x + 1, y + 1), w(&mut rng));
                } else {
                    b.add_edge(id(x + 1, y), id(x, y + 1), w(&mut rng));
                }
            }
        }
    }
    b.build()
}

/// 3-D finite-element brick: a `nx × ny × nz` grid plus a fraction of face
/// diagonals — the `fe_rotor`/`fe_tooth`/`auto` family of tetrahedral
/// stiffness patterns.
///
/// # Panics
///
/// Panics if a dimension is below 2.
pub fn fem_mesh3d(nx: usize, ny: usize, nz: usize, seed: u64) -> Graph {
    assert!(
        nx >= 2 && ny >= 2 && nz >= 2,
        "mesh dimensions must be at least 2"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let n = nx * ny * nz;
    let mut b = GraphBuilder::with_capacity(n, 5 * n);
    let w = |rng: &mut StdRng| rng.gen_range(0.5..2.0);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    b.add_edge(id(x, y, z), id(x + 1, y, z), w(&mut rng));
                }
                if y + 1 < ny {
                    b.add_edge(id(x, y, z), id(x, y + 1, z), w(&mut rng));
                }
                if z + 1 < nz {
                    b.add_edge(id(x, y, z), id(x, y, z + 1), w(&mut rng));
                }
                // xy-face diagonal on a random half of the cells.
                if x + 1 < nx && y + 1 < ny && rng.gen_bool(0.5) {
                    b.add_edge(id(x, y, z), id(x + 1, y + 1, z), w(&mut rng));
                }
                // xz-face diagonal.
                if x + 1 < nx && z + 1 < nz && rng.gen_bool(0.5) {
                    b.add_edge(id(x, y, z), id(x + 1, y, z + 1), w(&mut rng));
                }
            }
        }
    }
    b.build()
}

/// Airfoil-style annular mesh (the paper's Fig. 1 test graph): a polar grid
/// of `rings × sectors` nodes wrapped around a teardrop-shaped hole, with
/// ring, radial and alternating diagonal edges. Edge weights are inverse
/// Euclidean edge lengths (FEM-style conductances).
///
/// Returns the graph together with node coordinates (useful for comparing
/// spectral drawings to geometry).
///
/// # Panics
///
/// Panics if `rings < 2` or `sectors < 3`.
pub fn airfoil_mesh(rings: usize, sectors: usize, seed: u64) -> (Graph, Vec<[f64; 2]>) {
    assert!(rings >= 2, "need at least 2 rings");
    assert!(sectors >= 3, "need at least 3 sectors");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rings * sectors;
    let id = |r: usize, s: usize| r * sectors + s;

    // Teardrop hole boundary: rho0(theta) = 0.3 + 0.5 * (1 + cos(theta)) / 2,
    // chord along +x; outer boundary is a circle of radius 4.
    let mut coords = Vec::with_capacity(n);
    for r in 0..rings {
        for s in 0..sectors {
            let theta = 2.0 * std::f64::consts::PI * s as f64 / sectors as f64;
            let rho0 = 0.3 + 0.25 * (1.0 + theta.cos());
            let t = (r as f64 / (rings - 1) as f64).powf(1.3);
            let rho = rho0 + (4.0 - rho0) * t;
            // Small jitter makes the mesh irregular like a real airfoil mesh.
            let jitter = if r == 0 || r + 1 == rings { 0.0 } else { 0.02 };
            let dr = rng.gen_range(-jitter..=jitter);
            coords.push([
                (rho + dr) * theta.cos(),
                (rho + dr) * theta.sin() * 0.8, // slight vertical squash
            ]);
        }
    }

    let dist = |a: usize, b: usize| -> f64 {
        let (pa, pb) = (coords[a], coords[b]);
        ((pa[0] - pb[0]).powi(2) + (pa[1] - pb[1]).powi(2))
            .sqrt()
            .max(1e-9)
    };
    let mut b = GraphBuilder::with_capacity(n, 4 * n);
    for r in 0..rings {
        for s in 0..sectors {
            let here = id(r, s);
            let next_s = id(r, (s + 1) % sectors);
            b.add_edge(here, next_s, 1.0 / dist(here, next_s));
            if r + 1 < rings {
                let up = id(r + 1, s);
                b.add_edge(here, up, 1.0 / dist(here, up));
                // Alternate diagonals for triangulation.
                let diag = id(r + 1, (s + 1) % sectors);
                if (r + s) % 2 == 0 {
                    b.add_edge(here, diag, 1.0 / dist(here, diag));
                } else {
                    b.add_edge(next_s, up, 1.0 / dist(next_s, up));
                }
            }
        }
    }
    (b.build(), coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::is_connected;

    #[test]
    fn fem2d_is_connected_triangulation() {
        let g = fem_mesh2d(10, 8, 3);
        assert_eq!(g.n(), 80);
        assert!(is_connected(&g));
        // Grid edges + one diagonal per cell.
        let grid_edges = 9 * 8 + 10 * 7;
        let cells = 9 * 7;
        assert_eq!(g.m(), grid_edges + cells);
    }

    #[test]
    fn fem3d_is_connected_and_denser_than_grid() {
        let g = fem_mesh3d(4, 4, 4, 5);
        assert_eq!(g.n(), 64);
        assert!(is_connected(&g));
        let grid_edge_count = 3 * 4 * 4 * 3; // 3 axes * 4*4 lines * 3 edges
        assert!(g.m() > grid_edge_count);
    }

    #[test]
    fn airfoil_shape_and_connectivity() {
        let (g, coords) = airfoil_mesh(8, 24, 1);
        assert_eq!(g.n(), 8 * 24);
        assert_eq!(coords.len(), g.n());
        assert!(is_connected(&g));
        // Every weight is a positive inverse length.
        assert!(g.edges().iter().all(|e| e.weight > 0.0));
        // Inner ring is near the hole, outer ring near radius 4.
        let r_inner = (coords[0][0].powi(2) + coords[0][1].powi(2)).sqrt();
        let outer0 = (8 - 1) * 24;
        let r_outer = (coords[outer0][0].powi(2) + coords[outer0][1].powi(2)).sqrt();
        assert!(r_inner < 1.0 && r_outer > 2.5);
    }

    #[test]
    fn meshes_are_deterministic() {
        let a = fem_mesh2d(6, 6, 9);
        let b = fem_mesh2d(6, 6, 9);
        assert_eq!(a.edges().len(), b.edges().len());
        for (x, y) in a.edges().iter().zip(b.edges()) {
            assert_eq!(x.weight, y.weight);
        }
    }
}
