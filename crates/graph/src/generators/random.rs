use super::{connect_components, KdTree};
use crate::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Uniform random graph with `n` vertices and (about) `m` distinct edges —
/// the `appu`-style pseudo-random family. Unit weights; patched to be
/// connected.
///
/// # Panics
///
/// Panics if `n < 2` or `m` exceeds the number of vertex pairs.
pub fn dense_random(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two vertices");
    let max_m = n * (n - 1) / 2;
    assert!(m <= max_m, "too many edges requested: {m} > {max_m}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v) as u64) << 32 | u.max(v) as u64;
        if seen.insert(key) {
            b.add_edge(u, v, 1.0);
        }
    }
    connect_components(b.build(), 1.0)
}

/// Random geometric graph in the unit cube: `n` points (optionally grouped
/// into loose clusters, protein-contact style), edges between pairs within
/// `radius`, weight `1/distance` capped at `100` — the `pdb1HYS` family.
///
/// Uses a uniform spatial grid for neighbor search (`O(n)` expected).
/// Patched to be connected.
///
/// # Panics
///
/// Panics if `n == 0` or `radius` is not in `(0, 1]`.
pub fn random_geometric3d(n: usize, radius: f64, clustered: bool, seed: u64) -> Graph {
    assert!(n > 0, "need at least one point");
    assert!(radius > 0.0 && radius <= 1.0, "radius must be in (0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(n);
    if clustered {
        // A chain of overlapping Gaussian blobs (like residues along a
        // protein backbone).
        let k = (n as f64).sqrt().ceil() as usize;
        let mut center = [0.5f64, 0.5, 0.5];
        for i in 0..n {
            if i % k == 0 {
                for c in &mut center {
                    *c = (*c + rng.gen_range(-0.2..0.2)).clamp(0.1, 0.9);
                }
            }
            let p: Vec<f64> = center
                .iter()
                .map(|&c| (c + rng.gen_range(-0.08..0.08)).clamp(0.0, 1.0))
                .collect();
            pts.push(p);
        }
    } else {
        for _ in 0..n {
            pts.push((0..3).map(|_| rng.gen::<f64>()).collect());
        }
    }

    // Spatial hashing on a grid of cell size `radius`.
    let cells = ((1.0 / radius).floor() as usize).max(1);
    let cell_of = |p: &[f64]| -> (usize, usize, usize) {
        let f = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
        (f(p[0]), f(p[1]), f(p[2]))
    };
    let mut grid: std::collections::HashMap<(usize, usize, usize), Vec<u32>> =
        std::collections::HashMap::new();
    for (i, p) in pts.iter().enumerate() {
        grid.entry(cell_of(p)).or_default().push(i as u32);
    }
    let mut b = GraphBuilder::new(n);
    let r2 = radius * radius;
    for (i, p) in pts.iter().enumerate() {
        let (cx, cy, cz) = cell_of(p);
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    let key = (
                        (cx as i64 + dx).rem_euclid(cells as i64) as usize,
                        (cy as i64 + dy).rem_euclid(cells as i64) as usize,
                        (cz as i64 + dz).rem_euclid(cells as i64) as usize,
                    );
                    // Only search the actual neighboring cells; the modular
                    // wrap above is just a cheap bounds clamp for edge cells.
                    if (cx as i64 + dx) < 0
                        || (cx as i64 + dx) >= cells as i64
                        || (cy as i64 + dy) < 0
                        || (cy as i64 + dy) >= cells as i64
                        || (cz as i64 + dz) < 0
                        || (cz as i64 + dz) >= cells as i64
                    {
                        continue;
                    }
                    if let Some(bucket) = grid.get(&key) {
                        for &j in bucket {
                            let j = j as usize;
                            if j <= i {
                                continue;
                            }
                            let q = &pts[j];
                            let d2: f64 = p.iter().zip(q).map(|(a, c)| (a - c) * (a - c)).sum();
                            if d2 <= r2 && d2 > 0.0 {
                                b.add_edge(i, j, (1.0 / d2.sqrt()).min(100.0));
                            }
                        }
                    }
                }
            }
        }
    }
    connect_components(b.build(), 1.0)
}

/// Samples `n` points from a mixture of `centers` Gaussian blobs in
/// `R^dim` — feature vectors for [`knn_graph`], standing in for the RCV1
/// text embeddings behind the paper's `RCV-80NN` case.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn gaussian_mixture_points(
    n: usize,
    dim: usize,
    centers: usize,
    spread: f64,
    seed: u64,
) -> Vec<Vec<f64>> {
    assert!(
        n > 0 && dim > 0 && centers > 0,
        "arguments must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mus: Vec<Vec<f64>> = (0..centers)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    (0..n)
        .map(|i| {
            let mu = &mus[i % centers];
            mu.iter()
                .map(|&m| {
                    // Box-Muller normal sample.
                    let u1: f64 = rng.gen_range(1e-12..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    m + spread * z
                })
                .collect()
        })
        .collect()
}

/// Symmetrized k-nearest-neighbor graph with Gaussian-kernel weights
/// `exp(−d² / (2σ²))`, where `σ` is the mean k-th neighbor distance — the
/// standard machine-learning similarity graph (`RCV-80NN` family).
///
/// Patched to be connected. Points with a non-finite coordinate are
/// excluded from neighbor search on both sides (the [`KdTree`] never
/// indexes them, and they issue no query — a NaN query distance would
/// poison the global `σ`); they end up attached only by the weak
/// connectivity-patch edges.
///
/// # Panics
///
/// Panics if `points` is empty, dimensions are inconsistent, or `k == 0`.
pub fn knn_graph(points: &[Vec<f64>], k: usize) -> Graph {
    assert!(!points.is_empty(), "need at least one point");
    assert!(k > 0, "k must be positive");
    let n = points.len();
    let tree = KdTree::build(points);
    // k+1 because the query point itself is returned at distance 0.
    let mut kth_dists = Vec::with_capacity(n);
    let mut nn: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
    for (i, p) in points.iter().enumerate() {
        if !p.iter().all(|c| c.is_finite()) {
            nn.push(Vec::new());
            continue;
        }
        let mut cand = tree.k_nearest(p, k + 1);
        cand.retain(|&(j, _)| j != i);
        cand.truncate(k);
        if let Some(&(_, d)) = cand.last() {
            kth_dists.push(d);
        }
        nn.push(cand);
    }
    let sigma = (kth_dists.iter().sum::<f64>() / kth_dists.len().max(1) as f64).max(1e-12);
    let mut b = GraphBuilder::with_capacity(n, n * k);
    for (i, cand) in nn.iter().enumerate() {
        for &(j, d) in cand {
            let w = (-d * d / (2.0 * sigma * sigma)).exp().max(1e-12);
            b.add_edge(i, j, w);
        }
    }
    // Parallel (mutual) neighbor edges get merged by the builder; halve them
    // back to a plain symmetrization? No: summing mutual similarity is the
    // conventional `W + Wᵀ` symmetrization, keep it.
    connect_components(b.build(), 1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::is_connected;

    #[test]
    fn dense_random_has_requested_edges() {
        let g = dense_random(100, 800, 3);
        assert!(g.m() >= 800, "connectivity patching may only add edges");
        assert!(g.m() < 850);
        assert!(is_connected(&g));
    }

    #[test]
    fn geometric_graph_is_local() {
        let g = random_geometric3d(500, 0.15, false, 9);
        assert!(is_connected(&g));
        assert!(
            g.m() > 500,
            "0.15-radius should give a dense-ish local graph"
        );
    }

    #[test]
    fn clustered_geometric_builds() {
        let g = random_geometric3d(400, 0.12, true, 11);
        assert!(is_connected(&g));
        assert_eq!(g.n(), 400);
    }

    #[test]
    fn gaussian_mixture_shape() {
        let pts = gaussian_mixture_points(120, 5, 4, 0.1, 2);
        assert_eq!(pts.len(), 120);
        assert!(pts.iter().all(|p| p.len() == 5));
        // Points from the same center index should be close on average.
        let d_same = dist(&pts[0], &pts[4]);
        let pts2 = gaussian_mixture_points(120, 5, 4, 0.1, 2);
        assert_eq!(pts[7], pts2[7], "deterministic for fixed seed");
        let _ = d_same;
    }

    #[test]
    fn knn_graph_degree_bounds() {
        let pts = gaussian_mixture_points(200, 4, 3, 0.2, 7);
        let k = 6;
        let g = knn_graph(&pts, k);
        assert!(is_connected(&g));
        // Every vertex has at least k neighbors (before symmetrization can
        // only add more).
        for v in 0..g.n() {
            assert!(g.degree(v) >= 1);
        }
        // Total edges between n*k/2 (all mutual) and n*k (none mutual).
        assert!(g.m() <= g.n() * k + 10);
        assert!(g.m() >= g.n() * k / 2 - 10);
    }

    #[test]
    fn knn_weights_are_similarities() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
        ];
        let g = knn_graph(&pts, 1);
        // Close pairs have near-1 similarity; the connecting patch edge (if
        // any) is tiny.
        let close = g.find_edge(0, 1).unwrap();
        assert!(g.edge(close as usize).weight > 0.5);
    }

    /// Regression: a NaN-coordinate point used to panic tree construction;
    /// after the kdtree hardening it must also not poison the global sigma
    /// (which would silently flatten every weight to the 1e-12 clamp). The
    /// degenerate point rides in on the connectivity patch only.
    #[test]
    fn knn_graph_survives_non_finite_point_with_weights_intact() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
            vec![f64::NAN, 0.0],
        ];
        let g = knn_graph(&pts, 1);
        assert_eq!(g.n(), 5);
        assert!(is_connected(&g));
        // Finite-pair similarities keep their structure.
        let close = g.find_edge(0, 1).unwrap();
        assert!(g.edge(close as usize).weight > 0.5);
        // The NaN vertex hangs off a weak patch edge only.
        assert_eq!(g.degree(4), 1);
        for (_, id, _) in g.neighbors(4) {
            assert!(g.edge(id as usize).weight <= 1e-6);
        }
    }

    fn dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}
