use super::WeightModel;
use crate::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 2-D grid graph (`nx × ny`, 5-point stencil).
///
/// With unit weights this is the `ecology2`/`tmt_sym` family of Laplacians;
/// with random weights it matches the synthesized "mesh" graphs of the
/// paper's Table 3.
///
/// # Panics
///
/// Panics if either dimension is zero.
///
/// # Example
///
/// ```
/// use sass_graph::generators::{grid2d, WeightModel};
///
/// let g = grid2d(4, 3, WeightModel::Unit, 0);
/// assert_eq!(g.n(), 12);
/// assert_eq!(g.m(), 4 * 2 + 3 * 3); // horizontal + vertical edges
/// ```
pub fn grid2d(nx: usize, ny: usize, weights: WeightModel, seed: u64) -> Graph {
    assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |x: usize, y: usize| y * nx + x;
    let mut b = GraphBuilder::with_capacity(nx * ny, 2 * nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                b.add_edge(id(x, y), id(x + 1, y), weights.sample(&mut rng));
            }
            if y + 1 < ny {
                b.add_edge(id(x, y), id(x, y + 1), weights.sample(&mut rng));
            }
        }
    }
    b.build()
}

/// 3-D grid graph (`nx × ny × nz`, 7-point stencil) — the `fe_rotor` /
/// `brack2` style volumetric Laplacian family.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn grid3d(nx: usize, ny: usize, nz: usize, weights: WeightModel, seed: u64) -> Graph {
    assert!(
        nx > 0 && ny > 0 && nz > 0,
        "grid dimensions must be positive"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut b = GraphBuilder::with_capacity(nx * ny * nz, 3 * nx * ny * nz);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    b.add_edge(id(x, y, z), id(x + 1, y, z), weights.sample(&mut rng));
                }
                if y + 1 < ny {
                    b.add_edge(id(x, y, z), id(x, y + 1, z), weights.sample(&mut rng));
                }
                if z + 1 < nz {
                    b.add_edge(id(x, y, z), id(x, y, z + 1), weights.sample(&mut rng));
                }
            }
        }
    }
    b.build()
}

/// Power-grid-style graph: a 2-D grid with log-uniform conductances plus a
/// fraction of random short-range "via" links — our stand-in for the
/// `G2_circuit`/`G3_circuit` matrices.
///
/// `via_fraction` is the number of extra via edges relative to `n`
/// (e.g. `0.1` adds `0.1·n` vias). Vias connect vertices at Chebyshev
/// distance ≤ 4 on the grid, mimicking inter-layer connections.
///
/// # Panics
///
/// Panics if a dimension is zero or `via_fraction` is negative.
pub fn circuit_grid(nx: usize, ny: usize, via_fraction: f64, seed: u64) -> Graph {
    assert!(nx > 0 && ny > 0, "grid dimensions must be positive");
    assert!(via_fraction >= 0.0, "via_fraction must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = WeightModel::LogUniform { lo: 1e-1, hi: 1e1 };
    let id = |x: usize, y: usize| y * nx + x;
    let n = nx * ny;
    let n_vias = (via_fraction * n as f64).round() as usize;
    let mut b = GraphBuilder::with_capacity(n, 2 * n + n_vias);
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                b.add_edge(id(x, y), id(x + 1, y), weights.sample(&mut rng));
            }
            if y + 1 < ny {
                b.add_edge(id(x, y), id(x, y + 1), weights.sample(&mut rng));
            }
        }
    }
    // Vias: strong short-range shortcuts (higher conductance band).
    let via_weights = WeightModel::LogUniform { lo: 1.0, hi: 1e2 };
    for _ in 0..n_vias {
        let x = rng.gen_range(0..nx);
        let y = rng.gen_range(0..ny);
        let dx = rng.gen_range(-4i64..=4);
        let dy = rng.gen_range(-4i64..=4);
        let x2 = (x as i64 + dx).clamp(0, nx as i64 - 1) as usize;
        let y2 = (y as i64 + dy).clamp(0, ny as i64 - 1) as usize;
        if (x, y) != (x2, y2) {
            b.add_edge(id(x, y), id(x2, y2), via_weights.sample(&mut rng));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::is_connected;

    #[test]
    fn grid2d_structure() {
        let g = grid2d(5, 4, WeightModel::Unit, 0);
        assert_eq!(g.n(), 20);
        assert_eq!(g.m(), 4 * 4 + 5 * 3);
        assert!(is_connected(&g));
        // Corner vertices have degree 2.
        assert_eq!(g.degree(0), 2);
        // Interior vertices have degree 4.
        assert_eq!(g.degree(6), 4);
    }

    #[test]
    fn grid3d_structure() {
        let g = grid3d(3, 3, 3, WeightModel::Unit, 0);
        assert_eq!(g.n(), 27);
        assert_eq!(g.m(), 3 * (2 * 3 * 3)); // 2 edges per line * 9 lines * 3 axes
        assert!(is_connected(&g));
        assert_eq!(g.degree(13), 6); // center vertex
    }

    #[test]
    fn circuit_grid_is_connected_and_heavier() {
        let g = circuit_grid(20, 20, 0.2, 7);
        assert!(is_connected(&g));
        let plain = grid2d(20, 20, WeightModel::Unit, 7);
        assert!(g.m() > plain.m(), "vias should add edges");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = circuit_grid(10, 10, 0.3, 3);
        let b = circuit_grid(10, 10, 0.3, 3);
        assert_eq!(a.m(), b.m());
        for (ea, eb) in a.edges().iter().zip(b.edges()) {
            assert_eq!((ea.u, ea.v), (eb.u, eb.v));
            assert_eq!(ea.weight, eb.weight);
        }
    }

    #[test]
    fn random_weights_vary() {
        let g = grid2d(6, 6, WeightModel::LogUniform { lo: 1e-2, hi: 1e2 }, 11);
        let wmin = g
            .edges()
            .iter()
            .map(|e| e.weight)
            .fold(f64::INFINITY, f64::min);
        let wmax = g.edges().iter().map(|e| e.weight).fold(0.0, f64::max);
        assert!(
            wmax / wmin > 10.0,
            "expected weight spread, got {wmin}..{wmax}"
        );
    }
}
