use super::connect_components;
use crate::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Barabási–Albert preferential-attachment graph: each new vertex attaches
/// to `m_attach` existing vertices with probability proportional to degree.
/// Produces the heavy-tailed degree distribution of co-authorship/social
/// networks (the `coAuthorsDBLP` family). Unit weights.
///
/// # Panics
///
/// Panics if `m_attach == 0` or `n <= m_attach`.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Graph {
    assert!(m_attach >= 1, "attachment count must be positive");
    assert!(n > m_attach, "need more vertices than attachments");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m_attach);
    // Repeated-node list: sampling uniformly from it is degree-proportional.
    let mut targets: Vec<u32> = Vec::with_capacity(2 * n * m_attach);
    // Seed clique-ish core: a path over the first m_attach + 1 vertices.
    for v in 0..m_attach {
        b.add_edge(v, v + 1, 1.0);
        targets.push(v as u32);
        targets.push(v as u32 + 1);
    }
    for v in (m_attach + 1)..n {
        let mut chosen: Vec<u32> = Vec::with_capacity(m_attach);
        while chosen.len() < m_attach {
            let t = targets[rng.gen_range(0..targets.len())];
            if t as usize != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(v, t as usize, 1.0);
            targets.push(t);
            targets.push(v as u32);
        }
    }
    b.build()
}

/// Watts–Strogatz small-world graph: ring lattice with `k` neighbors per
/// vertex (`k/2` each side), each edge rewired with probability `beta`.
/// Unit weights; patched to be connected.
///
/// # Panics
///
/// Panics if `k` is zero/odd, `k >= n`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!(k < n, "k must be smaller than n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * k / 2);
    for v in 0..n {
        for j in 1..=(k / 2) {
            let u = (v + j) % n;
            if rng.gen_bool(beta) {
                // Rewire: random endpoint avoiding self-loop (parallel edges
                // get merged by the builder; acceptable for this model).
                let w = rng.gen_range(0..n);
                if w != v {
                    b.add_edge(v, w, 1.0);
                } else {
                    b.add_edge(v, u, 1.0);
                }
            } else {
                b.add_edge(v, u, 1.0);
            }
        }
    }
    connect_components(b.build(), 1.0)
}

/// Stochastic block model: `sizes.len()` communities with intra-community
/// edge probability `p_in` and inter-community probability `p_out`.
/// Unit weights; patched to be connected.
///
/// # Panics
///
/// Panics if probabilities are outside `[0, 1]` or `sizes` is empty.
pub fn stochastic_block_model(sizes: &[usize], p_in: f64, p_out: f64, seed: u64) -> Graph {
    assert!(!sizes.is_empty(), "need at least one block");
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let n: usize = sizes.iter().sum();
    let mut block = Vec::with_capacity(n);
    for (bi, &s) in sizes.iter().enumerate() {
        block.extend(std::iter::repeat_n(bi, s));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block[u] == block[v] { p_in } else { p_out };
            if p > 0.0 && rng.gen_bool(p) {
                b.add_edge(u, v, 1.0);
            }
        }
    }
    connect_components(b.build(), 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::is_connected;

    #[test]
    fn ba_has_hubs() {
        let g = barabasi_albert(500, 3, 13);
        assert!(is_connected(&g));
        let max_deg = (0..g.n()).map(|v| g.degree(v)).max().unwrap();
        let mean_deg = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(
            max_deg as f64 > 4.0 * mean_deg,
            "scale-free graph should have hubs: max {max_deg}, mean {mean_deg}"
        );
    }

    #[test]
    fn ba_edge_count() {
        let g = barabasi_albert(200, 2, 1);
        // m_attach per new vertex, minus merged duplicates (rare).
        assert!(g.m() >= 2 * (200 - 3));
        assert!(g.m() <= 2 + 2 * 200);
    }

    #[test]
    fn ws_ring_when_beta_zero() {
        let g = watts_strogatz(24, 4, 0.0, 5);
        assert!(is_connected(&g));
        assert_eq!(g.m(), 24 * 2);
        for v in 0..24 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn ws_rewiring_shrinks_diameter() {
        let ring = watts_strogatz(200, 4, 0.0, 5);
        let small_world = watts_strogatz(200, 4, 0.3, 5);
        let ecc = |g: &Graph| {
            crate::traverse::bfs_distances(g, 0)
                .into_iter()
                .filter(|&d| d != usize::MAX)
                .max()
                .unwrap()
        };
        assert!(ecc(&small_world) < ecc(&ring));
    }

    #[test]
    fn sbm_blocks_are_denser_inside() {
        let g = stochastic_block_model(&[40, 40], 0.3, 0.01, 3);
        assert!(is_connected(&g));
        let mut within = 0usize;
        let mut across = 0usize;
        for e in g.edges() {
            let same = (e.u < 40) == (e.v < 40);
            if same {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > 5 * across, "within {within} vs across {across}");
    }

    #[test]
    fn generators_deterministic() {
        let a = barabasi_albert(100, 2, 9);
        let b = barabasi_albert(100, 2, 9);
        assert_eq!(a.m(), b.m());
    }
}
