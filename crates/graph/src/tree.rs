use crate::{Graph, GraphError, Result};

/// A spanning tree of a host [`Graph`], rooted and preprocessed for
/// path queries.
///
/// Stores parent pointers, depths, BFS order and — crucial for stretch and
/// Joule-heat analysis — the *resistance to root* of every vertex
/// (`Σ 1/w` along the tree path), so that together with an
/// [`LcaIndex`](crate::LcaIndex) the effective resistance of any tree path
/// is an O(1) query.
///
/// # Example
///
/// ```
/// use sass_graph::{Graph, RootedTree};
///
/// # fn main() -> Result<(), sass_graph::GraphError> {
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])?;
/// // Canonical edge ids: (0,1) = 0, (0,2) = 1, (1,2) = 2.
/// // Edges {(0,1), (1,2)} form the path spanning tree 0-1-2.
/// let tree = RootedTree::new(&g, vec![0, 2], 0)?;
/// assert_eq!(tree.depth(2), 2);
/// assert!((tree.resistance_to_root(2) - 1.5).abs() < 1e-15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RootedTree {
    root: usize,
    n: usize,
    parent: Vec<u32>,
    parent_edge: Vec<u32>,
    depth: Vec<u32>,
    rdist: Vec<f64>,
    bfs_order: Vec<u32>,
    edge_ids: Vec<u32>,
}

impl RootedTree {
    /// Roots the spanning tree given by `edge_ids` at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotSpanningTree`] if the edge set does not have
    /// exactly `n − 1` edges reaching every vertex, and
    /// [`GraphError::VertexOutOfBounds`] for an invalid root.
    pub fn new(g: &Graph, mut edge_ids: Vec<u32>, root: usize) -> Result<Self> {
        let n = g.n();
        if root >= n {
            return Err(GraphError::VertexOutOfBounds { vertex: root, n });
        }
        edge_ids.sort_unstable();
        edge_ids.dedup();
        if edge_ids.len() + 1 != n {
            return Err(GraphError::NotSpanningTree {
                context: format!("{} edges for {} vertices", edge_ids.len(), n),
            });
        }
        // Tree adjacency.
        let mut deg = vec![0usize; n + 1];
        for &id in &edge_ids {
            let e = g.edge(id as usize);
            deg[e.u as usize + 1] += 1;
            deg[e.v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let xadj = deg.clone();
        let mut adj = vec![(0u32, 0u32); 2 * edge_ids.len()];
        let mut next = deg;
        for &id in &edge_ids {
            let e = g.edge(id as usize);
            adj[next[e.u as usize]] = (e.v, id);
            next[e.u as usize] += 1;
            adj[next[e.v as usize]] = (e.u, id);
            next[e.v as usize] += 1;
        }

        let mut parent = vec![u32::MAX; n];
        let mut parent_edge = vec![u32::MAX; n];
        let mut depth = vec![0u32; n];
        let mut rdist = vec![0.0f64; n];
        let mut bfs_order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        bfs_order.push(root as u32);
        visited[root] = true;
        let mut head = 0;
        while head < bfs_order.len() {
            let u = bfs_order[head] as usize;
            head += 1;
            for &(nbr, id) in &adj[xadj[u]..xadj[u + 1]] {
                let v = nbr as usize;
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = u as u32;
                    parent_edge[v] = id;
                    depth[v] = depth[u] + 1;
                    rdist[v] = rdist[u] + 1.0 / g.edge(id as usize).weight;
                    bfs_order.push(v as u32);
                }
            }
        }
        if bfs_order.len() != n {
            return Err(GraphError::NotSpanningTree {
                context: format!("only {} of {} vertices reachable", bfs_order.len(), n),
            });
        }
        Ok(RootedTree {
            root,
            n,
            parent,
            parent_edge,
            depth,
            rdist,
            bfs_order,
            edge_ids,
        })
    }

    /// Re-derives this rooted view against an edited host graph whose
    /// edge ids were renumbered but whose tree *topology* is unchanged:
    /// the parent/depth/BFS structure is reused verbatim, edge ids are
    /// carried through `new_id`, and the path resistances are recomputed
    /// from the edited graph's weights (tree-edge weights may have
    /// merged). The resistances are accumulated along each parent chain
    /// exactly as [`RootedTree::new`] does, so given equal weights the
    /// result is bit-identical to a from-scratch rebuild.
    ///
    /// Returns `None` if any tree edge fails to remap — the topology did
    /// not survive the edit after all and a full [`RootedTree::new`] is
    /// required.
    ///
    /// # Panics
    ///
    /// Panics if a remapped id is out of bounds for `g`.
    pub fn remapped(&self, g: &Graph, new_id: impl Fn(u32) -> Option<u32>) -> Option<RootedTree> {
        let mut edge_ids = Vec::with_capacity(self.edge_ids.len());
        for &id in &self.edge_ids {
            edge_ids.push(new_id(id)?);
        }
        // Edit maps are monotone, but stay safe for arbitrary closures.
        edge_ids.sort_unstable();
        let mut parent_edge = vec![u32::MAX; self.n];
        for (slot, &old) in parent_edge.iter_mut().zip(&self.parent_edge) {
            if old != u32::MAX {
                *slot = new_id(old)?;
            }
        }
        let mut rdist = vec![0.0f64; self.n];
        for &v in &self.bfs_order {
            let v = v as usize;
            let p = self.parent[v];
            if p != u32::MAX {
                rdist[v] = rdist[p as usize] + 1.0 / g.edge(parent_edge[v] as usize).weight;
            }
        }
        Some(RootedTree {
            root: self.root,
            n: self.n,
            parent: self.parent.clone(),
            parent_edge,
            depth: self.depth.clone(),
            rdist,
            bfs_order: self.bfs_order.clone(),
            edge_ids,
        })
    }

    /// The root vertex.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Parent of `v`, or `None` for the root.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n()`.
    pub fn parent(&self, v: usize) -> Option<usize> {
        let p = self.parent[v];
        (p != u32::MAX).then_some(p as usize)
    }

    /// Host-graph id of the edge joining `v` to its parent, or `None` for
    /// the root.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n()`.
    pub fn parent_edge(&self, v: usize) -> Option<u32> {
        let e = self.parent_edge[v];
        (e != u32::MAX).then_some(e)
    }

    /// Hop depth of `v` (root has depth 0).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n()`.
    pub fn depth(&self, v: usize) -> u32 {
        self.depth[v]
    }

    /// Effective resistance (`Σ 1/w`) of the tree path from `v` to the root.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n()`.
    pub fn resistance_to_root(&self, v: usize) -> f64 {
        self.rdist[v]
    }

    /// Vertices in BFS order from the root (root first). Parents always
    /// precede their children, making this a valid topological order for
    /// up-the-tree eliminations.
    pub fn bfs_order(&self) -> &[u32] {
        &self.bfs_order
    }

    /// Sorted host-graph ids of the tree edges.
    pub fn edge_ids(&self) -> &[u32] {
        &self.edge_ids
    }

    /// Boolean mask over host-graph edges: `true` for tree edges.
    pub fn edge_mask(&self, m: usize) -> Vec<bool> {
        let mut mask = vec![false; m];
        for &id in &self.edge_ids {
            mask[id as usize] = true;
        }
        mask
    }

    /// Host-graph ids of the edges *not* in the tree.
    pub fn off_tree_edges(&self, g: &Graph) -> Vec<u32> {
        let mask = self.edge_mask(g.m());
        (0..g.m() as u32).filter(|&id| !mask[id as usize]).collect()
    }

    /// Resistance of the tree path between `u` and `v`, given their lowest
    /// common ancestor `l` (see [`LcaIndex`](crate::LcaIndex)).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn path_resistance_via(&self, u: usize, v: usize, l: usize) -> f64 {
        self.rdist[u] + self.rdist[v] - 2.0 * self.rdist[l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_diagonal() -> Graph {
        // 0-1, 1-2, 2-3, 3-0, 0-2; edge ids follow sorted (u,v) order:
        // (0,1)=0, (0,2)=1, (0,3)=2, (1,2)=3, (2,3)=4.
        Graph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 0, 1.0),
                (0, 2, 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roots_and_measures_path_tree() {
        let g = square_with_diagonal();
        // Tree: (0,1), (1,2), (2,3) = ids 0, 3, 4.
        let t = RootedTree::new(&g, vec![0, 3, 4], 0).unwrap();
        assert_eq!(t.root(), 0);
        assert_eq!(t.depth(3), 3);
        assert_eq!(t.parent(3), Some(2));
        assert_eq!(t.parent(0), None);
        assert!((t.resistance_to_root(3) - 3.0).abs() < 1e-15);
        assert_eq!(t.off_tree_edges(&g), vec![1, 2]);
    }

    #[test]
    fn rejects_wrong_edge_count() {
        let g = square_with_diagonal();
        assert!(matches!(
            RootedTree::new(&g, vec![0, 3], 0),
            Err(GraphError::NotSpanningTree { .. })
        ));
    }

    #[test]
    fn rejects_non_spanning_set() {
        let g = square_with_diagonal();
        // Edges (0,1), (0,2), (1,2) form a cycle missing vertex 3.
        assert!(matches!(
            RootedTree::new(&g, vec![0, 1, 3], 0),
            Err(GraphError::NotSpanningTree { .. })
        ));
    }

    #[test]
    fn remapped_matches_rebuild_after_edit() {
        use crate::GraphEdit;
        let g = square_with_diagonal();
        // Tree: (0,1), (1,2), (2,3) = ids 0, 3, 4.
        let t = RootedTree::new(&g, vec![0, 3, 4], 0).unwrap();
        // Remove the off-tree diagonal (0,2) and bump a tree edge's
        // weight: ids renumber, topology survives.
        let (g2, map) = g
            .apply_edits(&[
                GraphEdit::RemoveEdge { u: 0, v: 2 },
                GraphEdit::AddEdge {
                    u: 1,
                    v: 2,
                    weight: 3.0,
                },
            ])
            .unwrap();
        let fast = t.remapped(&g2, |id| map.new_id(id)).unwrap();
        let full = RootedTree::new(&g2, fast.edge_ids().to_vec(), 0).unwrap();
        assert_eq!(fast.edge_ids(), full.edge_ids());
        for v in 0..g2.n() {
            assert_eq!(fast.parent(v), full.parent(v));
            assert_eq!(fast.parent_edge(v), full.parent_edge(v));
            assert_eq!(fast.depth(v), full.depth(v));
            // Bit-exact, not approximately equal.
            assert_eq!(fast.resistance_to_root(v), full.resistance_to_root(v));
        }
        // A topology-breaking map (tree edge deleted) is refused.
        let (_, map2) = g
            .apply_edits(&[GraphEdit::RemoveEdge { u: 0, v: 1 }])
            .unwrap();
        assert!(t.remapped(&g2, |id| map2.new_id(id)).is_none());
    }

    #[test]
    fn bfs_order_parents_first() {
        let g = square_with_diagonal();
        let t = RootedTree::new(&g, vec![0, 3, 4], 1).unwrap();
        let order = t.bfs_order();
        let mut pos = [0usize; 4];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for v in 0..4 {
            if let Some(p) = t.parent(v) {
                assert!(pos[p] < pos[v]);
            }
        }
    }

    #[test]
    fn path_resistance_via_lca_node() {
        let g = square_with_diagonal();
        // Star-ish tree rooted at 0: (0,1), (0,2), (0,3) = ids 0, 1, 2.
        let t = RootedTree::new(&g, vec![0, 1, 2], 0).unwrap();
        // Path 1 -> 0 -> 2, LCA = 0: resistance 1/1 + 1/2.
        assert!((t.path_resistance_via(1, 2, 0) - 1.5).abs() < 1e-15);
    }
}
