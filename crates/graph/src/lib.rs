//! Weighted undirected graphs and the tree machinery behind low-stretch
//! spectral sparsification.
//!
//! This crate provides the graph substrate of the SASS workspace:
//!
//! - [`Graph`]: an immutable weighted undirected graph in CSR adjacency
//!   form, built through [`GraphBuilder`], with Laplacian export,
//! - spanning-tree extraction ([`spanning`]): maximum-weight Kruskal,
//!   BFS trees, Wilson's random spanning trees and an AKPW-style
//!   low-stretch spanning tree,
//! - [`RootedTree`] + [`LcaIndex`]: Euler-tour lowest-common-ancestor
//!   queries in O(1) and tree-path effective resistances, which together
//!   give per-edge *stretch* ([`stretch`]) — the quantity the DAC'18 paper
//!   ties to generalized eigenvalues,
//! - synthetic workload [`generators`] standing in for the SuiteSparse /
//!   network test cases of the paper (see `DESIGN.md` for the mapping).
//!
//! # Example
//!
//! ```
//! use sass_graph::{GraphBuilder, RootedTree, spanning, stretch};
//!
//! # fn main() -> Result<(), sass_graph::GraphError> {
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1.0);
//! b.add_edge(1, 2, 2.0);
//! b.add_edge(2, 3, 1.0);
//! b.add_edge(3, 0, 0.5); // cycle-closing edge
//! let g = b.build();
//! let tree_ids = spanning::max_weight_spanning_tree(&g)?;
//! let tree = RootedTree::new(&g, tree_ids, 0)?;
//! let stats = stretch::stretch_stats(&g, &tree)?;
//! assert_eq!(stats.off_tree_edges, 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod error;
mod graph;
mod lca;
mod tree;
mod unionfind;

pub mod generators;
pub mod spanning;
pub mod stretch;
pub mod traverse;

pub use error::GraphError;
pub use graph::{Edge, EditMap, Graph, GraphBuilder, GraphEdit};
pub use lca::LcaIndex;
pub use tree::RootedTree;
pub use unionfind::UnionFind;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
