//! Edge stretch with respect to a spanning tree.
//!
//! The *stretch* of edge `e = (u, v)` with weight `w` over spanning tree `T`
//! is `st_T(e) = w · R_T(u, v)`, where `R_T` is the effective resistance of
//! the tree path between the endpoints (`Σ 1/w` along the path). Tree edges
//! have stretch exactly 1; the **total stretch** `st_T(G) = Σ_e st_T(e)`
//! equals `Trace(L_T⁺ L_G)` — the sum of all generalized eigenvalues of the
//! pencil `(L_G, L_T)` — which is the quantity low-stretch spanning tree
//! constructions minimize (paper Eq. 4).

use crate::{Graph, LcaIndex, Result, RootedTree};
use sass_sparse::pool;

/// Below this many edges [`all_stretches`] stays serial under automatic
/// pool sizing (an explicit `SASS_THREADS` / `pool::set_threads` override
/// skips the crossover).
const MIN_PAR_EDGES: usize = 16_384;
/// Edges per pool lane above the crossover.
const EDGES_PER_WORKER: usize = 8_192;

/// Summary statistics of edge stretch over a spanning tree.
#[derive(Debug, Clone, PartialEq)]
pub struct StretchStats {
    /// Total stretch `Σ_e st_T(e)` over **all** edges (tree edges included,
    /// each contributing exactly 1).
    pub total: f64,
    /// Largest single-edge stretch.
    pub max: f64,
    /// Mean stretch over all edges.
    pub mean: f64,
    /// Number of off-tree edges.
    pub off_tree_edges: usize,
}

/// Computes the stretch of a single edge (by host-graph id).
///
/// # Panics
///
/// Panics if `edge_id` is out of bounds.
pub fn edge_stretch(g: &Graph, tree: &RootedTree, lca: &LcaIndex, edge_id: u32) -> f64 {
    let e = g.edge(edge_id as usize);
    let l = lca.lca(e.u as usize, e.v as usize);
    e.weight * tree.path_resistance_via(e.u as usize, e.v as usize, l)
}

/// Computes the stretch of every edge of `g` over the tree.
///
/// The returned vector is indexed by edge id. Tree edges come out as
/// exactly 1 up to floating-point roundoff.
///
/// Large edge sets are scored in parallel over the persistent worker pool
/// ([`sass_sparse::pool`]), each lane owning a contiguous span of edge
/// ids; every entry is computed by the same [`edge_stretch`] call either
/// way, so the result is bit-for-bit identical to the serial loop at any
/// worker count (pinned by the graph proptests at forced counts 1/2/3/8).
///
/// # Example
///
/// ```
/// use sass_graph::{stretch, Graph, LcaIndex, RootedTree};
///
/// # fn main() -> Result<(), sass_graph::GraphError> {
/// // Unit square: tree = 3 path edges, one closing edge of stretch 3.
/// let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)])?;
/// let tree = RootedTree::new(&g, vec![0, 2, 3], 0)?;
/// let lca = LcaIndex::new(&tree);
/// let st = stretch::all_stretches(&g, &tree, &lca);
/// assert!((st.iter().sum::<f64>() - 6.0).abs() < 1e-12); // 1 + 1 + 1 + 3
/// # Ok(())
/// # }
/// ```
pub fn all_stretches(g: &Graph, tree: &RootedTree, lca: &LcaIndex) -> Vec<f64> {
    let m = g.m();
    let pool = pool::Pool::global();
    let workers = pool.workers_for(m, MIN_PAR_EDGES, EDGES_PER_WORKER);
    let mut out = vec![0.0f64; m];
    let spans = pool::even_spans(m, workers);
    pool.parallel_for_disjoint_mut(&mut out, &spans, |s, chunk| {
        let lo = spans[s].0;
        for (k, slot) in chunk.iter_mut().enumerate() {
            *slot = edge_stretch(g, tree, lca, (lo + k) as u32);
        }
    });
    out
}

/// Computes [`StretchStats`] for the tree, building a temporary LCA index.
///
/// # Errors
///
/// Propagates tree-construction errors when the tree's edge set is invalid
/// for `g` (cannot happen for trees built from `g` itself).
pub fn stretch_stats(g: &Graph, tree: &RootedTree) -> Result<StretchStats> {
    let lca = LcaIndex::new(tree);
    let stretches = all_stretches(g, tree, &lca);
    let total: f64 = stretches.iter().sum();
    let max = stretches.iter().copied().fold(0.0, f64::max);
    let mean = if stretches.is_empty() {
        0.0
    } else {
        total / stretches.len() as f64
    };
    Ok(StretchStats {
        total,
        max,
        mean,
        off_tree_edges: g.m() + 1 - g.n(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spanning;

    #[test]
    fn tree_edges_have_unit_stretch() {
        let g = Graph::from_edges(
            5,
            &[
                (0, 1, 2.0),
                (1, 2, 0.5),
                (2, 3, 4.0),
                (3, 4, 1.0),
                (0, 4, 1.0),
                (1, 3, 3.0),
            ],
        )
        .unwrap();
        let tree = spanning::max_weight_spanning_tree(&g).unwrap();
        let rooted = RootedTree::new(&g, tree, 0).unwrap();
        let lca = LcaIndex::new(&rooted);
        for &id in rooted.edge_ids() {
            let s = edge_stretch(&g, &rooted, &lca, id);
            assert!((s - 1.0).abs() < 1e-12, "tree edge stretch {s} != 1");
        }
    }

    #[test]
    fn cycle_edge_stretch_is_cycle_resistance_ratio() {
        // Unit 4-cycle with tree = path 0-1-2-3: the closing edge (0,3) has
        // stretch 1.0 * (1+1+1) = 3.
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)]).unwrap();
        let ids: Vec<u32> = (0..3)
            .map(|i| {
                let e = g
                    .edges()
                    .iter()
                    .position(|e| (e.u as usize, e.v as usize) == (i, i + 1));
                e.unwrap() as u32
            })
            .collect();
        let rooted = RootedTree::new(&g, ids, 0).unwrap();
        let lca = LcaIndex::new(&rooted);
        let off = rooted.off_tree_edges(&g);
        assert_eq!(off.len(), 1);
        let s = edge_stretch(&g, &rooted, &lca, off[0]);
        assert!((s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn total_stretch_matches_manual_sum() {
        let g = Graph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (0, 3, 2.0),
                (0, 2, 0.25),
            ],
        )
        .unwrap();
        // Tree = path edges: ids of (0,1), (1,2), (2,3).
        let mut tree_ids = Vec::new();
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            tree_ids.push(g.find_edge(u, v).unwrap());
        }
        let rooted = RootedTree::new(&g, tree_ids, 0).unwrap();
        let stats = stretch_stats(&g, &rooted).unwrap();
        // Off-tree: (0,3) stretch 2*(3) = 6; (0,2) stretch 0.25*2 = 0.5.
        let expected_total = 3.0 + 6.0 + 0.5;
        assert!((stats.total - expected_total).abs() < 1e-12);
        assert!((stats.max - 6.0).abs() < 1e-12);
        assert_eq!(stats.off_tree_edges, 2);
    }

    #[test]
    fn weighted_stretch_uses_resistances() {
        // Heavy off-tree edge across a light tree path has large stretch.
        let g = Graph::from_edges(3, &[(0, 1, 0.1), (1, 2, 0.1), (0, 2, 10.0)]).unwrap();
        let tree_ids = vec![g.find_edge(0, 1).unwrap(), g.find_edge(1, 2).unwrap()];
        let rooted = RootedTree::new(&g, tree_ids, 0).unwrap();
        let lca = LcaIndex::new(&rooted);
        let off = g.find_edge(0, 2).unwrap();
        let s = edge_stretch(&g, &rooted, &lca, off);
        assert!((s - 10.0 * 20.0).abs() < 1e-9);
    }
}
