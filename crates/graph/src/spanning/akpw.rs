use super::count_components;
use crate::{Graph, GraphError, Result, UnionFind};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Tuning parameters for the AKPW-style low-stretch spanning tree.
#[derive(Debug, Clone, PartialEq)]
pub struct AkpwParams {
    /// Growth factor between consecutive edge-length classes (ρ).
    pub class_growth: f64,
    /// Hop radius of the clustering balls grown in each round.
    pub ball_radius: usize,
    /// Seed for the random cluster processing order.
    pub seed: u64,
}

impl Default for AkpwParams {
    fn default() -> Self {
        AkpwParams {
            class_growth: 4.0,
            ball_radius: 2,
            seed: 0x5a55,
        }
    }
}

/// AKPW-style low-stretch spanning tree.
///
/// This is the practical variant of the Alon–Karp–Peleg–West construction
/// used by low-stretch tree implementations: edges are bucketed into
/// geometric *length* classes (`length = 1/weight`), and rounds of
/// bounded-radius BFS clustering are run on the cluster multigraph, each
/// round admitting one more class. Edges crossed while growing a ball enter
/// the tree; balls are then contracted and the next round begins. Short
/// (heavy) edges are therefore captured early inside small clusters, which
/// is what keeps the stretch of the remaining edges low.
///
/// Deterministic for fixed [`AkpwParams`].
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if the graph is not connected.
///
/// # Example
///
/// ```
/// use sass_graph::{Graph, spanning::{akpw_spanning_tree, AkpwParams}};
///
/// # fn main() -> Result<(), sass_graph::GraphError> {
/// let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 4.0), (2, 3, 1.0), (3, 0, 2.0)])?;
/// let tree = akpw_spanning_tree(&g, &AkpwParams::default())?;
/// assert_eq!(tree.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn akpw_spanning_tree(g: &Graph, params: &AkpwParams) -> Result<Vec<u32>> {
    let n = g.n();
    if n == 0 {
        return Ok(Vec::new());
    }
    if g.m() + 1 < n || !crate::traverse::is_connected(g) {
        return Err(GraphError::Disconnected {
            components: count_components(g),
        });
    }
    let rho = params.class_growth.max(1.5);
    let radius = params.ball_radius.max(1);
    let mut rng = StdRng::seed_from_u64(params.seed);

    let lengths: Vec<f64> = g.edges().iter().map(|e| 1.0 / e.weight).collect();
    let len_min = lengths.iter().copied().fold(f64::INFINITY, f64::min);
    let mut limit = len_min * rho;

    let mut uf = UnionFind::new(n);
    let mut tree: Vec<u32> = Vec::with_capacity(n - 1);
    // Edges still crossing clusters, pruned between rounds.
    let mut live: Vec<u32> = (0..g.m() as u32).collect();

    while uf.components() > 1 {
        // Prune intra-cluster edges and split off the active (short) ones.
        live.retain(|&id| {
            let e = g.edge(id as usize);
            uf.find(e.u as usize) != uf.find(e.v as usize)
        });
        let active: Vec<u32> = live
            .iter()
            .copied()
            .filter(|&id| lengths[id as usize] <= limit)
            .collect();
        if active.is_empty() {
            limit *= rho;
            continue;
        }

        // Compact ids for the clusters touched by active edges.
        let mut cluster_id = std::collections::HashMap::new();
        let mut cluster_of = |uf: &mut UnionFind, v: usize, next: &mut usize| -> usize {
            let r = uf.find(v);
            *cluster_id.entry(r).or_insert_with(|| {
                let id = *next;
                *next += 1;
                id
            })
        };
        let mut k = 0usize;
        let mut endpoints: Vec<(usize, usize)> = Vec::with_capacity(active.len());
        for &id in &active {
            let e = g.edge(id as usize);
            let cu = cluster_of(&mut uf, e.u as usize, &mut k);
            let cv = cluster_of(&mut uf, e.v as usize, &mut k);
            endpoints.push((cu, cv));
        }
        // Cluster-graph adjacency.
        let mut deg = vec![0usize; k + 1];
        for &(cu, cv) in &endpoints {
            deg[cu + 1] += 1;
            deg[cv + 1] += 1;
        }
        for i in 0..k {
            deg[i + 1] += deg[i];
        }
        let xadj = deg.clone();
        let mut adj = vec![(0u32, 0u32); 2 * active.len()];
        let mut next_slot = deg;
        for (&(cu, cv), &id) in endpoints.iter().zip(&active) {
            adj[next_slot[cu]] = (cv as u32, id);
            next_slot[cu] += 1;
            adj[next_slot[cv]] = (cu as u32, id);
            next_slot[cv] += 1;
        }

        // Grow bounded-radius balls over clusters in random order.
        let mut order: Vec<u32> = (0..k as u32).collect();
        order.shuffle(&mut rng);
        let mut visited = vec![false; k];
        let mut depth = vec![0u32; k];
        let mut queue: Vec<u32> = Vec::new();
        let mut merges: Vec<u32> = Vec::new(); // tree edges chosen this round
        for &c0 in &order {
            if visited[c0 as usize] {
                continue;
            }
            visited[c0 as usize] = true;
            depth[c0 as usize] = 0;
            queue.clear();
            queue.push(c0);
            let mut head = 0;
            while head < queue.len() {
                let c = queue[head] as usize;
                head += 1;
                if depth[c] as usize >= radius {
                    continue;
                }
                for &(nc, id) in &adj[xadj[c]..xadj[c + 1]] {
                    let nc = nc as usize;
                    if !visited[nc] {
                        visited[nc] = true;
                        depth[nc] = depth[c] + 1;
                        merges.push(id);
                        queue.push(nc as u32);
                    }
                }
            }
        }
        for &id in &merges {
            let e = g.edge(id as usize);
            if uf.union(e.u as usize, e.v as usize) {
                tree.push(id);
            }
        }
        limit *= rho;
    }
    tree.sort_unstable();
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spanning, stretch, RootedTree};

    fn unit_grid(nx: usize, ny: usize) -> Graph {
        let mut edges = Vec::new();
        let id = |x: usize, y: usize| y * nx + x;
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((id(x, y), id(x + 1, y), 1.0));
                }
                if y + 1 < ny {
                    edges.push((id(x, y), id(x, y + 1), 1.0));
                }
            }
        }
        Graph::from_edges(nx * ny, &edges).unwrap()
    }

    #[test]
    fn produces_valid_spanning_tree_on_grid() {
        let g = unit_grid(12, 12);
        let ids = akpw_spanning_tree(&g, &AkpwParams::default()).unwrap();
        assert_eq!(ids.len(), g.n() - 1);
        RootedTree::new(&g, ids, 0).unwrap();
    }

    #[test]
    fn deterministic_for_seed() {
        let g = unit_grid(8, 8);
        let p = AkpwParams::default();
        assert_eq!(
            akpw_spanning_tree(&g, &p).unwrap(),
            akpw_spanning_tree(&g, &p).unwrap()
        );
    }

    #[test]
    fn captures_heavy_edges_early() {
        // A heavy "backbone" path plus light cross edges: AKPW should take
        // (almost) the whole backbone since heavy = short.
        let n = 20;
        let mut edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 100.0)).collect();
        for i in 0..n - 2 {
            edges.push((i, i + 2, 0.01));
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let ids = akpw_spanning_tree(&g, &AkpwParams::default()).unwrap();
        let heavy_kept = ids
            .iter()
            .filter(|&&id| g.edge(id as usize).weight == 100.0)
            .count();
        assert_eq!(
            heavy_kept,
            n - 1,
            "all heavy path edges should be tree edges"
        );
    }

    #[test]
    fn stretch_is_competitive_on_uniform_grid() {
        // On a unit grid the max-weight Kruskal tree is an arbitrary tie-break
        // tree; AKPW's clustered tree should achieve average stretch in the
        // same ballpark or better (allow generous slack — both are heuristics).
        let g = unit_grid(16, 16);
        let akpw = akpw_spanning_tree(&g, &AkpwParams::default()).unwrap();
        let rooted = RootedTree::new(&g, akpw, 0).unwrap();
        let stats = stretch::stretch_stats(&g, &rooted).unwrap();
        let bfs = spanning::bfs_spanning_tree(&g, 0).unwrap();
        let bfs_rooted = RootedTree::new(&g, bfs, 0).unwrap();
        let bfs_stats = stretch::stretch_stats(&g, &bfs_rooted).unwrap();
        assert!(
            stats.mean <= 3.0 * bfs_stats.mean,
            "akpw mean stretch {} vs bfs {}",
            stats.mean,
            bfs_stats.mean
        );
    }
}
