//! Incremental maintenance of the canonical maximum spanning tree.
//!
//! [`DynamicTree`] holds the canonical tree of an evolving graph as a
//! mutable adjacency structure keyed by vertex pairs (pairs survive the
//! edge-id renumbering of [`Graph::apply_edits`](crate::Graph::apply_edits);
//! ids do not) and applies the classic matroid exchange rules per edit:
//!
//! - **offer** (edge inserted, or an existing edge's weight merged up):
//!   a tree edge only gets stronger, so the tree is unchanged; an
//!   off-tree edge is swapped in iff it beats the weakest edge on its
//!   tree path under the canonical order;
//! - **remove** of an off-tree edge: tree unchanged;
//! - **remove** of a tree edge: the strongest edge crossing the severed
//!   cut is swapped in (or the graph is now disconnected).
//!
//! Because the canonical order ("weight descending, `(u, v)` ascending")
//! is *strict*, the maximum spanning tree is unique, and each exchange
//! step lands exactly on the canonical tree of the edited graph — the
//! incremental tree is bit-identical to a from-scratch
//! [`canonical_max_weight_spanning_tree`](super::canonical_max_weight_spanning_tree)
//! after every edit. Proptests in `sass-core` pin this across randomized
//! edit sequences.

use super::kruskal::canonical_beats;
use crate::{Graph, GraphError, Result};

/// A mutable spanning tree tracking the canonical maximum spanning tree
/// of a graph under edge churn.
///
/// Stores tree adjacency as `(neighbor, weight)` lists; all queries and
/// updates are pair-keyed. Each update is `O(n)` (a tree path walk or a
/// component marking pass) plus, for tree-edge removals, one `O(m)` scan
/// over the caller-supplied current edge set.
#[derive(Debug, Clone)]
pub struct DynamicTree {
    n: usize,
    adj: Vec<Vec<(u32, f64)>>,
}

impl DynamicTree {
    /// Wraps an existing spanning tree of `g` (edge ids as produced by the
    /// `spanning` constructors).
    ///
    /// # Panics
    ///
    /// Panics if an id is out of bounds or the ids do not form a tree
    /// (|ids| must be `n − 1` for `n > 0`).
    pub fn new(g: &Graph, tree_ids: &[u32]) -> Self {
        let n = g.n();
        assert_eq!(
            tree_ids.len(),
            n.saturating_sub(1),
            "spanning tree of {n} vertices needs {} edges",
            n.saturating_sub(1)
        );
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for &id in tree_ids {
            let e = g.edge(id as usize);
            adj[e.u as usize].push((e.v, e.weight));
            adj[e.v as usize].push((e.u, e.weight));
        }
        DynamicTree { n, adj }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether `{u, v}` is currently a tree edge.
    pub fn contains(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].iter().any(|&(nbr, _)| nbr == v)
    }

    /// The sorted list of tree edges as canonical `(u, v)` pairs.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.n.saturating_sub(1));
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &(v, _) in nbrs {
                if (u as u32) < v {
                    out.push((u as u32, v));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn unlink(&mut self, u: u32, v: u32) {
        self.adj[u as usize].retain(|&(nbr, _)| nbr != v);
        self.adj[v as usize].retain(|&(nbr, _)| nbr != u);
    }

    fn link(&mut self, u: u32, v: u32, w: f64) {
        self.adj[u as usize].push((v, w));
        self.adj[v as usize].push((u, w));
    }

    /// The tree path from `u` to `v` as a list of `(a, b, w)` tree edges.
    /// `O(n)`: a parent-recording BFS from `u`, then a parent walk from `v`.
    fn path(&self, u: u32, v: u32) -> Vec<(u32, u32, f64)> {
        let mut parent: Vec<u32> = vec![u32::MAX; self.n];
        let mut pw: Vec<f64> = vec![0.0; self.n];
        let mut queue = vec![u];
        parent[u as usize] = u;
        let mut head = 0;
        'bfs: while head < queue.len() {
            let x = queue[head];
            head += 1;
            for &(nbr, w) in &self.adj[x as usize] {
                if parent[nbr as usize] == u32::MAX {
                    parent[nbr as usize] = x;
                    pw[nbr as usize] = w;
                    if nbr == v {
                        break 'bfs;
                    }
                    queue.push(nbr);
                }
            }
        }
        assert_ne!(parent[v as usize], u32::MAX, "tree is not connected");
        let mut path = Vec::new();
        let mut x = v;
        while x != u {
            let p = parent[x as usize];
            path.push((p.min(x), p.max(x), pw[x as usize]));
            x = p;
        }
        path
    }

    /// Reacts to the graph gaining edge `{u, v}` with (merged) weight `w`
    /// — a brand-new edge or an existing one whose weight increased.
    ///
    /// Returns the swap performed, if any: `(dropped_pair, adopted_pair)`.
    /// A tree edge that merged up only has its stored weight refreshed
    /// (a heavier tree edge still wins every cut it wins today).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of bounds or `u == v`.
    pub fn offer(&mut self, u: u32, v: u32, w: f64) -> Option<((u32, u32), (u32, u32))> {
        assert!(u != v, "self loop offered to the tree");
        assert!((u as usize) < self.n && (v as usize) < self.n);
        let (u, v) = (u.min(v), u.max(v));
        if self.contains(u, v) {
            // Weight refresh: update both directions, keep the edge set.
            for &(a, b) in &[(u, v), (v, u)] {
                for slot in &mut self.adj[a as usize] {
                    if slot.0 == b {
                        slot.1 = w;
                    }
                }
            }
            return None;
        }
        // Weakest edge on the tree path under the canonical order.
        let path = self.path(u, v);
        let &(mu, mv, mw) = path
            .iter()
            .reduce(|min, e| {
                if canonical_beats(min.2, min.0, min.1, e.2, e.0, e.1) {
                    e
                } else {
                    min
                }
            })
            .expect("path between distinct vertices is non-empty");
        if canonical_beats(w, u, v, mw, mu, mv) {
            self.unlink(mu, mv);
            self.link(u, v, w);
            Some(((mu, mv), (u, v)))
        } else {
            None
        }
    }

    /// Reacts to the graph losing edge `{u, v}` entirely.
    ///
    /// Off-tree removals leave the tree unchanged (`Ok(None)`). Removing a
    /// tree edge severs the tree into two components; the strongest edge
    /// crossing the cut — found by scanning `current_edges`, the edge set
    /// of the graph *after* the removal — is swapped in and returned as
    /// `Ok(Some(adopted_pair))`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if no edge crosses the cut
    /// (the edit disconnected the graph); the tree is left unchanged.
    pub fn remove<I>(&mut self, u: u32, v: u32, current_edges: I) -> Result<Option<(u32, u32)>>
    where
        I: IntoIterator<Item = (u32, u32, f64)>,
    {
        let (u, v) = (u.min(v), u.max(v));
        let Some(&(_, w_orig)) = self.adj[u as usize].iter().find(|&&(nbr, _)| nbr == v) else {
            return Ok(None);
        };
        self.unlink(u, v);
        // Mark the component containing u.
        let mut side = vec![false; self.n];
        let mut queue = vec![u];
        side[u as usize] = true;
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            for &(nbr, _) in &self.adj[x as usize] {
                if !side[nbr as usize] {
                    side[nbr as usize] = true;
                    queue.push(nbr);
                }
            }
        }
        let mut best: Option<(u32, u32, f64)> = None;
        for (a, b, w) in current_edges {
            if side[a as usize] != side[b as usize] {
                let (a, b) = (a.min(b), a.max(b));
                best = match best {
                    Some((ba, bb, bw)) if canonical_beats(bw, ba, bb, w, a, b) => best,
                    _ => Some((a, b, w)),
                };
            }
        }
        match best {
            Some((a, b, w)) => {
                self.link(a, b, w);
                Ok(Some((a, b)))
            }
            None => {
                self.link(u, v, w_orig); // restore the tree exactly as it was
                Err(GraphError::Disconnected { components: 2 })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spanning::canonical_max_weight_spanning_tree;

    fn pairs_of(g: &Graph, ids: &[u32]) -> Vec<(u32, u32)> {
        let mut p: Vec<(u32, u32)> = ids
            .iter()
            .map(|&id| {
                let e = g.edge(id as usize);
                (e.u, e.v)
            })
            .collect();
        p.sort_unstable();
        p
    }

    #[test]
    fn offer_swaps_in_a_stronger_edge() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]).unwrap();
        let ids = canonical_max_weight_spanning_tree(&g).unwrap();
        let mut dt = DynamicTree::new(&g, &ids);
        // A strong chord 0-3 displaces the weakest path edge (0, 1).
        let swap = dt.offer(0, 3, 10.0).unwrap();
        assert_eq!(swap, ((0, 1), (0, 3)));
        // Oracle: canonical tree of the edited graph.
        let g2 =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 3, 10.0)]).unwrap();
        let oracle = canonical_max_weight_spanning_tree(&g2).unwrap();
        assert_eq!(dt.pairs(), pairs_of(&g2, &oracle));
    }

    #[test]
    fn weak_offer_is_rejected() {
        let g = Graph::from_edges(3, &[(0, 1, 5.0), (1, 2, 5.0)]).unwrap();
        let ids = canonical_max_weight_spanning_tree(&g).unwrap();
        let mut dt = DynamicTree::new(&g, &ids);
        assert!(dt.offer(0, 2, 1.0).is_none());
        assert_eq!(dt.pairs(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn tie_break_matches_canonical_order() {
        // Equal weights everywhere: the chord (0, 2) ties the path edges,
        // beats (1, 2) lexicographically, and loses to (0, 1) — exactly
        // what from-scratch canonical Kruskal picks (ids 0 and 1).
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let ids = canonical_max_weight_spanning_tree(&g).unwrap();
        let mut dt = DynamicTree::new(&g, &ids);
        assert_eq!(dt.offer(0, 2, 1.0), Some(((1, 2), (0, 2))));
        let g2 = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let oracle = canonical_max_weight_spanning_tree(&g2).unwrap();
        assert_eq!(oracle, vec![0, 1]);
        assert_eq!(dt.pairs(), pairs_of(&g2, &oracle));
    }

    #[test]
    fn tree_edge_removal_repairs_across_the_cut() {
        let g =
            Graph::from_edges(4, &[(0, 1, 4.0), (1, 2, 3.0), (2, 3, 2.0), (0, 3, 1.0)]).unwrap();
        let ids = canonical_max_weight_spanning_tree(&g).unwrap();
        let mut dt = DynamicTree::new(&g, &ids);
        assert!(dt.contains(1, 2));
        // Remove tree edge (1, 2); the only crossing edge left is (0, 3).
        let remaining = [(0u32, 1u32, 4.0), (2u32, 3u32, 2.0), (0u32, 3u32, 1.0)];
        let adopted = dt.remove(1, 2, remaining.iter().copied()).unwrap();
        assert_eq!(adopted, Some((0, 3)));
        let g2 = Graph::from_edges(4, &[(0, 1, 4.0), (2, 3, 2.0), (0, 3, 1.0)]).unwrap();
        let oracle = canonical_max_weight_spanning_tree(&g2).unwrap();
        assert_eq!(dt.pairs(), pairs_of(&g2, &oracle));
    }

    #[test]
    fn disconnecting_removal_errors_and_preserves_tree() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let ids = canonical_max_weight_spanning_tree(&g).unwrap();
        let mut dt = DynamicTree::new(&g, &ids);
        let err = dt.remove(0, 1, [(1u32, 2u32, 1.0)].iter().copied());
        assert!(matches!(err, Err(GraphError::Disconnected { .. })));
        assert!(dt.contains(0, 1), "failed removal must not lose the edge");
    }

    #[test]
    fn off_tree_removal_is_a_no_op() {
        let g = Graph::from_edges(3, &[(0, 1, 2.0), (1, 2, 2.0), (0, 2, 1.0)]).unwrap();
        let ids = canonical_max_weight_spanning_tree(&g).unwrap();
        let mut dt = DynamicTree::new(&g, &ids);
        let r = dt
            .remove(0, 2, [(0u32, 1u32, 2.0), (1u32, 2u32, 2.0)].iter().copied())
            .unwrap();
        assert_eq!(r, None);
        assert_eq!(dt.pairs(), vec![(0, 1), (1, 2)]);
    }
}
