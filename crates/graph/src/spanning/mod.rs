//! Spanning-tree extraction algorithms.
//!
//! The sparsifier's backbone is a spanning tree; the paper calls for a
//! low-stretch / "spectrally critical" one. Several constructions are offered:
//!
//! - [`max_weight_spanning_tree`]: Kruskal on descending weight — the
//!   practical default of Feng's GRASS line of work (heavy edges are the
//!   spectrally important ones),
//! - [`canonical_max_weight_spanning_tree`]: the same tree under a
//!   *strict* total order (weight descending, `(u, v)` ascending), which
//!   makes it unique — the backbone contract [`DynamicTree`] maintains
//!   incrementally under edge churn,
//! - [`akpw_spanning_tree`]: an AKPW-style low-stretch tree via repeated
//!   bounded-radius clustering over growing weight classes,
//! - [`bfs_spanning_tree`]: hop-BFS tree, a cheap baseline,
//! - [`random_spanning_tree`]: Wilson's loop-erased random walk (exact
//!   weighted uniform spanning tree), useful for tests and ablations.
//!
//! All functions return host-graph edge ids; wrap them in
//! [`RootedTree`](crate::RootedTree) for path queries.

mod akpw;
mod dynamic;
mod kruskal;
mod wilson;

pub use akpw::{akpw_spanning_tree, AkpwParams};
pub use dynamic::DynamicTree;
pub use kruskal::{
    canonical_max_weight_spanning_tree, max_weight_spanning_tree, min_weight_spanning_tree,
};
pub use wilson::random_spanning_tree;

use crate::{Graph, GraphError, Result};

/// Which spanning-tree construction to use (for config plumbing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum TreeKind {
    /// Kruskal maximum-weight spanning tree.
    MaxWeight,
    /// AKPW-style low-stretch spanning tree (default).
    #[default]
    Akpw,
    /// Breadth-first-search tree from vertex 0.
    Bfs,
    /// Wilson's uniform random spanning tree with the given seed.
    Random(u64),
}

/// Extracts a spanning tree of the requested kind.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if `g` has no spanning tree.
pub fn spanning_tree(g: &Graph, kind: TreeKind) -> Result<Vec<u32>> {
    match kind {
        TreeKind::MaxWeight => max_weight_spanning_tree(g),
        TreeKind::Akpw => akpw_spanning_tree(g, &AkpwParams::default()),
        TreeKind::Bfs => bfs_spanning_tree(g, 0),
        TreeKind::Random(seed) => random_spanning_tree(g, seed),
    }
}

/// Breadth-first spanning tree from `root`.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if the graph is not connected, or
/// [`GraphError::VertexOutOfBounds`] for a bad root.
pub fn bfs_spanning_tree(g: &Graph, root: usize) -> Result<Vec<u32>> {
    if g.n() == 0 {
        return Ok(Vec::new());
    }
    if root >= g.n() {
        return Err(GraphError::VertexOutOfBounds {
            vertex: root,
            n: g.n(),
        });
    }
    let mut visited = vec![false; g.n()];
    let mut queue = vec![root];
    visited[root] = true;
    let mut head = 0;
    let mut tree = Vec::with_capacity(g.n().saturating_sub(1));
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for (nbr, id, _) in g.neighbors(u) {
            let v = nbr as usize;
            if !visited[v] {
                visited[v] = true;
                tree.push(id);
                queue.push(v);
            }
        }
    }
    if queue.len() != g.n() {
        return Err(GraphError::Disconnected {
            components: count_components(g),
        });
    }
    Ok(tree)
}

pub(crate) fn count_components(g: &Graph) -> usize {
    crate::traverse::connected_components(g).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RootedTree;

    fn cycle(n: usize) -> Graph {
        let mut edges: Vec<(usize, usize, f64)> =
            (0..n - 1).map(|i| (i, i + 1, 1.0 + i as f64)).collect();
        edges.push((n - 1, 0, 0.5));
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn every_kind_yields_valid_spanning_tree() {
        let g = cycle(12);
        for kind in [
            TreeKind::MaxWeight,
            TreeKind::Akpw,
            TreeKind::Bfs,
            TreeKind::Random(42),
        ] {
            let ids = spanning_tree(&g, kind).unwrap();
            assert_eq!(ids.len(), g.n() - 1, "{kind:?}");
            // RootedTree::new validates spanning-ness.
            RootedTree::new(&g, ids, 0).unwrap();
        }
    }

    #[test]
    fn bfs_tree_from_any_root() {
        let g = cycle(7);
        for root in 0..7 {
            let ids = bfs_spanning_tree(&g, root).unwrap();
            RootedTree::new(&g, ids, root).unwrap();
        }
    }

    #[test]
    fn disconnected_is_rejected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        for kind in [
            TreeKind::MaxWeight,
            TreeKind::Akpw,
            TreeKind::Bfs,
            TreeKind::Random(1),
        ] {
            assert!(
                matches!(
                    spanning_tree(&g, kind),
                    Err(GraphError::Disconnected { .. })
                ),
                "{kind:?} should reject a disconnected graph"
            );
        }
    }

    #[test]
    fn empty_graph_gives_empty_tree() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(spanning_tree(&g, TreeKind::Bfs).unwrap().is_empty());
    }
}
