use super::count_components;
use crate::{Graph, GraphError, Result, UnionFind};

/// Kruskal spanning tree taking edges in the given weight order.
fn kruskal(g: &Graph, descending: bool) -> Result<Vec<u32>> {
    if g.n() == 0 {
        return Ok(Vec::new());
    }
    let mut ids: Vec<u32> = (0..g.m() as u32).collect();
    if descending {
        ids.sort_unstable_by(|&a, &b| {
            g.edge(b as usize)
                .weight
                .partial_cmp(&g.edge(a as usize).weight)
                .expect("edge weights are finite")
        });
    } else {
        ids.sort_unstable_by(|&a, &b| {
            g.edge(a as usize)
                .weight
                .partial_cmp(&g.edge(b as usize).weight)
                .expect("edge weights are finite")
        });
    }
    let mut uf = UnionFind::new(g.n());
    let mut tree = Vec::with_capacity(g.n() - 1);
    for id in ids {
        let e = g.edge(id as usize);
        if uf.union(e.u as usize, e.v as usize) {
            tree.push(id);
            if tree.len() == g.n() - 1 {
                break;
            }
        }
    }
    if tree.len() != g.n() - 1 {
        return Err(GraphError::Disconnected {
            components: count_components(g),
        });
    }
    tree.sort_unstable();
    Ok(tree)
}

/// Maximum-weight spanning tree (Kruskal, descending weights).
///
/// Heavy edges are the spectrally critical ones for Laplacian pencils, so
/// this is the practical "spectrally critical tree" backbone used by the
/// GRASS family of sparsifiers.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if `g` has no spanning tree.
///
/// # Example
///
/// ```
/// use sass_graph::{Graph, spanning};
///
/// # fn main() -> Result<(), sass_graph::GraphError> {
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 5.0), (0, 2, 5.0)])?;
/// let tree = spanning::max_weight_spanning_tree(&g)?;
/// // The weight-1 edge is excluded.
/// assert!(!tree.contains(&g.find_edge(0, 1).unwrap()));
/// # Ok(())
/// # }
/// ```
pub fn max_weight_spanning_tree(g: &Graph) -> Result<Vec<u32>> {
    kruskal(g, true)
}

/// Minimum-weight spanning tree (Kruskal, ascending weights).
///
/// Provided for ablations; a *bad* backbone for spectral sparsification.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if `g` has no spanning tree.
pub fn min_weight_spanning_tree(g: &Graph) -> Result<Vec<u32>> {
    kruskal(g, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_tree_prefers_heavy_edges() {
        // Triangle with one light edge: max tree keeps the two heavy ones.
        let g = Graph::from_edges(3, &[(0, 1, 0.1), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let t = max_weight_spanning_tree(&g).unwrap();
        let light = g.find_edge(0, 1).unwrap();
        assert!(!t.contains(&light));
        let tmin = min_weight_spanning_tree(&g).unwrap();
        assert!(tmin.contains(&light));
    }

    #[test]
    fn tree_weight_is_maximal() {
        // Brute-force check on a small graph: compare against all spanning
        // trees enumerated by edge subsets.
        let g = Graph::from_edges(
            4,
            &[
                (0, 1, 4.0),
                (1, 2, 3.0),
                (2, 3, 2.0),
                (3, 0, 1.0),
                (0, 2, 5.0),
                (1, 3, 0.5),
            ],
        )
        .unwrap();
        let best = max_weight_spanning_tree(&g).unwrap();
        let best_w: f64 = best.iter().map(|&id| g.edge(id as usize).weight).sum();
        let m = g.m();
        let mut brute_best = f64::NEG_INFINITY;
        for mask in 0u32..(1 << m) {
            if mask.count_ones() as usize != g.n() - 1 {
                continue;
            }
            let ids: Vec<u32> = (0..m as u32).filter(|&i| mask & (1 << i) != 0).collect();
            let mut uf = UnionFind::new(g.n());
            let mut ok = true;
            for &id in &ids {
                let e = g.edge(id as usize);
                if !uf.union(e.u as usize, e.v as usize) {
                    ok = false;
                    break;
                }
            }
            if ok && uf.components() == 1 {
                let w: f64 = ids.iter().map(|&id| g.edge(id as usize).weight).sum();
                brute_best = brute_best.max(w);
            }
        }
        assert!((best_w - brute_best).abs() < 1e-12);
    }
}
