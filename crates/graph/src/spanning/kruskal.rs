use super::count_components;
use crate::{Graph, GraphError, Result, UnionFind};

/// Kruskal spanning tree taking edges in the given weight order.
fn kruskal(g: &Graph, descending: bool) -> Result<Vec<u32>> {
    if g.n() == 0 {
        return Ok(Vec::new());
    }
    let mut ids: Vec<u32> = (0..g.m() as u32).collect();
    if descending {
        ids.sort_unstable_by(|&a, &b| {
            g.edge(b as usize)
                .weight
                .partial_cmp(&g.edge(a as usize).weight)
                .expect("edge weights are finite")
        });
    } else {
        ids.sort_unstable_by(|&a, &b| {
            g.edge(a as usize)
                .weight
                .partial_cmp(&g.edge(b as usize).weight)
                .expect("edge weights are finite")
        });
    }
    let mut uf = UnionFind::new(g.n());
    let mut tree = Vec::with_capacity(g.n() - 1);
    for id in ids {
        let e = g.edge(id as usize);
        if uf.union(e.u as usize, e.v as usize) {
            tree.push(id);
            if tree.len() == g.n() - 1 {
                break;
            }
        }
    }
    if tree.len() != g.n() - 1 {
        return Err(GraphError::Disconnected {
            components: count_components(g),
        });
    }
    tree.sort_unstable();
    Ok(tree)
}

/// Maximum-weight spanning tree (Kruskal, descending weights).
///
/// Heavy edges are the spectrally critical ones for Laplacian pencils, so
/// this is the practical "spectrally critical tree" backbone used by the
/// GRASS family of sparsifiers.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if `g` has no spanning tree.
///
/// # Example
///
/// ```
/// use sass_graph::{Graph, spanning};
///
/// # fn main() -> Result<(), sass_graph::GraphError> {
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 5.0), (0, 2, 5.0)])?;
/// let tree = spanning::max_weight_spanning_tree(&g)?;
/// // The weight-1 edge is excluded.
/// assert!(!tree.contains(&g.find_edge(0, 1).unwrap()));
/// # Ok(())
/// # }
/// ```
pub fn max_weight_spanning_tree(g: &Graph) -> Result<Vec<u32>> {
    kruskal(g, true)
}

/// Minimum-weight spanning tree (Kruskal, ascending weights).
///
/// Provided for ablations; a *bad* backbone for spectral sparsification.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if `g` has no spanning tree.
pub fn min_weight_spanning_tree(g: &Graph) -> Result<Vec<u32>> {
    kruskal(g, false)
}

/// The strict total order behind the canonical tree: heavier wins, and
/// weight ties break toward the lexicographically smaller `(u, v)` pair.
/// Because [`Graph`] stores its edge list sorted by `(u, v)`, ascending
/// edge id *is* ascending `(u, v)` — so the order is stable across graph
/// rebuilds that renumber edge ids.
pub(crate) fn canonical_beats(wa: f64, ua: u32, va: u32, wb: f64, ub: u32, vb: u32) -> bool {
    match wa.total_cmp(&wb) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => (ua, va) < (ub, vb),
    }
}

/// Canonical maximum-weight spanning tree: Kruskal under the *strict*
/// total order "weight descending, then `(u, v)` ascending".
///
/// [`max_weight_spanning_tree`] leaves weight ties in unspecified order,
/// which is fine for one-shot sparsification but fatal for incremental
/// maintenance: the tree produced by exchange rules after an edit must be
/// bit-identical to the tree a from-scratch run would pick. A strict
/// total order makes the maximum spanning tree *unique*, so both
/// procedures land on the same edge set by construction. The tie-break is
/// a function of endpoints, not edge ids, so it survives the edge-id
/// renumbering of [`Graph::apply_edits`](crate::Graph::apply_edits).
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if `g` has no spanning tree.
pub fn canonical_max_weight_spanning_tree(g: &Graph) -> Result<Vec<u32>> {
    if g.n() == 0 {
        return Ok(Vec::new());
    }
    let mut ids: Vec<u32> = (0..g.m() as u32).collect();
    // Weight descending, id ascending: ids are already ascending, so a
    // stable sort on descending weight alone realizes the canonical order.
    ids.sort_by(|&a, &b| {
        g.edge(b as usize)
            .weight
            .total_cmp(&g.edge(a as usize).weight)
    });
    let mut uf = UnionFind::new(g.n());
    let mut tree = Vec::with_capacity(g.n() - 1);
    for id in ids {
        let e = g.edge(id as usize);
        if uf.union(e.u as usize, e.v as usize) {
            tree.push(id);
            if tree.len() == g.n() - 1 {
                break;
            }
        }
    }
    if tree.len() != g.n() - 1 {
        return Err(GraphError::Disconnected {
            components: count_components(g),
        });
    }
    tree.sort_unstable();
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_tree_prefers_heavy_edges() {
        // Triangle with one light edge: max tree keeps the two heavy ones.
        let g = Graph::from_edges(3, &[(0, 1, 0.1), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let t = max_weight_spanning_tree(&g).unwrap();
        let light = g.find_edge(0, 1).unwrap();
        assert!(!t.contains(&light));
        let tmin = min_weight_spanning_tree(&g).unwrap();
        assert!(tmin.contains(&light));
    }

    #[test]
    fn canonical_tree_is_deterministic_under_ties() {
        // Four vertices in a cycle of equal weights: the unordered Kruskal
        // may pick any 3 of the 4 edges; the canonical tree must always
        // pick the lexicographically smallest ids.
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)]).unwrap();
        let t = canonical_max_weight_spanning_tree(&g).unwrap();
        assert_eq!(t, vec![0, 1, 2]);
        // Idempotent across calls.
        assert_eq!(t, canonical_max_weight_spanning_tree(&g).unwrap());
    }

    #[test]
    fn canonical_tree_weight_matches_unordered_kruskal() {
        let g = Graph::from_edges(
            5,
            &[
                (0, 1, 2.0),
                (1, 2, 2.0),
                (2, 3, 5.0),
                (3, 4, 1.0),
                (0, 4, 2.0),
                (1, 3, 2.0),
            ],
        )
        .unwrap();
        let w = |ids: &[u32]| -> f64 { ids.iter().map(|&id| g.edge(id as usize).weight).sum() };
        let a = max_weight_spanning_tree(&g).unwrap();
        let b = canonical_max_weight_spanning_tree(&g).unwrap();
        assert!((w(&a) - w(&b)).abs() < 1e-12);
    }

    #[test]
    fn tree_weight_is_maximal() {
        // Brute-force check on a small graph: compare against all spanning
        // trees enumerated by edge subsets.
        let g = Graph::from_edges(
            4,
            &[
                (0, 1, 4.0),
                (1, 2, 3.0),
                (2, 3, 2.0),
                (3, 0, 1.0),
                (0, 2, 5.0),
                (1, 3, 0.5),
            ],
        )
        .unwrap();
        let best = max_weight_spanning_tree(&g).unwrap();
        let best_w: f64 = best.iter().map(|&id| g.edge(id as usize).weight).sum();
        let m = g.m();
        let mut brute_best = f64::NEG_INFINITY;
        for mask in 0u32..(1 << m) {
            if mask.count_ones() as usize != g.n() - 1 {
                continue;
            }
            let ids: Vec<u32> = (0..m as u32).filter(|&i| mask & (1 << i) != 0).collect();
            let mut uf = UnionFind::new(g.n());
            let mut ok = true;
            for &id in &ids {
                let e = g.edge(id as usize);
                if !uf.union(e.u as usize, e.v as usize) {
                    ok = false;
                    break;
                }
            }
            if ok && uf.components() == 1 {
                let w: f64 = ids.iter().map(|&id| g.edge(id as usize).weight).sum();
                brute_best = brute_best.max(w);
            }
        }
        assert!((best_w - brute_best).abs() < 1e-12);
    }
}
