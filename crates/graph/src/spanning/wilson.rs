use super::count_components;
use crate::{Graph, GraphError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wilson's algorithm: an exact weighted-uniform random spanning tree via
/// loop-erased random walks.
///
/// Each walk step moves to a neighbor with probability proportional to the
/// edge weight, so the returned tree is distributed as a weighted uniform
/// spanning tree (probability ∝ product of its edge weights). Deterministic
/// for a fixed `seed`.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if the graph is not connected.
///
/// # Example
///
/// ```
/// use sass_graph::{Graph, spanning};
///
/// # fn main() -> Result<(), sass_graph::GraphError> {
/// let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])?;
/// let tree = spanning::random_spanning_tree(&g, 7)?;
/// assert_eq!(tree.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn random_spanning_tree(g: &Graph, seed: u64) -> Result<Vec<u32>> {
    let n = g.n();
    if n == 0 {
        return Ok(Vec::new());
    }
    if !crate::traverse::is_connected(g) {
        return Err(GraphError::Disconnected {
            components: count_components(g),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Per-vertex cumulative weights for O(log deg) neighbor sampling.
    let cum: Vec<Vec<f64>> = (0..n)
        .map(|v| {
            let mut acc = 0.0;
            g.neighbors(v)
                .map(|(_, _, w)| {
                    acc += w;
                    acc
                })
                .collect()
        })
        .collect();

    let mut in_tree = vec![false; n];
    // next[v] = successor of v on the current walk (edge id recorded too).
    let mut next: Vec<(u32, u32)> = vec![(u32::MAX, u32::MAX); n];
    let root = 0usize;
    in_tree[root] = true;
    let mut tree = Vec::with_capacity(n - 1);

    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        // Random walk until hitting the tree, remembering only the last
        // exit from each vertex (implicit loop erasure).
        let mut u = start;
        while !in_tree[u] {
            let c = &cum[u];
            let total = *c.last().expect("connected graph has no isolated vertex");
            let x = rng.gen_range(0.0..total);
            let k = c.partition_point(|&acc| acc <= x);
            let (nbr, id, _) = g
                .neighbors(u)
                .nth(k)
                .expect("sampled neighbor index in range");
            next[u] = (nbr, id);
            u = nbr as usize;
        }
        // Retrace the loop-erased path and attach it to the tree.
        let mut v = start;
        while !in_tree[v] {
            in_tree[v] = true;
            let (succ, id) = next[v];
            tree.push(id);
            v = succ as usize;
        }
    }
    tree.sort_unstable();
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RootedTree;
    use std::collections::HashMap;

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (5, 0, 1.0),
                (0, 3, 1.0),
            ],
        )
        .unwrap();
        let a = random_spanning_tree(&g, 99).unwrap();
        let b = random_spanning_tree(&g, 99).unwrap();
        assert_eq!(a, b);
        RootedTree::new(&g, a, 0).unwrap();
    }

    #[test]
    fn different_seeds_explore_different_trees() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]).unwrap();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..32 {
            seen.insert(random_spanning_tree(&g, seed).unwrap());
        }
        // The 4-cycle has exactly 4 spanning trees; a uniform sampler should
        // find more than one across 32 seeds.
        assert!(seen.len() > 1);
    }

    #[test]
    fn distribution_roughly_uniform_on_unit_cycle() {
        // All 4 spanning trees of the unit 4-cycle are equally likely.
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]).unwrap();
        let mut counts: HashMap<Vec<u32>, usize> = HashMap::new();
        let trials = 2000;
        for seed in 0..trials {
            *counts
                .entry(random_spanning_tree(&g, seed).unwrap())
                .or_default() += 1;
        }
        assert_eq!(counts.len(), 4);
        for &c in counts.values() {
            let p = c as f64 / trials as f64;
            assert!(
                (p - 0.25).abs() < 0.05,
                "tree probability {p} far from 0.25"
            );
        }
    }

    #[test]
    fn heavy_edges_are_favored() {
        // Triangle with one heavy edge: trees containing it appear more often.
        let g = Graph::from_edges(3, &[(0, 1, 10.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let heavy = g.find_edge(0, 1).unwrap();
        let mut with_heavy = 0;
        let trials = 500;
        for seed in 0..trials {
            if random_spanning_tree(&g, seed).unwrap().contains(&heavy) {
                with_heavy += 1;
            }
        }
        // Weighted UST theory: P(tree ∋ heavy) = (10+10)/(10+10+1) ≈ 0.95.
        assert!(with_heavy as f64 / trials as f64 > 0.85);
    }
}
