use crate::{GraphError, Result};
use sass_sparse::{CooMatrix, CsrMatrix, SparseBackend};

/// A weighted undirected edge with canonical endpoint order `u < v`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: u32,
    /// Larger endpoint.
    pub v: u32,
    /// Positive edge weight (conductance in the circuit analogy).
    pub weight: f64,
}

impl Edge {
    /// The endpoint opposite to `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: u32) -> u32 {
        if x == self.u {
            self.v
        } else {
            assert_eq!(x, self.v, "vertex {x} is not an endpoint");
            self.u
        }
    }
}

/// Incremental builder for [`Graph`].
///
/// Self-loops are silently dropped; parallel edges are merged by summing
/// their weights at [`GraphBuilder::build`] time (the natural behaviour for
/// conductances in parallel).
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32, f64)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with edge capacity reserved.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    ///
    /// Self-loops (`u == v`) are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of bounds or `w` is not strictly
    /// positive and finite. Use [`GraphBuilder::try_add_edge`] for a
    /// fallible variant.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) {
        self.try_add_edge(u, v, w).expect("invalid edge");
    }

    /// Adds the undirected edge `{u, v}` with weight `w`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfBounds`] or
    /// [`GraphError::NonPositiveWeight`] (non-finite weights included).
    pub fn try_add_edge(&mut self, u: usize, v: usize, w: f64) -> Result<()> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfBounds {
                vertex: u,
                n: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfBounds {
                vertex: v,
                n: self.n,
            });
        }
        // The negated comparison is deliberate: it rejects NaN as well.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(w > 0.0) || !w.is_finite() {
            return Err(GraphError::NonPositiveWeight { u, v, weight: w });
        }
        if u == v {
            return Ok(());
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a as u32, b as u32, w));
        Ok(())
    }

    /// Finalizes the builder into an immutable [`Graph`], merging parallel
    /// edges by weight summation.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable_by_key(|a| (a.0, a.1));
        let mut edges: Vec<Edge> = Vec::with_capacity(self.edges.len());
        for (u, v, w) in self.edges.drain(..) {
            if let Some(last) = edges.last_mut() {
                if last.u == u && last.v == v {
                    last.weight += w;
                    continue;
                }
            }
            edges.push(Edge { u, v, weight: w });
        }
        Graph::from_sorted_edges(self.n, edges)
    }
}

/// One edge mutation for [`Graph::apply_edits`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphEdit {
    /// Insert edge `{u, v}` with weight `w`. If the edge already exists
    /// the weights merge by summation — the same parallel-conductance rule
    /// as [`GraphBuilder::build`].
    AddEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
        /// Positive, finite weight to add.
        weight: f64,
    },
    /// Remove edge `{u, v}` entirely (whatever its merged weight).
    RemoveEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
}

/// Mapping from a graph's edge ids to the ids of its edited successor,
/// returned by [`Graph::apply_edits`].
///
/// Edge ids index the canonical sorted edge list, so any structural edit
/// renumbers the ids of every edge sorting after it; callers holding
/// per-edge caches (heat scores, tree memberships) use this map to carry
/// them across the rebuild.
#[derive(Debug, Clone)]
pub struct EditMap {
    old_to_new: Vec<Option<u32>>,
    new_m: usize,
}

impl EditMap {
    /// The new id of old edge `id`, or `None` if the edit removed it.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds for the pre-edit graph.
    pub fn new_id(&self, id: u32) -> Option<u32> {
        self.old_to_new[id as usize]
    }

    /// Number of edges in the pre-edit graph.
    pub fn old_m(&self) -> usize {
        self.old_to_new.len()
    }

    /// Number of edges in the post-edit graph.
    pub fn new_m(&self) -> usize {
        self.new_m
    }
}

/// An immutable weighted undirected graph.
///
/// Stores a canonical edge list (endpoints ordered, sorted, parallel edges
/// merged) plus a CSR adjacency structure mapping each vertex to its
/// incident `(neighbor, edge id)` pairs. Edge ids index into
/// [`Graph::edges`] and are the currency used by spanning-tree and
/// sparsification code throughout the workspace.
///
/// # Example
///
/// ```
/// use sass_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1, 2.0);
/// b.add_edge(1, 2, 3.0);
/// let g = b.build();
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.weighted_degree(1), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    xadj: Vec<usize>,
    /// `(neighbor, edge id)` pairs, grouped by vertex.
    adj: Vec<(u32, u32)>,
}

impl Graph {
    /// Builds a graph from canonical (sorted, deduplicated) edges.
    fn from_sorted_edges(n: usize, edges: Vec<Edge>) -> Graph {
        let mut deg = vec![0usize; n + 1];
        for e in &edges {
            deg[e.u as usize + 1] += 1;
            deg[e.v as usize + 1] += 1;
        }
        for i in 0..n {
            deg[i + 1] += deg[i];
        }
        let xadj = deg.clone();
        let mut adj = vec![(0u32, 0u32); 2 * edges.len()];
        let mut next = deg;
        for (id, e) in edges.iter().enumerate() {
            adj[next[e.u as usize]] = (e.v, id as u32);
            next[e.u as usize] += 1;
            adj[next[e.v as usize]] = (e.u, id as u32);
            next[e.v as usize] += 1;
        }
        Graph {
            n,
            edges,
            xadj,
            adj,
        }
    }

    /// Builds a graph directly from an edge list (convenience constructor).
    ///
    /// # Errors
    ///
    /// Same as [`GraphBuilder::try_add_edge`].
    pub fn from_edges(n: usize, list: &[(usize, usize, f64)]) -> Result<Graph> {
        let mut b = GraphBuilder::with_capacity(n, list.len());
        for &(u, v, w) in list {
            b.try_add_edge(u, v, w)?;
        }
        Ok(b.build())
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of (merged, undirected) edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The canonical edge list, sorted by `(u, v)`.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= m()`.
    pub fn edge(&self, id: usize) -> Edge {
        self.edges[id]
    }

    /// Iterates over `(neighbor, edge id, weight)` for vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n()`.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        self.adj[self.xadj[v]..self.xadj[v + 1]]
            .iter()
            .map(move |&(nbr, id)| (nbr, id, self.edges[id as usize].weight))
    }

    /// Unweighted degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n()`.
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Weighted degree of `v` — the Laplacian diagonal entry `L(v, v)`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n()`.
    pub fn weighted_degree(&self, v: usize) -> f64 {
        self.adj[self.xadj[v]..self.xadj[v + 1]]
            .iter()
            .map(|&(_, id)| self.edges[id as usize].weight)
            .sum()
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Looks up the id of edge `{u, v}`, if present.
    pub fn find_edge(&self, u: usize, v: usize) -> Option<u32> {
        if u >= self.n || v >= self.n || u == v {
            return None;
        }
        // Scan the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[self.xadj[a]..self.xadj[a + 1]]
            .iter()
            .find(|&&(nbr, _)| nbr as usize == b)
            .map(|&(_, id)| id)
    }

    /// The graph Laplacian `L = D − W` as a CSR matrix.
    pub fn laplacian(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.n, self.n, self.n + 2 * self.m());
        for v in 0..self.n {
            let d = self.weighted_degree(v);
            coo.push(v, v, d);
        }
        for e in &self.edges {
            coo.push(e.u as usize, e.v as usize, -e.weight);
            coo.push(e.v as usize, e.u as usize, -e.weight);
        }
        coo.to_csr()
    }

    /// The Laplacian of the subgraph keeping only the edges with the
    /// given ids, on the full vertex set — entry-for-entry (and bit for
    /// bit) equal to `subgraph_with_edges(ids).laplacian()`, assembled
    /// directly in CSR form without building the intermediate graph or a
    /// COO staging buffer.
    ///
    /// # Panics
    ///
    /// Panics if `edge_ids` is not sorted and duplicate-free, or if an id
    /// is out of bounds.
    pub fn laplacian_of_edges(&self, edge_ids: &[u32]) -> CsrMatrix {
        assert!(
            edge_ids.windows(2).all(|w| w[0] < w[1]),
            "edge ids must be sorted and unique"
        );
        let n = self.n;
        // Row k holds its diagonal plus one entry per selected incident
        // edge; `lo[k]` counts the incident edges whose other endpoint is
        // smaller than k, which is where the diagonal slot sits in the
        // column-sorted row.
        let mut count = vec![1usize; n];
        let mut lo = vec![0usize; n];
        for &id in edge_ids {
            let e = self.edges[id as usize];
            count[e.u as usize] += 1;
            count[e.v as usize] += 1;
            lo[e.v as usize] += 1;
        }
        let mut indptr = Vec::with_capacity(n + 1);
        indptr.push(0usize);
        let mut total = 0usize;
        for &c in &count {
            total += c;
            indptr.push(total);
        }
        let mut indices = vec![0u32; total];
        let mut data = vec![0.0f64; total];
        // Edge ids ascend in (u, v) pair order, so each row's smaller
        // neighbors arrive ascending before its larger neighbors do —
        // two cursors per row produce column-sorted rows directly. The
        // diagonal accumulates in the same incident-edge order the
        // subgraph's `weighted_degree` sums in, keeping bit-equality.
        let mut diag = vec![0.0f64; n];
        let mut next_lo: Vec<usize> = indptr[..n].to_vec();
        let mut next_hi: Vec<usize> = (0..n).map(|k| indptr[k] + lo[k] + 1).collect();
        for &id in edge_ids {
            let e = self.edges[id as usize];
            let (u, v) = (e.u as usize, e.v as usize);
            indices[next_hi[u]] = e.v;
            data[next_hi[u]] = -e.weight;
            next_hi[u] += 1;
            indices[next_lo[v]] = e.u;
            data[next_lo[v]] = -e.weight;
            next_lo[v] += 1;
            diag[u] += e.weight;
            diag[v] += e.weight;
        }
        for k in 0..n {
            let p = indptr[k] + lo[k];
            indices[p] = k as u32;
            data[p] = diag[k];
        }
        CsrMatrix::from_raw_parts(n, n, indptr, indices, data)
    }

    /// The symmetric normalized Laplacian `I − D^(−1/2) W D^(−1/2)` as a
    /// CSR matrix — the operator behind normalized spectral clustering.
    ///
    /// Isolated vertices contribute a diagonal 0 (their row is all zero).
    pub fn normalized_laplacian(&self) -> CsrMatrix {
        let inv_sqrt: Vec<f64> = (0..self.n)
            .map(|v| {
                let d = self.weighted_degree(v);
                if d > 0.0 {
                    1.0 / d.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        let mut coo = CooMatrix::with_capacity(self.n, self.n, self.n + 2 * self.m());
        for (v, &s) in inv_sqrt.iter().enumerate() {
            if s > 0.0 {
                coo.push(v, v, 1.0);
            }
        }
        for e in &self.edges {
            let w = -e.weight * inv_sqrt[e.u as usize] * inv_sqrt[e.v as usize];
            coo.push(e.u as usize, e.v as usize, w);
            coo.push(e.v as usize, e.u as usize, w);
        }
        coo.to_csr()
    }

    /// The graph Laplacian in any storage backend: `g.laplacian_in::<B>()`
    /// assembles the canonical `f64` CSR Laplacian and converts it once
    /// ([`SparseBackend::from_csr_f64`] — for `f32` backends that
    /// conversion is the single rounding step).
    ///
    /// # Example
    ///
    /// ```
    /// use sass_graph::Graph;
    /// use sass_sparse::{BcsrMatrix, CscMatrix, SparseBackend};
    ///
    /// # fn main() -> Result<(), sass_graph::GraphError> {
    /// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)])?;
    /// let csc: CscMatrix = g.laplacian_in();
    /// let bcsr: BcsrMatrix = g.laplacian_in();
    /// // All backends produce bit-identical products in f64.
    /// let x = [1.0, -0.5, 2.0];
    /// assert_eq!(csc.mul_vec(&x), g.laplacian().mul_vec(&x));
    /// assert_eq!(bcsr.mul_vec(&x), g.laplacian().mul_vec(&x));
    /// # Ok(())
    /// # }
    /// ```
    pub fn laplacian_in<B: SparseBackend>(&self) -> B {
        B::from_csr_f64(&self.laplacian())
    }

    /// The weighted adjacency matrix `W` in any storage backend — the
    /// backend-generic sibling of [`Graph::adjacency_matrix`], converting
    /// through the canonical `f64` CSR assembly like
    /// [`Graph::laplacian_in`].
    pub fn adjacency_matrix_in<B: SparseBackend>(&self) -> B {
        B::from_csr_f64(&self.adjacency_matrix())
    }

    /// The weighted adjacency matrix `W` as a CSR matrix.
    pub fn adjacency_matrix(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.n, self.n, 2 * self.m());
        for e in &self.edges {
            coo.push(e.u as usize, e.v as usize, e.weight);
            coo.push(e.v as usize, e.u as usize, e.weight);
        }
        coo.to_csr()
    }

    /// Builds the subgraph on the same vertex set containing only the edges
    /// with the given ids.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of bounds.
    pub fn subgraph_with_edges<I: IntoIterator<Item = u32>>(&self, edge_ids: I) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        for id in edge_ids {
            let e = self.edges[id as usize];
            b.add_edge(e.u as usize, e.v as usize, e.weight);
        }
        b.build()
    }

    /// The subgraph induced by a vertex subset: vertices are renumbered
    /// `0..vertices.len()` in the given order; edges with both endpoints in
    /// the subset survive. Returns the subgraph and the mapping from new
    /// vertex ids back to the originals.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` contains an out-of-range or duplicate id.
    pub fn induced_subgraph(&self, vertices: &[usize]) -> (Graph, Vec<usize>) {
        let mut new_of_old = vec![usize::MAX; self.n];
        for (new, &old) in vertices.iter().enumerate() {
            assert!(old < self.n, "vertex {old} out of range");
            assert_eq!(new_of_old[old], usize::MAX, "duplicate vertex {old}");
            new_of_old[old] = new;
        }
        let mut b = GraphBuilder::new(vertices.len());
        for e in &self.edges {
            let (u, v) = (new_of_old[e.u as usize], new_of_old[e.v as usize]);
            if u != usize::MAX && v != usize::MAX {
                b.add_edge(u, v, e.weight);
            }
        }
        (b.build(), vertices.to_vec())
    }

    /// Interprets a symmetric SDD matrix as a graph Laplacian, following the
    /// paper's conversion rule: each strictly-lower-triangular nonzero
    /// becomes an edge whose weight is the entry's absolute value; the
    /// diagonal is ignored.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotLaplacian`] if the matrix is not square.
    pub fn from_sdd_matrix(a: &CsrMatrix) -> Result<Graph> {
        if a.nrows() != a.ncols() {
            return Err(GraphError::NotLaplacian {
                context: format!("matrix is {}x{}", a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            let (cols, vals) = a.row(i);
            for (c, v) in cols.iter().zip(vals) {
                let j = *c as usize;
                if j < i && *v != 0.0 {
                    b.add_edge(i, j, v.abs());
                }
            }
        }
        Ok(b.build())
    }

    /// Applies a batch of edge mutations, returning the edited graph and
    /// the old→new edge-id mapping.
    ///
    /// Edits apply sequentially against the evolving edge-weight state:
    /// adding an existing edge merges weights by summation (the
    /// parallel-conductance rule), removing deletes the merged edge
    /// entirely, and a remove-then-add sequence behaves as a weight
    /// replacement. Only the touched pairs are tracked individually; the
    /// graph is rebuilt by one merge pass over the sorted edge list, so a
    /// `k`-edit batch costs `O(m + k log k)`, not `k` rebuilds.
    ///
    /// # Errors
    ///
    /// - [`GraphError::VertexOutOfBounds`] for a bad endpoint,
    /// - [`GraphError::NonPositiveWeight`] for a non-positive/non-finite
    ///   added weight,
    /// - [`GraphError::InvalidParameter`] for a self-loop edit or removal
    ///   of an absent edge.
    ///
    /// On error the original graph is untouched (this method takes
    /// `&self`) and no partial batch is observable.
    pub fn apply_edits(&self, edits: &[GraphEdit]) -> Result<(Graph, EditMap)> {
        use std::collections::BTreeMap;
        // Sequential edit state for the touched pairs only: `Some(w)` is
        // the pair's merged weight so far, `None` a removal. Untouched
        // pairs never enter the overlay.
        let mut overlay: BTreeMap<(u32, u32), Option<f64>> = BTreeMap::new();
        for edit in edits {
            let (u, v) = match *edit {
                GraphEdit::AddEdge { u, v, .. } | GraphEdit::RemoveEdge { u, v } => (u, v),
            };
            for x in [u, v] {
                if x >= self.n {
                    return Err(GraphError::VertexOutOfBounds {
                        vertex: x,
                        n: self.n,
                    });
                }
            }
            if u == v {
                return Err(GraphError::InvalidParameter {
                    context: format!("edit touches self-loop ({u}, {v})"),
                });
            }
            let key = (u.min(v) as u32, u.max(v) as u32);
            let current = match overlay.get(&key) {
                Some(&state) => state,
                None => self
                    .find_edge(u, v)
                    .map(|id| self.edges[id as usize].weight),
            };
            match *edit {
                GraphEdit::AddEdge { weight, .. } => {
                    // The negated comparison also rejects NaN.
                    #[allow(clippy::neg_cmp_op_on_partial_ord)]
                    if !(weight > 0.0) || !weight.is_finite() {
                        return Err(GraphError::NonPositiveWeight { u, v, weight });
                    }
                    overlay.insert(key, Some(current.unwrap_or(0.0) + weight));
                }
                GraphEdit::RemoveEdge { .. } => {
                    if current.is_none() {
                        return Err(GraphError::InvalidParameter {
                            context: format!("remove of absent edge ({u}, {v})"),
                        });
                    }
                    overlay.insert(key, None);
                }
            }
        }
        // Merge the sorted edge list with the (sorted) overlay, producing
        // the new canonical edge list and the id map in one pass.
        let mut edges: Vec<Edge> = Vec::with_capacity(self.edges.len() + overlay.len());
        let mut old_to_new = vec![None; self.edges.len()];
        let mut ov = overlay.iter().peekable();
        for (old_id, e) in self.edges.iter().enumerate() {
            // Overlay keys sorting before this edge are brand-new pairs
            // (keys for existing pairs are consumed at their edge below).
            while let Some(&(&(u, v), &state)) = ov.peek() {
                if (u, v) >= (e.u, e.v) {
                    break;
                }
                ov.next();
                if let Some(weight) = state {
                    edges.push(Edge { u, v, weight });
                }
            }
            let state = match ov.peek() {
                Some(&(&key, &state)) if key == (e.u, e.v) => {
                    ov.next();
                    state
                }
                _ => Some(e.weight),
            };
            if let Some(weight) = state {
                old_to_new[old_id] = Some(edges.len() as u32);
                edges.push(Edge {
                    u: e.u,
                    v: e.v,
                    weight,
                });
            }
        }
        for (&(u, v), &state) in ov {
            if let Some(weight) = state {
                edges.push(Edge { u, v, weight });
            }
        }
        let new_m = edges.len();
        Ok((
            Graph::from_sorted_edges(self.n, edges),
            EditMap { old_to_new, new_m },
        ))
    }

    /// Single-edge convenience wrapper over [`Graph::apply_edits`]:
    /// inserts `{u, v}` with weight `w` (merging with an existing edge).
    ///
    /// # Errors
    ///
    /// Same as [`Graph::apply_edits`].
    pub fn add_edge(&self, u: usize, v: usize, weight: f64) -> Result<(Graph, EditMap)> {
        self.apply_edits(&[GraphEdit::AddEdge { u, v, weight }])
    }

    /// Single-edge convenience wrapper over [`Graph::apply_edits`]:
    /// removes edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::apply_edits`].
    pub fn remove_edge(&self, u: usize, v: usize) -> Result<(Graph, EditMap)> {
        self.apply_edits(&[GraphEdit::RemoveEdge { u, v }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap()
    }

    #[test]
    fn builder_canonicalizes() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 0, 1.0); // reversed endpoints
        b.add_edge(0, 2, 0.5); // parallel edge: merged
        b.add_edge(1, 1, 9.0); // self loop: dropped
        let g = b.build();
        assert_eq!(g.m(), 1);
        let e = g.edge(0);
        assert_eq!((e.u, e.v), (0, 2));
        assert_eq!(e.weight, 1.5);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.weighted_degree(0), 4.0);
        assert_eq!(g.weighted_degree(1), 3.0);
        let nbrs: Vec<u32> = g.neighbors(1).map(|(n, _, _)| n).collect();
        assert_eq!(nbrs.len(), 2);
        assert!(nbrs.contains(&0) && nbrs.contains(&2));
    }

    #[test]
    fn laplacian_row_sums_are_zero() {
        let g = triangle();
        let l = g.laplacian();
        let ones = vec![1.0; 3];
        let y = l.mul_vec(&ones);
        assert!(y.iter().all(|v| v.abs() < 1e-14));
        assert!(l.is_symmetric(1e-14));
    }

    #[test]
    fn laplacian_quad_form_is_edge_sum() {
        // x^T L x = sum_e w_e (x_u - x_v)^2.
        let g = triangle();
        let l = g.laplacian();
        let x = [1.0, -1.0, 2.0];
        let manual: f64 = g
            .edges()
            .iter()
            .map(|e| {
                e.weight * (x[e.u as usize] - x[e.v as usize]) * (x[e.u as usize] - x[e.v as usize])
            })
            .sum();
        assert!((l.quad_form(&x) - manual).abs() < 1e-12);
    }

    #[test]
    fn normalized_laplacian_spectrum_bounds() {
        // Eigenvalues of the normalized Laplacian lie in [0, 2]; the
        // constant-after-D^(1/2) vector is in the nullspace.
        let g = triangle();
        let nl = g.normalized_laplacian();
        assert!(nl.is_symmetric(1e-12));
        // x = D^(1/2) 1 is the nullspace vector.
        let x: Vec<f64> = (0..3).map(|v| g.weighted_degree(v).sqrt()).collect();
        let y = nl.mul_vec(&x);
        assert!(y.iter().all(|v| v.abs() < 1e-12));
        // Quadratic forms are non-negative.
        assert!(nl.quad_form(&[1.0, -0.5, 0.25]) >= 0.0);
    }

    #[test]
    fn find_edge_works_both_directions() {
        let g = triangle();
        assert_eq!(g.find_edge(2, 1), g.find_edge(1, 2));
        assert!(g.find_edge(0, 0).is_none());
        let id = g.find_edge(0, 2).unwrap();
        assert_eq!(g.edge(id as usize).weight, 3.0);
    }

    #[test]
    fn subgraph_keeps_vertex_set() {
        let g = triangle();
        let sub = g.subgraph_with_edges([0u32, 2u32]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = Graph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 3.0),
                (3, 4, 4.0),
                (0, 4, 5.0),
            ],
        )
        .unwrap();
        let (sub, back) = g.induced_subgraph(&[1, 2, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2); // (1,2) and (2,3) survive
        assert_eq!(back, vec![1, 2, 3]);
        assert_eq!(
            sub.find_edge(0, 1).map(|id| sub.edge(id as usize).weight),
            Some(2.0)
        );
        assert_eq!(
            sub.find_edge(1, 2).map(|id| sub.edge(id as usize).weight),
            Some(3.0)
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn induced_subgraph_rejects_duplicates() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let _ = g.induced_subgraph(&[0, 0]);
    }

    #[test]
    fn sdd_round_trip() {
        let g = triangle();
        let l = g.laplacian();
        let g2 = Graph::from_sdd_matrix(&l).unwrap();
        assert_eq!(g.m(), g2.m());
        for (a, b) in g.edges().iter().zip(g2.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert!((a.weight - b.weight).abs() < 1e-15);
        }
    }

    #[test]
    fn rejects_bad_edges() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.try_add_edge(0, 5, 1.0),
            Err(GraphError::VertexOutOfBounds { .. })
        ));
        assert!(matches!(
            b.try_add_edge(0, 1, 0.0),
            Err(GraphError::NonPositiveWeight { .. })
        ));
        assert!(matches!(
            b.try_add_edge(0, 1, f64::NAN),
            Err(GraphError::NonPositiveWeight { .. })
        ));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge {
            u: 3,
            v: 7,
            weight: 1.0,
        };
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
    }

    #[test]
    fn laplacian_of_edges_matches_subgraph_laplacian_bitwise() {
        // Includes an isolated vertex (4) and a vertex with both smaller
        // and larger selected neighbors (2).
        let g = Graph::from_edges(
            5,
            &[
                (0, 1, 1.5),
                (0, 2, 0.75),
                (1, 2, 2.25),
                (2, 3, 0.3),
                (1, 3, 4.0),
            ],
        )
        .unwrap();
        for ids in [vec![], vec![1u32, 2, 3], (0..g.m() as u32).collect()] {
            let direct = g.laplacian_of_edges(&ids);
            let via_subgraph = g.subgraph_with_edges(ids.iter().copied()).laplacian();
            assert_eq!(direct.indptr(), via_subgraph.indptr());
            assert_eq!(direct.indices(), via_subgraph.indices());
            assert_eq!(direct.data(), via_subgraph.data());
        }
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn laplacian_of_edges_rejects_unsorted_ids() {
        let g = triangle();
        let _ = g.laplacian_of_edges(&[1, 0]);
    }

    #[test]
    fn apply_edits_batch_with_new_head_and_tail_pairs() {
        // New pairs sorting before every existing edge and after all of
        // them, plus an interior removal — exercises every branch of the
        // sorted-merge rebuild.
        let g = Graph::from_edges(5, &[(1, 2, 1.0), (2, 3, 2.0)]).unwrap();
        let (g2, map) = g
            .apply_edits(&[
                GraphEdit::AddEdge {
                    u: 0,
                    v: 1,
                    weight: 5.0,
                },
                GraphEdit::AddEdge {
                    u: 3,
                    v: 4,
                    weight: 6.0,
                },
                GraphEdit::RemoveEdge { u: 1, v: 2 },
                GraphEdit::AddEdge {
                    u: 0,
                    v: 2,
                    weight: 7.0,
                },
            ])
            .unwrap();
        let pairs: Vec<(u32, u32, f64)> = g2.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
        assert_eq!(
            pairs,
            vec![(0, 1, 5.0), (0, 2, 7.0), (2, 3, 2.0), (3, 4, 6.0)]
        );
        assert_eq!(map.new_id(0), None);
        assert_eq!(map.new_id(1), Some(2));
        assert_eq!(map.new_m(), 4);
        // Add-then-remove of a brand-new pair leaves no trace.
        let (g3, _) = g
            .apply_edits(&[
                GraphEdit::AddEdge {
                    u: 0,
                    v: 4,
                    weight: 1.0,
                },
                GraphEdit::RemoveEdge { u: 0, v: 4 },
            ])
            .unwrap();
        assert_eq!(g3.m(), g.m());
    }

    #[test]
    fn apply_edits_adds_removes_and_remaps() {
        let g = triangle(); // edges (0,1,1.0) (0,2,3.0) (1,2,2.0) in id order
        let (g2, map) = g
            .apply_edits(&[
                GraphEdit::RemoveEdge { u: 0, v: 1 },
                GraphEdit::AddEdge {
                    u: 1,
                    v: 2,
                    weight: 0.5,
                },
            ])
            .unwrap();
        assert_eq!(g2.m(), 2);
        // Old edge 0 = (0,1) removed; (0,2) is new id 0; (1,2) is new id 1.
        assert_eq!(map.new_id(0), None);
        assert_eq!(map.new_id(1), Some(0));
        assert_eq!(map.new_id(2), Some(1));
        assert_eq!(map.old_m(), 3);
        assert_eq!(map.new_m(), 2);
        // Merge semantics: 2.0 + 0.5.
        let id = g2.find_edge(1, 2).unwrap();
        assert_eq!(g2.edge(id as usize).weight, 2.5);
        // Source graph untouched.
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn apply_edits_is_sequential() {
        let g = triangle();
        // Remove then re-add acts as weight replacement.
        let (g2, _) = g
            .apply_edits(&[
                GraphEdit::RemoveEdge { u: 0, v: 2 },
                GraphEdit::AddEdge {
                    u: 2,
                    v: 0,
                    weight: 7.0,
                },
            ])
            .unwrap();
        let id = g2.find_edge(0, 2).unwrap();
        assert_eq!(g2.edge(id as usize).weight, 7.0);
    }

    #[test]
    fn add_edge_creates_new_edge() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let (g2, map) = g.add_edge(0, 3, 4.0).unwrap();
        assert_eq!(g2.m(), 4);
        // (0,3) sorts between (0,1) and (1,2): ids after it shift by one.
        assert_eq!(map.new_id(0), Some(0));
        assert_eq!(map.new_id(1), Some(2));
        assert_eq!(map.new_id(2), Some(3));
        assert_eq!(g2.find_edge(0, 3), Some(1));
    }

    #[test]
    fn apply_edits_rejects_bad_edits() {
        let g = triangle();
        assert!(matches!(
            g.apply_edits(&[GraphEdit::AddEdge {
                u: 0,
                v: 9,
                weight: 1.0
            }]),
            Err(GraphError::VertexOutOfBounds { .. })
        ));
        assert!(matches!(
            g.apply_edits(&[GraphEdit::AddEdge {
                u: 1,
                v: 1,
                weight: 1.0
            }]),
            Err(GraphError::InvalidParameter { .. })
        ));
        assert!(matches!(
            g.apply_edits(&[GraphEdit::AddEdge {
                u: 0,
                v: 1,
                weight: f64::NAN
            }]),
            Err(GraphError::NonPositiveWeight { .. })
        ));
        assert!(matches!(
            g.remove_edge(0, 1).and_then(|(g2, _)| g2.remove_edge(0, 1)),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.laplacian().nrows(), 0);
    }
}
