/// Disjoint-set forest with union by rank and path halving.
///
/// Used by Kruskal spanning trees, the AKPW clustering rounds and
/// connectivity checks.
///
/// # Example
///
/// ```
/// use sass_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert_eq!(uf.components(), 3);
/// assert!(uf.connected(0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of the set containing `x` (with path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of bounds.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x as usize
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.components(), 2);
        assert!(uf.connected(1, 2));
        assert!(!uf.connected(1, 4));
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 2));
        assert!(!uf.union(2, 0));
        assert_eq!(uf.components(), 2);
    }

    #[test]
    fn chain_compresses() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        assert_eq!(uf.find(0), uf.find(99));
    }
}
