use crate::RootedTree;

/// O(1) lowest-common-ancestor queries over a [`RootedTree`], built from an
/// Euler tour plus a sparse-table range-minimum structure.
///
/// Preprocessing is `O(n log n)` time and space; queries are `O(1)`. The
/// index is the backbone of stretch computation: the stretch of an off-tree
/// edge `(u, v)` needs the tree-path resistance `R(u) + R(v) − 2 R(lca)`.
///
/// # Example
///
/// ```
/// use sass_graph::{Graph, RootedTree, LcaIndex};
///
/// # fn main() -> Result<(), sass_graph::GraphError> {
/// // Star 0-{1,2,3}: ids 0,1,2.
/// let g = Graph::from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0)])?;
/// let t = RootedTree::new(&g, vec![0, 1, 2], 0)?;
/// let lca = LcaIndex::new(&t);
/// assert_eq!(lca.lca(1, 2), 0);
/// assert_eq!(lca.lca(2, 2), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LcaIndex {
    /// Euler tour of vertices (length `2n − 1`).
    tour: Vec<u32>,
    /// Depth of the vertex at each tour position.
    tour_depth: Vec<u32>,
    /// First tour position of each vertex.
    first: Vec<u32>,
    /// `table[k]` holds, for each i, the tour position with minimum depth in
    /// the window `[i, i + 2^k)`.
    table: Vec<Vec<u32>>,
}

impl LcaIndex {
    /// Builds the index for a rooted tree.
    pub fn new(tree: &RootedTree) -> Self {
        let n = tree.n();
        if n == 0 {
            return LcaIndex {
                tour: vec![],
                tour_depth: vec![],
                first: vec![],
                table: vec![],
            };
        }
        // Children lists from parent pointers, in BFS order so the iterative
        // DFS below is deterministic.
        let mut child_count = vec![0usize; n];
        for v in 0..n {
            if let Some(p) = tree.parent(v) {
                child_count[p] += 1;
            }
        }
        let mut child_ptr = vec![0usize; n + 1];
        for v in 0..n {
            child_ptr[v + 1] = child_ptr[v] + child_count[v];
        }
        let mut children = vec![0u32; n - 1];
        let mut next = child_ptr.clone();
        for &v in tree.bfs_order() {
            if let Some(p) = tree.parent(v as usize) {
                children[next[p]] = v;
                next[p] += 1;
            }
        }

        let mut tour = Vec::with_capacity(2 * n - 1);
        let mut tour_depth = Vec::with_capacity(2 * n - 1);
        let mut first = vec![u32::MAX; n];
        // Iterative Euler tour: stack of (vertex, next-child cursor).
        let mut stack: Vec<(u32, usize)> = vec![(tree.root() as u32, 0)];
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            let vu = v as usize;
            if first[vu] == u32::MAX {
                first[vu] = tour.len() as u32;
            }
            tour.push(v);
            tour_depth.push(tree.depth(vu));
            let c_lo = child_ptr[vu];
            let c_hi = child_ptr[vu + 1];
            if c_lo + *cursor < c_hi {
                let child = children[c_lo + *cursor];
                *cursor += 1;
                stack.push((child, 0));
            } else {
                // All children done: pop. The parent (new stack top) gets
                // re-recorded by the next loop iteration, which is exactly
                // the Euler-tour revisit.
                stack.pop();
            }
        }

        let len = tour.len();
        let levels = (usize::BITS - len.leading_zeros()) as usize; // floor(log2(len)) + 1
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(levels);
        table.push((0..len as u32).collect());
        let mut k = 1;
        while (1 << k) <= len {
            let half = 1 << (k - 1);
            let prev = &table[k - 1];
            let mut row = Vec::with_capacity(len - (1 << k) + 1);
            for i in 0..=(len - (1 << k)) {
                let a = prev[i];
                let b = prev[i + half];
                row.push(if tour_depth[a as usize] <= tour_depth[b as usize] {
                    a
                } else {
                    b
                });
            }
            table.push(row);
            k += 1;
        }
        LcaIndex {
            tour,
            tour_depth,
            first,
            table,
        }
    }

    /// The lowest common ancestor of `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    pub fn lca(&self, u: usize, v: usize) -> usize {
        let (mut a, mut b) = (self.first[u] as usize, self.first[v] as usize);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let len = b - a + 1;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize; // floor(log2(len))
        let x = self.table[k][a];
        let y = self.table[k][b + 1 - (1 << k)];
        let pos = if self.tour_depth[x as usize] <= self.tour_depth[y as usize] {
            x
        } else {
            y
        };
        self.tour[pos as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, RootedTree};

    /// Brute-force LCA by walking parents.
    fn lca_naive(t: &RootedTree, mut u: usize, mut v: usize) -> usize {
        while t.depth(u) > t.depth(v) {
            u = t.parent(u).unwrap();
        }
        while t.depth(v) > t.depth(u) {
            v = t.parent(v).unwrap();
        }
        while u != v {
            u = t.parent(u).unwrap();
            v = t.parent(v).unwrap();
        }
        u
    }

    fn balanced_binary_tree(depth: u32) -> (Graph, RootedTree) {
        let n = (1usize << (depth + 1)) - 1;
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push((v, (v - 1) / 2, 1.0));
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let ids: Vec<u32> = (0..g.m() as u32).collect();
        let t = RootedTree::new(&g, ids, 0).unwrap();
        (g, t)
    }

    #[test]
    fn matches_naive_on_binary_tree() {
        let (_, t) = balanced_binary_tree(4);
        let idx = LcaIndex::new(&t);
        let n = t.n();
        for u in (0..n).step_by(3) {
            for v in (0..n).step_by(5) {
                assert_eq!(idx.lca(u, v), lca_naive(&t, u, v), "lca({u}, {v})");
            }
        }
    }

    #[test]
    fn matches_naive_on_path() {
        let n = 33;
        let edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let t = RootedTree::new(&g, (0..g.m() as u32).collect(), 16).unwrap();
        let idx = LcaIndex::new(&t);
        for u in 0..n {
            for v in (0..n).step_by(7) {
                assert_eq!(idx.lca(u, v), lca_naive(&t, u, v));
            }
        }
    }

    #[test]
    fn lca_of_vertex_with_itself() {
        let (_, t) = balanced_binary_tree(3);
        let idx = LcaIndex::new(&t);
        for v in 0..t.n() {
            assert_eq!(idx.lca(v, v), v);
        }
    }

    #[test]
    fn lca_with_ancestor_is_ancestor() {
        let (_, t) = balanced_binary_tree(3);
        let idx = LcaIndex::new(&t);
        assert_eq!(idx.lca(0, 9), 0);
        let p = t.parent(9).unwrap();
        assert_eq!(idx.lca(p, 9), p);
    }

    #[test]
    fn single_vertex_tree() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let t = RootedTree::new(&g, vec![], 0).unwrap();
        let idx = LcaIndex::new(&t);
        assert_eq!(idx.lca(0, 0), 0);
    }
}
