//! Graph traversal utilities: BFS, connected components, connectivity.

use crate::Graph;

/// Breadth-first search from `start`, returning the visit order.
///
/// # Panics
///
/// Panics if `start >= g.n()`.
pub fn bfs_order(g: &Graph, start: usize) -> Vec<usize> {
    let mut visited = vec![false; g.n()];
    let mut order = vec![start];
    visited[start] = true;
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        for (nbr, _, _) in g.neighbors(u) {
            let v = nbr as usize;
            if !visited[v] {
                visited[v] = true;
                order.push(v);
            }
        }
    }
    order
}

/// BFS distances (in hops) from `start`; unreachable vertices get
/// `usize::MAX`.
///
/// # Panics
///
/// Panics if `start >= g.n()`.
pub fn bfs_distances(g: &Graph, start: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = vec![start];
    dist[start] = 0;
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for (nbr, _, _) in g.neighbors(u) {
            let v = nbr as usize;
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push(v);
            }
        }
    }
    dist
}

/// Labels each vertex with its connected-component id (`0..k`), returning
/// `(labels, component_count)`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let mut label = vec![usize::MAX; g.n()];
    let mut k = 0;
    let mut queue = Vec::new();
    for s in 0..g.n() {
        if label[s] != usize::MAX {
            continue;
        }
        queue.clear();
        queue.push(s);
        label[s] = k;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for (nbr, _, _) in g.neighbors(u) {
                let v = nbr as usize;
                if label[v] == usize::MAX {
                    label[v] = k;
                    queue.push(v);
                }
            }
        }
        k += 1;
    }
    (label, k)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() == 0 {
        return true;
    }
    connected_components(g).1 == 1
}

/// A vertex of approximately maximal eccentricity, found by repeated BFS.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn pseudo_peripheral_vertex(g: &Graph, start: usize) -> usize {
    let mut u = start;
    let mut ecc = 0usize;
    for _ in 0..6 {
        let dist = bfs_distances(g, u);
        let (far, d) = dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != usize::MAX)
            .max_by_key(|&(_, &d)| d)
            .expect("non-empty graph");
        if *d <= ecc {
            break;
        }
        ecc = *d;
        u = far;
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn bfs_visits_everything_once() {
        let g = path(10);
        let order = bfs_order(&g, 3);
        assert_eq!(order.len(), 10);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn distances_on_path() {
        let g = path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn components_of_disjoint_union() {
        let g = Graph::from_edges(6, &[(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)]).unwrap();
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 3); // {0,1}, {2,3,4}, {5}
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[4]);
        assert_ne!(labels[0], labels[5]);
        assert!(!is_connected(&g));
        assert!(is_connected(&path(4)));
    }

    #[test]
    fn pseudo_peripheral_finds_path_end() {
        let g = path(20);
        let v = pseudo_peripheral_vertex(&g, 10);
        assert!(v == 0 || v == 19, "expected an endpoint, got {v}");
    }

    #[test]
    fn unreachable_distance_is_max() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }
}
