//! Property-based tests for the sparse-matrix substrate: factorization
//! correctness against a dense reference, format round-trips, and
//! permutation algebra — over randomized inputs.

#![allow(clippy::needless_range_loop)] // the dense reference reads best with indices

use proptest::prelude::*;
use sass_sparse::ordering::OrderingKind;
use sass_sparse::{CooMatrix, CsrMatrix, LdlFactor, Permutation};

/// Strategy: a random sparse SPD matrix (diagonally dominant) of size
/// `n in [2, 24]` with `k` random symmetric off-diagonal entries.
fn spd_matrix() -> impl Strategy<Value = CsrMatrix> {
    (2usize..24).prop_flat_map(|n| {
        let entries = proptest::collection::vec((0usize..n, 0usize..n, -1.0f64..1.0), 0..(3 * n));
        (Just(n), entries).prop_map(|(n, entries)| {
            let mut coo = CooMatrix::new(n, n);
            let mut row_abs = vec![0.0f64; n];
            for &(i, j, v) in &entries {
                if i != j {
                    coo.push_sym(i.min(j), i.max(j), v);
                    row_abs[i] += v.abs();
                    row_abs[j] += v.abs();
                }
            }
            // Strict diagonal dominance makes it SPD.
            for (i, &ra) in row_abs.iter().enumerate() {
                coo.push(i, i, ra + 1.0);
            }
            coo.to_csr()
        })
    })
}

/// Dense Gaussian elimination with partial pivoting (test reference).
fn dense_solve(a: &CsrMatrix, b: &[f64]) -> Vec<f64> {
    let n = a.nrows();
    let mut m = a.to_dense();
    let mut x = b.to_vec();
    for col in 0..n {
        let piv = (col..n)
            .max_by(|&i, &j| m[i][col].abs().partial_cmp(&m[j][col].abs()).unwrap())
            .unwrap();
        m.swap(col, piv);
        x.swap(col, piv);
        for row in (col + 1)..n {
            let f = m[row][col] / m[col][col];
            for k in col..n {
                m[row][k] -= f * m[col][k];
            }
            x[row] -= f * x[col];
        }
    }
    for col in (0..n).rev() {
        x[col] /= m[col][col];
        for row in 0..col {
            x[row] -= m[row][col] * x[col];
        }
    }
    x
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ldl_matches_dense_reference(a in spd_matrix(), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let n = a.nrows();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let reference = dense_solve(&a, &b);
        for kind in [
            OrderingKind::Natural,
            OrderingKind::Rcm,
            OrderingKind::MinDegree,
            OrderingKind::NestedDissection,
        ] {
            let f = LdlFactor::new(&a, kind).unwrap();
            let x = f.solve(&b);
            for (xi, ri) in x.iter().zip(&reference) {
                prop_assert!((xi - ri).abs() < 1e-7 * ri.abs().max(1.0),
                             "{kind:?}: {xi} vs {ri}");
            }
        }
    }

    #[test]
    fn ldl_diagonal_positive_for_spd(a in spd_matrix()) {
        let f = LdlFactor::new(&a, OrderingKind::MinDegree).unwrap();
        prop_assert!(f.d().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn coo_csr_round_trip(a in spd_matrix()) {
        let back = a.to_coo().to_csr();
        prop_assert_eq!(a, back);
    }

    #[test]
    fn transpose_is_involution(a in spd_matrix()) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        prop_assert!(a.is_symmetric(1e-12));
    }

    #[test]
    fn spmv_matches_dense(a in spd_matrix(), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let n = a.nrows();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let y = a.mul_vec(&x);
        let dense = a.to_dense();
        for i in 0..n {
            let want: f64 = (0..n).map(|j| dense[i][j] * x[j]).sum();
            prop_assert!((y[i] - want).abs() < 1e-10 * want.abs().max(1.0));
        }
    }

    #[test]
    fn symmetric_permutation_preserves_spectrum_proxy(
        a in spd_matrix(), seed in 0u64..1000
    ) {
        // P A P^T has the same quadratic form under the permuted vector.
        use rand::{Rng, SeedableRng};
        let n = a.nrows();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Random permutation via sorting random keys.
        let mut order: Vec<usize> = (0..n).collect();
        let keys: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        order.sort_by_key(|&i| keys[i]);
        let perm = Permutation::from_old_of_new(order).unwrap();
        let b = a.permute_sym(&perm).unwrap();
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let px = perm.apply(&x);
        prop_assert!((a.quad_form(&x) - b.quad_form(&px)).abs()
                     < 1e-9 * a.quad_form(&x).abs().max(1.0));
    }

    #[test]
    fn permutation_inverse_composes_to_identity(n in 1usize..64, seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..n).collect();
        let keys: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        order.sort_by_key(|&i| keys[i]);
        let p = Permutation::from_new_of_old(order).unwrap();
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        prop_assert_eq!(p.apply_inverse(&p.apply(&x)), x.clone());
        let double_inverse = p.inverse().inverse();
        prop_assert_eq!(double_inverse.new_of_old(), p.new_of_old());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_spmv_is_bit_for_bit_serial(a in spd_matrix(), seed in 0u64..1000) {
        // The threaded fast path must be *exactly* the serial kernel's
        // result — same per-row accumulation order — on any input, not
        // merely close. (Matrices this size take the serial fallback; the
        // unit tests in `parallel.rs` pin the same property above the
        // crossover.)
        use rand::{Rng, SeedableRng};
        let n = a.nrows();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let mut serial = vec![0.0; n];
        let mut parallel = vec![0.0; n];
        a.mul_vec_into(&x, &mut serial);
        a.par_mul_vec_into(&x, &mut parallel);
        prop_assert_eq!(&serial, &parallel);
        // And the LinearOperator route resolves to the same bits.
        use sass_sparse::LinearOperator;
        prop_assert_eq!(a.apply_vec(&x), serial);
    }

    /// Pool-based SpMV must be bit-identical to the serial kernel at every
    /// worker count. `pool::set_threads` is a standing override that skips
    /// the size crossover, so even these small matrices go through real
    /// multi-lane dispatch on the persistent pool.
    #[cfg(feature = "parallel")]
    #[test]
    fn pool_spmv_bit_identical_across_worker_counts(a in spd_matrix(), seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        use sass_sparse::pool;
        let n = a.nrows();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let mut serial = vec![0.0; n];
        a.mul_vec_into(&x, &mut serial);
        for workers in [1usize, 2, 3, 8] {
            pool::set_threads(workers);
            let mut parallel = vec![0.0; n];
            a.par_mul_vec_into(&x, &mut parallel);
            pool::set_threads(0);
            prop_assert_eq!(&parallel, &serial, "workers = {}", workers);
        }
    }

    /// The blocked multi-RHS solve must agree with the per-column solve on
    /// any SPD input, across full and partial block widths — the LDL
    /// counterpart of the serial/parallel SpMV equivalence above.
    #[test]
    fn ldl_block_solve_matches_per_column(a in spd_matrix(), seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        use sass_sparse::{DenseBlock, LdlFactor, LDL_BLOCK_WIDTH};
        let n = a.nrows();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let f = LdlFactor::new(&a, OrderingKind::MinDegree).unwrap();
        for ncols in [1usize, LDL_BLOCK_WIDTH - 1, LDL_BLOCK_WIDTH, LDL_BLOCK_WIDTH + 3] {
            let cols: Vec<Vec<f64>> = (0..ncols)
                .map(|_| (0..n).map(|_| rng.gen_range(-5.0f64..5.0)).collect())
                .collect();
            let blocked = f.solve_block(&DenseBlock::from_columns(&cols));
            for (c, col) in cols.iter().enumerate() {
                let single = f.solve(col);
                for (bx, sx) in blocked.col(c).iter().zip(&single) {
                    prop_assert!(
                        (bx - sx).abs() <= 1e-14 * sx.abs().max(1.0),
                        "ncols={} col={}: {} vs {}", ncols, c, bx, sx
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_market_round_trip(a in spd_matrix()) {
        let text = sass_sparse::mmio::write_string(&a).unwrap();
        let back = sass_sparse::mmio::read_str(&text).unwrap().to_csr();
        prop_assert_eq!(a, back);
    }
}
