//! Exercises the `race-check` shadow write-set tracker in the pool.
//!
//! Two halves:
//!
//! 1. **Canaries** — dispatches with deliberately overlapping spans must
//!    panic with a diagnostic naming both conflicting ranges, proving the
//!    detector actually fires (suite-sensitivity discipline: a sanitizer
//!    nobody has seen trip is indistinguishable from a no-op).
//! 2. **Transparency** — the pool-reuse/no-thread-leak and mid-dispatch
//!    panic-propagation contracts must hold unchanged under the tracker,
//!    at forced worker counts 1, 2, 3 and 8 (the same widths the kernel
//!    parity tests pin down).
//!
//! The whole file is compiled only with `--features race-check`; CI runs
//! it in the feature-matrix `race-check` lane.
#![cfg(feature = "race-check")]

use std::sync::atomic::{AtomicUsize, Ordering};

use sass_sparse::pool::{even_spans, Pool};

const WIDTHS: [usize; 4] = [1, 2, 3, 8];

/// The overlapping-spans canary: `parallel_for_with_scratch` has no
/// upfront span validation (its spans usually index caller state), so the
/// shadow tracker is the only line of defense — and it must fire.
#[test]
#[should_panic(expected = "race-check")]
fn overlapping_scratch_spans_trip_the_tracker() {
    let pool = Pool::with_threads(2);
    let mut scratch = vec![0u8; 2];
    pool.parallel_for_with_scratch(&[(0, 5), (4, 8)], &mut scratch, |_, _, _| {});
}

/// Same canary through `parallel_for_spans`.
#[test]
#[should_panic(expected = "race-check")]
fn overlapping_for_spans_trip_the_tracker() {
    let pool = Pool::with_threads(2);
    pool.parallel_for_spans(&[(0, 5), (4, 8)], |_, _| {});
}

/// The diagnostic must name *both* conflicting ranges — a message that
/// only points at one span sends the reader grepping.
#[test]
fn tracker_diagnostic_names_both_ranges() {
    let pool = Pool::with_threads(2);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut scratch = vec![0u8; 2];
        pool.parallel_for_with_scratch(&[(0, 5), (4, 8)], &mut scratch, |_, _, _| {});
    }));
    let payload = caught.expect_err("overlap must panic");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a message");
    assert!(msg.contains("race-check"), "missing prefix: {msg}");
    assert!(msg.contains("[0, 5)"), "first range missing: {msg}");
    assert!(msg.contains("[4, 8)"), "second range missing: {msg}");
    assert!(
        msg.contains("parallel_for_with_scratch"),
        "entry point missing: {msg}"
    );
}

/// Containment (one span inside another) is an overlap too, not just
/// staggered ranges.
#[test]
#[should_panic(expected = "race-check")]
fn contained_span_trips_the_tracker() {
    let pool = Pool::with_threads(2);
    pool.parallel_for_spans(&[(0, 10), (3, 4)], |_, _| {});
}

/// The cross-level read-set canary: the LDLᵀ sweeps' safety argument is
/// that every entry a step gathers was finalized by an earlier level's
/// barrier. The shadow `level_of` map verifies exactly that; corrupting
/// one column's recorded level makes a well-ordered read look like a
/// same-level read, and the tracker must trip.
#[test]
#[should_panic(expected = "cross-level read-set violation")]
fn corrupted_level_map_trips_the_read_tracker() {
    use sass_sparse::{ordering::OrderingKind, CooMatrix, LdlFactor};
    let n = 16;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
        if i + 1 < n {
            coo.push_sym(i, i + 1, -1.0);
        }
    }
    let mut f = LdlFactor::new(&coo.to_csr(), OrderingKind::Natural).unwrap();
    // A natural tridiagonal etree is a path: row 5 reads row 4, one level
    // below. Lift row 4's recorded level above row 5's and the forward
    // sweep's read is no longer "strictly below".
    f.corrupt_level_for_test(4, 9);
    let _ = f.solve(&vec![1.0; n]);
}

/// The factorization's read set is verified too: a partial refactor
/// gathers rows in strictly lower levels, and a corrupted level map must
/// trip it through `refactor_partial`'s masked numeric phase.
#[test]
#[should_panic(expected = "cross-level read-set violation")]
fn corrupted_level_map_trips_the_factor_read_tracker() {
    use sass_sparse::{ordering::OrderingKind, CooMatrix, LdlFactor};
    let n = 16;
    let build = |d5: f64| {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, if i == 5 { d5 } else { 4.0 });
            if i + 1 < n {
                coo.push_sym(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    };
    let mut f = LdlFactor::new(&build(4.0), OrderingKind::Natural).unwrap();
    f.corrupt_level_for_test(4, 9);
    let _ = f.refactor_partial(&build(5.0), &[5], 1.0);
}

/// Disjoint dispatches of every shape stay silent at every width.
#[test]
fn clean_dispatches_pass_at_all_widths() {
    for k in WIDTHS {
        let pool = Pool::with_threads(k);
        let spans = even_spans(64, k.max(2));

        let mut out = vec![0usize; 64];
        pool.parallel_for_disjoint_mut(&mut out, &spans, |i, chunk| {
            for c in chunk {
                *c = i + 1;
            }
        });
        assert!(out.iter().all(|&v| v != 0), "width {k}");

        let mut scratch = vec![0usize; spans.len()];
        pool.parallel_for_with_scratch(&spans, &mut scratch, |_, (lo, hi), s| {
            *s = hi - lo;
        });
        assert_eq!(scratch.iter().sum::<usize>(), 64, "width {k}");

        let total = pool
            .parallel_reduce(&spans, |_, (lo, hi)| (lo..hi).sum::<usize>(), |a, b| a + b)
            .expect("nonempty spans");
        assert_eq!(total, 64 * 63 / 2, "width {k}");
    }
}

/// Reductions may read overlapping spans (no writes through the spans),
/// so the tracker must only require exactly-once claiming there.
#[test]
fn reduce_permits_overlapping_read_spans() {
    for k in WIDTHS {
        let pool = Pool::with_threads(k);
        let spans = [(0usize, 8usize), (4, 12), (0, 12)];
        let total = pool
            .parallel_reduce(&spans, |_, (lo, hi)| hi - lo, |a, b| a + b)
            .expect("nonempty spans");
        assert_eq!(total, 8 + 8 + 12, "width {k}");
    }
}

/// Pool reuse must not leak threads with the tracker active: workers are
/// spawned lazily on the first parallel dispatch and reused forever.
#[test]
fn pool_reuse_spawns_no_extra_threads_under_race_check() {
    for k in WIDTHS {
        let pool = Pool::with_threads(k);
        assert_eq!(pool.worker_count(), 0, "width {k}: workers must be lazy");
        let spans = even_spans(32, k);
        let run = |p: &Pool| {
            let total = p
                .parallel_reduce(&spans, |_, (lo, hi)| (lo..hi).sum::<usize>(), |a, b| a + b)
                .expect("nonempty spans");
            assert_eq!(total, 32 * 31 / 2);
        };
        run(&pool);
        let after_first = pool.worker_count();
        assert!(after_first <= k.saturating_sub(1), "width {k}");
        run(&pool);
        run(&pool);
        assert_eq!(
            pool.worker_count(),
            after_first,
            "width {k}: dispatch leaked threads"
        );
    }
}

/// A panicking span must re-raise on the dispatching thread — the
/// tracker's join-time verification must not mask the user panic or turn
/// it into a coverage failure (claims are recorded at hand-out time, so
/// the panicked span still counts as claimed).
#[test]
fn closure_panic_propagates_at_all_widths_under_race_check() {
    for k in WIDTHS {
        let pool = Pool::with_threads(k);
        let spans = even_spans(16, 8);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_for_spans(&spans, |i, _| {
                if i == 5 {
                    panic!("boom in span 5");
                }
            });
        }));
        let payload = caught.expect_err("dispatch must re-raise the span panic");
        assert_eq!(
            payload.downcast_ref::<&str>().copied(),
            Some("boom in span 5"),
            "width {k}: the user panic must win, not a race-check report"
        );
        // The pool stays usable afterwards, and the tracker state from
        // the aborted dispatch does not bleed into the next one.
        let hits = AtomicUsize::new(0);
        pool.parallel_for_spans(&spans, |_, (lo, hi)| {
            hits.fetch_add(hi - lo, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16, "width {k}");
    }
}
