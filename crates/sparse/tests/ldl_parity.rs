//! Cross-worker-count parity for the level-scheduled LDLᵀ kernels.
//!
//! The numeric factorization and both triangular-solve shapes (single
//! vector and interleaved block) must produce **bit-for-bit identical**
//! results at any worker count: every column's output is computed by the
//! same operation sequence reading the same level-finalized inputs,
//! whichever pool lane runs it. `pool::set_threads` is a standing
//! override that skips the nnz/level-width crossovers, so even the small
//! matrices generated here go through real multi-lane level dispatch.
//!
//! Pathological elimination trees ride along: a path etree (no level
//! parallelism), a star (one wide level), singleton and empty matrices,
//! and a mid-factorization `ZeroPivot` under forced fan-out.

use proptest::prelude::*;
use sass_sparse::ordering::OrderingKind;
use sass_sparse::{pool, CooMatrix, CsrMatrix, DenseBlock, LdlFactor, SparseError};

/// Serializes every test in this binary that overrides the global pool's
/// lane count: the serial reference must really be computed at one lane,
/// not under a concurrent test's forced fan-out. (`unwrap_or_else` keeps
/// the guard usable after a poisoning assertion failure.)
fn pool_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` once serially and once per forced worker count (repo
/// convention: 1/2/3/8), asserting every forced result equals the serial
/// reference bit for bit.
fn assert_parity_across_workers<T: PartialEq + std::fmt::Debug>(f: impl Fn() -> T) {
    let _guard = pool_guard();
    pool::set_threads(1);
    let serial = f();
    for workers in [2usize, 3, 8] {
        pool::set_threads(workers);
        let got = f();
        pool::set_threads(0);
        assert_eq!(got, serial, "workers = {workers}");
    }
    pool::set_threads(0);
}

/// Everything a factorization computes, extracted through the public API
/// so parity checks cover the pivots, the factor application (both solve
/// shapes), and the schedule metadata.
fn factor_fingerprint(a: &CsrMatrix, kind: OrderingKind) -> (Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
    let f = LdlFactor::new(a, kind).unwrap();
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) as f64 * 0.37).sin()).collect();
    let x = f.solve(&b);
    let cols: Vec<Vec<f64>> = (0..11)
        .map(|c| {
            (0..n)
                .map(|i| ((i * (2 * c + 5)) as f64 * 0.19).cos())
                .collect()
        })
        .collect();
    let blocked = f.solve_block(&DenseBlock::from_columns(&cols));
    (f.d().to_vec(), x, blocked.into_columns())
}

/// Random sparse SPD matrix (diagonally dominant), `n in [2, 40]`.
fn spd_matrix() -> impl Strategy<Value = CsrMatrix> {
    (2usize..40).prop_flat_map(|n| {
        let entries = proptest::collection::vec((0usize..n, 0usize..n, -1.0f64..1.0), 0..(4 * n));
        (Just(n), entries).prop_map(|(n, entries)| {
            let mut coo = CooMatrix::new(n, n);
            let mut row_abs = vec![0.0f64; n];
            for &(i, j, v) in &entries {
                if i != j {
                    coo.push_sym(i.min(j), i.max(j), v);
                    row_abs[i] += v.abs();
                    row_abs[j] += v.abs();
                }
            }
            for (i, &ra) in row_abs.iter().enumerate() {
                coo.push(i, i, ra + 1.0);
            }
            coo.to_csr()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Factorization + single solve + blocked solve (full and tail
    /// chunks), bit-identical across forced worker counts and orderings.
    #[test]
    fn factor_and_solves_bit_identical(a in spd_matrix(), kind_ix in 0usize..3) {
        let kind = [OrderingKind::Natural, OrderingKind::MinDegree, OrderingKind::Rcm][kind_ix];
        let _guard = pool_guard();
        pool::set_threads(1);
        let serial = factor_fingerprint(&a, kind);
        for workers in [2usize, 3, 8] {
            pool::set_threads(workers);
            let got = factor_fingerprint(&a, kind);
            pool::set_threads(0);
            prop_assert_eq!(&got, &serial, "workers = {}", workers);
        }
        pool::set_threads(0);
    }
}

/// Path etree: a natural-order tridiagonal factor has width-1 levels
/// everywhere, so there is no level parallelism to exploit — forced
/// fan-out must degrade gracefully to the serial result.
#[test]
fn path_etree_parity() {
    let n = 60;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 4.0);
        if i + 1 < n {
            coo.push_sym(i, i + 1, -1.0);
        }
    }
    let a = coo.to_csr();
    {
        let f = LdlFactor::new(&a, OrderingKind::Natural).unwrap();
        assert_eq!(f.level_count(), n);
        assert_eq!(f.max_level_width(), 1);
    }
    assert_parity_across_workers(|| factor_fingerprint(&a, OrderingKind::Natural));
}

/// Star etree with the hub ordered last: one maximally wide level of
/// leaves followed by a single dense hub column.
#[test]
fn star_etree_parity() {
    let n = 40;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n - 1 {
        coo.push(i, i, 2.0);
        coo.push_sym(i, n - 1, -1.0);
    }
    coo.push(n - 1, n - 1, n as f64);
    let a = coo.to_csr();
    {
        let f = LdlFactor::new(&a, OrderingKind::Natural).unwrap();
        assert_eq!(f.level_count(), 2);
        assert_eq!(f.max_level_width(), n - 1);
    }
    assert_parity_across_workers(|| factor_fingerprint(&a, OrderingKind::Natural));
}

/// Degenerate shapes must survive forced fan-out: a singleton system and
/// an empty (0×0) matrix.
#[test]
fn singleton_and_empty_parity() {
    let mut coo = CooMatrix::new(1, 1);
    coo.push(0, 0, 3.0);
    let one = coo.to_csr();
    assert_parity_across_workers(|| {
        let f = LdlFactor::new(&one, OrderingKind::Natural).unwrap();
        (f.d().to_vec(), f.solve(&[6.0]), f.level_count())
    });

    let empty = CooMatrix::new(0, 0).to_csr();
    assert_parity_across_workers(|| {
        let f = LdlFactor::new(&empty, OrderingKind::Natural).unwrap();
        assert_eq!(f.level_count(), 0);
        assert_eq!(f.max_level_width(), 0);
        let x = f.solve(&[]);
        let bx = f.solve_block(&DenseBlock::zeros(0, 3));
        (x, bx)
    });
}

/// A pivot breakdown in the middle of the elimination sequence must
/// surface as a clean `ZeroPivot` (no hang, no panic) at every forced
/// worker count, reporting the same original column everywhere: the
/// smallest failing column of the earliest failing level.
#[test]
fn zero_pivot_mid_factorization_under_fan_out() {
    // A healthy tridiagonal block [0, 20), a singular 2-vertex Laplacian
    // {20, 21} (pivot dies at its second column), another healthy block.
    let n = 40;
    let mut coo = CooMatrix::new(n, n);
    for i in 0..20 {
        coo.push(i, i, 4.0);
        if i + 1 < 20 {
            coo.push_sym(i, i + 1, -1.0);
        }
    }
    coo.push(20, 20, 1.0);
    coo.push(21, 21, 1.0);
    coo.push_sym(20, 21, -1.0);
    for i in 22..n {
        coo.push(i, i, 4.0);
        if i + 1 < n {
            coo.push_sym(i, i + 1, -1.0);
        }
    }
    let a = coo.to_csr();
    assert_parity_across_workers(|| {
        let err = LdlFactor::new(&a, OrderingKind::Natural).unwrap_err();
        match err {
            SparseError::ZeroPivot { column } => column,
            other => panic!("expected ZeroPivot, got {other:?}"),
        }
    });
}
