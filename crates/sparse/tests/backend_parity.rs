//! Cross-backend parity for the storage layer: CSR, CSC and BCSR must be
//! interchangeable representations of the same matrix.
//!
//! Three properties over randomized symmetric matrices:
//!
//! 1. **Round-trips are exact** — CSR → CSC → CSR and CSR → BCSR → CSR
//!    reproduce the original matrix including the pattern (the generator
//!    keeps every stored value nonzero, so BCSR's padding-zero dropping
//!    cannot bite).
//! 2. **`f64` products are bit-for-bit identical** — serial and threaded,
//!    across every backend and at forced worker counts 1/2/3/8 (the
//!    standing `pool::set_threads` override skips the size crossovers, so
//!    even small matrices go through real multi-lane dispatch).
//! 3. **`f32` products track `f64`** to single-precision tolerance
//!    (`storage-f32` feature): relative error bounded by `n · ε_f32`
//!    against the accumulated absolute sum.

use proptest::prelude::*;
use sass_sparse::{pool, BcsrMatrix, CooMatrix, CscMatrix, CsrMatrix, SparseBackend};

/// Serializes tests that override the global pool's lane count.
fn pool_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Strategy: a random symmetric matrix of size `n in [1, 48]` whose
/// stored values are all nonzero (magnitudes in `[0.1, 2)`, positive
/// diagonal), so every storage round-trip must be pattern-exact.
fn symmetric_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1usize..48).prop_flat_map(|n| {
        let entries = proptest::collection::vec((0usize..n, 0usize..n, 0.1f64..2.0), 0..(4 * n));
        (Just(n), entries).prop_map(|(n, entries)| {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 1.0 + (i % 7) as f64);
            }
            for &(i, j, mag) in &entries {
                if i != j {
                    // Duplicate pushes at one position merge by summation,
                    // so the sign is a function of the position (not of
                    // the draw): contributions at one pair can never
                    // cancel to an explicit stored zero.
                    let (a, b) = (i.min(j), i.max(j));
                    let v = if (a + b) % 2 == 0 { mag } else { -mag };
                    coo.push_sym(a, b, v);
                }
            }
            coo.to_csr()
        })
    })
}

/// A deterministic probe vector with varied magnitudes.
fn probe(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 37 + 11) % 101) as f64 * 0.04 - 2.0)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csc_round_trip_is_exact(a in symmetric_matrix()) {
        let csc = CscMatrix::from_csr(&a);
        prop_assert_eq!(csc.to_csr(), a);
    }

    #[test]
    fn bcsr_round_trip_is_exact(a in symmetric_matrix()) {
        for b in [2usize, 4] {
            let blocked = BcsrMatrix::from_csr(&a, b);
            prop_assert_eq!(blocked.to_csr(), a.clone(), "block size {}", b);
        }
    }

    /// All f64 backends agree with the serial CSR gather bit-for-bit, for
    /// both the serial and the threaded kernel, at forced worker counts
    /// 1, 2, 3 and 8.
    #[test]
    fn f64_products_bit_identical_across_backends_and_worker_counts(a in symmetric_matrix()) {
        let _guard = pool_guard();
        let x = probe(a.ncols());
        pool::set_threads(1);
        let want = a.mul_vec(&x);

        let csc = CscMatrix::from_csr(&a);
        let bcsr2 = BcsrMatrix::from_csr(&a, 2);
        let bcsr4 = BcsrMatrix::from_csr(&a, 4);
        prop_assert_eq!(&csc.mul_vec(&x), &want, "csc serial");
        prop_assert_eq!(&bcsr2.mul_vec(&x), &want, "bcsr2 serial");
        prop_assert_eq!(&bcsr4.mul_vec(&x), &want, "bcsr4 serial");

        let mut y = vec![0.0; a.nrows()];
        for workers in [1usize, 2, 3, 8] {
            pool::set_threads(workers);
            a.par_mul_vec_into(&x, &mut y);
            prop_assert_eq!(&y, &want, "csr par, workers {}", workers);
            csc.par_mul_vec_into(&x, &mut y);
            prop_assert_eq!(&y, &want, "csc par, workers {}", workers);
            bcsr2.par_mul_vec_into(&x, &mut y);
            prop_assert_eq!(&y, &want, "bcsr2 par, workers {}", workers);
            bcsr4.par_mul_vec_into(&x, &mut y);
            prop_assert_eq!(&y, &want, "bcsr4 par, workers {}", workers);
        }
        pool::set_threads(0);
    }

    /// The trait surface reports consistent shapes and sizes.
    #[test]
    fn backend_introspection_is_consistent(a in symmetric_matrix()) {
        fn check<B: SparseBackend<Scalar = f64>>(a: &CsrMatrix) {
            let b = B::from_csr_f64(a);
            assert_eq!(b.nrows(), a.nrows(), "{}", B::NAME);
            assert_eq!(b.ncols(), a.ncols(), "{}", B::NAME);
            assert!(b.scalar_nnz() >= a.nnz(), "{}", B::NAME);
            assert!(b.memory_bytes() >= b.scalar_nnz() * 8, "{}", B::NAME);
        }
        check::<CsrMatrix>(&a);
        check::<CscMatrix>(&a);
        check::<BcsrMatrix>(&a);
    }
}

#[cfg(feature = "storage-f32")]
mod f32_tolerance {
    use super::*;
    use sass_sparse::Scalar;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Single-precision storage must track the f64 result within a
        /// per-row bound of `(nnz_row + 2) · ε_f32` against the row's
        /// accumulated absolute magnitude — rounding once per stored
        /// value plus once per accumulation step.
        #[test]
        fn f32_products_within_single_precision_of_f64(a in symmetric_matrix()) {
            let x = probe(a.ncols());
            let want = a.mul_vec(&x);
            let xs: Vec<f32> = x.iter().map(|&v| v as f32).collect();

            fn check<B: SparseBackend<Scalar = f32>>(
                a: &CsrMatrix,
                xs: &[f32],
                want: &[f64],
            ) {
                let b = B::from_csr_f64(a);
                let got = b.mul_vec(xs);
                for (i, (g, w)) in got.iter().zip(want).enumerate() {
                    let (cols, vals) = a.row(i);
                    let scale: f64 = cols
                        .iter()
                        .zip(vals)
                        .map(|(&c, &v)| (v * xs[c as usize].to_f64()).abs())
                        .sum::<f64>()
                        .max(1e-30);
                    let eps = (vals.len() as f64 + 2.0) * f32::EPSILON as f64;
                    assert!(
                        (g.to_f64() - w).abs() <= eps * scale,
                        "{} row {i}: {} vs {w} (scale {scale})",
                        B::NAME,
                        g
                    );
                }
            }
            check::<CsrMatrix<f32>>(&a, &xs, &want);
            check::<CscMatrix<f32>>(&a, &xs, &want);
            check::<BcsrMatrix<f32>>(&a, &xs, &want);
        }
    }
}
