//! SIMD-vs-scalar parity for the dispatched microkernels in
//! [`sass_sparse::kernel`].
//!
//! Every level the running CPU supports is forced in turn through
//! [`kernel::set_level`] and held to the module's parity contract:
//!
//! - **`f64` kernels are bit-identical to the scalar oracle** — CSR/CSC/
//!   BCSR products (serial and threaded at forced worker counts 1/2/3/8),
//!   the LDLᵀ factorization and both solve shapes, Joule-heat scoring and
//!   the heat-filter scan all `assert_eq!` against the `Scalar` level.
//! - **`f32` kernels are toleranced** — held to the per-row
//!   `(nnz + 2)·ε_f32` bound established by `tests/backend_parity.rs`
//!   (SIMD tiers may reassociate row sums).
//!
//! Ragged tails (`nnz % lane width ≠ 0`) and empty rows are pinned by a
//! deterministic matrix whose row lengths sweep `0..=17`, on top of the
//! randomized coverage. `kernel::set_level` and `pool::set_threads` are
//! both process-global, so every test here serializes on one guard mutex.

use proptest::prelude::*;
use sass_sparse::kernel::{self, SimdLevel};
use sass_sparse::ordering::OrderingKind;
// Without `parallel`, the inherent `par_mul_vec_into` methods don't
// exist; the `SparseBackend` trait supplies an inline serial fallback, so
// the worker sweeps compile in the `--no-default-features` CI lanes too.
// (With `parallel` on, the inherent methods shadow the trait and the
// import would be unused.)
#[cfg(not(feature = "parallel"))]
use sass_sparse::SparseBackend;
use sass_sparse::{pool, BcsrMatrix, CooMatrix, CscMatrix, CsrMatrix, DenseBlock, LdlFactor};

/// Serializes tests that override the global SIMD level or the global
/// pool's lane count. (`unwrap_or_else` keeps the guard usable after a
/// poisoning assertion failure.)
fn state_guard() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Every level this process can actually run: only tiers whose kernels
/// are compiled for this target (`set_level` rejects the rest), at or
/// below the detected tier (`set_level` clamps above it) — anything else
/// would silently alias another level instead of testing a distinct
/// kernel.
fn levels() -> Vec<SimdLevel> {
    [
        SimdLevel::Scalar,
        SimdLevel::Sse2,
        SimdLevel::Avx2,
        SimdLevel::Neon,
    ]
    .into_iter()
    .filter(|&l| l.compiled() && l <= kernel::detected())
    .collect()
}

/// Runs `f` with the dispatch level forced to `level`, restoring the
/// detected level afterwards. Callers hold [`state_guard`].
fn at_level<T>(level: SimdLevel, f: impl FnOnce() -> T) -> T {
    kernel::set_level(Some(level));
    let out = f();
    kernel::set_level(None);
    out
}

/// Strategy: a random symmetric matrix of size `n in [1, 48]` whose
/// stored values are all nonzero (same construction as
/// `tests/backend_parity.rs`, so the two suites pin the same population).
fn symmetric_matrix() -> impl Strategy<Value = CsrMatrix> {
    (1usize..48).prop_flat_map(|n| {
        let entries = proptest::collection::vec((0usize..n, 0usize..n, 0.1f64..2.0), 0..(4 * n));
        (Just(n), entries).prop_map(|(n, entries)| {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, 1.0 + (i % 7) as f64);
            }
            for &(i, j, mag) in &entries {
                if i != j {
                    let (a, b) = (i.min(j), i.max(j));
                    let v = if (a + b) % 2 == 0 { mag } else { -mag };
                    coo.push_sym(a, b, v);
                }
            }
            coo.to_csr()
        })
    })
}

/// Random sparse SPD matrix (diagonally dominant), `n in [2, 40]`.
fn spd_matrix() -> impl Strategy<Value = CsrMatrix> {
    (2usize..40).prop_flat_map(|n| {
        let entries = proptest::collection::vec((0usize..n, 0usize..n, -1.0f64..1.0), 0..(4 * n));
        (Just(n), entries).prop_map(|(n, entries)| {
            let mut coo = CooMatrix::new(n, n);
            let mut row_abs = vec![0.0f64; n];
            for &(i, j, v) in &entries {
                if i != j {
                    coo.push_sym(i.min(j), i.max(j), v);
                    row_abs[i] += v.abs();
                    row_abs[j] += v.abs();
                }
            }
            for (i, &ra) in row_abs.iter().enumerate() {
                coo.push(i, i, ra + 1.0);
            }
            coo.to_csr()
        })
    })
}

/// A deterministic probe vector with varied magnitudes.
fn probe(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 37 + 11) % 101) as f64 * 0.04 - 2.0)
        .collect()
}

/// Deterministic CSR matrix whose row lengths sweep `0..=17`: every
/// `nnz % lane-width` residue for 2-, 4- and 8-wide kernels, plus empty
/// rows, in one fixed pattern.
fn ragged_matrix() -> CsrMatrix {
    let ncols = 40usize;
    let mut coo = CooMatrix::new(18, ncols);
    for (i, len) in (0usize..=17).enumerate() {
        for k in 0..len {
            let j = (i * 7 + k * 3) % ncols;
            coo.push(i, j, ((i * 19 + k * 5) % 13) as f64 * 0.3 - 1.7);
        }
    }
    coo.to_csr()
}

/// Everything an LDLᵀ factorization computes, through the public API: the
/// pivots, a single-vector solve and an 11-column blocked solve (11 = one
/// full 8-wide chunk through the SIMD sweeps plus a ragged 3-wide chunk
/// through the generic ones).
fn ldl_fingerprint(a: &CsrMatrix) -> (Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
    let f = LdlFactor::new(a, OrderingKind::MinDegree).unwrap();
    let n = a.nrows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) as f64 * 0.37).sin()).collect();
    let x = f.solve(&b);
    let cols: Vec<Vec<f64>> = (0..11)
        .map(|c| {
            (0..n)
                .map(|i| ((i * (2 * c + 5)) as f64 * 0.19).cos())
                .collect()
        })
        .collect();
    let blocked = f.solve_block(&DenseBlock::from_columns(&cols));
    (f.d().to_vec(), x, blocked.into_columns())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every SIMD tier reproduces the scalar f64 product bit for bit, on
    /// every backend, serial and threaded at forced worker counts
    /// 1/2/3/8.
    #[test]
    fn f64_products_bitwise_across_levels_and_workers(a in symmetric_matrix()) {
        let _guard = state_guard();
        let x = probe(a.ncols());
        pool::set_threads(1);
        let want = at_level(SimdLevel::Scalar, || a.mul_vec(&x));

        let csc = CscMatrix::from_csr(&a);
        let bcsr2 = BcsrMatrix::from_csr(&a, 2);
        let bcsr4 = BcsrMatrix::from_csr(&a, 4);
        let mut y = vec![0.0; a.nrows()];
        for level in levels() {
            kernel::set_level(Some(level));
            prop_assert_eq!(&a.mul_vec(&x), &want, "csr serial, {:?}", level);
            prop_assert_eq!(&csc.mul_vec(&x), &want, "csc serial, {:?}", level);
            prop_assert_eq!(&bcsr2.mul_vec(&x), &want, "bcsr2 serial, {:?}", level);
            prop_assert_eq!(&bcsr4.mul_vec(&x), &want, "bcsr4 serial, {:?}", level);
            for workers in [1usize, 2, 3, 8] {
                pool::set_threads(workers);
                a.par_mul_vec_into(&x, &mut y);
                prop_assert_eq!(&y, &want, "csr par, {:?}, workers {}", level, workers);
                csc.par_mul_vec_into(&x, &mut y);
                prop_assert_eq!(&y, &want, "csc par, {:?}, workers {}", level, workers);
                bcsr2.par_mul_vec_into(&x, &mut y);
                prop_assert_eq!(&y, &want, "bcsr2 par, {:?}, workers {}", level, workers);
                bcsr4.par_mul_vec_into(&x, &mut y);
                prop_assert_eq!(&y, &want, "bcsr4 par, {:?}, workers {}", level, workers);
            }
            pool::set_threads(1);
        }
        kernel::set_level(None);
        pool::set_threads(0);
    }

    /// Every SIMD tier reproduces the scalar LDLᵀ pipeline bit for bit —
    /// pivots, single-vector solve, 11-column blocked solve — at forced
    /// worker counts 1/2/3/8.
    #[test]
    fn ldl_pipeline_bitwise_across_levels_and_workers(a in spd_matrix()) {
        let _guard = state_guard();
        pool::set_threads(1);
        let want = at_level(SimdLevel::Scalar, || ldl_fingerprint(&a));
        for level in levels() {
            kernel::set_level(Some(level));
            for workers in [1usize, 2, 3, 8] {
                pool::set_threads(workers);
                let got = ldl_fingerprint(&a);
                prop_assert_eq!(&got, &want, "{:?}, workers {}", level, workers);
            }
            pool::set_threads(1);
        }
        kernel::set_level(None);
        pool::set_threads(0);
    }

    /// Joule-heat scoring is bit-identical to scalar at every tier, for
    /// random embeddings and edge endpoint patterns.
    #[test]
    fn joule_heat_bitwise_across_levels(
        n in 1usize..32,
        r in 1usize..4,
        edges in proptest::collection::vec((0u32..1024, 0u32..1024, 0.1f64..2.0), 0..40),
    ) {
        let _guard = state_guard();
        let h: Vec<f64> = (0..n * r).map(|k| ((k * 29 + 7) % 61) as f64 * 0.05 - 1.4).collect();
        let us: Vec<u32> = edges.iter().map(|&(u, _, _)| u % n as u32).collect();
        let vs: Vec<u32> = edges.iter().map(|&(_, v, _)| v % n as u32).collect();
        let ws: Vec<f64> = edges.iter().map(|&(_, _, w)| w).collect();
        let mut want = vec![0.0; edges.len()];
        at_level(SimdLevel::Scalar, || kernel::joule_heat(&us, &vs, &ws, &h, n, &mut want));
        let mut got = vec![0.0; edges.len()];
        for level in levels() {
            got.iter_mut().for_each(|g| *g = -1.0);
            at_level(level, || kernel::joule_heat(&us, &vs, &ws, &h, n, &mut got));
            prop_assert_eq!(&got, &want, "{:?}", level);
        }
    }

    /// The heat-filter scan selects the same `(id, heat)` pairs in the
    /// same order at every tier, with NaN/∞/zero heats salted in.
    #[test]
    fn heat_scan_bitwise_across_levels(
        mut heats in proptest::collection::vec(-0.5f64..2.0, 0..80),
        cutoff in 0.0f64..1.5,
    ) {
        let _guard = state_guard();
        for (k, h) in heats.iter_mut().enumerate() {
            match k % 11 {
                3 => *h = f64::NAN,
                5 => *h = f64::INFINITY,
                7 => *h = f64::NEG_INFINITY,
                9 => *h = 0.0,
                _ => {}
            }
        }
        let ids: Vec<u32> = (0..heats.len() as u32).map(|k| k * 3 + 1).collect();
        let want = at_level(SimdLevel::Scalar, || kernel::scan_heat_candidates(&ids, &heats, cutoff));
        for level in levels() {
            let got = at_level(level, || kernel::scan_heat_candidates(&ids, &heats, cutoff));
            prop_assert_eq!(&got, &want, "{:?}", level);
        }
    }
}

/// Ragged row tails (`nnz % lane width` sweeping every residue) and empty
/// rows are bit-exact at every tier, including offset sub-ranges as the
/// pool hands them out.
#[test]
fn ragged_and_empty_rows_bitwise_across_levels() {
    let _guard = state_guard();
    let a = ragged_matrix();
    let x = probe(a.ncols());
    let want = at_level(SimdLevel::Scalar, || a.mul_vec(&x));
    for level in levels() {
        kernel::set_level(Some(level));
        assert_eq!(a.mul_vec(&x), want, "{level:?} full");
        // Offset sub-range straight through the dispatcher, as
        // `par_spmv` chunks it.
        let mut part = vec![0.0; 7];
        kernel::spmv_range_f64(a.indptr(), a.indices(), a.data(), &x, &mut part, 5, 12);
        assert_eq!(part, want[5..12], "{level:?} subrange");
        kernel::set_level(None);
    }
    // The BCSR tiers see the same ragged pattern through block padding.
    for b in [2usize, 4] {
        let blocked = BcsrMatrix::from_csr(&a, b);
        for level in levels() {
            let got = at_level(level, || blocked.mul_vec(&x));
            assert_eq!(got, want, "bcsr{b} {level:?}");
        }
    }
}

/// The `SASS_NO_SIMD` escape hatch (and the `simd` feature gate) pin the
/// detected level; CI runs this whole binary once with the variable set
/// to prove the forced-scalar path end to end.
#[test]
fn sass_no_simd_env_is_respected() {
    // The sanctioned read path: kernel::detect consults the same cached
    // config::no_simd value, so the two can never disagree mid-process.
    let forced = sass_sparse::config::no_simd();
    if forced || !cfg!(feature = "simd") {
        assert_eq!(kernel::detected(), SimdLevel::Scalar);
        assert_eq!(levels(), vec![SimdLevel::Scalar]);
    } else {
        #[cfg(target_arch = "x86_64")]
        assert!(kernel::detected() >= SimdLevel::Sse2);
        #[cfg(target_arch = "aarch64")]
        assert_eq!(kernel::detected(), SimdLevel::Neon);
    }
    // `active` can only sit at or below `detected`, whatever overrides
    // other tests installed before this one took the guard.
    let _guard = state_guard();
    assert!(kernel::active() <= kernel::detected());
}

#[cfg(feature = "storage-f32")]
mod f32_tolerance {
    use super::*;
    // `from_csr_f64` is a `SparseBackend` method, needed here regardless
    // of the `parallel`-gated import above.
    use sass_sparse::{Scalar, SparseBackend};

    /// Per-row single-precision check: `got` tracks the f64 reference
    /// within `(nnz_row + 2)·ε_f32` of the row's accumulated absolute
    /// magnitude — the bound `tests/backend_parity.rs` establishes for
    /// the scalar f32 path, unchanged for the SIMD tiers.
    fn assert_rows_close(a: &CsrMatrix, xs: &[f32], got: &[f32], want: &[f64], tag: &str) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let (cols, vals) = a.row(i);
            let scale: f64 = cols
                .iter()
                .zip(vals)
                .map(|(&c, &v)| (v * xs[c as usize].to_f64()).abs())
                .sum::<f64>()
                .max(1e-30);
            let eps = (vals.len() as f64 + 2.0) * f32::EPSILON as f64;
            assert!(
                (g.to_f64() - w).abs() <= eps * scale,
                "{tag} row {i}: {g} vs {w} (scale {scale})"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// f32 products stay within single precision of the f64 result at
        /// every tier, on every backend, serial and threaded; and the
        /// threaded CSR product is bit-identical to its serial form at
        /// the same tier (chunking never changes a row's sum).
        #[test]
        fn f32_products_toleranced_across_levels_and_workers(a in symmetric_matrix()) {
            let _guard = state_guard();
            let x = probe(a.ncols());
            let want = a.mul_vec(&x);
            let xs: Vec<f32> = x.iter().map(|&v| v as f32).collect();

            let csr = CsrMatrix::<f32>::from_csr_f64(&a);
            let csc = CscMatrix::<f32>::from_csr_f64(&a);
            let bcsr4 = BcsrMatrix::<f32>::from_csr_f64(&a);
            let mut y = vec![0.0f32; a.nrows()];
            for level in levels() {
                kernel::set_level(Some(level));
                let serial = csr.mul_vec(&xs);
                assert_rows_close(&a, &xs, &serial, &want, &format!("csr {level:?}"));
                assert_rows_close(&a, &xs, &csc.mul_vec(&xs), &want, &format!("csc {level:?}"));
                assert_rows_close(&a, &xs, &bcsr4.mul_vec(&xs), &want, &format!("bcsr {level:?}"));
                for workers in [1usize, 2, 3, 8] {
                    pool::set_threads(workers);
                    csr.par_mul_vec_into(&xs, &mut y);
                    prop_assert_eq!(&y, &serial, "csr par, {:?}, workers {}", level, workers);
                    pool::set_threads(0);
                }
            }
            kernel::set_level(None);
        }
    }

    /// Inconsistent CSR arrays behave identically at every tier — the
    /// gather tier validates per row, the others panic via safe indexing
    /// — so no level turns a malformed matrix into out-of-bounds reads:
    /// a non-monotone (empty-range) row contributes 0 like the scalar
    /// loop, and extents/columns out of range panic.
    #[test]
    fn f32_spmv_inconsistent_inputs_match_scalar_at_every_level() {
        let _guard = state_guard();
        for level in levels() {
            kernel::set_level(Some(level));
            let mut y = vec![-1.0f32; 2];
            kernel::spmv_range_f32(&[4, 0, 4], &[0; 4], &[1.0; 4], &[1.0; 4], &mut y, 0, 2);
            assert_eq!(y, [0.0, 4.0], "{level:?} non-monotone row is empty");
            let extent = std::panic::catch_unwind(|| {
                let mut y = vec![0.0f32; 1];
                kernel::spmv_range_f32(&[0, 9], &[0, 1], &[1.0; 2], &[1.0; 4], &mut y, 0, 1);
            });
            assert!(extent.is_err(), "{level:?} indptr past indices/data");
            let column = std::panic::catch_unwind(|| {
                let mut y = vec![0.0f32; 1];
                kernel::spmv_range_f32(&[0, 2], &[0, 9], &[1.0; 2], &[1.0; 2], &mut y, 0, 1);
            });
            assert!(column.is_err(), "{level:?} column index past x");
            kernel::set_level(None);
        }
    }

    /// The f32 ragged/empty-row sweep at every tier (masked AVX2 tails,
    /// SSE2 remainders, scalar tails all hit every residue).
    #[test]
    fn f32_ragged_rows_toleranced_across_levels() {
        let _guard = state_guard();
        let a = ragged_matrix();
        let x = probe(a.ncols());
        let want = a.mul_vec(&x);
        let xs: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        let csr = CsrMatrix::<f32>::from_csr_f64(&a);
        for level in levels() {
            let got = at_level(level, || csr.mul_vec(&xs));
            assert_rows_close(&a, &xs, &got, &want, &format!("ragged {level:?}"));
        }
    }
}
