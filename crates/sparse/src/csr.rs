// Sparse kernels index multiple parallel arrays; explicit loops are clearer.
#![allow(clippy::needless_range_loop)]

use crate::{dense, CooMatrix, Permutation, Result, Scalar, SparseError};

/// Compressed sparse row matrix with [`Scalar`] values (`f64` unless
/// named otherwise) and `u32` column indices.
///
/// This is the workhorse format of the workspace: graph Laplacians,
/// adjacency matrices and preconditioner operators are all stored as
/// `CsrMatrix`. Symmetric matrices store both triangles (full storage),
/// which keeps `y = A·x` a single forward sweep. The scalar parameter
/// defaults to `f64`, so `CsrMatrix` written anywhere in the workspace
/// still names the full-precision matrix; `CsrMatrix<f32>` (behind the
/// `storage-f32` feature) halves value storage for ranking-precision
/// workloads — see the [`crate::backend`] module for when that trade
/// makes sense.
///
/// # Example
///
/// ```
/// use sass_sparse::CooMatrix;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push_sym(0, 1, -1.0);
/// coo.push(0, 0, 1.0);
/// coo.push(1, 1, 1.0);
/// let a = coo.to_csr(); // the 2-node path-graph Laplacian
/// let y = a.mul_vec(&[1.0, -1.0]);
/// assert_eq!(y, vec![2.0, -2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<S: Scalar = f64> {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    data: Vec<S>,
}

impl<S: Scalar> CsrMatrix<S> {
    /// Builds a CSR matrix from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are structurally inconsistent (wrong `indptr`
    /// length, non-monotone `indptr`, index/data length mismatch, or a
    /// column index out of range). Rows need not be column-sorted, but all
    /// constructors in this crate produce sorted rows and several kernels
    /// ([`CsrMatrix::get`]) rely on it.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        data: Vec<S>,
    ) -> Self {
        assert_eq!(indptr.len(), nrows + 1, "indptr length must be nrows + 1");
        assert_eq!(indices.len(), data.len(), "indices/data length mismatch");
        assert_eq!(indptr[nrows], indices.len(), "indptr end mismatch");
        assert!(
            indptr.windows(2).all(|w| w[0] <= w[1]),
            "indptr not monotone"
        );
        assert!(
            indices.iter().all(|&c| (c as usize) < ncols),
            "column index out of range"
        );
        CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            data,
        }
    }

    /// Disassembles the matrix into `(nrows, ncols, indptr, indices, data)`
    /// — the inverse of [`CsrMatrix::from_raw_parts`], used by the other
    /// storage backends to steal CSR arrays without copying.
    pub fn into_raw_parts(self) -> (usize, usize, Vec<usize>, Vec<u32>, Vec<S>) {
        (self.nrows, self.ncols, self.indptr, self.indices, self.data)
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Row pointer array (`nrows + 1` entries).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices, row by row.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Stored values, row by row.
    pub fn data(&self) -> &[S] {
        &self.data
    }

    /// Mutable access to the stored values (pattern is immutable).
    pub fn data_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Approximate heap memory held by the matrix, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<usize>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.data.len() * S::BYTES
    }

    /// The `(columns, values)` pair for row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row(&self, i: usize) -> (&[u32], &[S]) {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// Value at `(i, j)`, zero when not stored.
    ///
    /// Requires rows to be column-sorted (all constructors here guarantee
    /// that). Runs in `O(log nnz(row i))`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn get(&self, i: usize, j: usize) -> S {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&(j as u32)) {
            Ok(p) => vals[p],
            Err(_) => S::ZERO,
        }
    }

    /// Dense matrix-vector product `y = A·x` into a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[S]) -> Vec<S> {
        let mut y = vec![S::ZERO; self.nrows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Matrix-vector product into a caller-provided buffer: `y = A·x`,
    /// routed through the width-matched [`crate::kernel`] SpMV dispatcher
    /// (scalar fallback when SIMD is unavailable or disabled).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn mul_vec_into(&self, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), self.ncols, "mul_vec: x length mismatch");
        assert_eq!(y.len(), self.nrows, "mul_vec: y length mismatch");
        S::spmv_range(&self.indptr, &self.indices, &self.data, x, y, 0, self.nrows);
    }

    /// Matrix-vector product into a caller-provided buffer, using the
    /// threaded fast path when the matrix is large enough to amortize it.
    ///
    /// Falls back to [`CsrMatrix::mul_vec_into`] below a size crossover, and
    /// produces **bit-for-bit identical** results to it in all cases (rows
    /// are accumulated by the same loop in the same order; only the row →
    /// worker assignment is parallel). This is what
    /// [`LinearOperator::apply`](crate::LinearOperator) routes through.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    #[cfg(feature = "parallel")]
    pub fn par_mul_vec_into(&self, x: &[S], y: &mut [S]) {
        crate::parallel::par_spmv(self, x, y);
    }

    /// Allocating form of [`CsrMatrix::par_mul_vec_into`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    #[cfg(feature = "parallel")]
    pub fn par_mul_vec(&self, x: &[S]) -> Vec<S> {
        let mut y = vec![S::ZERO; self.nrows];
        self.par_mul_vec_into(x, &mut y);
        y
    }

    /// The transpose `Aᵀ` as a new CSR matrix (rows come out column-sorted).
    ///
    /// This counting-sort pass is the crate's transpose-mirror machinery:
    /// [`crate::CscMatrix`] uses it verbatim (the CSR arrays of `Aᵀ` *are*
    /// the CSC arrays of `A`), and the LDLᵀ factor derives its backward-
    /// sweep mirror the same way.
    pub fn transpose(&self) -> CsrMatrix<S> {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut data = vec![S::ZERO; self.nnz()];
        let mut next = counts;
        for i in 0..self.nrows {
            for p in self.indptr[i]..self.indptr[i + 1] {
                let c = self.indices[p] as usize;
                let q = next[c];
                indices[q] = i as u32;
                data[q] = self.data[p];
                next[c] += 1;
            }
        }
        CsrMatrix::from_raw_parts(self.ncols, self.nrows, indptr, indices, data)
    }

    /// Converts the stored values to another scalar width, keeping the
    /// pattern byte-identical. `f64 → f64` and `f32 → f64` are exact;
    /// `f64 → f32` rounds each value to nearest once (the crate's single
    /// lossy conversion point — see [`Scalar::from_f64`]).
    pub fn to_scalar<T: Scalar>(&self) -> CsrMatrix<T> {
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            data: self.data.iter().map(|v| T::from_f64(v.to_f64())).collect(),
        }
    }

    /// Dense representation, for tests and tiny matrices only.
    pub fn to_dense(&self) -> Vec<Vec<S>> {
        let mut out = vec![vec![S::ZERO; self.ncols]; self.nrows];
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                out[i][*c as usize] = *v;
            }
        }
        out
    }
}

/// Full-precision (`f64`) conveniences: everything that interacts with the
/// assembly ([`CooMatrix`]), the dense helpers, or the factorization stack
/// — all of which compute in `f64` on purpose.
impl CsrMatrix {
    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            data: vec![1.0; n],
        }
    }

    /// Quadratic form `xᵀ A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or the matrix is not square.
    pub fn quad_form(&self, x: &[f64]) -> f64 {
        assert_eq!(self.nrows, self.ncols, "quad_form requires a square matrix");
        let y = self.mul_vec(x);
        dense::dot(x, &y)
    }

    /// Relative residual `‖A·x − b‖₂ / ‖b‖₂` (absolute norm if `b = 0`).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn residual_norm(&self, x: &[f64], b: &[f64]) -> f64 {
        assert_eq!(b.len(), self.nrows, "residual: b length mismatch");
        let mut r = self.mul_vec(x);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri -= bi;
        }
        let bn = dense::norm2(b);
        if bn > 0.0 {
            dense::norm2(&r) / bn
        } else {
            dense::norm2(&r)
        }
    }

    /// Checks structural and numerical symmetry to tolerance `tol`
    /// (relative to the largest matching pair magnitude).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr {
            return false;
        }
        // Both are row-sorted, so patterns and values can be compared directly.
        if t.indices != self.indices {
            return false;
        }
        self.data
            .iter()
            .zip(&t.data)
            .all(|(&a, &b)| (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0))
    }

    /// The diagonal of the matrix as a dense vector.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn diagonal(&self) -> Vec<f64> {
        assert_eq!(self.nrows, self.ncols, "diagonal requires a square matrix");
        (0..self.nrows).map(|i| self.get(i, i)).collect()
    }

    /// Symmetric permutation `B = P A Pᵀ`, i.e. `B[p(i), p(j)] = A[i, j]`
    /// where `p = perm.new_of_old()` maps old indices to new ones.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if the permutation length does
    /// not match, or [`SparseError::NotSquare`] for rectangular input.
    pub fn permute_sym(&self, perm: &Permutation) -> Result<CsrMatrix> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        if perm.len() != self.nrows {
            return Err(SparseError::ShapeMismatch {
                context: format!(
                    "permutation of length {} applied to {} rows",
                    perm.len(),
                    self.nrows
                ),
            });
        }
        let p = perm.new_of_old();
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                coo.push(p[i], p[*c as usize], *v);
            }
        }
        Ok(coo.to_csr())
    }

    /// Extracts the principal submatrix on the rows/columns for which
    /// `keep[i]` is true. Returns the submatrix and the vector mapping new
    /// indices to old ones.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != nrows` or the matrix is not square.
    pub fn principal_submatrix(&self, keep: &[bool]) -> (CsrMatrix, Vec<usize>) {
        assert_eq!(
            self.nrows, self.ncols,
            "principal submatrix of square matrix"
        );
        assert_eq!(keep.len(), self.nrows, "keep mask length mismatch");
        let mut new_of_old = vec![usize::MAX; self.nrows];
        let mut old_of_new = Vec::new();
        for (i, &k) in keep.iter().enumerate() {
            if k {
                new_of_old[i] = old_of_new.len();
                old_of_new.push(i);
            }
        }
        let m = old_of_new.len();
        let mut indptr = Vec::with_capacity(m + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0usize);
        for &old_i in &old_of_new {
            let (cols, vals) = self.row(old_i);
            for (c, v) in cols.iter().zip(vals) {
                let nj = new_of_old[*c as usize];
                if nj != usize::MAX {
                    indices.push(nj as u32);
                    data.push(*v);
                }
            }
            indptr.push(indices.len());
        }
        (
            CsrMatrix::from_raw_parts(m, m, indptr, indices, data),
            old_of_new,
        )
    }

    /// Converts back to triplet form.
    pub fn to_coo(&self) -> CooMatrix {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                coo.push(i, *c as usize, *v);
            }
        }
        coo
    }

    /// Frobenius norm of `A − B`; both patterns may differ.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn frobenius_diff(&self, other: &CsrMatrix) -> f64 {
        assert_eq!(self.nrows, other.nrows, "frobenius_diff: row mismatch");
        assert_eq!(self.ncols, other.ncols, "frobenius_diff: col mismatch");
        let mut acc = 0.0;
        for i in 0..self.nrows {
            let (ca, va) = self.row(i);
            let (cb, vb) = other.row(i);
            let (mut pa, mut pb) = (0, 0);
            while pa < ca.len() || pb < cb.len() {
                let a_col = ca.get(pa).copied().unwrap_or(u32::MAX);
                let b_col = cb.get(pb).copied().unwrap_or(u32::MAX);
                let d = if a_col == b_col {
                    let d = va[pa] - vb[pb];
                    pa += 1;
                    pb += 1;
                    d
                } else if a_col < b_col {
                    let d = va[pa];
                    pa += 1;
                    d
                } else {
                    let d = -vb[pb];
                    pb += 1;
                    d
                };
                acc += d * d;
            }
        }
        acc.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_path3() -> CsrMatrix {
        // Path graph 0-1-2 with unit weights.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 2.0);
        coo.push(2, 2, 1.0);
        coo.push_sym(0, 1, -1.0);
        coo.push_sym(1, 2, -1.0);
        coo.to_csr()
    }

    #[test]
    fn spmv_matches_dense() {
        let a = laplacian_path3();
        let y = a.mul_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn quad_form_nonnegative_for_laplacian() {
        let a = laplacian_path3();
        assert!(a.quad_form(&[0.3, -1.2, 2.0]) >= 0.0);
        assert!(a.quad_form(&[1.0, 1.0, 1.0]).abs() < 1e-15);
    }

    #[test]
    fn transpose_of_symmetric_is_identity_op() {
        let a = laplacian_path3();
        let t = a.transpose();
        assert_eq!(a, t);
        assert!(a.is_symmetric(1e-14));
    }

    #[test]
    fn transpose_rectangular() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 5.0);
        coo.push(1, 0, 3.0);
        let a = coo.to_csr();
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), 3.0);
    }

    #[test]
    fn diagonal_extraction() {
        let a = laplacian_path3();
        assert_eq!(a.diagonal(), vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn permute_sym_preserves_quad_form() {
        let a = laplacian_path3();
        let perm = Permutation::from_new_of_old(vec![2, 0, 1]).unwrap();
        let b = a.permute_sym(&perm).unwrap();
        // x on old indexing corresponds to x' with x'[p[i]] = x[i].
        let x = [1.0, -2.0, 0.5];
        let mut xp = [0.0; 3];
        for i in 0..3 {
            xp[perm.new_of_old()[i]] = x[i];
        }
        assert!((a.quad_form(&x) - b.quad_form(&xp)).abs() < 1e-14);
    }

    #[test]
    fn principal_submatrix_drops_row() {
        let a = laplacian_path3();
        let (sub, map) = a.principal_submatrix(&[true, true, false]);
        assert_eq!(map, vec![0, 1]);
        assert_eq!(sub.get(0, 0), 1.0);
        assert_eq!(sub.get(1, 1), 2.0);
        assert_eq!(sub.get(0, 1), -1.0);
        assert_eq!(sub.nnz(), 4);
    }

    #[test]
    fn identity_behaves() {
        let i3 = CsrMatrix::identity(3);
        let x = [4.0, 5.0, 6.0];
        assert_eq!(i3.mul_vec(&x), x.to_vec());
    }

    #[test]
    fn get_missing_is_zero() {
        let a = laplacian_path3();
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn frobenius_diff_detects_changes() {
        let a = laplacian_path3();
        let mut b = a.clone();
        assert_eq!(a.frobenius_diff(&b), 0.0);
        b.data_mut()[0] += 3.0;
        assert!((a.frobenius_diff(&b) - 3.0).abs() < 1e-14);
    }

    #[test]
    fn to_coo_round_trip() {
        let a = laplacian_path3();
        let b = a.to_coo().to_csr();
        assert_eq!(a, b);
    }

    #[test]
    fn raw_parts_round_trip() {
        let a = laplacian_path3();
        let (nr, nc, ip, ix, d) = a.clone().into_raw_parts();
        let b = CsrMatrix::from_raw_parts(nr, nc, ip, ix, d);
        assert_eq!(a, b);
    }

    #[test]
    fn to_scalar_identity_is_exact() {
        let a = laplacian_path3();
        let b: CsrMatrix<f64> = a.to_scalar();
        assert_eq!(a, b);
    }

    #[cfg(feature = "storage-f32")]
    #[test]
    fn to_scalar_f32_keeps_pattern_and_rounds_values() {
        let a = laplacian_path3();
        let b: CsrMatrix<f32> = a.to_scalar();
        assert_eq!(a.indptr(), b.indptr());
        assert_eq!(a.indices(), b.indices());
        for (wide, narrow) in a.data().iter().zip(b.data()) {
            assert_eq!(*narrow as f64, *wide); // these values are exact in f32
        }
        let back: CsrMatrix<f64> = b.to_scalar();
        assert_eq!(a, back, "f32 -> f64 widening is exact");
    }

    #[test]
    #[should_panic(expected = "indptr length")]
    fn bad_raw_parts_panic() {
        let _ = CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
    }
}
