//! Fill-reducing orderings for sparse symmetric factorization.
//!
//! Three classic algorithms are provided, selected via [`OrderingKind`]:
//!
//! - **Reverse Cuthill–McKee** (`Rcm`): breadth-first profile reduction,
//!   good for banded/mesh matrices,
//! - **Minimum degree** (`MinDegree`): quotient-graph elimination with
//!   element absorption, excellent for the tree-plus-a-few-edges
//!   sparsifiers this workspace factorizes in its inner loop,
//! - **Nested dissection** (`NestedDissection`): recursive BFS level-set
//!   separators, the right choice for 2-D/3-D mesh Laplacians used as
//!   direct-solver baselines.
//!
//! All orderings operate on the sparsity pattern only and return a
//! [`Permutation`] in new-of-old form.

use crate::{CsrMatrix, Permutation, Result};

/// Which fill-reducing ordering to use for a factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum OrderingKind {
    /// Keep the natural (input) order.
    Natural,
    /// Reverse Cuthill–McKee.
    Rcm,
    /// Quotient-graph minimum degree (default; best for near-tree graphs).
    #[default]
    MinDegree,
    /// BFS level-set nested dissection (best for mesh-like graphs).
    NestedDissection,
}

/// Computes a fill-reducing permutation for the pattern of `a`.
///
/// The matrix values are ignored; the pattern is assumed symmetric (callers
/// in this workspace always pass symmetric matrices).
///
/// # Errors
///
/// Currently infallible in practice; the `Result` is kept for future
/// orderings that may validate their input.
pub fn compute(a: &CsrMatrix, kind: OrderingKind) -> Result<Permutation> {
    let n = a.nrows();
    let order = match kind {
        OrderingKind::Natural => (0..n).collect(),
        OrderingKind::Rcm => rcm_order(a),
        OrderingKind::MinDegree => min_degree_order(a),
        OrderingKind::NestedDissection => nested_dissection_order(a),
    };
    Permutation::from_old_of_new(order)
}

/// Structural degree of each node (self-loops excluded).
fn degrees(a: &CsrMatrix) -> Vec<usize> {
    let n = a.nrows();
    (0..n)
        .map(|i| {
            let (cols, _) = a.row(i);
            cols.iter().filter(|&&c| c as usize != i).count()
        })
        .collect()
}

/// BFS from `start` over nodes with `allowed` stamp, returning the visit
/// order and filling `level` (distances). Only nodes with
/// `stamp[v] == allowed` are touched.
fn bfs_levels(
    a: &CsrMatrix,
    start: usize,
    stamp: &[u32],
    allowed: u32,
    level: &mut [u32],
    visited_mark: &mut [u32],
    mark: u32,
) -> Vec<usize> {
    let mut order = vec![start];
    level[start] = 0;
    visited_mark[start] = mark;
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        let (cols, _) = a.row(u);
        for &c in cols {
            let v = c as usize;
            if v != u && stamp[v] == allowed && visited_mark[v] != mark {
                visited_mark[v] = mark;
                level[v] = level[u] + 1;
                order.push(v);
            }
        }
    }
    order
}

/// Finds a pseudo-peripheral node of the component of `start` by repeated
/// BFS to the farthest lowest-degree node.
#[allow(clippy::too_many_arguments)] // internal helper threading scratch buffers
fn pseudo_peripheral(
    a: &CsrMatrix,
    start: usize,
    stamp: &[u32],
    allowed: u32,
    level: &mut [u32],
    visited: &mut [u32],
    mark_base: &mut u32,
    deg: &[usize],
) -> usize {
    let mut u = start;
    let mut ecc = 0u32;
    for _ in 0..8 {
        *mark_base += 1;
        let order = bfs_levels(a, u, stamp, allowed, level, visited, *mark_base);
        let Some(&farthest) = order.last() else {
            unreachable!("bfs order contains at least the start node");
        };
        let last_level = level[farthest];
        if last_level <= ecc {
            return u;
        }
        ecc = last_level;
        // Farthest node with minimum degree.
        let far: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&v| level[v] == last_level)
            .collect();
        u = far
            .into_iter()
            .min_by_key(|&v| deg[v])
            .unwrap_or_else(|| unreachable!("the farthest bfs level is nonempty"));
    }
    u
}

fn rcm_order(a: &CsrMatrix) -> Vec<usize> {
    let n = a.nrows();
    let deg = degrees(a);
    let stamp = vec![0u32; n];
    let mut level = vec![0u32; n];
    let mut visited = vec![0u32; n];
    let mut mark = 0u32;
    let mut in_order = vec![false; n];
    let mut order = Vec::with_capacity(n);

    for seed in 0..n {
        if in_order[seed] {
            continue;
        }
        let start = pseudo_peripheral(
            a,
            seed,
            &stamp,
            0,
            &mut level,
            &mut visited,
            &mut mark,
            &deg,
        );
        // Cuthill–McKee BFS with degree-sorted neighbor expansion.
        let mut queue = vec![start];
        in_order[start] = true;
        let mut head = 0;
        let mut nbrs: Vec<usize> = Vec::new();
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            order.push(u);
            nbrs.clear();
            let (cols, _) = a.row(u);
            for &c in cols {
                let v = c as usize;
                if v != u && !in_order[v] {
                    in_order[v] = true;
                    nbrs.push(v);
                }
            }
            nbrs.sort_unstable_by_key(|&v| deg[v]);
            queue.extend_from_slice(&nbrs);
        }
    }
    order.reverse();
    order
}

/// Quotient-graph minimum-degree ordering with element absorption.
fn min_degree_order(a: &CsrMatrix) -> Vec<usize> {
    let n = a.nrows();
    if n == 0 {
        return Vec::new();
    }
    // Node neighbor lists (nodes only) and element membership.
    let mut nbr: Vec<Vec<u32>> = (0..n)
        .map(|i| {
            let (cols, _) = a.row(i);
            cols.iter().copied().filter(|&c| c as usize != i).collect()
        })
        .collect();
    let mut elems: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut bound: Vec<Vec<u32>> = Vec::new(); // element boundaries
    let mut elem_alive: Vec<bool> = Vec::new();
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = nbr.iter().map(Vec::len).collect();

    // Bucket queue keyed by degree with lazy invalidation.
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 2];
    for v in 0..n {
        buckets[degree[v]].push(v as u32);
    }
    let mut cursor = 0usize;
    let mut mark = vec![0u32; n];
    let mut stamp = 0u32;
    let mut order = Vec::with_capacity(n);
    let mut scratch: Vec<u32> = Vec::new();

    let mut eliminated = 0usize;
    while eliminated < n {
        // Pop the minimum-degree live node.
        let p = loop {
            while cursor < buckets.len() && buckets[cursor].is_empty() {
                cursor += 1;
            }
            debug_assert!(cursor < buckets.len(), "bucket queue exhausted early");
            let Some(cand) = buckets[cursor].pop() else {
                unreachable!("bucket {cursor} is nonempty after the skip loop");
            };
            let cand = cand as usize;
            if alive[cand] && degree[cand] == cursor {
                break cand;
            }
            // Stale entry: skip.
        };

        alive[p] = false;
        order.push(p);
        eliminated += 1;

        // Gather the new element boundary: union of live node-neighbors of p
        // and the boundaries of p's elements.
        stamp += 1;
        scratch.clear();
        for &v in &nbr[p] {
            let v = v as usize;
            if alive[v] && mark[v] != stamp {
                mark[v] = stamp;
                scratch.push(v as u32);
            }
        }
        for &e in &elems[p] {
            let e = e as usize;
            if !elem_alive[e] {
                continue;
            }
            for &v in &bound[e] {
                let v = v as usize;
                if alive[v] && mark[v] != stamp {
                    mark[v] = stamp;
                    scratch.push(v as u32);
                }
            }
            elem_alive[e] = false; // absorbed into the new element
        }
        let new_elem = bound.len() as u32;
        bound.push(scratch.clone());
        elem_alive.push(true);
        let old_elems = std::mem::take(&mut elems[p]);
        nbr[p].clear();

        // Update each boundary node: prune dead references, attach the new
        // element, recompute its exact degree by a stamped union scan.
        for &vref in &bound[new_elem as usize] {
            let v = vref as usize;
            nbr[v].retain(|&u| alive[u as usize]);
            elems[v].retain(|&e| elem_alive[e as usize] && !old_elems.contains(&e));
            elems[v].push(new_elem);

            stamp += 1;
            mark[v] = stamp;
            let mut dv = 0usize;
            for &u in &nbr[v] {
                let u = u as usize;
                if mark[u] != stamp {
                    mark[u] = stamp;
                    dv += 1;
                }
            }
            for &e in &elems[v] {
                for &u in &bound[e as usize] {
                    let u = u as usize;
                    if alive[u] && mark[u] != stamp {
                        mark[u] = stamp;
                        dv += 1;
                    }
                }
            }
            degree[v] = dv;
            if dv >= buckets.len() {
                buckets.resize(dv + 1, Vec::new());
            }
            buckets[dv].push(v as u32);
            cursor = cursor.min(dv);
        }
    }
    order
}

/// Nested dissection via BFS level-set separators.
///
/// Each region is bisected by the middle BFS level from a pseudo-peripheral
/// start; the two halves are ordered first (recursively) and the separator
/// last, the classic fill-reducing recipe for mesh-like graphs.
fn nested_dissection_order(a: &CsrMatrix) -> Vec<usize> {
    const LEAF: usize = 48;
    let n = a.nrows();
    let deg = degrees(a);
    let mut region = vec![0u32; n]; // current region id per node
    let mut level = vec![0u32; n];
    let mut visited = vec![0u32; n];
    let mut mark = 0u32;
    let mut next_region = 1u32;
    let mut order = Vec::with_capacity(n);

    /// Work items: either dissect a region or append a finished separator.
    enum Task {
        Region(u32, Vec<usize>),
        Emit(Vec<usize>),
    }

    let mut stack = vec![Task::Region(0, (0..n).collect())];
    while let Some(task) = stack.pop() {
        let (rid, nodes) = match task {
            Task::Emit(sep) => {
                order.extend(sep);
                continue;
            }
            Task::Region(rid, nodes) => (rid, nodes),
        };
        if nodes.is_empty() {
            continue;
        }
        // Decompose the region into connected components.
        mark += 1;
        let comp_mark = mark;
        let mut comps: Vec<Vec<usize>> = Vec::new();
        for &s in &nodes {
            if visited[s] == comp_mark || region[s] != rid {
                continue;
            }
            comps.push(bfs_levels(
                a,
                s,
                &region,
                rid,
                &mut level,
                &mut visited,
                comp_mark,
            ));
        }
        for comp in comps {
            if comp.len() <= LEAF {
                order.extend(comp);
                continue;
            }
            let start = pseudo_peripheral(
                a,
                comp[0],
                &region,
                rid,
                &mut level,
                &mut visited,
                &mut mark,
                &deg,
            );
            mark += 1;
            let bfs = bfs_levels(a, start, &region, rid, &mut level, &mut visited, mark);
            let Some(&deepest) = bfs.last() else {
                unreachable!("bfs order contains at least the start node");
            };
            let depth = level[deepest];
            if depth < 2 {
                order.extend(bfs);
                continue;
            }
            let mid = depth / 2;
            let mut part_a = Vec::new();
            let mut part_b = Vec::new();
            let mut sep = Vec::new();
            for &v in &bfs {
                if level[v] < mid {
                    part_a.push(v);
                } else if level[v] > mid {
                    part_b.push(v);
                } else {
                    sep.push(v);
                }
            }
            let ra = next_region;
            let rb = next_region + 1;
            next_region += 2;
            for &v in &part_a {
                region[v] = ra;
            }
            for &v in &part_b {
                region[v] = rb;
            }
            // LIFO: push the separator first so it is appended only after
            // both halves (pushed above it) have fully emitted.
            stack.push(Task::Emit(sep));
            stack.push(Task::Region(rb, part_b));
            stack.push(Task::Region(ra, part_a));
        }
    }
    order
}

/// A k-way vertex-separator decomposition of a symmetric sparsity
/// pattern: interior *domains* that share no edge with one another, plus
/// one *separator* carrying every cross-domain coupling.
///
/// Produced by [`vertex_separator`]; consumed by the sharded storage
/// backend ([`crate::ShardedBackend`]) and the substructured solver in
/// `sass-solver`. The decomposition is purely structural — matrix values
/// never influence it — and deterministic for a given pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeparatorParts {
    /// Domain id per vertex; [`SeparatorParts::SEPARATOR`] marks
    /// separator vertices.
    domain_of: Vec<u32>,
    /// Vertices of each domain, ascending in original numbering.
    domains: Vec<Vec<usize>>,
    /// Separator vertices, ascending in original numbering.
    separator: Vec<usize>,
}

impl SeparatorParts {
    /// Marker in [`SeparatorParts::domain_of`] for separator vertices.
    pub const SEPARATOR: u32 = u32::MAX;

    /// Number of interior domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Vertices of domain `d`, ascending in original numbering.
    ///
    /// # Panics
    ///
    /// Panics if `d >= domain_count()`.
    pub fn domain(&self, d: usize) -> &[usize] {
        &self.domains[d]
    }

    /// Separator vertices, ascending in original numbering.
    pub fn separator(&self) -> &[usize] {
        &self.separator
    }

    /// Domain id per vertex ([`SeparatorParts::SEPARATOR`] = separator).
    pub fn domain_of(&self) -> &[u32] {
        &self.domain_of
    }

    /// Total vertex count.
    pub fn n(&self) -> usize {
        self.domain_of.len()
    }

    /// The stable renumbering induced by the decomposition, in
    /// old-of-new form: domain 0's vertices first (in ascending original
    /// order), then domain 1's, …, and the separator last. Symmetrically
    /// permuting the matrix by this ordering produces the block-arrow
    /// shape the substructured solver factorizes.
    pub fn renumbering(&self) -> crate::Result<Permutation> {
        let mut old_of_new = Vec::with_capacity(self.n());
        for d in &self.domains {
            old_of_new.extend_from_slice(d);
        }
        old_of_new.extend_from_slice(&self.separator);
        Permutation::from_old_of_new(old_of_new)
    }

    /// Start offset of each domain in the renumbering, with a final
    /// entry at the separator start: domain `d` occupies new indices
    /// `offsets()[d] .. offsets()[d + 1]`, and the separator occupies
    /// `offsets()[domain_count()] .. n()`.
    pub fn offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.domains.len() + 1);
        let mut acc = 0usize;
        for d in &self.domains {
            offsets.push(acc);
            acc += d.len();
        }
        offsets.push(acc);
        offsets
    }
}

/// Splits the pattern of `a` into (at least) `k` interior domains plus
/// one vertex separator, such that **no edge connects two distinct
/// domains** — every cross-domain path runs through the separator.
///
/// Reuses the BFS level-set machinery behind
/// [`OrderingKind::NestedDissection`]: the largest region is repeatedly
/// bisected at the middle BFS level from a pseudo-peripheral start, the
/// middle level joining the global separator, until `k` domains exist or
/// nothing splittable remains (tiny or shallow regions stop splitting,
/// so fewer than `k` domains can come back). Connected components split
/// for free — a pattern with `≥ k` components yields an **empty**
/// separator — which is also why more than `k` domains can come back on
/// disconnected patterns.
///
/// The values of `a` are ignored; the pattern is assumed symmetric (as
/// everywhere in this crate's ordering code).
pub fn vertex_separator(a: &CsrMatrix, k: usize) -> SeparatorParts {
    let n = a.nrows();
    let k = k.max(1);
    let deg = degrees(a);
    let mut region = vec![0u32; n];
    let mut level = vec![0u32; n];
    let mut visited = vec![0u32; n];
    let mut mark = 0u32;
    let mut next_region = 0u32;
    let mut separator: Vec<usize> = Vec::new();

    // Seed regions: the connected components of the whole pattern, each
    // re-stamped with its own region id.
    mark += 1;
    let comp_mark = mark;
    let mut active: Vec<(u32, Vec<usize>)> = Vec::new();
    for s in 0..n {
        if visited[s] == comp_mark {
            continue;
        }
        let comp = bfs_levels(a, s, &region, 0, &mut level, &mut visited, comp_mark);
        let rid = next_region;
        next_region += 1;
        for &v in &comp {
            region[v] = rid;
        }
        active.push((rid, comp));
    }

    // Bisect the largest active region until k domains exist. Regions too
    // small or too shallow to split are frozen as final domains.
    let mut frozen: Vec<Vec<usize>> = Vec::new();
    while active.len() + frozen.len() < k && !active.is_empty() {
        let pos = active
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.1.len())
            .map(|(i, _)| i)
            .unwrap_or_else(|| unreachable!("`active` is nonempty"));
        let (rid, nodes) = active.swap_remove(pos);
        if nodes.len() < 3 {
            // A split always produces two nonempty halves plus a
            // nonempty middle level, so fewer than 3 vertices can't.
            frozen.push(nodes);
            continue;
        }
        let start = pseudo_peripheral(
            a,
            nodes[0],
            &region,
            rid,
            &mut level,
            &mut visited,
            &mut mark,
            &deg,
        );
        mark += 1;
        let bfs = bfs_levels(a, start, &region, rid, &mut level, &mut visited, mark);
        if bfs.len() < nodes.len() {
            // An earlier separator cut this region into pieces the BFS
            // cannot bridge: split off the reached piece for free (no
            // separator vertex needed — the pieces are already
            // non-adjacent) and requeue the remainder.
            let rb = next_region;
            next_region += 1;
            let mut rest = Vec::with_capacity(nodes.len() - bfs.len());
            for &v in &nodes {
                if visited[v] != mark {
                    region[v] = rb;
                    rest.push(v);
                }
            }
            active.push((rid, bfs));
            active.push((rb, rest));
            continue;
        }
        let Some(&deepest) = bfs.last() else {
            unreachable!("bfs order contains at least the start node");
        };
        let depth = level[deepest];
        if depth < 2 {
            // Diameter ≤ 2 in this region: any middle level would leave
            // an empty half; keep it whole.
            frozen.push(nodes);
            continue;
        }
        let mid = depth / 2;
        let mut part_a = Vec::new();
        let mut part_b = Vec::new();
        for &v in &bfs {
            if level[v] < mid {
                part_a.push(v);
            } else if level[v] > mid {
                // `part_b` keeps `rid`'s stamp replaced below.
                part_b.push(v);
            } else {
                region[v] = SEP_STAMP;
                separator.push(v);
            }
        }
        // BFS levels differ by at most 1 across an edge, so `part_a`
        // (levels < mid) and `part_b` (levels > mid) are non-adjacent.
        let rb = next_region;
        next_region += 1;
        for &v in &part_b {
            region[v] = rb;
        }
        active.push((rid, part_a));
        active.push((rb, part_b));
    }

    // Stable domain order: ascending by smallest original vertex.
    let mut domains: Vec<Vec<usize>> = active
        .into_iter()
        .map(|(_, nodes)| nodes)
        .chain(frozen)
        .map(|mut nodes| {
            nodes.sort_unstable();
            nodes
        })
        .collect();
    domains.sort_unstable_by_key(|d| d.first().copied().unwrap_or(usize::MAX));
    separator.sort_unstable();

    let mut domain_of = vec![SeparatorParts::SEPARATOR; n];
    for (d, nodes) in domains.iter().enumerate() {
        for &v in nodes {
            domain_of[v] = d as u32;
        }
    }
    debug_assert_eq!(
        domains.iter().map(Vec::len).sum::<usize>() + separator.len(),
        n,
        "vertex_separator: parts must cover every vertex exactly once"
    );
    #[cfg(debug_assertions)]
    for u in 0..n {
        let (cols, _) = a.row(u);
        for &c in cols {
            let v = c as usize;
            debug_assert!(
                u == v
                    || domain_of[u] == domain_of[v]
                    || domain_of[u] == SeparatorParts::SEPARATOR
                    || domain_of[v] == SeparatorParts::SEPARATOR,
                "edge ({u}, {v}) crosses domains {} and {}",
                domain_of[u],
                domain_of[v]
            );
        }
    }
    SeparatorParts {
        domain_of,
        domains,
        separator,
    }
}

/// Region stamp marking separator vertices during [`vertex_separator`]'s
/// bisection loop (never a valid region id: ids count up from 0 and a
/// pattern has at most `u32::MAX / 2` split steps).
const SEP_STAMP: u32 = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    /// 2-D grid Laplacian pattern (values irrelevant for ordering).
    fn grid_pattern(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let mut coo = CooMatrix::new(n, n);
        let id = |x: usize, y: usize| y * nx + x;
        for y in 0..ny {
            for x in 0..nx {
                coo.push(id(x, y), id(x, y), 4.0);
                if x + 1 < nx {
                    coo.push_sym(id(x, y), id(x + 1, y), -1.0);
                }
                if y + 1 < ny {
                    coo.push_sym(id(x, y), id(x, y + 1), -1.0);
                }
            }
        }
        coo.to_csr()
    }

    fn assert_is_permutation(p: &Permutation, n: usize) {
        assert_eq!(p.len(), n);
        let mut seen = vec![false; n];
        for &v in p.old_of_new() {
            assert!(!seen[v], "duplicate index {v}");
            seen[v] = true;
        }
    }

    #[test]
    fn all_kinds_produce_permutations() {
        let a = grid_pattern(7, 5);
        for kind in [
            OrderingKind::Natural,
            OrderingKind::Rcm,
            OrderingKind::MinDegree,
            OrderingKind::NestedDissection,
        ] {
            let p = compute(&a, kind).unwrap();
            assert_is_permutation(&p, 35);
        }
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two disjoint triangles.
        let mut coo = CooMatrix::new(6, 6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            coo.push_sym(u, v, 1.0);
        }
        for i in 0..6 {
            coo.push(i, i, 2.0);
        }
        let a = coo.to_csr();
        for kind in [
            OrderingKind::Rcm,
            OrderingKind::MinDegree,
            OrderingKind::NestedDissection,
        ] {
            let p = compute(&a, kind).unwrap();
            assert_is_permutation(&p, 6);
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty = CooMatrix::new(0, 0).to_csr();
        let single = CsrMatrix::identity(1);
        for kind in [
            OrderingKind::Rcm,
            OrderingKind::MinDegree,
            OrderingKind::NestedDissection,
        ] {
            assert_eq!(compute(&empty, kind).unwrap().len(), 0);
            assert_eq!(compute(&single, kind).unwrap().len(), 1);
        }
    }

    /// Fill count of the LDL factor under a given ordering.
    fn fill(a: &CsrMatrix, kind: OrderingKind) -> usize {
        crate::LdlFactor::new(a, kind).unwrap().nnz_l()
    }

    #[test]
    fn min_degree_is_fill_free_on_trees() {
        // A path graph (tridiagonal SPD): no fill under min-degree.
        let n = 64;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i + 1 < n {
                coo.push_sym(i, i + 1, -1.0);
            }
        }
        let a = coo.to_csr();
        assert_eq!(fill(&a, OrderingKind::MinDegree), n - 1);
    }

    #[test]
    fn fill_reducing_orderings_beat_natural_on_grids() {
        let a = grid_pattern(16, 16);
        // Make it SPD so LdlFactor succeeds: the pattern already has a
        // dominant diagonal of 4 with at most 4 off-diagonal -1 entries.
        let natural = fill(&a, OrderingKind::Natural);
        let nd = fill(&a, OrderingKind::NestedDissection);
        let md = fill(&a, OrderingKind::MinDegree);
        assert!(
            nd < natural,
            "nested dissection fill {nd} >= natural {natural}"
        );
        assert!(md < natural, "min degree fill {md} >= natural {natural}");
    }

    #[test]
    fn star_graph_orders_center_last_under_min_degree() {
        // Star: eliminating the hub first would create a clique; min-degree
        // must pick the leaves first.
        let n = 12;
        let mut coo = CooMatrix::new(n, n);
        coo.push(0, 0, n as f64);
        for i in 1..n {
            coo.push(i, i, 2.0);
            coo.push_sym(0, i, -1.0);
        }
        let a = coo.to_csr();
        let p = compute(&a, OrderingKind::MinDegree).unwrap();
        // Once only the hub and one leaf remain both have degree 1, so the
        // hub must be one of the last two eliminated.
        let pos_of_hub = p.new_of_old()[0];
        assert!(
            pos_of_hub >= n - 2,
            "hub eliminated too early at {pos_of_hub}"
        );
        assert_eq!(fill(&a, OrderingKind::MinDegree), n - 1);
    }

    /// Every vertex lands in exactly one part, domains are pairwise
    /// non-adjacent, and the renumbering is a permutation.
    fn check_parts(a: &CsrMatrix, parts: &SeparatorParts) {
        let n = a.nrows();
        assert_eq!(parts.n(), n);
        let mut seen = vec![false; n];
        for d in 0..parts.domain_count() {
            for &v in parts.domain(d) {
                assert!(!seen[v], "vertex {v} in two parts");
                seen[v] = true;
                assert_eq!(parts.domain_of()[v], d as u32);
            }
        }
        for &v in parts.separator() {
            assert!(!seen[v], "separator vertex {v} also in a domain");
            seen[v] = true;
            assert_eq!(parts.domain_of()[v], SeparatorParts::SEPARATOR);
        }
        assert!(seen.iter().all(|&s| s), "uncovered vertex");
        for u in 0..n {
            let (cols, _) = a.row(u);
            for &c in cols {
                let v = c as usize;
                let (du, dv) = (parts.domain_of()[u], parts.domain_of()[v]);
                assert!(
                    u == v
                        || du == dv
                        || du == SeparatorParts::SEPARATOR
                        || dv == SeparatorParts::SEPARATOR,
                    "edge ({u},{v}) crosses domains"
                );
            }
        }
        assert_is_permutation(&parts.renumbering().unwrap(), n);
        let offsets = parts.offsets();
        assert_eq!(offsets.len(), parts.domain_count() + 1);
        assert_eq!(
            offsets.last().copied().unwrap(),
            n - parts.separator().len()
        );
    }

    #[test]
    fn vertex_separator_splits_grid_into_k_domains() {
        let a = grid_pattern(16, 16);
        for k in [1usize, 2, 3, 4, 7] {
            let parts = vertex_separator(&a, k);
            check_parts(&a, &parts);
            assert!(
                parts.domain_count() >= k.min(2),
                "k={k}: only {} domains",
                parts.domain_count()
            );
            if k == 1 {
                assert_eq!(parts.domain_count(), 1);
                assert!(parts.separator().is_empty());
            } else {
                // A 16×16 grid has plenty of depth; separators must stay
                // a small fraction of the graph.
                assert!(parts.separator().len() < 256 / 2);
            }
        }
    }

    #[test]
    fn vertex_separator_disconnected_components_split_free() {
        // Two disjoint triangles: two domains, empty separator.
        let mut coo = CooMatrix::new(6, 6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            coo.push_sym(u, v, 1.0);
        }
        for i in 0..6 {
            coo.push(i, i, 2.0);
        }
        let a = coo.to_csr();
        let parts = vertex_separator(&a, 2);
        check_parts(&a, &parts);
        assert_eq!(parts.domain_count(), 2);
        assert!(parts.separator().is_empty());
    }

    /// Regression: bisecting a star-of-paths cuts out the hub, leaving a
    /// region of several mutually-disconnected legs; re-bisecting that
    /// region must split off the BFS-unreachable legs for free instead
    /// of silently dropping them from every part list.
    #[test]
    fn vertex_separator_rebisects_internally_disconnected_regions() {
        // Hub vertex 0 with four paths of length 10 hanging off it.
        let legs = 4;
        let len = 10;
        let n = 1 + legs * len;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
        }
        for leg in 0..legs {
            let base = 1 + leg * len;
            coo.push_sym(0, base, -1.0);
            for i in 0..len - 1 {
                coo.push_sym(base + i, base + i + 1, -1.0);
            }
        }
        let a = coo.to_csr();
        for k in [2usize, 3, 4, 6] {
            let parts = vertex_separator(&a, k);
            check_parts(&a, &parts);
            assert!(parts.domain_count() >= k.min(2), "k={k}");
        }
    }

    #[test]
    fn vertex_separator_small_graphs_degrade_gracefully() {
        // Too small to split: one domain, no separator.
        let single = CsrMatrix::identity(1);
        let parts = vertex_separator(&single, 4);
        assert_eq!(parts.domain_count(), 1);
        assert!(parts.separator().is_empty());
        let empty = CooMatrix::new(0, 0).to_csr();
        let parts = vertex_separator(&empty, 4);
        assert_eq!(parts.domain_count(), 0);
        assert_eq!(parts.n(), 0);
    }

    #[test]
    fn vertex_separator_is_deterministic() {
        let a = grid_pattern(12, 9);
        assert_eq!(vertex_separator(&a, 4), vertex_separator(&a, 4));
    }
}
