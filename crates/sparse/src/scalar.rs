//! The sealed [`Scalar`] trait — the storage element type every sparse
//! backend is generic over.
//!
//! The workspace computes in `f64`: graph assembly, LDLᵀ factorization,
//! PCG and every eigensolver keep full precision. What the paper's
//! pipeline *also* needs is cheap storage for the kernels that only rank
//! (the off-tree heat filter scores edges by relative Joule heat, so
//! ranking precision is enough) — that is the `f32` storage mode, gated
//! behind the `storage-f32` feature. [`Scalar`] is the smallest surface
//! the matrix kernels need from their element type: ring ops, a couple of
//! float helpers, and exact conversion through `f64`.
//!
//! The trait is **sealed**: exactly `f64` (always) and `f32` (with the
//! `storage-f32` feature) implement it. Kernels may therefore rely on IEEE
//! semantics — e.g. that `x + S::ZERO * y` cannot change a finite `x` —
//! without defending against exotic element types.

use std::fmt::{Debug, Display};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

mod sealed {
    /// Prevents downstream `Scalar` impls (see the module docs).
    pub trait Sealed {}
    impl Sealed for f64 {}
    #[cfg(feature = "storage-f32")]
    impl Sealed for f32 {}
}

/// Element type of a sparse matrix backend: `f64` (the default everywhere)
/// or `f32` (behind the `storage-f32` feature).
///
/// Conversions go through `f64`: [`Scalar::from_f64`] is the *only* lossy
/// step in the workspace (`f64 → f32` rounds to nearest), and
/// [`Scalar::to_f64`] is always exact, so `f32` backends interoperate with
/// the `f64` pipeline at a single, auditable rounding point.
pub trait Scalar:
    sealed::Sealed
    + Copy
    + Default
    + Debug
    + Display
    + PartialEq
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Short lowercase type name (`"f64"` / `"f32"`) for bench labels and
    /// diagnostics.
    const NAME: &'static str;
    /// Size of one stored element in bytes.
    const BYTES: usize = std::mem::size_of::<Self>();

    /// Rounds an `f64` into this scalar (exact for `f64`, round-to-nearest
    /// for `f32`) — the single lossy conversion point of the crate.
    fn from_f64(v: f64) -> Self;

    /// Widens to `f64`, always exactly.
    fn to_f64(self) -> f64;

    /// Absolute value.
    fn abs(self) -> Self;

    /// Square root.
    fn sqrt(self) -> Self;

    /// Whether the value is neither infinite nor NaN.
    fn is_finite(self) -> bool;

    /// CSR row-gather SpMV over rows `lo..hi`, routed through the
    /// width-matched [`crate::kernel`] dispatcher (`f64` bit-identical to
    /// scalar, `f32` toleranced — see the kernel module docs). This hook
    /// is how the generic matrix backends reach the monomorphic SIMD
    /// kernels without naming a concrete scalar.
    #[allow(clippy::too_many_arguments)]
    fn spmv_range(
        indptr: &[usize],
        indices: &[u32],
        data: &[Self],
        x: &[Self],
        y: &mut [Self],
        lo: usize,
        hi: usize,
    );

    /// BCSR block-row product over block rows `[ib_lo, ib_hi)` (`b` ∈
    /// {2, 4}), routed through the width-matched [`crate::kernel`]
    /// dispatcher; same parity contract as [`Scalar::spmv_range`].
    #[allow(clippy::too_many_arguments)]
    fn bcsr_rows(
        b: usize,
        nrows: usize,
        ncols: usize,
        indptr: &[usize],
        indices: &[u32],
        data: &[Self],
        x: &[Self],
        y: &mut [Self],
        ib_lo: usize,
        ib_hi: usize,
    );
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f64";

    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }

    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }

    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }

    #[inline]
    fn spmv_range(
        indptr: &[usize],
        indices: &[u32],
        data: &[f64],
        x: &[f64],
        y: &mut [f64],
        lo: usize,
        hi: usize,
    ) {
        crate::kernel::spmv_range_f64(indptr, indices, data, x, y, lo, hi);
    }

    #[inline]
    fn bcsr_rows(
        b: usize,
        nrows: usize,
        ncols: usize,
        indptr: &[usize],
        indices: &[u32],
        data: &[f64],
        x: &[f64],
        y: &mut [f64],
        ib_lo: usize,
        ib_hi: usize,
    ) {
        crate::kernel::bcsr_rows_f64(b, nrows, ncols, indptr, indices, data, x, y, ib_lo, ib_hi);
    }
}

#[cfg(feature = "storage-f32")]
impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f32";

    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }

    #[inline]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }

    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }

    #[inline]
    fn spmv_range(
        indptr: &[usize],
        indices: &[u32],
        data: &[f32],
        x: &[f32],
        y: &mut [f32],
        lo: usize,
        hi: usize,
    ) {
        crate::kernel::spmv_range_f32(indptr, indices, data, x, y, lo, hi);
    }

    #[inline]
    fn bcsr_rows(
        b: usize,
        nrows: usize,
        ncols: usize,
        indptr: &[usize],
        indices: &[u32],
        data: &[f32],
        x: &[f32],
        y: &mut [f32],
        ib_lo: usize,
        ib_hi: usize,
    ) {
        crate::kernel::bcsr_rows_f32(b, nrows, ncols, indptr, indices, data, x, y, ib_lo, ib_hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trips_exactly() {
        for v in [0.0, -1.5, 1e300, f64::MIN_POSITIVE] {
            assert_eq!(f64::from_f64(v), v);
            assert_eq!(v.to_f64(), v);
        }
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f64::BYTES, 8);
    }

    #[cfg(feature = "storage-f32")]
    #[test]
    fn f32_narrowing_rounds_widening_is_exact() {
        // 1/3 is not representable in either width: narrowing rounds…
        let narrowed = f32::from_f64(1.0 / 3.0);
        assert!((narrowed.to_f64() - 1.0 / 3.0).abs() < 1e-7);
        // …but widening any f32 back to f64 is exact.
        for v in [0.1f32, -7.25, 3.0e30] {
            assert_eq!(v.to_f64() as f32, v);
        }
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f32::BYTES, 4);
    }
}
