//! The [`LinearOperator`] abstraction — the primitive the whole workspace is
//! layered on.
//!
//! Matrix-vector application is what iterative solvers (`sass-solver`),
//! eigensolvers (`sass-eigen`) and graph filters (`sass-gsp`) actually
//! consume; none of them need to know whether the operator is a stored
//! [`CsrMatrix`], a factorized pseudoinverse, or a composed pencil. Keeping
//! the trait here, in the lowest-level crate, lets every layer name it
//! without depending on the solver stack.

use crate::{BcsrMatrix, CscMatrix, CsrMatrix};

/// A symmetric linear operator `y = A x`, the abstraction consumed by
/// `pcg` and the eigensolvers in `sass-eigen`.
///
/// Implemented for [`CsrMatrix`] directly; matrix-free operators (e.g. the
/// generalized pencil `L_P⁺ L_G`) implement it in their own crates.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x.len()` or `y.len()` differ from
    /// [`LinearOperator::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Convenience allocating form of [`LinearOperator::apply`].
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.nrows()
    }

    /// Routes through the threaded fast path when the `parallel` feature is
    /// enabled; [`CsrMatrix::par_mul_vec_into`] itself falls back to the
    /// serial kernel below its size crossover, so small operators pay no
    /// thread overhead.
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        #[cfg(feature = "parallel")]
        self.par_mul_vec_into(x, y);
        #[cfg(not(feature = "parallel"))]
        self.mul_vec_into(x, y);
    }
}

impl LinearOperator for CscMatrix {
    fn dim(&self) -> usize {
        self.nrows()
    }

    /// Bit-for-bit identical to the [`CsrMatrix`] operator on the same
    /// matrix (see the CSC module docs), so any backend can stand in for
    /// any other inside the iterative methods without perturbing
    /// convergence histories.
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        #[cfg(feature = "parallel")]
        self.par_mul_vec_into(x, y);
        #[cfg(not(feature = "parallel"))]
        self.mul_vec_into(x, y);
    }
}

impl LinearOperator for BcsrMatrix {
    fn dim(&self) -> usize {
        self.nrows()
    }

    /// Bit-for-bit identical to the [`CsrMatrix`] operator for finite
    /// inputs (see the BCSR module docs on padding zeros).
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        #[cfg(feature = "parallel")]
        self.par_mul_vec_into(x, y);
        #[cfg(not(feature = "parallel"))]
        self.mul_vec_into(x, y);
    }
}

#[cfg(feature = "storage-f32")]
std::thread_local! {
    /// Per-thread narrow/widen buffers for the `f32` casting operators,
    /// so repeated applies (every step of a Chebyshev recurrence or power
    /// iteration) allocate nothing after the first — the same
    /// thread-local-scratch pattern the LDLᵀ solve entry points use.
    static CAST_SCRATCH: std::cell::RefCell<(Vec<f32>, Vec<f32>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// `f32` backends participate in the `f64` pipeline by casting at the
/// operator boundary: narrow `x`, run the single-precision kernel, widen
/// `y` (widening is exact — [`crate::Scalar::to_f64`]). The narrow
/// buffers live in thread-local scratch, so steady-state applies are
/// allocation-free; these operators are meant for the ranking-precision
/// paths (heat scoring, gsp filtering), not for inner solver loops.
#[cfg(feature = "storage-f32")]
macro_rules! impl_casting_operator {
    ($backend:ty) => {
        impl LinearOperator for $backend {
            fn dim(&self) -> usize {
                self.nrows()
            }

            fn apply(&self, x: &[f64], y: &mut [f64]) {
                CAST_SCRATCH.with(|cell| {
                    let (xs, ys) = &mut *cell.borrow_mut();
                    xs.clear();
                    xs.extend(x.iter().map(|&v| v as f32));
                    ys.clear();
                    ys.resize(y.len(), 0.0f32);
                    #[cfg(feature = "parallel")]
                    self.par_mul_vec_into(xs, ys);
                    #[cfg(not(feature = "parallel"))]
                    self.mul_vec_into(xs, ys);
                    for (wide, narrow) in y.iter_mut().zip(ys.iter()) {
                        *wide = f64::from(*narrow);
                    }
                });
            }
        }
    };
}

#[cfg(feature = "storage-f32")]
impl_casting_operator!(CsrMatrix<f32>);
#[cfg(feature = "storage-f32")]
impl_casting_operator!(CscMatrix<f32>);
#[cfg(feature = "storage-f32")]
impl_casting_operator!(BcsrMatrix<f32>);

impl<T: LinearOperator + ?Sized> LinearOperator for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn csr_is_an_operator() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 3.0);
        let a = coo.to_csr();
        let y = a.apply_vec(&[1.0, 1.0]);
        assert_eq!(y, vec![2.0, 3.0]);
        assert_eq!(LinearOperator::dim(&a), 2);
    }

    #[test]
    fn every_backend_is_an_operator_with_identical_results() {
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 3.0);
        }
        coo.push_sym(0, 2, -1.5);
        coo.push_sym(1, 3, 0.25);
        let a = coo.to_csr();
        let x = [1.0, -2.0, 0.5, 4.0];
        let want = a.apply_vec(&x);
        let csc = CscMatrix::from_csr(&a);
        let bcsr = BcsrMatrix::from_csr(&a, 2);
        assert_eq!(csc.apply_vec(&x), want);
        assert_eq!(bcsr.apply_vec(&x), want);
        assert_eq!(LinearOperator::dim(&csc), 4);
        assert_eq!(LinearOperator::dim(&bcsr), 4);
    }

    #[cfg(feature = "storage-f32")]
    #[test]
    fn f32_operators_cast_at_the_boundary() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, -4.0);
        coo.push(2, 2, 0.5);
        let a = coo.to_csr();
        let x = [1.0, 2.0, -8.0];
        let want = a.apply_vec(&x);
        let narrow: CsrMatrix<f32> = a.to_scalar();
        let got = narrow.apply_vec(&x);
        // These values are exact in f32, so even the cast path is exact.
        assert_eq!(got, want);
        let csc32 = CscMatrix::from_csr(&narrow);
        let bcsr32 = BcsrMatrix::from_csr(&narrow, 2);
        assert_eq!(csc32.apply_vec(&x), want);
        assert_eq!(bcsr32.apply_vec(&x), want);
    }

    #[test]
    fn references_are_operators() {
        let a = CsrMatrix::identity(3);
        let r: &CsrMatrix = &a;
        assert_eq!(LinearOperator::dim(&r), 3);
        let y = r.apply_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
    }
}
