//! The [`LinearOperator`] abstraction — the primitive the whole workspace is
//! layered on.
//!
//! Matrix-vector application is what iterative solvers (`sass-solver`),
//! eigensolvers (`sass-eigen`) and graph filters (`sass-gsp`) actually
//! consume; none of them need to know whether the operator is a stored
//! [`CsrMatrix`], a factorized pseudoinverse, or a composed pencil. Keeping
//! the trait here, in the lowest-level crate, lets every layer name it
//! without depending on the solver stack.

use crate::CsrMatrix;

/// A symmetric linear operator `y = A x`, the abstraction consumed by
/// `pcg` and the eigensolvers in `sass-eigen`.
///
/// Implemented for [`CsrMatrix`] directly; matrix-free operators (e.g. the
/// generalized pencil `L_P⁺ L_G`) implement it in their own crates.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x.len()` or `y.len()` differ from
    /// [`LinearOperator::dim`].
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Convenience allocating form of [`LinearOperator::apply`].
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y);
        y
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.nrows()
    }

    /// Routes through the threaded fast path when the `parallel` feature is
    /// enabled; [`CsrMatrix::par_mul_vec_into`] itself falls back to the
    /// serial kernel below its size crossover, so small operators pay no
    /// thread overhead.
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        #[cfg(feature = "parallel")]
        self.par_mul_vec_into(x, y);
        #[cfg(not(feature = "parallel"))]
        self.mul_vec_into(x, y);
    }
}

impl<T: LinearOperator + ?Sized> LinearOperator for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    #[test]
    fn csr_is_an_operator() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 3.0);
        let a = coo.to_csr();
        let y = a.apply_vec(&[1.0, 1.0]);
        assert_eq!(y, vec![2.0, 3.0]);
        assert_eq!(LinearOperator::dim(&a), 2);
    }

    #[test]
    fn references_are_operators() {
        let a = CsrMatrix::identity(3);
        let r: &CsrMatrix = &a;
        assert_eq!(LinearOperator::dim(&r), 3);
        let y = r.apply_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
    }
}
