// Sparse kernels index multiple parallel arrays; explicit loops are clearer.
#![allow(clippy::needless_range_loop)]

use crate::ordering::{self, OrderingKind};
use crate::{CsrMatrix, DenseBlock, Permutation, Result, SparseError};

/// Columns per sweep in the blocked solves: one pass over `L`'s indices
/// updates up to this many right-hand sides, amortizing factor traffic.
///
/// Eight doubles are one cache line, and the full-width sweep is
/// monomorphized so the per-row inner loop unrolls completely.
pub const LDL_BLOCK_WIDTH: usize = 8;

/// Sparse `P A Pᵀ = L D Lᵀ` factorization of a symmetric matrix.
///
/// This is the classic *up-looking* simplicial algorithm (Davis' `LDL`
/// package): an elimination-tree based symbolic analysis computes the exact
/// nonzero count of every column of `L`, then a numeric phase computes one
/// column at a time with a sparse triangular solve. `L` is unit lower
/// triangular (unit diagonal not stored) and `D` is diagonal.
///
/// The factorization does no pivoting, which is exact for symmetric positive
/// definite matrices — in this workspace: *grounded* graph Laplacians, which
/// are SPD for connected graphs.
///
/// # Example
///
/// ```
/// use sass_sparse::{CooMatrix, LdlFactor, ordering::OrderingKind};
///
/// # fn main() -> Result<(), sass_sparse::SparseError> {
/// // 2x2 SPD matrix [[2, 1], [1, 2]].
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 2.0); coo.push(1, 1, 2.0);
/// coo.push_sym(0, 1, 1.0);
/// let f = LdlFactor::new(&coo.to_csr(), OrderingKind::Natural)?;
/// let x = f.solve(&[3.0, 3.0]);
/// assert!((x[0] - 1.0).abs() < 1e-14 && (x[1] - 1.0).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LdlFactor {
    n: usize,
    perm: Permutation,
    /// Column pointers of `L` (CSC, strictly lower triangular part).
    lp: Vec<usize>,
    /// Row indices of `L`.
    li: Vec<u32>,
    /// Values of `L`.
    lx: Vec<f64>,
    /// The diagonal matrix `D`.
    d: Vec<f64>,
}

/// Upper-triangle-by-column view of a symmetric CSR matrix.
///
/// Column `k` of the upper triangle of a symmetric matrix equals the
/// entries of row `k` with column index `≤ k`, which is exactly what the
/// up-looking factorization consumes.
struct UpperCsc {
    ap: Vec<usize>,
    ai: Vec<u32>,
    ax: Vec<f64>,
}

fn upper_csc(a: &CsrMatrix) -> UpperCsc {
    let n = a.nrows();
    let mut ap = Vec::with_capacity(n + 1);
    let mut ai = Vec::new();
    let mut ax = Vec::new();
    ap.push(0);
    for k in 0..n {
        let (cols, vals) = a.row(k);
        for (c, v) in cols.iter().zip(vals) {
            if (*c as usize) <= k {
                ai.push(*c);
                ax.push(*v);
            }
        }
        ap.push(ai.len());
    }
    UpperCsc { ap, ai, ax }
}

impl LdlFactor {
    /// Factorizes `a` using a fill-reducing ordering of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular input and
    /// [`SparseError::ZeroPivot`] if a pivot vanishes (matrix not positive
    /// definite after grounding).
    pub fn new(a: &CsrMatrix, kind: OrderingKind) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let perm = ordering::compute(a, kind)?;
        Self::with_permutation(a, perm)
    }

    /// Factorizes `a` with a caller-provided permutation.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if the permutation length
    /// differs from the matrix dimension, [`SparseError::NotSquare`] for
    /// rectangular input, or [`SparseError::ZeroPivot`] on pivot breakdown.
    pub fn with_permutation(a: &CsrMatrix, perm: Permutation) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let n = a.nrows();
        let b = a.permute_sym(&perm)?;
        let u = upper_csc(&b);

        // Symbolic: elimination tree and column counts.
        let mut parent = vec![-1i64; n];
        let mut flag = vec![-1i64; n];
        let mut lnz = vec![0usize; n];
        for k in 0..n {
            flag[k] = k as i64;
            for p in u.ap[k]..u.ap[k + 1] {
                let mut i = u.ai[p] as usize;
                if i < k {
                    while flag[i] != k as i64 {
                        if parent[i] == -1 {
                            parent[i] = k as i64;
                        }
                        lnz[i] += 1;
                        flag[i] = k as i64;
                        i = parent[i] as usize;
                    }
                }
            }
        }
        let mut lp = vec![0usize; n + 1];
        for k in 0..n {
            lp[k + 1] = lp[k] + lnz[k];
        }
        let nnz_l = lp[n];

        // Numeric phase.
        let mut li = vec![0u32; nnz_l];
        let mut lx = vec![0.0f64; nnz_l];
        let mut d = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        let mut pattern = vec![0usize; n];
        let mut lfill = vec![0usize; n]; // entries written so far per column
        let mut flag = vec![-1i64; n];

        for k in 0..n {
            let mut top = n;
            flag[k] = k as i64;
            y[k] = 0.0;
            for p in u.ap[k]..u.ap[k + 1] {
                let i0 = u.ai[p] as usize;
                if i0 <= k {
                    y[i0] += u.ax[p];
                    let mut len = 0usize;
                    let mut i = i0;
                    while flag[i] != k as i64 {
                        pattern[len] = i;
                        len += 1;
                        flag[i] = k as i64;
                        i = parent[i] as usize;
                    }
                    // Move the path onto the output pattern in reverse so the
                    // final traversal visits ancestors in ascending order.
                    while len > 0 {
                        len -= 1;
                        top -= 1;
                        pattern[top] = pattern[len];
                    }
                }
            }
            d[k] = y[k];
            y[k] = 0.0;
            for &i in &pattern[top..n] {
                let yi = y[i];
                y[i] = 0.0;
                let p2 = lp[i] + lfill[i];
                for p in lp[i]..p2 {
                    y[li[p] as usize] -= lx[p] * yi;
                }
                let di = d[i];
                let l_ki = yi / di;
                d[k] -= l_ki * yi;
                li[p2] = k as u32;
                lx[p2] = l_ki;
                lfill[i] += 1;
            }
            if d[k] == 0.0 || !d[k].is_finite() {
                return Err(SparseError::ZeroPivot { column: k });
            }
        }

        Ok(LdlFactor {
            n,
            perm,
            lp,
            li,
            lx,
            d,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of off-diagonal nonzeros in `L` (a proxy for factor memory).
    pub fn nnz_l(&self) -> usize {
        self.lx.len()
    }

    /// Approximate memory footprint of the factor in bytes
    /// (values + indices + pointers + diagonal).
    pub fn memory_bytes(&self) -> usize {
        self.lx.len() * (8 + 4) + self.lp.len() * 8 + self.d.len() * 8
    }

    /// The fill-reducing permutation used by this factor.
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// The diagonal `D` of the factorization (in permuted order).
    ///
    /// All entries are strictly positive when the input was SPD; the sign
    /// pattern is the matrix inertia.
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Solves `A x = b`, allocating the result.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A x = b` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `x.len() != n`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        self.solve_into_scratch(b, x, &mut Vec::new());
    }

    /// [`LdlFactor::solve_into`] with a caller-owned work buffer, so
    /// repeated solves (iterative refinement, shift-invert Lanczos, PCG
    /// preconditioning) allocate nothing after the first call.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `x.len() != n`.
    pub fn solve_into_scratch(&self, b: &[f64], x: &mut [f64], work: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n, "solve: b length mismatch");
        assert_eq!(x.len(), self.n, "solve: x length mismatch");
        // Work in permuted coordinates: y = P b. The permutation scatter
        // writes every entry, so stale contents need no zeroing.
        let new_of_old = self.perm.new_of_old();
        work.resize(self.n, 0.0);
        let y = work;
        for (old, &new) in new_of_old.iter().enumerate() {
            y[new] = b[old];
        }
        // Forward solve L z = y (unit diagonal).
        for j in 0..self.n {
            let yj = y[j];
            if yj != 0.0 {
                for p in self.lp[j]..self.lp[j + 1] {
                    y[self.li[p] as usize] -= self.lx[p] * yj;
                }
            }
        }
        // Diagonal solve D w = z.
        for j in 0..self.n {
            y[j] /= self.d[j];
        }
        // Backward solve Lᵀ v = w.
        for j in (0..self.n).rev() {
            let mut acc = y[j];
            for p in self.lp[j]..self.lp[j + 1] {
                acc -= self.lx[p] * y[self.li[p] as usize];
            }
            y[j] = acc;
        }
        // Un-permute: x = Pᵀ y.
        for (old, &new) in new_of_old.iter().enumerate() {
            x[old] = y[new];
        }
    }

    /// Solves `A X = B` for a block of right-hand sides, allocating the
    /// result.
    ///
    /// Equivalent to calling [`LdlFactor::solve`] per column (to floating-
    /// point sign-of-zero), but sweeps the factor once per
    /// [`LDL_BLOCK_WIDTH`]-column chunk: one pass over `L`'s indices updates
    /// every column of the chunk, so factor traffic is amortized across the
    /// block.
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows() != n`.
    ///
    /// # Example
    ///
    /// ```
    /// use sass_sparse::{CooMatrix, DenseBlock, LdlFactor, ordering::OrderingKind};
    ///
    /// # fn main() -> Result<(), sass_sparse::SparseError> {
    /// let mut coo = CooMatrix::new(2, 2);
    /// coo.push(0, 0, 2.0); coo.push(1, 1, 2.0);
    /// coo.push_sym(0, 1, 1.0);
    /// let f = LdlFactor::new(&coo.to_csr(), OrderingKind::Natural)?;
    /// let b = DenseBlock::from_columns(&[vec![3.0, 3.0], vec![2.0, 1.0]]);
    /// let x = f.solve_block(&b);
    /// assert!((x.col(0)[0] - 1.0).abs() < 1e-14);
    /// assert!((x.col(1)[0] - 1.0).abs() < 1e-14);
    /// # Ok(())
    /// # }
    /// ```
    pub fn solve_block(&self, b: &DenseBlock) -> DenseBlock {
        let mut x = DenseBlock::zeros(self.n, b.ncols());
        self.solve_block_into_scratch(b, &mut x, &mut Vec::new());
        x
    }

    /// [`LdlFactor::solve_block`] into a caller-provided block.
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows() != n` or `x` has a different shape than `b`.
    pub fn solve_block_into(&self, b: &DenseBlock, x: &mut DenseBlock) {
        self.solve_block_into_scratch(b, x, &mut Vec::new());
    }

    /// [`LdlFactor::solve_block_into`] with a caller-owned work buffer, so
    /// repeated blocked solves allocate nothing after the first call.
    ///
    /// The work buffer holds one chunk of columns in *interleaved* (row-
    /// major) layout — `w[row * k + col]` — so the triangular sweeps touch
    /// each chunk's right-hand sides contiguously per factor row.
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows() != n` or `x` has a different shape than `b`.
    pub fn solve_block_into_scratch(
        &self,
        b: &DenseBlock,
        x: &mut DenseBlock,
        work: &mut Vec<f64>,
    ) {
        assert_eq!(b.nrows(), self.n, "solve_block: b row-count mismatch");
        assert_eq!(x.nrows(), self.n, "solve_block: x row-count mismatch");
        assert_eq!(x.ncols(), b.ncols(), "solve_block: column-count mismatch");
        let new_of_old = self.perm.new_of_old();
        let mut start = 0;
        while start < b.ncols() {
            let k = LDL_BLOCK_WIDTH.min(b.ncols() - start);
            work.resize(self.n * k, 0.0);
            // Pack the chunk permuted and interleaved: w[new·k + c] = b_c[old].
            for c in 0..k {
                let col = b.col(start + c);
                for (old, &new) in new_of_old.iter().enumerate() {
                    work[new * k + c] = col[old];
                }
            }
            if k == LDL_BLOCK_WIDTH {
                self.sweep_chunk_fixed::<LDL_BLOCK_WIDTH>(work);
            } else {
                self.sweep_chunk_dyn(work, k);
            }
            // Un-permute back into the output columns.
            for c in 0..k {
                let col = x.col_mut(start + c);
                for (old, &new) in new_of_old.iter().enumerate() {
                    col[old] = work[new * k + c];
                }
            }
            start += k;
        }
    }

    /// Forward / diagonal / backward sweeps over one interleaved chunk of
    /// exactly `K` right-hand sides (monomorphized so the per-row inner
    /// loops unroll).
    fn sweep_chunk_fixed<const K: usize>(&self, w: &mut [f64]) {
        // Forward solve L Z = Y (unit diagonal), all K columns per pass.
        for j in 0..self.n {
            let mut yj = [0.0f64; K];
            yj.copy_from_slice(&w[j * K..(j + 1) * K]);
            for p in self.lp[j]..self.lp[j + 1] {
                let i = self.li[p] as usize;
                let l = self.lx[p];
                let wi = &mut w[i * K..(i + 1) * K];
                for c in 0..K {
                    wi[c] -= l * yj[c];
                }
            }
        }
        // Diagonal solve D W = Z.
        for j in 0..self.n {
            let dj = self.d[j];
            for c in 0..K {
                w[j * K + c] /= dj;
            }
        }
        // Backward solve Lᵀ V = W.
        for j in (0..self.n).rev() {
            let mut acc = [0.0f64; K];
            acc.copy_from_slice(&w[j * K..(j + 1) * K]);
            for p in self.lp[j]..self.lp[j + 1] {
                let i = self.li[p] as usize;
                let l = self.lx[p];
                let wi = &w[i * K..(i + 1) * K];
                for c in 0..K {
                    acc[c] -= l * wi[c];
                }
            }
            w[j * K..(j + 1) * K].copy_from_slice(&acc);
        }
    }

    /// The same sweeps for a partial tail chunk of `k < LDL_BLOCK_WIDTH`
    /// columns.
    fn sweep_chunk_dyn(&self, w: &mut [f64], k: usize) {
        debug_assert!(k <= LDL_BLOCK_WIDTH);
        let mut stage = [0.0f64; LDL_BLOCK_WIDTH];
        for j in 0..self.n {
            let yj = &mut stage[..k];
            yj.copy_from_slice(&w[j * k..(j + 1) * k]);
            for p in self.lp[j]..self.lp[j + 1] {
                let i = self.li[p] as usize;
                let l = self.lx[p];
                let wi = &mut w[i * k..(i + 1) * k];
                for c in 0..k {
                    wi[c] -= l * yj[c];
                }
            }
        }
        for j in 0..self.n {
            let dj = self.d[j];
            for c in 0..k {
                w[j * k + c] /= dj;
            }
        }
        for j in (0..self.n).rev() {
            let acc = &mut stage[..k];
            acc.copy_from_slice(&w[j * k..(j + 1) * k]);
            for p in self.lp[j]..self.lp[j + 1] {
                let i = self.li[p] as usize;
                let l = self.lx[p];
                let wi = &w[i * k..(i + 1) * k];
                for c in 0..k {
                    acc[c] -= l * wi[c];
                }
            }
            w[j * k..(j + 1) * k].copy_from_slice(acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn spd_tridiag(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i + 1 < n {
                coo.push_sym(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn solves_tridiagonal_every_ordering() {
        let a = spd_tridiag(50);
        let b: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        for kind in [
            OrderingKind::Natural,
            OrderingKind::Rcm,
            OrderingKind::MinDegree,
            OrderingKind::NestedDissection,
        ] {
            let f = LdlFactor::new(&a, kind).unwrap();
            let x = f.solve(&b);
            assert!(
                a.residual_norm(&x, &b) < 1e-12,
                "residual too large for {kind:?}"
            );
        }
    }

    #[test]
    fn factor_of_identity_is_trivial() {
        let a = CsrMatrix::identity(10);
        let f = LdlFactor::new(&a, OrderingKind::Natural).unwrap();
        assert_eq!(f.nnz_l(), 0);
        assert!(f.d().iter().all(|&d| (d - 1.0).abs() < 1e-15));
    }

    #[test]
    fn detects_singular_matrix() {
        // Ungrounded 2-node Laplacian is singular.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push_sym(0, 1, -1.0);
        let err = LdlFactor::new(&coo.to_csr(), OrderingKind::Natural).unwrap_err();
        assert!(matches!(err, SparseError::ZeroPivot { .. }));
    }

    #[test]
    fn rejects_rectangular() {
        let coo = CooMatrix::new(2, 3);
        let err = LdlFactor::new(&coo.to_csr(), OrderingKind::Natural).unwrap_err();
        assert!(matches!(err, SparseError::NotSquare { .. }));
    }

    #[test]
    fn random_spd_solves_accurately() {
        // A = B + n*I with random sparse symmetric B is SPD-dominant.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 80;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, n as f64);
        }
        for _ in 0..300 {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                coo.push_sym(i.min(j), i.max(j), rng.gen_range(-1.0..1.0));
            }
        }
        let a = coo.to_csr();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        for kind in [OrderingKind::MinDegree, OrderingKind::Rcm] {
            let f = LdlFactor::new(&a, kind).unwrap();
            let x = f.solve(&b);
            assert!(a.residual_norm(&x, &b) < 1e-11);
        }
    }

    #[test]
    fn d_positive_for_spd() {
        let a = spd_tridiag(20);
        let f = LdlFactor::new(&a, OrderingKind::MinDegree).unwrap();
        assert!(f.d().iter().all(|&d| d > 0.0));
        assert!(f.memory_bytes() > 0);
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = spd_tridiag(16);
        let f = LdlFactor::new(&a, OrderingKind::Rcm).unwrap();
        let b = vec![1.0; 16];
        let x1 = f.solve(&b);
        let mut x2 = vec![0.0; 16];
        f.solve_into(&b, &mut x2);
        assert_eq!(x1, x2);
    }

    /// Blocked solves must match the per-RHS path across full blocks,
    /// partial tail blocks, and multi-chunk widths.
    #[test]
    fn solve_block_matches_per_column() {
        let a = spd_tridiag(40);
        for kind in [OrderingKind::Natural, OrderingKind::MinDegree] {
            let f = LdlFactor::new(&a, kind).unwrap();
            for ncols in [1usize, 3, LDL_BLOCK_WIDTH, LDL_BLOCK_WIDTH + 1, 20] {
                let cols: Vec<Vec<f64>> = (0..ncols)
                    .map(|c| {
                        (0..40)
                            .map(|i| ((i * (c + 3)) as f64 * 0.31).sin())
                            .collect()
                    })
                    .collect();
                let blocked = f.solve_block(&DenseBlock::from_columns(&cols));
                for (c, col) in cols.iter().enumerate() {
                    let single = f.solve(col);
                    for (bx, sx) in blocked.col(c).iter().zip(&single) {
                        assert!(
                            (bx - sx).abs() <= 1e-14 * sx.abs().max(1.0),
                            "{kind:?} ncols={ncols} col={c}: {bx} vs {sx}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn solve_block_scratch_reuse_and_empty() {
        let a = spd_tridiag(12);
        let f = LdlFactor::new(&a, OrderingKind::Rcm).unwrap();
        let mut work = Vec::new();
        let b = DenseBlock::from_columns(&[vec![1.0; 12], vec![-2.0; 12]]);
        let mut x = DenseBlock::zeros(12, 2);
        f.solve_block_into_scratch(&b, &mut x, &mut work);
        let again = f.solve_block(&b);
        assert_eq!(x, again);
        // Zero-column block is a no-op.
        let empty = f.solve_block(&DenseBlock::zeros(12, 0));
        assert_eq!(empty.ncols(), 0);
    }
}
