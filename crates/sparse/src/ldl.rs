// Sparse kernels index multiple parallel arrays; explicit loops are clearer.
#![allow(clippy::needless_range_loop)]

use crate::etree::LevelSchedule;
use crate::ordering::{self, OrderingKind};
use crate::pool;
use crate::{CsrMatrix, DenseBlock, Permutation, Result, SparseError};
use std::cell::RefCell;

/// Columns per sweep in the blocked solves: one pass over `L`'s indices
/// updates up to this many right-hand sides, amortizing factor traffic.
///
/// Eight doubles are one cache line, and the full-width sweep is
/// monomorphized so the per-row inner loop unrolls completely.
pub const LDL_BLOCK_WIDTH: usize = 8;

/// Minimum factor work (`nnz(L) + n`, scaled by right-hand-side count for
/// blocked solves) before a triangular sweep leaves the flat serial loops
/// for the level-scheduled parallel path under automatic pool sizing. A
/// standing `SASS_THREADS` / [`pool::set_threads`] override skips the
/// crossover, as everywhere in the workspace.
const PAR_SOLVE_MIN_WORK: usize = 50_000;

/// Minimum `nnz(L)` before the numeric factorization goes level-parallel
/// under automatic pool sizing (per-column work is much higher than a
/// solve's, so the crossover sits lower).
const PAR_FACTOR_MIN_NNZ: usize = 10_000;

/// Minimum *average* elimination-tree level width for level scheduling to
/// pay off under automatic sizing: near-tree factors — the sparsifiers
/// this workspace exists to build — have deep, narrow etrees whose levels
/// would each dispatch a handful of columns, so they keep the flat serial
/// sweeps (and their current latency).
const PAR_MIN_AVG_WIDTH: usize = 4;

thread_local! {
    /// Per-thread work buffer backing the non-scratch solve entry points:
    /// [`LdlFactor::solve`], [`LdlFactor::solve_into`],
    /// [`LdlFactor::solve_block`] and [`LdlFactor::solve_block_into`] all
    /// route through the scratch path with this buffer, so they stop
    /// allocating per call after their first use on a given thread.
    static SOLVE_WORK: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Sparse `P A Pᵀ = L D Lᵀ` factorization of a symmetric matrix.
///
/// This is the classic *up-looking* simplicial algorithm (Davis' `LDL`
/// package): an elimination-tree based symbolic analysis computes the exact
/// nonzero count of every row and column of `L`, then a numeric phase
/// computes one row at a time with a sparse triangular solve. `L` is unit
/// lower triangular (unit diagonal not stored) and `D` is diagonal.
///
/// Unlike the textbook formulation, `L` is stored **row-major** (CSR of the
/// strictly lower triangle) with a derived transpose index for column-order
/// traversal. Row storage makes every computation step *owner-writes-only*:
/// the numeric phase's step `k` writes exactly row `k` and `d[k]`, a
/// forward-substitution step writes exactly `y[k]`, a backward step exactly
/// `y[k]` again — nothing scatters into other columns' storage. That is
/// what lets the factorization and both triangular sweeps run
/// level-parallel over the elimination tree ([`crate::etree`]): all of a
/// column's inputs live in strictly lower (forward/factorization) or
/// strictly higher (backward) levels, so each level dispatches its columns
/// across the worker pool and barriers before the next. Results are
/// identical to the serial sweeps at every worker count — each output is
/// produced by the same operation sequence reading the same finalized
/// inputs regardless of which lane runs it.
///
/// The factorization does no pivoting, which is exact for symmetric positive
/// definite matrices — in this workspace: *grounded* graph Laplacians, which
/// are SPD for connected graphs.
///
/// # Example
///
/// ```
/// use sass_sparse::{CooMatrix, LdlFactor, ordering::OrderingKind};
///
/// # fn main() -> Result<(), sass_sparse::SparseError> {
/// // 2x2 SPD matrix [[2, 1], [1, 2]].
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 2.0); coo.push(1, 1, 2.0);
/// coo.push_sym(0, 1, 1.0);
/// let f = LdlFactor::new(&coo.to_csr(), OrderingKind::Natural)?;
/// let x = f.solve(&[3.0, 3.0]);
/// assert!((x[0] - 1.0).abs() < 1e-14 && (x[1] - 1.0).abs() < 1e-14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LdlFactor {
    n: usize,
    perm: Permutation,
    /// Row pointers of `L` (CSR, strictly lower triangular part).
    rp: Vec<usize>,
    /// Column indices of `L`, in each row's *topological pattern order*
    /// (etree descendants before ancestors; ascending within one path
    /// segment but NOT globally sorted when a row merges several
    /// branches) — don't binary-search or merge rows assuming sortedness.
    ri: Vec<u32>,
    /// Values of `L`, row-major.
    rx: Vec<f64>,
    /// Derived transpose (CSC mirror of `rp`/`ri`/`rx`), column pointers:
    /// `ci[cp[j]..cp[j + 1]]` / `cx[..]` are column `j`'s entries, rows
    /// ascending — what the backward sweep traverses.
    cp: Vec<usize>,
    /// Row index of each column-order entry.
    ci: Vec<u32>,
    /// Value of each column-order entry, mirrored from `rx` so the
    /// backward sweep streams values contiguously (an index indirection
    /// into `rx` costs the same memory and a cache-hostile double hop).
    cx: Vec<f64>,
    /// Row-major source slot of each mirror entry (`cx[q] = rx[mirror_map[q]]`
    /// for a fixed pattern), letting [`LdlFactor::refactor_partial`] refresh
    /// only the patched columns' mirror values.
    mirror_map: Vec<usize>,
    /// The diagonal matrix `D`.
    d: Vec<f64>,
    /// Elimination-tree level schedule driving the parallel phases.
    schedule: LevelSchedule,
    /// Per-level work prefixes balancing the sweeps' span splits.
    sweep_weights: SweepWeights,
    /// Elimination tree (`parent[k] = −1` for roots), retained from the
    /// symbolic analysis: [`LdlFactor::refactor_partial`] climbs it to
    /// find the ancestor closure of changed columns.
    parent: Vec<i64>,
    /// Per-row nonzero counts of `L` (the symbolic result behind `rp`),
    /// retained so the masked numeric phase can weight its span splits.
    rnz: Vec<usize>,
    /// Pattern (column pointers) of the permuted upper triangle the
    /// symbolic analysis consumed; [`LdlFactor::refactor_partial`]
    /// compares a new matrix's pattern against `ua_p`/`ua_i` to decide
    /// whether the symbolic state — etree, fill pattern, schedule,
    /// permutation — is still valid.
    ua_p: Vec<usize>,
    /// Pattern (row indices) of the permuted upper triangle; see `ua_p`.
    ua_i: Vec<u32>,
    /// Lazily-built fast path for repeated [`LdlFactor::refactor_partial`]
    /// calls: the unpermuted input pattern plus a value scatter into a
    /// persistent permuted upper triangle, replacing the per-call
    /// `permute_sym` + upper-triangle extraction with one `O(nnz)` copy.
    refactor_cache: Option<RefactorCache>,
    /// Shadow map from column to its etree level, verifying the schedule
    /// invariant the parallel phases rest on: a forward/factorization
    /// step reads strictly lower levels, a backward step strictly higher.
    #[cfg(feature = "race-check")]
    level_of: Vec<u32>,
}

/// What [`LdlFactor::refactor_partial`] did with the numeric phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefactorOutcome {
    /// The factor was patched in place; see the stats for how much of the
    /// etree was re-run.
    Patched(RefactorStats),
    /// The new matrix's sparsity pattern differs from the one the factor
    /// was built for. The factor is untouched; the caller must
    /// re-factorize from scratch (typically with a freshly computed
    /// fill-reducing ordering, since the old one targeted the old
    /// pattern).
    PatternChanged,
}

/// Schedule-reuse statistics of one [`LdlFactor::refactor_partial`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefactorStats {
    /// Columns whose numeric step was re-run — the ancestor closure of
    /// the changed columns (or all of them on a full fallback).
    pub cols_refactored: usize,
    /// Total columns in the factor.
    pub total_cols: usize,
    /// Whether the ancestor closure crossed the ratio crossover and the
    /// whole numeric phase was re-run instead.
    pub full: bool,
}

/// Segmented per-level work prefixes for the solve sweeps' span
/// balancing: segment `l` (`seg[l]..seg[l + 1]`, length `width + 1`) is a
/// zero-based prefix sum of per-column factor-entry counts (+1) over
/// level `l`'s columns — row lengths for the forward sweep, column
/// lengths for the backward sweep. Precomputed once at construction so
/// each per-level dispatch feeds [`pool::balanced_spans`] instead of
/// splitting skewed levels evenly (a hub row would otherwise serialize
/// its whole level behind one lane while the others idle at the barrier).
#[derive(Debug, Clone)]
struct SweepWeights {
    fwd: Vec<usize>,
    bwd: Vec<usize>,
    seg: Vec<usize>,
}

impl SweepWeights {
    fn level_fwd(&self, l: usize) -> &[usize] {
        &self.fwd[self.seg[l]..self.seg[l + 1]]
    }

    fn level_bwd(&self, l: usize) -> &[usize] {
        &self.bwd[self.seg[l]..self.seg[l + 1]]
    }

    fn memory_bytes(&self) -> usize {
        (self.fwd.len() + self.bwd.len() + self.seg.len()) * std::mem::size_of::<usize>()
    }
}

/// Upper-triangle-by-column view of a symmetric CSR matrix.
///
/// Column `k` of the upper triangle of a symmetric matrix equals the
/// entries of row `k` with column index `≤ k`, which is exactly what the
/// up-looking factorization consumes.
#[derive(Debug, Clone)]
struct UpperCsc {
    ap: Vec<usize>,
    ai: Vec<u32>,
    ax: Vec<f64>,
}

fn upper_csc(a: &CsrMatrix) -> UpperCsc {
    let n = a.nrows();
    let mut ap = Vec::with_capacity(n + 1);
    let mut ai = Vec::new();
    let mut ax = Vec::new();
    ap.push(0);
    for k in 0..n {
        let (cols, vals) = a.row(k);
        for (c, v) in cols.iter().zip(vals) {
            if (*c as usize) <= k {
                ai.push(*c);
                ax.push(*v);
            }
        }
        ap.push(ai.len());
    }
    UpperCsc { ap, ai, ax }
}

/// The retained state behind [`LdlFactor::refactor_partial`]'s fast
/// path, built on the first patch and reused while the input pattern
/// holds: verifying the *unpermuted* CSR pattern (`a_p`/`a_i`) against
/// the cached one proves the permuted upper pattern unchanged for any
/// structurally symmetric input, and `scatter` then routes the new
/// values straight into `u` — no symmetric permutation, no allocation.
#[derive(Debug, Clone)]
struct RefactorCache {
    /// Row pointers of the unpermuted input the cache was built from.
    a_p: Vec<usize>,
    /// Column indices of the unpermuted input.
    a_i: Vec<u32>,
    /// For the input's `k`-th stored value, its destination in `u.ax` —
    /// or `u32::MAX` for entries landing strictly below the permuted
    /// diagonal (their symmetric twin carries the value).
    scatter: Vec<u32>,
    /// Persistent permuted upper triangle, values refreshed per call.
    u: UpperCsc,
}

/// Per-lane workspace of the numeric phase: the dense accumulator `y`
/// (all-zero between column steps), the pattern stack, and the visit
/// flags. Column markers are globally unique, so a lane's flags never
/// collide across the columns it processes, even across levels.
struct FactorScratch {
    y: Vec<f64>,
    pattern: Vec<usize>,
    flag: Vec<i64>,
}

impl FactorScratch {
    fn new(n: usize) -> Self {
        FactorScratch {
            y: vec![0.0; n],
            pattern: vec![0; n],
            flag: vec![-1; n],
        }
    }
}

/// Shared state of the numeric phase. `ri`/`rx`/`d` are reached through
/// raw base pointers because one level's columns write their disjoint rows
/// concurrently while reading finalized lower-level rows of the same
/// buffers.
struct NumericCtx<'a> {
    u: &'a UpperCsc,
    parent: &'a [i64],
    rp: &'a [usize],
    ri: pool::SendPtr<u32>,
    rx: pool::SendPtr<f64>,
    d: pool::SendPtr<f64>,
    /// Shadow column→level map: every row/pivot a factorization step
    /// gathers must live in a strictly lower level than the step itself,
    /// or the per-level barriers do not actually order the read.
    #[cfg(feature = "race-check")]
    level_of: &'a [u32],
}

impl NumericCtx<'_> {
    /// Computes row `k` of `L` and the pivot `d[k]` — one up-looking step
    /// in *gather* form: the sparse solve `L c = a_k` finalizes each
    /// pattern entry by gathering the (finished) row it indexes, instead
    /// of scattering finished entries into ancestor columns.
    ///
    /// # Safety
    ///
    /// The caller must hold an exclusive claim on row `k`'s slices of
    /// `ri`/`rx` and on `d[k]`, and every row and pivot in `k`'s pattern
    /// (all in strictly lower etree levels) must be final.
    unsafe fn factor_column(&self, k: usize, s: &mut FactorScratch) {
        let n = self.parent.len();
        let (y, pattern, flag) = (&mut s.y[..], &mut s.pattern[..], &mut s.flag[..]);
        let u = self.u;
        // Scatter A's upper column k into y and build the row pattern:
        // etree paths from each entry merged in topological order — the
        // historical serial walk, unchanged.
        let mut top = n;
        flag[k] = k as i64;
        y[k] = 0.0;
        for p in u.ap[k]..u.ap[k + 1] {
            let i0 = u.ai[p] as usize;
            if i0 <= k {
                y[i0] += u.ax[p];
                let mut len = 0usize;
                let mut i = i0;
                while flag[i] != k as i64 {
                    pattern[len] = i;
                    len += 1;
                    flag[i] = k as i64;
                    i = self.parent[i] as usize;
                }
                // Move the path onto the output pattern in reverse: the
                // final traversal visits each path segment in ascending
                // (descendant-to-ancestor) order, later-merged branches
                // first — topological, though not globally sorted.
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    pattern[top] = pattern[len];
                }
            }
        }
        let mut dk = y[k];
        y[k] = 0.0;
        #[cfg(feature = "race-check")]
        for &i in &pattern[top..n] {
            let (lk, li) = (self.level_of[k], self.level_of[i]);
            assert!(
                li < lk,
                "race-check: factorization step at column {k} (level {lk}) reads \
                 row/pivot {i} (level {li}), which is not strictly below — \
                 cross-level read-set violation"
            );
        }
        let rip = self.ri.get();
        let rxp = self.rx.get();
        // Sparse unit-lower-triangular solve `L c = a_k`, gather form:
        // c_i = y_i − Σ_j L_ij·c_j over row i of L. Every c_j the row can
        // reference is either an earlier pattern entry (already final in
        // y) or zero, so off-pattern terms contribute exact zeros (a
        // branchy flag-based skip measured slower than the multiply).
        for &i in &pattern[top..n] {
            let mut yi = y[i];
            for p in self.rp[i]..self.rp[i + 1] {
                yi -= *rxp.add(p) * y[*rip.add(p) as usize];
            }
            y[i] = yi;
        }
        // Emit row k in its topological pattern order (descendants
        // before ancestors — the order `ri` documents), accumulate the
        // pivot, and restore y ≡ 0 for this lane's next column.
        let dp = self.d.get();
        let base = self.rp[k];
        for (idx, &i) in pattern[top..n].iter().enumerate() {
            let ci = y[i];
            y[i] = 0.0;
            let l_ki = ci / *dp.add(i);
            dk -= l_ki * ci;
            *rip.add(base + idx) = i as u32;
            *rxp.add(base + idx) = l_ki;
        }
        *dp.add(k) = dk;
    }
}

/// Numeric phase over the level schedule: levels ascend, each level's
/// columns spread across the pool (weighted by row length) or run inline
/// below the crossover.
///
/// Returns `Err(k)` with the *permuted* index of the first failing pivot —
/// the smallest failing column of the earliest failing level, which is
/// exactly where the serial sweep stops (the caller maps it back through
/// the permutation).
#[allow(clippy::too_many_arguments)]
fn numeric_phase(
    u: &UpperCsc,
    parent: &[i64],
    rnz: &[usize],
    rp: &[usize],
    schedule: &LevelSchedule,
    ri: &mut [u32],
    rx: &mut [f64],
    d: &mut [f64],
) -> std::result::Result<(), usize> {
    let n = parent.len();
    let p = pool::Pool::global();
    let lanes = {
        let w = p.workers_for(rx.len(), PAR_FACTOR_MIN_NNZ, PAR_FACTOR_MIN_NNZ);
        if w > 1 && (p.is_forced() || schedule.avg_width() >= PAR_MIN_AVG_WIDTH) {
            w.min(schedule.max_width()).max(1)
        } else {
            1
        }
    };
    #[cfg(feature = "race-check")]
    let level_of = level_map(schedule, n);
    let ctx = NumericCtx {
        u,
        parent,
        rp,
        ri: pool::SendPtr::new(ri.as_mut_ptr()),
        rx: pool::SendPtr::new(rx.as_mut_ptr()),
        d: pool::SendPtr::new(d.as_mut_ptr()),
        #[cfg(feature = "race-check")]
        level_of: &level_of,
    };
    let mut scratches: Vec<FactorScratch> = (0..lanes).map(|_| FactorScratch::new(n)).collect();
    let mut wprefix: Vec<usize> = Vec::with_capacity(schedule.max_width() + 1);
    for lvl in 0..schedule.level_count() {
        let cols = schedule.level(lvl);
        let lanes_here = lanes.min(cols.len());
        if lanes_here <= 1 {
            let s = &mut scratches[0];
            for &k in cols {
                let k = k as usize;
                // SAFETY: serial execution — exclusive access to every
                // output; pattern rows live in strictly lower levels,
                // already final.
                let dk = unsafe {
                    ctx.factor_column(k, s);
                    *ctx.d.get().add(k)
                };
                if dk == 0.0 || !dk.is_finite() {
                    return Err(k);
                }
            }
        } else {
            // Weighted spans: row length (plus the walk) approximates each
            // column's numeric cost well enough to balance skewed levels.
            wprefix.clear();
            wprefix.push(0);
            let mut acc = 0usize;
            for &k in cols {
                acc += rnz[k as usize] + 1;
                wprefix.push(acc);
            }
            let spans = pool::balanced_spans(&wprefix, lanes_here);
            p.parallel_for_with_scratch(&spans, &mut scratches, |_, (lo, hi), s| {
                for &k in &cols[lo..hi] {
                    // SAFETY: one level's columns are pairwise distinct, so
                    // each claimant writes only its own rows of `L` and
                    // entries of `d`; every read targets strictly lower
                    // levels, finalized before this dispatch (the pool
                    // blocks per level).
                    unsafe { ctx.factor_column(k as usize, s) };
                }
            });
            // Deferred pivot scan — ascending, so the reported failure is
            // the level's smallest failing column, matching the serial
            // sweep's stopping point bit for bit.
            for &k in cols {
                let k = k as usize;
                // SAFETY: k < n is one of this level's columns and the
                // dispatch above has joined, so d[k] is initialized and
                // no claimant still writes it.
                let dk = unsafe { *ctx.d.get().add(k) };
                if dk == 0.0 || !dk.is_finite() {
                    return Err(k);
                }
            }
        }
    }
    Ok(())
}

/// Column→level map of a schedule (shadow state for the race-check
/// read-set verification).
#[cfg(feature = "race-check")]
fn level_map(schedule: &LevelSchedule, n: usize) -> Vec<u32> {
    let mut level_of = vec![0u32; n];
    for lvl in 0..schedule.level_count() {
        for &k in schedule.level(lvl) {
            level_of[k as usize] = lvl as u32;
        }
    }
    level_of
}

/// [`numeric_phase`] restricted to the columns flagged in `mask` — the
/// partial-refactorization path. Unflagged columns are skipped entirely
/// (their rows of `L` and pivots keep their current values); flagged ones
/// re-run the exact factorization step, so the patched factor is
/// bit-identical to a from-scratch numeric phase whenever the unflagged
/// columns' inputs are genuinely unchanged.
///
/// Returns `Err(k)` with the permuted index of the first failing pivot
/// among the re-run columns. The caller builds the [`NumericCtx`] (and,
/// under `race-check`, threads the factor's shadow level map through it).
fn numeric_phase_masked(
    ctx: &NumericCtx<'_>,
    rnz: &[usize],
    schedule: &LevelSchedule,
    mask: &[bool],
) -> std::result::Result<(), usize> {
    let n = ctx.parent.len();
    let p = pool::Pool::global();
    // Gate lanes on the *masked* work, not the whole factor: a small
    // ancestor closure inside a huge factor should not pay dispatch.
    let masked_nnz: usize = (0..n).filter(|&k| mask[k]).map(|k| rnz[k] + 1).sum();
    let lanes = {
        let w = p.workers_for(masked_nnz, PAR_FACTOR_MIN_NNZ, PAR_FACTOR_MIN_NNZ);
        if w > 1 && (p.is_forced() || schedule.avg_width() >= PAR_MIN_AVG_WIDTH) {
            w.min(schedule.max_width()).max(1)
        } else {
            1
        }
    };
    let mut scratches: Vec<FactorScratch> = (0..lanes).map(|_| FactorScratch::new(n)).collect();
    let mut cols: Vec<u32> = Vec::new();
    let mut wprefix: Vec<usize> = Vec::with_capacity(schedule.max_width() + 1);
    for lvl in 0..schedule.level_count() {
        cols.clear();
        cols.extend(schedule.level(lvl).iter().filter(|&&k| mask[k as usize]));
        let lanes_here = lanes.min(cols.len());
        if lanes_here <= 1 {
            let s = &mut scratches[0];
            for &k in &cols {
                let k = k as usize;
                // SAFETY: serial execution — exclusive access to every
                // output; pattern rows live in strictly lower levels,
                // final whether re-run (earlier level) or untouched.
                let dk = unsafe {
                    ctx.factor_column(k, s);
                    *ctx.d.get().add(k)
                };
                if dk == 0.0 || !dk.is_finite() {
                    return Err(k);
                }
            }
        } else {
            wprefix.clear();
            wprefix.push(0);
            let mut acc = 0usize;
            for &k in &cols {
                acc += rnz[k as usize] + 1;
                wprefix.push(acc);
            }
            let spans = pool::balanced_spans(&wprefix, lanes_here);
            let cols = &cols[..];
            p.parallel_for_with_scratch(&spans, &mut scratches, |_, (lo, hi), s| {
                for &k in &cols[lo..hi] {
                    // SAFETY: as `numeric_phase` — pairwise-distinct
                    // columns, reads target strictly lower levels
                    // finalized before this dispatch.
                    unsafe { ctx.factor_column(k as usize, s) };
                }
            });
            for &k in cols {
                let k = k as usize;
                // SAFETY: the dispatch above has joined; d[k] is no longer
                // written by any claimant.
                let dk = unsafe { *ctx.d.get().add(k) };
                if dk == 0.0 || !dk.is_finite() {
                    return Err(k);
                }
            }
        }
    }
    Ok(())
}

impl LdlFactor {
    /// Factorizes `a` using a fill-reducing ordering of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular input and
    /// [`SparseError::ZeroPivot`] if a pivot vanishes (matrix not positive
    /// definite after grounding); the reported column is in the caller's
    /// original indexing, not the permuted one.
    pub fn new(a: &CsrMatrix, kind: OrderingKind) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let perm = ordering::compute(a, kind)?;
        Self::with_permutation(a, perm)
    }

    /// Factorizes `a` with a caller-provided permutation.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if the permutation length
    /// differs from the matrix dimension, [`SparseError::NotSquare`] for
    /// rectangular input, or [`SparseError::ZeroPivot`] on pivot breakdown
    /// (reporting the failing column in the caller's original indexing).
    pub fn with_permutation(a: &CsrMatrix, perm: Permutation) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        let n = a.nrows();
        let b = a.permute_sym(&perm)?;
        let u = upper_csc(&b);

        // Symbolic: elimination tree plus exact per-column and per-row
        // nonzero counts of L (columns size the transpose index, rows the
        // row-major storage), in one pass of etree path walks.
        let mut parent = vec![-1i64; n];
        let mut flag = vec![-1i64; n];
        let mut cnz = vec![0usize; n];
        let mut rnz = vec![0usize; n];
        for k in 0..n {
            flag[k] = k as i64;
            for p in u.ap[k]..u.ap[k + 1] {
                let mut i = u.ai[p] as usize;
                if i < k {
                    while flag[i] != k as i64 {
                        if parent[i] == -1 {
                            parent[i] = k as i64;
                        }
                        cnz[i] += 1;
                        rnz[k] += 1;
                        flag[i] = k as i64;
                        i = parent[i] as usize;
                    }
                }
            }
        }
        let schedule = LevelSchedule::from_parents(&parent);
        let mut rp = vec![0usize; n + 1];
        for k in 0..n {
            rp[k + 1] = rp[k] + rnz[k];
        }
        let nnz_l = rp[n];

        // Numeric phase, level-scheduled.
        let mut ri = vec![0u32; nnz_l];
        let mut rx = vec![0.0f64; nnz_l];
        let mut d = vec![0.0f64; n];
        if let Err(k) = numeric_phase(&u, &parent, &rnz, &rp, &schedule, &mut ri, &mut rx, &mut d) {
            return Err(SparseError::ZeroPivot {
                column: perm.old_of_new()[k],
            });
        }

        // Derived transpose: the CSC mirror of the row-major factor. Rows
        // ascend, so each column's entries come out row-ascending — the
        // order the backward sweep consumes.
        let mut cp = vec![0usize; n + 1];
        for j in 0..n {
            cp[j + 1] = cp[j] + cnz[j];
        }
        let mut ci = vec![0u32; nnz_l];
        let mut cx = vec![0.0f64; nnz_l];
        let mut mirror_map = vec![0usize; nnz_l];
        let mut next = cp[..n].to_vec();
        for k in 0..n {
            for p in rp[k]..rp[k + 1] {
                let j = ri[p] as usize;
                let q = next[j];
                next[j] += 1;
                ci[q] = k as u32;
                cx[q] = rx[p];
                mirror_map[q] = p;
            }
        }

        // Per-level sweep weights (row lengths forward, column lengths
        // backward), segmented so each level's slice is a standalone
        // zero-based prefix.
        let mut sweep_weights = SweepWeights {
            fwd: Vec::with_capacity(n + schedule.level_count()),
            bwd: Vec::with_capacity(n + schedule.level_count()),
            seg: Vec::with_capacity(schedule.level_count() + 1),
        };
        for lvl in 0..schedule.level_count() {
            sweep_weights.seg.push(sweep_weights.fwd.len());
            let (mut af, mut ab) = (0usize, 0usize);
            sweep_weights.fwd.push(0);
            sweep_weights.bwd.push(0);
            for &j in schedule.level(lvl) {
                let j = j as usize;
                af += rp[j + 1] - rp[j] + 1;
                ab += cp[j + 1] - cp[j] + 1;
                sweep_weights.fwd.push(af);
                sweep_weights.bwd.push(ab);
            }
        }
        sweep_weights.seg.push(sweep_weights.fwd.len());

        #[cfg(feature = "race-check")]
        let level_of = level_map(&schedule, n);
        let UpperCsc {
            ap: ua_p,
            ai: ua_i,
            ax: _,
        } = u;
        Ok(LdlFactor {
            n,
            perm,
            rp,
            ri,
            rx,
            cp,
            ci,
            cx,
            mirror_map,
            d,
            schedule,
            sweep_weights,
            parent,
            rnz,
            ua_p,
            ua_i,
            refactor_cache: None,
            #[cfg(feature = "race-check")]
            level_of,
        })
    }

    /// Patches the numeric factorization after a *value-only* change of
    /// the factored matrix, re-running the elimination steps of just the
    /// etree subtrees the change can reach.
    ///
    /// `changed_rows` lists the rows/columns of `a` (in the caller's
    /// original, unpermuted indexing) whose entries may differ from the
    /// matrix this factor was built from; entries outside those rows and
    /// columns **must** be unchanged — that containment is what makes the
    /// skipped columns' stored values equal a from-scratch recompute. For
    /// a symmetric value change at `(i, j)` both `i` and `j` belong in the
    /// list.
    ///
    /// The re-run set is the union of etree paths from each changed
    /// column to its root — every other column's inputs (its column of
    /// `A`, and the rows/pivots its pattern gathers, all in the set's
    /// complement) are untouched, so the patched factor is **bit-identical**
    /// to `LdlFactor::with_permutation(a, same_perm)`. When the set
    /// exceeds `crossover · n` columns the whole numeric phase is re-run
    /// instead (same result, better constant); the symbolic state is
    /// reused either way. If `a`'s sparsity pattern differs from the
    /// original matrix's, nothing is touched and
    /// [`RefactorOutcome::PatternChanged`] is returned — the caller must
    /// re-factorize from scratch.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] / [`SparseError::ShapeMismatch`]
    /// for a matrix that cannot be this factor's matrix, and
    /// [`SparseError::ZeroPivot`] (column in original indexing) if a
    /// re-run pivot vanishes — the factor is **poisoned** after a pivot
    /// failure and must be rebuilt.
    pub fn refactor_partial(
        &mut self,
        a: &CsrMatrix,
        changed_rows: &[usize],
        crossover: f64,
    ) -> Result<RefactorOutcome> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        if a.nrows() != self.n {
            return Err(SparseError::ShapeMismatch {
                context: format!(
                    "refactor_partial: factor is {}x{0}, matrix is {1}x{1}",
                    self.n,
                    a.nrows()
                ),
            });
        }
        let n = self.n;
        // Fast path: when `a`'s unpermuted pattern equals the cached one,
        // the permuted upper pattern is unchanged too (patterns map
        // bijectively under the factor's fixed permutation for the
        // structurally symmetric inputs this method factors), so the new
        // values scatter straight into the persistent upper triangle —
        // no symmetric permutation, no extraction, no allocation.
        let cached = matches!(
            &self.refactor_cache,
            Some(c) if c.a_p == a.indptr() && c.a_i == a.indices()
        );
        if !cached {
            let b = a.permute_sym(&self.perm)?;
            let u = upper_csc(&b);
            if u.ap != self.ua_p || u.ai != self.ua_i {
                return Ok(RefactorOutcome::PatternChanged);
            }
            self.refactor_cache = Some(Self::build_refactor_cache(a, u, &self.perm));
        }
        if changed_rows.is_empty() {
            return Ok(RefactorOutcome::Patched(RefactorStats {
                cols_refactored: 0,
                total_cols: n,
                full: false,
            }));
        }
        if cached {
            let Some(cache) = self.refactor_cache.as_mut() else {
                unreachable!("`cached` requires `refactor_cache` to be Some");
            };
            for (k, &val) in a.data().iter().enumerate() {
                let dst = cache.scatter[k];
                if dst != u32::MAX {
                    cache.u.ax[dst as usize] = val;
                }
            }
        }

        // Ancestor closure: every changed column plus the etree path to
        // its root. A column outside the closure never gathers a changed
        // row (its pattern rows are etree descendants of it; a changed
        // descendant would put it on that descendant's root path).
        let new_of_old = self.perm.new_of_old();
        let mut mask = vec![false; n];
        for &row in changed_rows {
            assert!(row < n, "changed row {row} out of bounds for n = {n}");
            let mut k = new_of_old[row] as i64;
            while k != -1 && !mask[k as usize] {
                mask[k as usize] = true;
                k = self.parent[k as usize];
            }
        }
        let affected = mask.iter().filter(|&&m| m).count();
        let full = (affected as f64) > crossover * (n as f64);
        if full {
            mask.iter_mut().for_each(|m| *m = true);
        }

        let Some(cache) = self.refactor_cache.as_ref() else {
            unreachable!("both branches above leave `refactor_cache` populated");
        };
        let ctx = NumericCtx {
            u: &cache.u,
            parent: &self.parent,
            rp: &self.rp,
            ri: pool::SendPtr::new(self.ri.as_mut_ptr()),
            rx: pool::SendPtr::new(self.rx.as_mut_ptr()),
            d: pool::SendPtr::new(self.d.as_mut_ptr()),
            #[cfg(feature = "race-check")]
            level_of: &self.level_of,
        };
        let result = numeric_phase_masked(&ctx, &self.rnz, &self.schedule, &mask);
        if let Err(k) = result {
            return Err(SparseError::ZeroPivot {
                column: self.perm.old_of_new()[k],
            });
        }

        // Refresh the transpose mirror's values (pattern unchanged — cp
        // and ci stay). Only the masked columns' values moved, and the
        // fixed pattern means each mirror slot's row-major source is
        // static (`mirror_map`), so the refresh touches exactly those
        // columns instead of re-scattering the whole factor.
        for (j, _) in mask.iter().enumerate().filter(|&(_, &m)| m) {
            for q in self.cp[j]..self.cp[j + 1] {
                self.cx[q] = self.rx[self.mirror_map[q]];
            }
        }

        Ok(RefactorOutcome::Patched(RefactorStats {
            cols_refactored: if full { n } else { affected },
            total_cols: n,
            full,
        }))
    }

    /// Builds the [`RefactorCache`] routing `a`'s stored values into the
    /// permuted upper triangle `u`, whose pattern already matched the
    /// factor's. Each upper entry `(pi, pj)` receives exactly one source:
    /// the input entry whose permuted image lands on or above the
    /// diagonal (its symmetric twin maps strictly below and is skipped).
    fn build_refactor_cache(a: &CsrMatrix, u: UpperCsc, perm: &Permutation) -> RefactorCache {
        assert!(
            a.nnz() < u32::MAX as usize,
            "refactor cache scatter indices must fit in u32"
        );
        let new_of_old = perm.new_of_old();
        let indptr = a.indptr();
        let mut scatter = vec![u32::MAX; a.nnz()];
        for i in 0..a.nrows() {
            let pi = new_of_old[i];
            let (cols, _) = a.row(i);
            for (off, &j) in cols.iter().enumerate() {
                let pj = new_of_old[j as usize];
                if pj > pi {
                    continue;
                }
                let span = &u.ai[u.ap[pi]..u.ap[pi + 1]];
                let Ok(pos) = span.binary_search(&(pj as u32)) else {
                    unreachable!("matched pattern contains every upper entry");
                };
                scatter[indptr[i] + off] = (u.ap[pi] + pos) as u32;
            }
        }
        RefactorCache {
            a_p: indptr.to_vec(),
            a_i: a.indices().to_vec(),
            scatter,
            u,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of off-diagonal nonzeros in `L` (a proxy for factor memory).
    pub fn nnz_l(&self) -> usize {
        self.rx.len()
    }

    /// Number of elimination-tree levels in the schedule (0 for an empty
    /// matrix). Deep schedules relative to [`LdlFactor::n`] mean a
    /// path-like etree with little level parallelism.
    pub fn level_count(&self) -> usize {
        self.schedule.level_count()
    }

    /// Width of the widest elimination-tree level — the upper bound on the
    /// parallelism any single factorization/solve step can use.
    pub fn max_level_width(&self) -> usize {
        self.schedule.max_width()
    }

    /// Approximate memory footprint of the factor in bytes: row-major
    /// values and indices, row pointers, the transpose index, the
    /// diagonal, the level schedule, the permutation, and the retained
    /// symbolic state (etree parents, row counts, upper pattern) that
    /// [`LdlFactor::refactor_partial`] reuses.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let base = self.rx.len() * size_of::<f64>()
            + self.ri.len() * size_of::<u32>()
            + self.rp.len() * size_of::<usize>()
            + self.cx.len() * size_of::<f64>()
            + self.mirror_map.len() * size_of::<usize>()
            + self.ci.len() * size_of::<u32>()
            + self.cp.len() * size_of::<usize>()
            + self.d.len() * size_of::<f64>()
            + self.schedule.memory_bytes()
            + self.sweep_weights.memory_bytes()
            + self.perm.len() * 2 * size_of::<usize>()
            + self.parent.len() * size_of::<i64>()
            + self.rnz.len() * size_of::<usize>()
            + self.ua_p.len() * size_of::<usize>()
            + self.ua_i.len() * size_of::<u32>();
        let base = base
            + self.refactor_cache.as_ref().map_or(0, |c| {
                c.a_p.len() * size_of::<usize>()
                    + c.a_i.len() * size_of::<u32>()
                    + c.scatter.len() * size_of::<u32>()
                    + c.u.ap.len() * size_of::<usize>()
                    + c.u.ai.len() * size_of::<u32>()
                    + c.u.ax.len() * size_of::<f64>()
            });
        #[cfg(feature = "race-check")]
        let base = base + self.level_of.len() * size_of::<u32>();
        base
    }

    /// The fill-reducing permutation used by this factor.
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// The diagonal `D` of the factorization (in permuted order).
    ///
    /// All entries are strictly positive when the input was SPD; the sign
    /// pattern is the matrix inertia.
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Solves `A x = b`, allocating the result.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A x = b` into a caller-provided buffer.
    ///
    /// Routes through the scratch path with a per-thread work buffer, so
    /// repeated calls allocate nothing after the first on a given thread.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `x.len() != n`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        SOLVE_WORK.with(|work| self.solve_into_scratch(b, x, &mut work.borrow_mut()));
    }

    /// [`LdlFactor::solve_into`] with a caller-owned work buffer, so
    /// repeated solves (iterative refinement, shift-invert Lanczos, PCG
    /// preconditioning) allocate nothing after the first call.
    ///
    /// Above a work crossover — or always, under an explicit
    /// `SASS_THREADS` / [`pool::set_threads`] override — the forward and
    /// backward substitutions run level-parallel over the elimination
    /// tree on the worker pool, producing results identical to the serial
    /// sweeps at every worker count.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `x.len() != n`.
    pub fn solve_into_scratch(&self, b: &[f64], x: &mut [f64], work: &mut Vec<f64>) {
        assert_eq!(b.len(), self.n, "solve: b length mismatch");
        assert_eq!(x.len(), self.n, "solve: x length mismatch");
        // Work in permuted coordinates: y = P b. The permutation scatter
        // writes every entry, so stale contents need no zeroing.
        let new_of_old = self.perm.new_of_old();
        work.resize(self.n, 0.0);
        let y = &mut work[..];
        for (old, &new) in new_of_old.iter().enumerate() {
            y[new] = b[old];
        }
        self.sweep_single(y);
        // Un-permute: x = Pᵀ y.
        for (old, &new) in new_of_old.iter().enumerate() {
            x[old] = y[new];
        }
    }

    /// Solves `A X = B` for a block of right-hand sides, allocating the
    /// result.
    ///
    /// Equivalent to calling [`LdlFactor::solve`] per column (to floating-
    /// point sign-of-zero), but sweeps the factor once per
    /// [`LDL_BLOCK_WIDTH`]-column chunk: one pass over `L`'s indices updates
    /// every column of the chunk, so factor traffic is amortized across the
    /// block.
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows() != n`.
    ///
    /// # Example
    ///
    /// ```
    /// use sass_sparse::{CooMatrix, DenseBlock, LdlFactor, ordering::OrderingKind};
    ///
    /// # fn main() -> Result<(), sass_sparse::SparseError> {
    /// let mut coo = CooMatrix::new(2, 2);
    /// coo.push(0, 0, 2.0); coo.push(1, 1, 2.0);
    /// coo.push_sym(0, 1, 1.0);
    /// let f = LdlFactor::new(&coo.to_csr(), OrderingKind::Natural)?;
    /// let b = DenseBlock::from_columns(&[vec![3.0, 3.0], vec![2.0, 1.0]]);
    /// let x = f.solve_block(&b);
    /// assert!((x.col(0)[0] - 1.0).abs() < 1e-14);
    /// assert!((x.col(1)[0] - 1.0).abs() < 1e-14);
    /// # Ok(())
    /// # }
    /// ```
    pub fn solve_block(&self, b: &DenseBlock) -> DenseBlock {
        let mut x = DenseBlock::zeros(self.n, b.ncols());
        self.solve_block_into(b, &mut x);
        x
    }

    /// [`LdlFactor::solve_block`] into a caller-provided block.
    ///
    /// Routes through the scratch path with a per-thread work buffer, so
    /// repeated calls allocate nothing after the first on a given thread.
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows() != n` or `x` has a different shape than `b`.
    pub fn solve_block_into(&self, b: &DenseBlock, x: &mut DenseBlock) {
        SOLVE_WORK.with(|work| self.solve_block_into_scratch(b, x, &mut work.borrow_mut()));
    }

    /// [`LdlFactor::solve_block_into`] with a caller-owned work buffer, so
    /// repeated blocked solves allocate nothing after the first call.
    ///
    /// The work buffer holds one chunk of columns in *interleaved* (row-
    /// major) layout — `w[row * k + col]` — so the triangular sweeps touch
    /// each chunk's right-hand sides contiguously per factor row. Like the
    /// single-vector path, the sweeps go level-parallel above a work
    /// crossover (or under a forced pool override).
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows() != n` or `x` has a different shape than `b`.
    pub fn solve_block_into_scratch(
        &self,
        b: &DenseBlock,
        x: &mut DenseBlock,
        work: &mut Vec<f64>,
    ) {
        assert_eq!(b.nrows(), self.n, "solve_block: b row-count mismatch");
        assert_eq!(x.nrows(), self.n, "solve_block: x row-count mismatch");
        assert_eq!(x.ncols(), b.ncols(), "solve_block: column-count mismatch");
        let new_of_old = self.perm.new_of_old();
        let mut start = 0;
        while start < b.ncols() {
            let k = LDL_BLOCK_WIDTH.min(b.ncols() - start);
            work.resize(self.n * k, 0.0);
            // Pack the chunk permuted and interleaved: w[new·k + c] = b_c[old].
            for c in 0..k {
                let col = b.col(start + c);
                for (old, &new) in new_of_old.iter().enumerate() {
                    work[new * k + c] = col[old];
                }
            }
            if k == LDL_BLOCK_WIDTH {
                self.sweep_chunk_fixed::<LDL_BLOCK_WIDTH>(work);
            } else {
                self.sweep_chunk_dyn(work, k);
            }
            // Un-permute back into the output columns.
            for c in 0..k {
                let col = x.col_mut(start + c);
                for (old, &new) in new_of_old.iter().enumerate() {
                    col[old] = work[new * k + c];
                }
            }
            start += k;
        }
    }

    /// Lane count for a triangular sweep over `ncols` right-hand sides —
    /// 1 whenever the flat serial sweeps win: below the work crossover,
    /// or when the etree is too deep and narrow for level scheduling to
    /// pay (near-tree factors keep their current latency). A standing
    /// `SASS_THREADS` / [`pool::set_threads`] override skips both gates.
    fn solve_workers(&self, ncols: usize) -> usize {
        let p = pool::Pool::global();
        let work = (self.rx.len() + self.n).saturating_mul(ncols);
        let w = p.workers_for(work, PAR_SOLVE_MIN_WORK, PAR_SOLVE_MIN_WORK);
        if w <= 1 {
            return 1;
        }
        if !p.is_forced() && self.schedule.avg_width() < PAR_MIN_AVG_WIDTH {
            return 1;
        }
        w.min(self.schedule.max_width()).max(1)
    }

    /// One full forward / diagonal / backward sweep over the level
    /// schedule with per-level pool dispatches: forward levels ascend
    /// (each row reads etree descendants), backward levels descend (each
    /// column reads ancestors), and every dispatch blocks until its level
    /// has drained — the barrier that finalizes inputs for the next.
    fn drive_levels(
        &self,
        workers: usize,
        fwd: &(dyn Fn(usize) + Sync),
        diag: &(dyn Fn(usize) + Sync),
        bwd: &(dyn Fn(usize) + Sync),
    ) {
        let p = pool::Pool::global();
        for lvl in 0..self.schedule.level_count() {
            run_level(
                p,
                self.schedule.level(lvl),
                self.sweep_weights.level_fwd(lvl),
                workers,
                fwd,
            );
        }
        let spans = pool::even_spans(self.n, workers);
        if spans.len() <= 1 {
            for j in 0..self.n {
                diag(j);
            }
        } else {
            p.parallel_for_spans(&spans, |_, (lo, hi)| {
                for j in lo..hi {
                    diag(j);
                }
            });
        }
        for lvl in (0..self.schedule.level_count()).rev() {
            run_level(
                p,
                self.schedule.level(lvl),
                self.sweep_weights.level_bwd(lvl),
                workers,
                bwd,
            );
        }
    }

    /// One forward-substitution row in gather form: `y_j ← y_j − Σ L_jk
    /// y_k` over row `j` of `L`.
    ///
    /// # Safety
    ///
    /// `y` must cover `n` elements; the caller must hold an exclusive
    /// claim on `y[j]`, and every `y` entry row `j` references (strictly
    /// lower etree levels) must be final.
    unsafe fn forward_row(&self, j: usize, y: &pool::SendPtr<f64>) {
        #[cfg(feature = "race-check")]
        self.shadow_check_reads(j, &self.ri[self.rp[j]..self.rp[j + 1]], true, "forward");
        let base = y.get();
        let mut acc = *base.add(j);
        for p in self.rp[j]..self.rp[j + 1] {
            acc -= self.rx[p] * *base.add(self.ri[p] as usize);
        }
        *base.add(j) = acc;
    }

    /// Shadow verification of the schedule invariant behind every parallel
    /// sweep: the entries step `j` gathers must live in strictly lower
    /// (`below`) or strictly higher etree levels, or the per-level
    /// barriers do not actually order the cross-level read and the
    /// "finalized inputs" safety argument is void. Checked on the serial
    /// paths too — the invariant is a property of the factor, not of the
    /// lane count that happens to exercise it.
    #[cfg(feature = "race-check")]
    fn shadow_check_reads(&self, j: usize, refs: &[u32], below: bool, what: &str) {
        let lj = self.level_of[j];
        for &i in refs {
            let li = self.level_of[i as usize];
            let ok = if below { li < lj } else { li > lj };
            assert!(
                ok,
                "race-check: {what} sweep step at column {j} (level {lj}) reads \
                 column {i} (level {li}), which is not strictly {} — \
                 cross-level read-set violation",
                if below { "below" } else { "above" }
            );
        }
    }

    /// Test-only hook for the race-check canaries: overwrites column `j`'s
    /// shadow level so a read that is actually well-ordered *looks* like a
    /// cross-level violation, proving the tracker trips.
    #[cfg(feature = "race-check")]
    #[doc(hidden)]
    pub fn corrupt_level_for_test(&mut self, j: usize, level: u32) {
        self.level_of[j] = level;
    }

    /// One backward-substitution column in gather form, via the transpose
    /// index: `y_j ← y_j − Σ L_kj y_k` over column `j` of `L`.
    ///
    /// # Safety
    ///
    /// As [`LdlFactor::forward_row`], but the entries column `j`
    /// references live in strictly *higher* etree levels.
    unsafe fn backward_col(&self, j: usize, y: &pool::SendPtr<f64>) {
        #[cfg(feature = "race-check")]
        self.shadow_check_reads(j, &self.ci[self.cp[j]..self.cp[j + 1]], false, "backward");
        let base = y.get();
        let mut acc = *base.add(j);
        for p in self.cp[j]..self.cp[j + 1] {
            acc -= self.cx[p] * *base.add(self.ci[p] as usize);
        }
        *base.add(j) = acc;
    }

    /// Forward / diagonal / backward sweeps for one right-hand side.
    fn sweep_single(&self, y: &mut [f64]) {
        let workers = self.solve_workers(1);
        let yp = pool::SendPtr::new(y.as_mut_ptr());
        if workers <= 1 {
            // SAFETY: exclusive borrow of y; flat ascending (descending)
            // order satisfies every row's (column's) dependencies.
            unsafe {
                for j in 0..self.n {
                    self.forward_row(j, &yp);
                }
                for j in 0..self.n {
                    *yp.get().add(j) /= self.d[j];
                }
                for j in (0..self.n).rev() {
                    self.backward_col(j, &yp);
                }
            }
            return;
        }
        // SAFETY: a level's columns are pairwise distinct (each claimant
        // writes only its own y[j]), levels barrier between dispatches so
        // cross-level reads see finalized values, and each y[j] runs the
        // serial sweep's operation sequence whichever lane claims it.
        self.drive_levels(
            workers,
            &|j| unsafe { self.forward_row(j, &yp) },
            &|j| unsafe { *yp.get().add(j) /= self.d[j] },
            &|j| unsafe { self.backward_col(j, &yp) },
        );
    }

    /// [`LdlFactor::forward_row`] over an interleaved chunk of exactly `K`
    /// right-hand sides (monomorphized so the inner loop unrolls).
    ///
    /// # Safety
    ///
    /// As [`LdlFactor::forward_row`], with `w` covering `n · K` elements
    /// and the claim covering `w[j·K..(j+1)·K]`.
    unsafe fn forward_row_block<const K: usize>(&self, j: usize, w: &pool::SendPtr<f64>) {
        #[cfg(feature = "race-check")]
        self.shadow_check_reads(
            j,
            &self.ri[self.rp[j]..self.rp[j + 1]],
            true,
            "forward-block",
        );
        let base = w.get();
        if K == LDL_BLOCK_WIDTH {
            // The full-width chunk is the hot shape; route it through the
            // 8-wide SIMD dispatcher (bit-identical to the loop below —
            // the referenced rows sit strictly below `j`, so the in-place
            // accumulator never aliases them).
            let acc = std::slice::from_raw_parts_mut(base.add(j * K), K);
            let (s, e) = (self.rp[j], self.rp[j + 1]);
            crate::kernel::ldl_row_update8(acc, &self.ri[s..e], &self.rx[s..e], base);
            return;
        }
        let mut acc = [0.0f64; K];
        acc.copy_from_slice(std::slice::from_raw_parts(base.add(j * K), K));
        for p in self.rp[j]..self.rp[j + 1] {
            let i = self.ri[p] as usize;
            let l = self.rx[p];
            let wi = std::slice::from_raw_parts(base.add(i * K), K);
            for c in 0..K {
                acc[c] -= l * wi[c];
            }
        }
        std::slice::from_raw_parts_mut(base.add(j * K), K).copy_from_slice(&acc);
    }

    /// Diagonal scaling of one interleaved chunk row.
    ///
    /// # Safety
    ///
    /// `w` must cover `n · K` elements with an exclusive claim on
    /// `w[j·K..(j+1)·K]`.
    unsafe fn scale_row_block<const K: usize>(&self, j: usize, w: &pool::SendPtr<f64>) {
        let dj = self.d[j];
        let wj = std::slice::from_raw_parts_mut(w.get().add(j * K), K);
        if K == LDL_BLOCK_WIDTH {
            // Lanewise division is correctly rounded: bit-identical.
            crate::kernel::ldl_scale_row8(wj, dj);
            return;
        }
        for c in 0..K {
            wj[c] /= dj;
        }
    }

    /// [`LdlFactor::backward_col`] over an interleaved chunk of exactly
    /// `K` right-hand sides.
    ///
    /// # Safety
    ///
    /// As [`LdlFactor::forward_row_block`], but referenced entries live in
    /// strictly higher etree levels.
    unsafe fn backward_col_block<const K: usize>(&self, j: usize, w: &pool::SendPtr<f64>) {
        #[cfg(feature = "race-check")]
        self.shadow_check_reads(
            j,
            &self.ci[self.cp[j]..self.cp[j + 1]],
            false,
            "backward-block",
        );
        let base = w.get();
        if K == LDL_BLOCK_WIDTH {
            // As `forward_row_block`: the transpose index references rows
            // strictly above `j`, never the accumulator itself.
            let acc = std::slice::from_raw_parts_mut(base.add(j * K), K);
            let (s, e) = (self.cp[j], self.cp[j + 1]);
            crate::kernel::ldl_row_update8(acc, &self.ci[s..e], &self.cx[s..e], base);
            return;
        }
        let mut acc = [0.0f64; K];
        acc.copy_from_slice(std::slice::from_raw_parts(base.add(j * K), K));
        for p in self.cp[j]..self.cp[j + 1] {
            let i = self.ci[p] as usize;
            let l = self.cx[p];
            let wi = std::slice::from_raw_parts(base.add(i * K), K);
            for c in 0..K {
                acc[c] -= l * wi[c];
            }
        }
        std::slice::from_raw_parts_mut(base.add(j * K), K).copy_from_slice(&acc);
    }

    /// Forward / diagonal / backward sweeps over one interleaved chunk of
    /// exactly `K` right-hand sides.
    fn sweep_chunk_fixed<const K: usize>(&self, w: &mut [f64]) {
        let workers = self.solve_workers(K);
        let wp = pool::SendPtr::new(w.as_mut_ptr());
        if workers <= 1 {
            // SAFETY: exclusive borrow of w; flat order satisfies every
            // dependency (see `sweep_single`).
            unsafe {
                for j in 0..self.n {
                    self.forward_row_block::<K>(j, &wp);
                }
                for j in 0..self.n {
                    self.scale_row_block::<K>(j, &wp);
                }
                for j in (0..self.n).rev() {
                    self.backward_col_block::<K>(j, &wp);
                }
            }
            return;
        }
        // SAFETY: as `sweep_single` — each column owns its contiguous
        // K-wide chunk row, levels barrier between dispatches.
        self.drive_levels(
            workers,
            &|j| unsafe { self.forward_row_block::<K>(j, &wp) },
            &|j| unsafe { self.scale_row_block::<K>(j, &wp) },
            &|j| unsafe { self.backward_col_block::<K>(j, &wp) },
        );
    }

    /// The same sweeps for a partial tail chunk of `k < LDL_BLOCK_WIDTH`
    /// columns — monomorphized per width so the tail reuses the exact
    /// fixed-width kernels (identical float-operation sequences, unrolled
    /// inner loops, one implementation to maintain).
    fn sweep_chunk_dyn(&self, w: &mut [f64], k: usize) {
        match k {
            1 => self.sweep_chunk_fixed::<1>(w),
            2 => self.sweep_chunk_fixed::<2>(w),
            3 => self.sweep_chunk_fixed::<3>(w),
            4 => self.sweep_chunk_fixed::<4>(w),
            5 => self.sweep_chunk_fixed::<5>(w),
            6 => self.sweep_chunk_fixed::<6>(w),
            7 => self.sweep_chunk_fixed::<7>(w),
            _ => unreachable!("tail chunk width {k} out of [1, {LDL_BLOCK_WIDTH})"),
        }
    }
}

/// Dispatches one level's columns across the pool (or inline when the
/// level is narrower than two lanes).
fn run_level(
    p: &pool::Pool,
    cols: &[u32],
    wprefix: &[usize],
    workers: usize,
    f: &(dyn Fn(usize) + Sync),
) {
    debug_assert_eq!(wprefix.len(), cols.len() + 1);
    let lanes = workers.min(cols.len());
    if lanes <= 1 {
        for &j in cols {
            f(j as usize);
        }
        return;
    }
    // Work-weighted split: a level mixing hub rows with singletons must
    // not hand one lane everything while the rest idle at the barrier.
    let spans = pool::balanced_spans(wprefix, lanes);
    if spans.len() <= 1 {
        for &j in cols {
            f(j as usize);
        }
        return;
    }
    p.parallel_for_spans(&spans, |_, (lo, hi)| {
        for &j in &cols[lo..hi] {
            f(j as usize);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn spd_tridiag(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0);
            if i + 1 < n {
                coo.push_sym(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn solves_tridiagonal_every_ordering() {
        let a = spd_tridiag(50);
        let b: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        for kind in [
            OrderingKind::Natural,
            OrderingKind::Rcm,
            OrderingKind::MinDegree,
            OrderingKind::NestedDissection,
        ] {
            let f = LdlFactor::new(&a, kind).unwrap();
            let x = f.solve(&b);
            assert!(
                a.residual_norm(&x, &b) < 1e-12,
                "residual too large for {kind:?}"
            );
        }
    }

    #[test]
    fn factor_of_identity_is_trivial() {
        let a = CsrMatrix::identity(10);
        let f = LdlFactor::new(&a, OrderingKind::Natural).unwrap();
        assert_eq!(f.nnz_l(), 0);
        assert!(f.d().iter().all(|&d| (d - 1.0).abs() < 1e-15));
        // No dependencies at all: one level holding every column.
        assert_eq!(f.level_count(), 1);
        assert_eq!(f.max_level_width(), 10);
    }

    #[test]
    fn detects_singular_matrix() {
        // Ungrounded 2-node Laplacian is singular.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        coo.push_sym(0, 1, -1.0);
        let err = LdlFactor::new(&coo.to_csr(), OrderingKind::Natural).unwrap_err();
        assert!(matches!(err, SparseError::ZeroPivot { .. }));
    }

    /// Regression: the `ZeroPivot` column must name the caller's original
    /// vertex, not the position the fill-reducing permutation moved it to.
    #[test]
    fn zero_pivot_reports_original_index() {
        // Vertex 2 has an empty row, so its pivot is exactly zero.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        // Permutation placing old vertex 2 first: the failure happens at
        // permuted column 0 but must be reported as column 2.
        let perm = Permutation::from_old_of_new(vec![2, 0, 1]).unwrap();
        let err = LdlFactor::with_permutation(&a, perm).unwrap_err();
        assert_eq!(err, SparseError::ZeroPivot { column: 2 });
        // Natural ordering reports it unchanged.
        let err = LdlFactor::new(&a, OrderingKind::Natural).unwrap_err();
        assert_eq!(err, SparseError::ZeroPivot { column: 2 });
    }

    #[test]
    fn rejects_rectangular() {
        let coo = CooMatrix::new(2, 3);
        let err = LdlFactor::new(&coo.to_csr(), OrderingKind::Natural).unwrap_err();
        assert!(matches!(err, SparseError::NotSquare { .. }));
    }

    #[test]
    fn random_spd_solves_accurately() {
        // A = B + n*I with random sparse symmetric B is SPD-dominant.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 80;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, n as f64);
        }
        for _ in 0..300 {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                coo.push_sym(i.min(j), i.max(j), rng.gen_range(-1.0..1.0));
            }
        }
        let a = coo.to_csr();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        for kind in [OrderingKind::MinDegree, OrderingKind::Rcm] {
            let f = LdlFactor::new(&a, kind).unwrap();
            let x = f.solve(&b);
            assert!(a.residual_norm(&x, &b) < 1e-11);
        }
    }

    #[test]
    fn d_positive_for_spd() {
        let a = spd_tridiag(20);
        let f = LdlFactor::new(&a, OrderingKind::MinDegree).unwrap();
        assert!(f.d().iter().all(|&d| d > 0.0));
        assert!(f.memory_bytes() > 0);
    }

    /// A natural-order tridiagonal factor has a pure path etree: n levels
    /// of width one — the degenerate schedule the crossover guards.
    #[test]
    fn path_etree_level_stats() {
        let a = spd_tridiag(12);
        let f = LdlFactor::new(&a, OrderingKind::Natural).unwrap();
        assert_eq!(f.level_count(), 12);
        assert_eq!(f.max_level_width(), 1);
    }

    /// A star grounded at its center, center ordered last: every leaf is
    /// independent (one wide level) and the center depends on all of them.
    #[test]
    fn star_etree_level_stats() {
        let n = 9;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i, 2.0);
            coo.push_sym(i, n - 1, -1.0);
        }
        coo.push(n - 1, n - 1, n as f64);
        let f = LdlFactor::new(&coo.to_csr(), OrderingKind::Natural).unwrap();
        assert_eq!(f.level_count(), 2);
        assert_eq!(f.max_level_width(), n - 1);
    }

    #[test]
    fn memory_bytes_counts_schedule_and_permutation() {
        let a = spd_tridiag(16);
        let f = LdlFactor::new(&a, OrderingKind::Rcm).unwrap();
        let values_and_indices = f.nnz_l() * (8 + 4) * 2 + (f.n() + 1) * 8 * 2 + f.n() * 8;
        // Schedule + permutation storage must be included on top of the
        // factor arrays themselves.
        assert!(f.memory_bytes() > values_and_indices);
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = spd_tridiag(16);
        let f = LdlFactor::new(&a, OrderingKind::Rcm).unwrap();
        let b = vec![1.0; 16];
        let x1 = f.solve(&b);
        let mut x2 = vec![0.0; 16];
        f.solve_into(&b, &mut x2);
        assert_eq!(x1, x2);
        let mut x3 = vec![0.0; 16];
        f.solve_into_scratch(&b, &mut x3, &mut Vec::new());
        assert_eq!(x1, x3);
    }

    /// Blocked solves must match the per-RHS path across full blocks,
    /// partial tail blocks, and multi-chunk widths.
    #[test]
    fn solve_block_matches_per_column() {
        let a = spd_tridiag(40);
        for kind in [OrderingKind::Natural, OrderingKind::MinDegree] {
            let f = LdlFactor::new(&a, kind).unwrap();
            for ncols in [1usize, 3, LDL_BLOCK_WIDTH, LDL_BLOCK_WIDTH + 1, 20] {
                let cols: Vec<Vec<f64>> = (0..ncols)
                    .map(|c| {
                        (0..40)
                            .map(|i| ((i * (c + 3)) as f64 * 0.31).sin())
                            .collect()
                    })
                    .collect();
                let blocked = f.solve_block(&DenseBlock::from_columns(&cols));
                for (c, col) in cols.iter().enumerate() {
                    let single = f.solve(col);
                    for (bx, sx) in blocked.col(c).iter().zip(&single) {
                        assert!(
                            (bx - sx).abs() <= 1e-14 * sx.abs().max(1.0),
                            "{kind:?} ncols={ncols} col={c}: {bx} vs {sx}"
                        );
                    }
                }
            }
        }
    }

    /// `refactor_partial` after a value change must equal a from-scratch
    /// factorization with the same permutation, bit for bit — values,
    /// mirror, and diagonal.
    #[test]
    fn refactor_partial_matches_from_scratch() {
        let n = 60;
        let a = spd_tridiag(n);
        for kind in [OrderingKind::Natural, OrderingKind::MinDegree] {
            let mut f = LdlFactor::new(&a, kind).unwrap();
            // Bump the diagonal of a mid column (a legal SPD value edit).
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                coo.push(i, i, if i == 17 { 9.0 } else { 4.0 });
                if i + 1 < n {
                    coo.push_sym(i, i + 1, -1.0);
                }
            }
            let a2 = coo.to_csr();
            let out = f.refactor_partial(&a2, &[17], 0.9).unwrap();
            let stats = match out {
                RefactorOutcome::Patched(s) => s,
                RefactorOutcome::PatternChanged => panic!("pattern did not change"),
            };
            assert!(stats.cols_refactored >= 1 && stats.cols_refactored <= n);
            let fresh = LdlFactor::with_permutation(&a2, f.permutation().clone()).unwrap();
            assert_eq!(f.rx, fresh.rx, "{kind:?}: L values drifted");
            assert_eq!(f.cx, fresh.cx, "{kind:?}: mirror values drifted");
            assert_eq!(f.d, fresh.d, "{kind:?}: pivots drifted");
        }
    }

    /// The crossover forces the full numeric path; the result must still
    /// be bit-identical.
    #[test]
    fn refactor_partial_crossover_goes_full() {
        let n = 30;
        let a = spd_tridiag(n);
        let mut f = LdlFactor::new(&a, OrderingKind::Natural).unwrap();
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, if i == 0 { 5.0 } else { 4.0 });
            if i + 1 < n {
                coo.push_sym(i, i + 1, -1.0);
            }
        }
        let a2 = coo.to_csr();
        // Column 0 of a natural tridiagonal roots the whole etree path, so
        // any positive crossover below 1.0 trips the full fallback.
        let out = f.refactor_partial(&a2, &[0], 0.5).unwrap();
        assert_eq!(
            out,
            RefactorOutcome::Patched(RefactorStats {
                cols_refactored: n,
                total_cols: n,
                full: true
            })
        );
        let fresh = LdlFactor::with_permutation(&a2, f.permutation().clone()).unwrap();
        assert_eq!(f.rx, fresh.rx);
        assert_eq!(f.d, fresh.d);
    }

    #[test]
    fn refactor_partial_detects_pattern_change() {
        let a = spd_tridiag(10);
        let mut f = LdlFactor::new(&a, OrderingKind::Natural).unwrap();
        let d_before = f.d.clone();
        // Add an off-diagonal entry: new pattern.
        let mut coo = CooMatrix::new(10, 10);
        for i in 0..10 {
            coo.push(i, i, 4.0);
            if i + 1 < 10 {
                coo.push_sym(i, i + 1, -1.0);
            }
        }
        coo.push_sym(0, 9, -0.5);
        let out = f.refactor_partial(&coo.to_csr(), &[0, 9], 0.9).unwrap();
        assert_eq!(out, RefactorOutcome::PatternChanged);
        assert_eq!(f.d, d_before, "factor must be untouched");
    }

    #[test]
    fn refactor_partial_no_changes_is_a_no_op() {
        let a = spd_tridiag(12);
        let mut f = LdlFactor::new(&a, OrderingKind::MinDegree).unwrap();
        let out = f.refactor_partial(&a, &[], 0.9).unwrap();
        assert_eq!(
            out,
            RefactorOutcome::Patched(RefactorStats {
                cols_refactored: 0,
                total_cols: 12,
                full: false
            })
        );
    }

    #[test]
    fn refactor_partial_rejects_wrong_shape() {
        let a = spd_tridiag(8);
        let mut f = LdlFactor::new(&a, OrderingKind::Natural).unwrap();
        let b = spd_tridiag(9);
        assert!(matches!(
            f.refactor_partial(&b, &[0], 0.9),
            Err(SparseError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn refactor_partial_reports_zero_pivot() {
        // Start SPD, then zero a diagonal entry (pattern preserved by
        // keeping the explicit entry with value 0 via a push of 0.0? CSR
        // drops explicit zeros on assembly, so instead drive the pivot to
        // zero through cancellation: a 2x2 [[1, 1], [1, 1]] has d[1] = 0).
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 2.0);
        coo.push(1, 1, 2.0);
        coo.push_sym(0, 1, 1.0);
        let mut f = LdlFactor::new(&coo.to_csr(), OrderingKind::Natural).unwrap();
        let mut coo2 = CooMatrix::new(2, 2);
        coo2.push(0, 0, 1.0);
        coo2.push(1, 1, 1.0);
        coo2.push_sym(0, 1, 1.0);
        let err = f
            .refactor_partial(&coo2.to_csr(), &[0, 1], 0.9)
            .unwrap_err();
        assert!(matches!(err, SparseError::ZeroPivot { .. }));
    }

    #[test]
    fn memory_bytes_counts_retained_symbolic_state() {
        let a = spd_tridiag(16);
        let f = LdlFactor::new(&a, OrderingKind::Rcm).unwrap();
        // parent (i64) + rnz (usize) alone add 16 bytes per column.
        assert!(f.memory_bytes() >= f.n() * 16);
    }

    #[test]
    fn solve_block_scratch_reuse_and_empty() {
        let a = spd_tridiag(12);
        let f = LdlFactor::new(&a, OrderingKind::Rcm).unwrap();
        let mut work = Vec::new();
        let b = DenseBlock::from_columns(&[vec![1.0; 12], vec![-2.0; 12]]);
        let mut x = DenseBlock::zeros(12, 2);
        f.solve_block_into_scratch(&b, &mut x, &mut work);
        let again = f.solve_block(&b);
        assert_eq!(x, again);
        // Zero-column block is a no-op.
        let empty = f.solve_block(&DenseBlock::zeros(12, 0));
        assert_eq!(empty.ncols(), 0);
    }
}
