//! x86-64 SIMD kernels: SSE2 (baseline, always available on x86-64) and
//! AVX2 (runtime-detected) variants of the scalar oracles.
//!
//! # Bit-exactness strategy (f64)
//!
//! Every f64 kernel here reproduces the scalar accumulation order exactly:
//!
//! - **SpMV has no f64 variant by measurement, not omission.** A
//!   bit-exact row gather must sum each row serially in stored order, so
//!   the floating-point add chain — the actual latency bound, which
//!   out-of-order hardware already overlaps with the scalar multiplies —
//!   cannot be widened; all a vector version can do is pre-form the
//!   products through a stack buffer, and that extra pass measured ~30%
//!   *slower* than the scalar loop on the `backends` bench workloads
//!   (`csr_f64` mesh row: ≈120µs buffered vs ≈90µs scalar). The f64
//!   dispatcher therefore resolves to the scalar kernel at every tier;
//!   the f32 path (reassociation allowed under the documented tolerance)
//!   is where the SpMV speedup lives.
//! - **BCSR tiles** are register-transposed (`unpacklo/hi`, and
//!   `permute2f128` for 4×4) so the accumulator lane for output row `br`
//!   adds tile columns in ascending-column order — the exact scalar
//!   sequence `acc[br] += t[br][0]·x0; acc[br] += t[br][1]·x1; …`.
//! - **LDLᵀ 8-wide sweeps** keep each of the 8 interleaved right-hand
//!   sides in its own lane; `acc -= l·w` is one correctly-rounded multiply
//!   followed by one correctly-rounded subtract per lane, same as scalar.
//!   No FMA is used anywhere: contraction would change the rounding.
//! - **Joule heat** puts one edge per lane; per lane the column loop
//!   performs `acc += (w·d)·d` in the scalar order.
//! - Lanewise division (`ldl_scale_row8`) is correctly rounded, hence
//!   trivially bit-exact.
//!
//! f32 kernels are only required to meet the per-row `(nnz+2)·ε_f32`
//! tolerance from `backend_parity.rs`, so they use wide in-register
//! accumulators and (on AVX2) masked tail loads — mesh-like rows carry
//! only 7–9 stored entries, so a kernel that needs `nnz ≥ 8` to engage
//! would never run; `maskload`/masked-gather handling of the ragged tail
//! is what makes the wide path reachable on the workloads we care about.
//!
//! # Safety conventions
//!
//! All functions take slices and bound-check through them before issuing
//! raw loads; AVX2 functions carry `#[target_feature(enable = "avx2")]`
//! and must only be called after `is_x86_feature_detected!("avx2")`
//! (enforced by the dispatchers in [`super`]). Gather index math assumes
//! column/node indices fit in `i32`, which the dispatchers guarantee by
//! falling back to scalar for absurdly wide operands.

// Kernels index several parallel arrays in lockstep; explicit indices
// keep the lane bookkeeping auditable against the scalar oracle.
#![allow(clippy::needless_range_loop)]

use core::arch::x86_64::*;

// ---------------------------------------------------------------------------
// CSR row-gather SpMV (f32 only — see the module docs for why f64 SpMV
// deliberately has no vector variant)
// ---------------------------------------------------------------------------

/// SSE2 f32 SpMV over rows `lo..hi`: 4-wide dual accumulators with a
/// scalar tail (toleranced; reassociates the row sum).
///
/// # Safety
///
/// Nothing beyond the dispatcher contract: SSE2 is the x86-64 baseline,
/// gathers index `x` through bounds-checked slices, and the raw row
/// loads are guarded by the `t + width <= nnz` loop bounds over the
/// row's own sub-slice — malformed inputs panic exactly like the scalar
/// oracle. The `unsafe` marker only keeps one signature across the
/// kernel tiers.
#[cfg(feature = "storage-f32")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn spmv_range_f32_sse2(
    indptr: &[usize],
    indices: &[u32],
    data: &[f32],
    x: &[f32],
    y: &mut [f32],
    lo: usize,
    hi: usize,
) {
    for i in lo..hi {
        let (s, e) = (indptr[i], indptr[i + 1]);
        // Scalar-oracle semantics: an empty (or non-monotone, hence
        // empty-range) row contributes 0 instead of panicking on the
        // reversed slice.
        if s >= e {
            y[i - lo] = 0.0;
            continue;
        }
        let row_idx = &indices[s..e];
        let row_val = &data[s..e];
        let nnz = row_val.len();
        let mut acc0 = _mm_setzero_ps();
        let mut acc1 = _mm_setzero_ps();
        let mut t = 0;
        while t + 8 <= nnz {
            let v0 = _mm_loadu_ps(row_val.as_ptr().add(t));
            let x0 = _mm_set_ps(
                x[row_idx[t + 3] as usize],
                x[row_idx[t + 2] as usize],
                x[row_idx[t + 1] as usize],
                x[row_idx[t] as usize],
            );
            acc0 = _mm_add_ps(acc0, _mm_mul_ps(v0, x0));
            let v1 = _mm_loadu_ps(row_val.as_ptr().add(t + 4));
            let x1 = _mm_set_ps(
                x[row_idx[t + 7] as usize],
                x[row_idx[t + 6] as usize],
                x[row_idx[t + 5] as usize],
                x[row_idx[t + 4] as usize],
            );
            acc1 = _mm_add_ps(acc1, _mm_mul_ps(v1, x1));
            t += 8;
        }
        if t + 4 <= nnz {
            let v0 = _mm_loadu_ps(row_val.as_ptr().add(t));
            let x0 = _mm_set_ps(
                x[row_idx[t + 3] as usize],
                x[row_idx[t + 2] as usize],
                x[row_idx[t + 1] as usize],
                x[row_idx[t] as usize],
            );
            acc0 = _mm_add_ps(acc0, _mm_mul_ps(v0, x0));
            t += 4;
        }
        let s4 = _mm_add_ps(acc0, acc1);
        let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
        let s1 = _mm_add_ss(s2, _mm_shuffle_ps::<1>(s2, s2));
        let mut total = _mm_cvtss_f32(s1);
        for tt in t..nnz {
            total += row_val[tt] * x[row_idx[tt] as usize];
        }
        y[i - lo] = total;
    }
}

/// AVX2 f32 SpMV over rows `lo..hi`: 8-wide gathered accumulation with a
/// **masked** ragged tail, so even 7–9-entry mesh rows run vectorized
/// (toleranced; reassociates the row sum).
///
/// The gather path reads through raw pointers, so the whole row range is
/// validated in one hoisted prescan (monotone `indptr` with extents
/// inside `indices`/`data`, every touched column index inside `x` — both
/// checks autovectorize, so the hot loop itself carries no per-row
/// validation cost). Anything malformed is routed to the scalar oracle
/// instead, which reproduces the safe tiers' exact semantics — panic via
/// indexing, or empty-range rows contributing 0 — so the dispatcher's
/// safe-API contract is identical at every tier.
///
/// # Safety
///
/// AVX2 must be runtime-detected (the dispatcher's `SimdLevel::Avx2` arm
/// guarantees it), and the caller must run the hoisted prescan described
/// above before entering — the raw gathers stay in bounds only for
/// validated `indptr`/`indices` against `data`/`x` extents.
#[cfg(feature = "storage-f32")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub(super) unsafe fn spmv_range_f32_avx2(
    indptr: &[usize],
    indices: &[u32],
    data: &[f32],
    x: &[f32],
    y: &mut [f32],
    lo: usize,
    hi: usize,
) {
    if lo >= hi {
        return;
    }
    // For monotone indptr the union of row ranges is exactly
    // [indptr[lo], indptr[hi]), so the max-reduction below checks
    // precisely the gather indices the hot loop will touch.
    let valid = hi < indptr.len()
        && indptr[lo..=hi].windows(2).all(|w| w[0] <= w[1])
        && indptr[hi] <= indices.len()
        && indptr[hi] <= data.len()
        && {
            let mut max_c = 0u32;
            for &c in &indices[indptr[lo]..indptr[hi]] {
                max_c = max_c.max(c);
            }
            (max_c as usize) < x.len() || indptr[lo] == indptr[hi]
        };
    if !valid {
        return super::scalar::spmv_range(indptr, indices, data, x, y, lo, hi);
    }
    let zero = _mm256_setzero_ps();
    let lane_ids = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    for i in lo..hi {
        let (s, e) = (indptr[i], indptr[i + 1]);
        let nnz = e - s;
        let mut acc = _mm256_setzero_ps();
        let mut t = 0;
        while t + 8 <= nnz {
            let idx = _mm256_loadu_si256(indices.as_ptr().add(s + t).cast::<__m256i>());
            let xv = _mm256_i32gather_ps::<4>(x.as_ptr(), idx);
            let v = _mm256_loadu_ps(data.as_ptr().add(s + t));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(v, xv));
            t += 8;
        }
        if t < nnz {
            // Masked tail: inactive lanes load index 0 / value 0.0 and are
            // excluded from the gather, contributing an exact +0.0 (masked
            // lanes of maskload/gather never touch memory, so the loads
            // stay confined to the validated range).
            let mask = _mm256_cmpgt_epi32(_mm256_set1_epi32((nnz - t) as i32), lane_ids);
            let idx = _mm256_maskload_epi32(indices.as_ptr().add(s + t).cast::<i32>(), mask);
            let v = _mm256_maskload_ps(data.as_ptr().add(s + t), mask);
            let xv =
                _mm256_mask_i32gather_ps::<4>(zero, x.as_ptr(), idx, _mm256_castsi256_ps(mask));
            acc = _mm256_add_ps(acc, _mm256_mul_ps(v, xv));
        }
        let q = _mm_add_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps::<1>(acc));
        let d = _mm_add_ps(q, _mm_movehl_ps(q, q));
        let s1 = _mm_add_ss(d, _mm_shuffle_ps::<1>(d, d));
        y[i - lo] = _mm_cvtss_f32(s1);
    }
}

// ---------------------------------------------------------------------------
// BCSR tile kernels
// ---------------------------------------------------------------------------

/// SSE2 f64 2×2 BCSR block-row kernel: tiles register-transposed so each
/// accumulator lane adds columns in the scalar order (bit-exact).
///
/// # Safety
///
/// Nothing beyond the dispatcher contract: SSE2 is the x86-64 baseline
/// and the block structure is walked through bounds-checked slices, so
/// inconsistent arrays panic as in the scalar tile loop.
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn bcsr2_f64_sse2(
    nrows: usize,
    ncols: usize,
    indptr: &[usize],
    indices: &[u32],
    data: &[f64],
    x: &[f64],
    y: &mut [f64],
    ib_lo: usize,
    ib_hi: usize,
) {
    let y_base = ib_lo * 2;
    for ib in ib_lo..ib_hi {
        let r0 = ib * 2;
        let r_end = (r0 + 2).min(nrows);
        let mut acc = _mm_setzero_pd();
        for blk in indptr[ib]..indptr[ib + 1] {
            let c0 = indices[blk] as usize * 2;
            let base = blk * 4;
            let tile = &data[base..base + 4];
            if c0 + 2 <= ncols {
                let row0 = _mm_loadu_pd(tile.as_ptr());
                let row1 = _mm_loadu_pd(tile.as_ptr().add(2));
                let col0 = _mm_unpacklo_pd(row0, row1);
                let col1 = _mm_unpackhi_pd(row0, row1);
                acc = _mm_add_pd(acc, _mm_mul_pd(col0, _mm_set1_pd(x[c0])));
                acc = _mm_add_pd(acc, _mm_mul_pd(col1, _mm_set1_pd(x[c0 + 1])));
            } else {
                // Ragged last block column: one real column survives.
                let col0 = _mm_set_pd(tile[2], tile[0]);
                acc = _mm_add_pd(acc, _mm_mul_pd(col0, _mm_set1_pd(x[c0])));
            }
        }
        let mut out = [0.0f64; 2];
        _mm_storeu_pd(out.as_mut_ptr(), acc);
        for (k, i) in (r0..r_end).enumerate() {
            y[i - y_base] = out[k];
        }
    }
}

/// AVX2 f64 4×4 BCSR block-row kernel: tiles transposed with
/// `unpacklo/hi_pd` + `permute2f128_pd` (bit-exact).
///
/// # Safety
///
/// AVX2 must be runtime-detected (the dispatcher's `SimdLevel::Avx2` arm
/// guarantees it); the block structure itself is walked through
/// bounds-checked slices, so inconsistent arrays panic as in the scalar
/// tile loop.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
pub(super) unsafe fn bcsr4_f64_avx2(
    nrows: usize,
    ncols: usize,
    indptr: &[usize],
    indices: &[u32],
    data: &[f64],
    x: &[f64],
    y: &mut [f64],
    ib_lo: usize,
    ib_hi: usize,
) {
    let y_base = ib_lo * 4;
    for ib in ib_lo..ib_hi {
        let r0 = ib * 4;
        let r_end = (r0 + 4).min(nrows);
        let mut acc = _mm256_setzero_pd();
        for blk in indptr[ib]..indptr[ib + 1] {
            let c0 = indices[blk] as usize * 4;
            let base = blk * 16;
            let tile = &data[base..base + 16];
            if c0 + 4 <= ncols {
                let r0v = _mm256_loadu_pd(tile.as_ptr());
                let r1v = _mm256_loadu_pd(tile.as_ptr().add(4));
                let r2v = _mm256_loadu_pd(tile.as_ptr().add(8));
                let r3v = _mm256_loadu_pd(tile.as_ptr().add(12));
                let t0 = _mm256_unpacklo_pd(r0v, r1v);
                let t1 = _mm256_unpackhi_pd(r0v, r1v);
                let t2 = _mm256_unpacklo_pd(r2v, r3v);
                let t3 = _mm256_unpackhi_pd(r2v, r3v);
                let col0 = _mm256_permute2f128_pd::<0x20>(t0, t2);
                let col1 = _mm256_permute2f128_pd::<0x20>(t1, t3);
                let col2 = _mm256_permute2f128_pd::<0x31>(t0, t2);
                let col3 = _mm256_permute2f128_pd::<0x31>(t1, t3);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(col0, _mm256_set1_pd(x[c0])));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(col1, _mm256_set1_pd(x[c0 + 1])));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(col2, _mm256_set1_pd(x[c0 + 2])));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(col3, _mm256_set1_pd(x[c0 + 3])));
            } else {
                // Ragged last block column: strided column loads keep the
                // ascending-column add order without assuming the ragged
                // block sits last in the block row.
                let width = ncols - c0;
                for c in 0..width {
                    let col = _mm256_set_pd(tile[12 + c], tile[8 + c], tile[4 + c], tile[c]);
                    acc = _mm256_add_pd(acc, _mm256_mul_pd(col, _mm256_set1_pd(x[c0 + c])));
                }
            }
        }
        let mut out = [0.0f64; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), acc);
        for (k, i) in (r0..r_end).enumerate() {
            y[i - y_base] = out[k];
        }
    }
}

/// SSE f32 4×4 BCSR block-row kernel. A 4×4 f32 tile row is one 128-bit
/// register, so the transposed form adds columns in the exact scalar
/// order — this f32 kernel happens to be bit-exact too.
///
/// # Safety
///
/// Nothing beyond the dispatcher contract: SSE2 is the x86-64 baseline
/// and the block structure is walked through bounds-checked slices, so
/// inconsistent arrays panic as in the scalar tile loop.
#[cfg(feature = "storage-f32")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn bcsr4_f32_sse2(
    nrows: usize,
    ncols: usize,
    indptr: &[usize],
    indices: &[u32],
    data: &[f32],
    x: &[f32],
    y: &mut [f32],
    ib_lo: usize,
    ib_hi: usize,
) {
    let y_base = ib_lo * 4;
    for ib in ib_lo..ib_hi {
        let r0 = ib * 4;
        let r_end = (r0 + 4).min(nrows);
        let mut acc = _mm_setzero_ps();
        for blk in indptr[ib]..indptr[ib + 1] {
            let c0 = indices[blk] as usize * 4;
            let base = blk * 16;
            let tile = &data[base..base + 16];
            if c0 + 4 <= ncols {
                let r0v = _mm_loadu_ps(tile.as_ptr());
                let r1v = _mm_loadu_ps(tile.as_ptr().add(4));
                let r2v = _mm_loadu_ps(tile.as_ptr().add(8));
                let r3v = _mm_loadu_ps(tile.as_ptr().add(12));
                let t0 = _mm_unpacklo_ps(r0v, r1v);
                let t1 = _mm_unpacklo_ps(r2v, r3v);
                let t2 = _mm_unpackhi_ps(r0v, r1v);
                let t3 = _mm_unpackhi_ps(r2v, r3v);
                let col0 = _mm_movelh_ps(t0, t1);
                let col1 = _mm_movehl_ps(t1, t0);
                let col2 = _mm_movelh_ps(t2, t3);
                let col3 = _mm_movehl_ps(t3, t2);
                acc = _mm_add_ps(acc, _mm_mul_ps(col0, _mm_set1_ps(x[c0])));
                acc = _mm_add_ps(acc, _mm_mul_ps(col1, _mm_set1_ps(x[c0 + 1])));
                acc = _mm_add_ps(acc, _mm_mul_ps(col2, _mm_set1_ps(x[c0 + 2])));
                acc = _mm_add_ps(acc, _mm_mul_ps(col3, _mm_set1_ps(x[c0 + 3])));
            } else {
                let width = ncols - c0;
                for c in 0..width {
                    let col = _mm_set_ps(tile[12 + c], tile[8 + c], tile[4 + c], tile[c]);
                    acc = _mm_add_ps(acc, _mm_mul_ps(col, _mm_set1_ps(x[c0 + c])));
                }
            }
        }
        let mut out = [0.0f32; 4];
        _mm_storeu_ps(out.as_mut_ptr(), acc);
        for (k, i) in (r0..r_end).enumerate() {
            y[i - y_base] = out[k];
        }
    }
}

// ---------------------------------------------------------------------------
// 8-wide blocked LDLᵀ sweep kernels
// ---------------------------------------------------------------------------

/// SSE2 8-wide LDLᵀ row update (bit-exact: per lane, one rounded multiply
/// then one rounded subtract, exactly the scalar `acc[c] -= l·w[c]`).
///
/// # Safety
///
/// As [`super::scalar::ldl_row_update8`].
pub(super) unsafe fn ldl_row_update8_sse2(acc: &mut [f64], ri: &[u32], rx: &[f64], w: *const f64) {
    debug_assert_eq!(acc.len(), 8);
    let mut a0 = _mm_loadu_pd(acc.as_ptr());
    let mut a1 = _mm_loadu_pd(acc.as_ptr().add(2));
    let mut a2 = _mm_loadu_pd(acc.as_ptr().add(4));
    let mut a3 = _mm_loadu_pd(acc.as_ptr().add(6));
    for p in 0..ri.len() {
        let l = _mm_set1_pd(rx[p]);
        let wi = w.add(ri[p] as usize * 8);
        a0 = _mm_sub_pd(a0, _mm_mul_pd(l, _mm_loadu_pd(wi)));
        a1 = _mm_sub_pd(a1, _mm_mul_pd(l, _mm_loadu_pd(wi.add(2))));
        a2 = _mm_sub_pd(a2, _mm_mul_pd(l, _mm_loadu_pd(wi.add(4))));
        a3 = _mm_sub_pd(a3, _mm_mul_pd(l, _mm_loadu_pd(wi.add(6))));
    }
    _mm_storeu_pd(acc.as_mut_ptr(), a0);
    _mm_storeu_pd(acc.as_mut_ptr().add(2), a1);
    _mm_storeu_pd(acc.as_mut_ptr().add(4), a2);
    _mm_storeu_pd(acc.as_mut_ptr().add(6), a3);
}

/// AVX2 8-wide LDLᵀ row update (bit-exact; no FMA — contraction would
/// change the rounding).
///
/// # Safety
///
/// As [`super::scalar::ldl_row_update8`], plus AVX2 must be available.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn ldl_row_update8_avx2(acc: &mut [f64], ri: &[u32], rx: &[f64], w: *const f64) {
    debug_assert_eq!(acc.len(), 8);
    let mut a0 = _mm256_loadu_pd(acc.as_ptr());
    let mut a1 = _mm256_loadu_pd(acc.as_ptr().add(4));
    for p in 0..ri.len() {
        let l = _mm256_set1_pd(rx[p]);
        let wi = w.add(ri[p] as usize * 8);
        a0 = _mm256_sub_pd(a0, _mm256_mul_pd(l, _mm256_loadu_pd(wi)));
        a1 = _mm256_sub_pd(a1, _mm256_mul_pd(l, _mm256_loadu_pd(wi.add(4))));
    }
    _mm256_storeu_pd(acc.as_mut_ptr(), a0);
    _mm256_storeu_pd(acc.as_mut_ptr().add(4), a1);
}

/// SSE2 lanewise pivot division (bit-exact: division is correctly
/// rounded).
pub(super) fn ldl_scale_row8_sse2(wj: &mut [f64], dj: f64) {
    assert_eq!(wj.len(), 8);
    // SAFETY: length checked above; SSE2 is the x86-64 baseline.
    unsafe {
        let d = _mm_set1_pd(dj);
        let a0 = _mm_div_pd(_mm_loadu_pd(wj.as_ptr()), d);
        let a1 = _mm_div_pd(_mm_loadu_pd(wj.as_ptr().add(2)), d);
        let a2 = _mm_div_pd(_mm_loadu_pd(wj.as_ptr().add(4)), d);
        let a3 = _mm_div_pd(_mm_loadu_pd(wj.as_ptr().add(6)), d);
        _mm_storeu_pd(wj.as_mut_ptr(), a0);
        _mm_storeu_pd(wj.as_mut_ptr().add(2), a1);
        _mm_storeu_pd(wj.as_mut_ptr().add(4), a2);
        _mm_storeu_pd(wj.as_mut_ptr().add(6), a3);
    }
}

/// AVX2 lanewise pivot division (bit-exact).
///
/// # Safety
///
/// AVX2 must be available at runtime.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn ldl_scale_row8_avx2(wj: &mut [f64], dj: f64) {
    assert_eq!(wj.len(), 8);
    let d = _mm256_set1_pd(dj);
    let a0 = _mm256_div_pd(_mm256_loadu_pd(wj.as_ptr()), d);
    let a1 = _mm256_div_pd(_mm256_loadu_pd(wj.as_ptr().add(4)), d);
    _mm256_storeu_pd(wj.as_mut_ptr(), a0);
    _mm256_storeu_pd(wj.as_mut_ptr().add(4), a1);
}

// ---------------------------------------------------------------------------
// Joule-heat accumulation and heat-filter scan
// ---------------------------------------------------------------------------

/// AVX2 Joule-heat kernel: one edge per lane, embedding columns gathered
/// by endpoint (bit-exact: per lane the column loop adds `(w·d)·d` in the
/// scalar order).
///
/// # Safety
///
/// AVX2 must be available; `h` must hold `r·n` doubles column-major and
/// every `us`/`vs` entry must be `< n`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn joule_heat_avx2(
    us: &[u32],
    vs: &[u32],
    ws: &[f64],
    h: &[f64],
    n: usize,
    out: &mut [f64],
) {
    let r = h.len().checked_div(n).unwrap_or(0);
    let m = out.len();
    let mut k = 0;
    while k + 4 <= m {
        let ui = _mm_loadu_si128(us.as_ptr().add(k).cast::<__m128i>());
        let vi = _mm_loadu_si128(vs.as_ptr().add(k).cast::<__m128i>());
        let w = _mm256_loadu_pd(ws.as_ptr().add(k));
        let mut acc = _mm256_setzero_pd();
        for c in 0..r {
            let col = h.as_ptr().add(c * n);
            let hu = _mm256_i32gather_pd::<8>(col, ui);
            let hv = _mm256_i32gather_pd::<8>(col, vi);
            let d = _mm256_sub_pd(hu, hv);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_mul_pd(w, d), d));
        }
        _mm256_storeu_pd(out.as_mut_ptr().add(k), acc);
        k += 4;
    }
    if k < m {
        super::scalar::joule_heat(&us[k..], &vs[k..], &ws[k..], h, n, &mut out[k..]);
    }
}

/// AVX2 heat-filter scan: 4 heats compared per iteration, survivors
/// pushed via `movemask` in lane (= input) order, so the output sequence
/// is identical to the scalar scan. Finiteness is tested as
/// `(h − h) == 0.0` (ordered compare), which rejects NaN and ±∞.
///
/// # Safety
///
/// AVX2 must be available; `ids.len() == heats.len()`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn scan_heat_candidates_avx2(
    ids: &[u32],
    heats: &[f64],
    cutoff: f64,
) -> Vec<(u32, f64)> {
    debug_assert_eq!(ids.len(), heats.len());
    let mut out = Vec::new();
    let zero = _mm256_setzero_pd();
    let cut = _mm256_set1_pd(cutoff);
    let m = ids.len();
    let mut k = 0;
    while k + 4 <= m {
        let h = _mm256_loadu_pd(heats.as_ptr().add(k));
        let finite = _mm256_cmp_pd::<_CMP_EQ_OQ>(_mm256_sub_pd(h, h), zero);
        let pos = _mm256_cmp_pd::<_CMP_GT_OQ>(h, zero);
        let ge = _mm256_cmp_pd::<_CMP_GE_OQ>(h, cut);
        let keep = _mm256_and_pd(_mm256_and_pd(finite, pos), ge);
        let mut bits = _mm256_movemask_pd(keep) as u32;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            out.push((ids[k + lane], heats[k + lane]));
            bits &= bits - 1;
        }
        k += 4;
    }
    for t in k..m {
        let h = heats[t];
        if h.is_finite() && h > 0.0 && h >= cutoff {
            out.push((ids[t], h));
        }
    }
    out
}
