//! Explicit SIMD microkernels for the stored-scalar hot paths, with
//! runtime dispatch and the scalar loops as always-on fallback and parity
//! oracle.
//!
//! # Dispatch model
//!
//! Every public function here picks an implementation from a process-wide
//! [`SimdLevel`], computed once (cached in a `OnceLock`) from:
//!
//! 1. the `simd` cargo feature — compiled out entirely when disabled, so
//!    `--no-default-features` builds carry only the scalar loops;
//! 2. the `SASS_NO_SIMD` environment variable — set to anything but `"0"`
//!    to force scalar at startup (the A/B escape hatch; read once);
//! 3. runtime CPU detection — AVX2 via `is_x86_feature_detected!`, SSE2
//!    as the unconditional x86-64 baseline, NEON as the AArch64 baseline.
//!
//! Benches additionally A/B in-process through [`set_level`], which can
//! only *lower* the level (it is clamped to the detected one). Everything
//! else in the workspace calls the dispatchers and never names a level.
//!
//! # Parity contract
//!
//! `f64` kernels are **bit-identical** to the scalar oracles in
//! `kernel::scalar` — the per-lane accumulation order is preserved and no
//! FMA contraction or reassociation is permitted (see `x86.rs` for the
//! per-kernel argument). `f32` kernels may reassociate row sums and are
//! held to the per-row `(nnz + 2)·ε_f32` tolerance established by
//! `tests/backend_parity.rs`. Both contracts are pinned by
//! `tests/simd_parity.rs` at forced worker counts 1/2/3/8.

mod aligned;
mod scalar;

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod neon;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86;

pub use aligned::{AlignedVec, ALIGNMENT};

use std::sync::atomic::{AtomicU8, Ordering};
#[cfg(feature = "simd")]
use std::sync::OnceLock;

/// Instruction-set tier a kernel dispatch can resolve to, ordered from
/// narrowest to widest.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable scalar loops — the oracle everything else is tested
    /// against, and the only tier on non-x86-64/AArch64 targets, under
    /// `SASS_NO_SIMD`, or without the `simd` feature.
    Scalar = 0,
    /// x86-64 baseline 128-bit kernels (SSE2 is guaranteed by the ABI, so
    /// this tier needs no runtime probe).
    Sse2 = 1,
    /// 256-bit kernels with gathers and masked loads; requires a runtime
    /// `avx2` probe.
    Avx2 = 2,
    /// AArch64 baseline 128-bit kernels (NEON is architectural, no probe).
    Neon = 3,
}

impl SimdLevel {
    /// Short lowercase label (`"scalar"`, `"sse2"`, `"avx2"`, `"neon"`)
    /// for bench rows and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Neon => "neon",
        }
    }

    fn from_u8(v: u8) -> Option<SimdLevel> {
        match v {
            0 => Some(SimdLevel::Scalar),
            1 => Some(SimdLevel::Sse2),
            2 => Some(SimdLevel::Avx2),
            3 => Some(SimdLevel::Neon),
            _ => None,
        }
    }

    /// Whether kernels for this tier are compiled into the current build
    /// (arch + `simd` feature). Forcing a non-compiled tier through
    /// [`set_level`] would silently dispatch to scalar — e.g. `Avx2` on
    /// AArch64, or `Neon` on x86-64 — so [`set_level`] rejects it and the
    /// parity suite uses this to enumerate only distinct compiled tiers.
    pub fn compiled(self) -> bool {
        match self {
            SimdLevel::Scalar => true,
            SimdLevel::Sse2 | SimdLevel::Avx2 => {
                cfg!(all(feature = "simd", target_arch = "x86_64"))
            }
            SimdLevel::Neon => cfg!(all(feature = "simd", target_arch = "aarch64")),
        }
    }
}

/// Sentinel for "no override active" in [`OVERRIDE`].
const NO_OVERRIDE: u8 = u8::MAX;

/// In-process level override installed by [`set_level`] (bench A/B);
/// `NO_OVERRIDE` means "use the detected level".
static OVERRIDE: AtomicU8 = AtomicU8::new(NO_OVERRIDE);

#[cfg(feature = "simd")]
static DETECTED: OnceLock<SimdLevel> = OnceLock::new();

#[cfg(feature = "simd")]
fn detect() -> SimdLevel {
    // The env escape hatch goes through `config::no_simd` (read once,
    // malformed values panic there): flipping the variable after the
    // first kernel call has no effect (tests use `set_level` for
    // in-process A/B instead).
    if crate::config::no_simd() {
        return SimdLevel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdLevel::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

/// The level runtime detection resolved to for this process (after the
/// `SASS_NO_SIMD` gate), ignoring any [`set_level`] override. Always
/// [`SimdLevel::Scalar`] without the `simd` feature.
pub fn detected() -> SimdLevel {
    #[cfg(feature = "simd")]
    {
        *DETECTED.get_or_init(detect)
    }
    #[cfg(not(feature = "simd"))]
    {
        SimdLevel::Scalar
    }
}

/// The level the dispatchers currently use: the [`detected`] level,
/// lowered by any active [`set_level`] override.
pub fn active() -> SimdLevel {
    lvl()
}

/// Installs (`Some`) or clears (`None`) a process-wide level override for
/// in-process A/B comparison — the benches use this to emit scalar-vs-simd
/// rows from one run. The override can only *lower* the level: it is
/// clamped to [`detected`], so requesting e.g. [`SimdLevel::Avx2`] on an
/// SSE2-only machine stays safe.
///
/// This is global mutable state, like [`crate::pool::set_threads`]; tests
/// that use it serialize on a guard mutex.
///
/// # Panics
///
/// Panics if `level` names a tier whose kernels are not compiled for this
/// target (see [`SimdLevel::compiled`]) — e.g. [`SimdLevel::Neon`] on
/// x86-64. Such a level would silently alias the scalar fallback, which
/// is exactly the ambiguity a forced level exists to rule out.
pub fn set_level(level: Option<SimdLevel>) {
    if let Some(l) = level {
        assert!(
            l.compiled(),
            "set_level: {:?} kernels are not compiled for this target",
            l
        );
    }
    OVERRIDE.store(level.map_or(NO_OVERRIDE, |l| l as u8), Ordering::Relaxed);
}

fn lvl() -> SimdLevel {
    let detected = detected();
    match SimdLevel::from_u8(OVERRIDE.load(Ordering::Relaxed)) {
        Some(ov) => ov.min(detected),
        None => detected,
    }
}

/// Largest operand length the x86 gather kernels accept: gathers take
/// signed 32-bit offsets, so anything indexable past `i32::MAX` falls
/// back to a gather-free tier.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
const GATHER_MAX: usize = i32::MAX as usize;

// ---------------------------------------------------------------------------
// Dispatchers
// ---------------------------------------------------------------------------

/// CSR row-gather SpMV over rows `lo..hi` of an f64 matrix:
/// `y[i - lo] = Σ data[p]·x[indices[p]]` for `p` in row `i`. Bit-identical
/// to the scalar loop at every level.
///
/// Resolves to the scalar kernel at **every** tier, by measurement
/// rather than omission: bit-exactness pins each row sum to a serial
/// floating-point add chain, which is the latency bound and which
/// out-of-order hardware already overlaps with the scalar multiplies.
/// The only vector formulation that preserves the order — pre-forming
/// products through a stack buffer, then reducing serially — benched
/// ~30% *slower* than this loop on the `backends` workloads, so it was
/// removed (see `x86.rs` module docs). The f32 overload below is where
/// SpMV vectorization pays.
///
/// # Panics
///
/// Panics if the CSR arrays are inconsistent (a row extent past
/// `indices`/`data`, a column index past `x`) or `y` is shorter than
/// `hi - lo` — via safe indexing on the scalar/SSE2/NEON tiers, via
/// per-row validation on the AVX2 gather tier, so the contract is
/// identical at every level. A non-monotone (empty-range) row
/// contributes 0, as in the original scalar loop.
#[allow(clippy::too_many_arguments)]
pub fn spmv_range_f64(
    indptr: &[usize],
    indices: &[u32],
    data: &[f64],
    x: &[f64],
    y: &mut [f64],
    lo: usize,
    hi: usize,
) {
    scalar::spmv_range(indptr, indices, data, x, y, lo, hi)
}

/// CSR row-gather SpMV over rows `lo..hi` of an f32 matrix. SIMD tiers
/// may reassociate each row sum within the per-row `(nnz + 2)·ε_f32`
/// parity tolerance.
///
/// # Panics
///
/// As [`spmv_range_f64`].
#[cfg(feature = "storage-f32")]
#[allow(clippy::too_many_arguments, clippy::match_single_binding)]
pub fn spmv_range_f32(
    indptr: &[usize],
    indices: &[u32],
    data: &[f32],
    x: &[f32],
    y: &mut [f32],
    lo: usize,
    hi: usize,
) {
    match lvl() {
        // SAFETY: as `spmv_range_f64`.
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Avx2 if x.len() <= GATHER_MAX => unsafe {
            x86::spmv_range_f32_avx2(indptr, indices, data, x, y, lo, hi)
        },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Sse2 | SimdLevel::Avx2 => unsafe {
            x86::spmv_range_f32_sse2(indptr, indices, data, x, y, lo, hi)
        },
        // SAFETY: NEON is architectural on AArch64.
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        SimdLevel::Neon => unsafe {
            neon::spmv_range_f32_neon(indptr, indices, data, x, y, lo, hi)
        },
        _ => scalar::spmv_range(indptr, indices, data, x, y, lo, hi),
    }
}

/// BCSR block-row product over block rows `[ib_lo, ib_hi)` of an f64
/// matrix with `b × b` blocks (`b` ∈ {2, 4}), writing into `y` offset by
/// `ib_lo·b` scalar rows. Bit-identical to the scalar tile loop at every
/// level.
///
/// # Panics
///
/// Panics if `b` is not 2 or 4, or on inconsistent arrays.
#[allow(clippy::too_many_arguments, clippy::match_single_binding)]
pub fn bcsr_rows_f64(
    b: usize,
    nrows: usize,
    ncols: usize,
    indptr: &[usize],
    indices: &[u32],
    data: &[f64],
    x: &[f64],
    y: &mut [f64],
    ib_lo: usize,
    ib_hi: usize,
) {
    match (lvl(), b) {
        // SAFETY: slices bound-check the block structure; the AVX2 arm
        // runs only after runtime detection.
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        (SimdLevel::Sse2 | SimdLevel::Avx2, 2) => unsafe {
            x86::bcsr2_f64_sse2(nrows, ncols, indptr, indices, data, x, y, ib_lo, ib_hi)
        },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        (SimdLevel::Avx2, 4) => unsafe {
            x86::bcsr4_f64_avx2(nrows, ncols, indptr, indices, data, x, y, ib_lo, ib_hi)
        },
        (_, 2) => {
            scalar::bcsr_rows::<f64, 2>(nrows, ncols, indptr, indices, data, x, y, ib_lo, ib_hi)
        }
        (_, 4) => {
            scalar::bcsr_rows::<f64, 4>(nrows, ncols, indptr, indices, data, x, y, ib_lo, ib_hi)
        }
        _ => panic!("unsupported BCSR block size {b}"),
    }
}

/// BCSR block-row product over block rows `[ib_lo, ib_hi)` of an f32
/// matrix (`b` ∈ {2, 4}). The 4×4 SSE tile kernel happens to preserve the
/// scalar order exactly; 2×2 stays scalar (a 64-bit row is too narrow to
/// pay for lane shuffling).
///
/// # Panics
///
/// As [`bcsr_rows_f64`].
#[cfg(feature = "storage-f32")]
#[allow(clippy::too_many_arguments, clippy::match_single_binding)]
pub fn bcsr_rows_f32(
    b: usize,
    nrows: usize,
    ncols: usize,
    indptr: &[usize],
    indices: &[u32],
    data: &[f32],
    x: &[f32],
    y: &mut [f32],
    ib_lo: usize,
    ib_hi: usize,
) {
    match (lvl(), b) {
        // SAFETY: slices bound-check the block structure; SSE2 is the
        // x86-64 baseline.
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        (SimdLevel::Sse2 | SimdLevel::Avx2, 4) => unsafe {
            x86::bcsr4_f32_sse2(nrows, ncols, indptr, indices, data, x, y, ib_lo, ib_hi)
        },
        (_, 2) => {
            scalar::bcsr_rows::<f32, 2>(nrows, ncols, indptr, indices, data, x, y, ib_lo, ib_hi)
        }
        (_, 4) => {
            scalar::bcsr_rows::<f32, 4>(nrows, ncols, indptr, indices, data, x, y, ib_lo, ib_hi)
        }
        _ => panic!("unsupported BCSR block size {b}"),
    }
}

/// One 8-wide interleaved LDLᵀ sweep update: `acc[c] -= rx[p]·w[ri[p]·8 + c]`
/// for every stored entry, in stored order. Bit-identical to the scalar
/// loop at every level (rounded multiply then rounded subtract per lane;
/// no FMA).
///
/// # Safety
///
/// `acc` must hold exactly 8 doubles, and for every `p` the 8 doubles at
/// `w + ri[p]·8` must be readable and not concurrently written.
#[allow(clippy::match_single_binding)]
pub unsafe fn ldl_row_update8(acc: &mut [f64], ri: &[u32], rx: &[f64], w: *const f64) {
    match lvl() {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Avx2 => x86::ldl_row_update8_avx2(acc, ri, rx, w),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Sse2 => x86::ldl_row_update8_sse2(acc, ri, rx, w),
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        SimdLevel::Neon => neon::ldl_row_update8_neon(acc, ri, rx, w),
        _ => scalar::ldl_row_update8(acc, ri, rx, w),
    }
}

/// Divides all 8 lanes of one interleaved LDLᵀ chunk row by the pivot
/// `dj`. Division is correctly rounded, so every level is bit-identical.
///
/// # Panics
///
/// Panics if `wj.len() != 8`.
#[allow(clippy::match_single_binding)]
pub fn ldl_scale_row8(wj: &mut [f64], dj: f64) {
    match lvl() {
        // SAFETY: AVX2 arm runs only after runtime detection; length is
        // asserted inside the kernels.
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Avx2 => unsafe { x86::ldl_scale_row8_avx2(wj, dj) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Sse2 => x86::ldl_scale_row8_sse2(wj, dj),
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        SimdLevel::Neon => neon::ldl_scale_row8_neon(wj, dj),
        _ => {
            assert_eq!(wj.len(), 8);
            scalar::ldl_scale_row8(wj, dj)
        }
    }
}

/// Per-edge Joule heat against a column-major embedding `h` (`r` columns
/// of `n` entries; `r` inferred as `h.len() / n`):
/// `out[k] = Σ_c ws[k]·(h[c·n + us[k]] − h[c·n + vs[k]])²`. Bit-identical
/// to the scalar loop at every level.
///
/// # Panics
///
/// Panics (via indexing) if an endpoint is `≥ n` or the slice lengths
/// disagree.
#[allow(clippy::match_single_binding)]
pub fn joule_heat(us: &[u32], vs: &[u32], ws: &[f64], h: &[f64], n: usize, out: &mut [f64]) {
    let m = out.len();
    assert!(
        us.len() >= m && vs.len() >= m && ws.len() >= m,
        "joule_heat: endpoint/weight arrays shorter than out"
    );
    if n > 0 {
        assert!(
            us[..m].iter().chain(&vs[..m]).all(|&e| (e as usize) < n),
            "joule_heat: endpoint out of range"
        );
    }
    match lvl() {
        // SAFETY: endpoints validated above, AVX2 detected, and `n` fits
        // the signed gather offset range.
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Avx2 if n <= GATHER_MAX => unsafe {
            x86::joule_heat_avx2(us, vs, ws, h, n, out)
        },
        _ => scalar::joule_heat(us, vs, ws, h, n, out),
    }
}

/// Heat-filter scan: returns the `(id, heat)` pairs, in input order,
/// whose heat is finite, strictly positive and `≥ cutoff`. The SIMD tier
/// selects the same pairs in the same order as the scalar loop.
///
/// # Panics
///
/// Panics if `ids.len() != heats.len()`.
#[allow(clippy::match_single_binding)]
pub fn scan_heat_candidates(ids: &[u32], heats: &[f64], cutoff: f64) -> Vec<(u32, f64)> {
    assert_eq!(ids.len(), heats.len(), "scan: ids/heats length mismatch");
    match lvl() {
        // SAFETY: lengths checked above; AVX2 detected.
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Avx2 => unsafe { x86::scan_heat_candidates_avx2(ids, heats, cutoff) },
        _ => scalar::scan_heat_candidates(ids, heats, cutoff),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These smoke tests run at whatever level this process detected and
    // never mutate the global override (that is `tests/simd_parity.rs`'
    // job, behind a guard mutex); for f64 the dispatch contract is
    // bit-exactness, so plain `assert_eq!` is correct at every level.

    fn toy_csr() -> (Vec<usize>, Vec<u32>, Vec<f64>) {
        // 5×6, rows of nnz 0/1/3/6/2 to cover empty rows and ragged tails.
        let indptr = vec![0usize, 0, 1, 4, 10, 12];
        let indices = vec![2u32, 0, 3, 5, 0, 1, 2, 3, 4, 5, 1, 4];
        let data: Vec<f64> = (0..12).map(|k| 0.25 * (k as f64) - 1.3).collect();
        (indptr, indices, data)
    }

    #[test]
    fn spmv_dispatch_matches_scalar_bitwise() {
        let (indptr, indices, data) = toy_csr();
        let x: Vec<f64> = (0..6).map(|i| (i as f64 * 0.7).sin() + 1.0).collect();
        let mut want = vec![0.0; 5];
        scalar::spmv_range(&indptr, &indices, &data, &x, &mut want, 0, 5);
        let mut got = vec![0.0; 5];
        spmv_range_f64(&indptr, &indices, &data, &x, &mut got, 0, 5);
        assert_eq!(got, want, "level {:?}", active());
        // Sub-range offset form, as the pool hands out chunks.
        let mut part = vec![0.0; 2];
        spmv_range_f64(&indptr, &indices, &data, &x, &mut part, 2, 4);
        assert_eq!(part, want[2..4], "level {:?}", active());
    }

    #[test]
    fn ldl_kernels_dispatch_match_scalar_bitwise() {
        let w: Vec<f64> = (0..32).map(|k| (k as f64 * 0.31).cos() * 2.0).collect();
        let ri = vec![0u32, 2, 3, 1, 3];
        let rx = vec![0.5, -1.25, 0.75, 2.0, -0.125];
        let mut acc_scalar: Vec<f64> = (0..8).map(|c| c as f64 * 0.2 - 0.7).collect();
        let mut acc_simd = acc_scalar.clone();
        // SAFETY: every index in `ri` addresses one of the 4 rows of `w`.
        unsafe {
            scalar::ldl_row_update8(&mut acc_scalar, &ri, &rx, w.as_ptr());
            ldl_row_update8(&mut acc_simd, &ri, &rx, w.as_ptr());
        }
        assert_eq!(acc_simd, acc_scalar, "level {:?}", active());

        let mut row_scalar = acc_scalar.clone();
        let mut row_simd = acc_scalar.clone();
        scalar::ldl_scale_row8(&mut row_scalar, -0.3);
        ldl_scale_row8(&mut row_simd, -0.3);
        assert_eq!(row_simd, row_scalar, "level {:?}", active());
    }

    #[test]
    fn heat_kernels_dispatch_match_scalar_bitwise() {
        let n = 9usize;
        let r = 3usize;
        let h: Vec<f64> = (0..n * r).map(|k| (k as f64 * 0.17).sin()).collect();
        let us: Vec<u32> = (0..7).map(|k| (k * 3 % n) as u32).collect();
        let vs: Vec<u32> = (0..7).map(|k| (k * 5 % n) as u32).collect();
        let ws: Vec<f64> = (0..7).map(|k| 0.1 + k as f64).collect();
        let mut want = vec![0.0; 7];
        scalar::joule_heat(&us, &vs, &ws, &h, n, &mut want);
        let mut got = vec![0.0; 7];
        joule_heat(&us, &vs, &ws, &h, n, &mut got);
        assert_eq!(got, want, "level {:?}", active());

        let ids: Vec<u32> = (0..7).collect();
        let mut heats = want.clone();
        heats[1] = f64::NAN;
        heats[3] = f64::INFINITY;
        heats[4] = 0.0;
        let cutoff = heats[0] * 0.5;
        assert_eq!(
            scan_heat_candidates(&ids, &heats, cutoff),
            scalar::scan_heat_candidates(&ids, &heats, cutoff),
            "level {:?}",
            active()
        );
    }

    #[test]
    fn bcsr_dispatch_matches_scalar_bitwise() {
        // 7×7 with b = 2 and b = 4 exercises ragged row and column tails.
        for b in [2usize, 4] {
            let block_cols = 7usize.div_ceil(b);
            let block_rows = 7usize.div_ceil(b);
            // Dense block pattern for simplicity.
            let mut indptr = vec![0usize];
            let mut indices = Vec::new();
            for _ in 0..block_rows {
                for c in 0..block_cols {
                    indices.push(c as u32);
                }
                indptr.push(indices.len());
            }
            let data: Vec<f64> = (0..indices.len() * b * b)
                .map(|k| (k as f64 * 0.13).cos())
                .collect();
            let x: Vec<f64> = (0..7).map(|i| 1.0 + i as f64 * 0.4).collect();
            let mut want = vec![0.0; 7];
            match b {
                2 => scalar::bcsr_rows::<f64, 2>(
                    7, 7, &indptr, &indices, &data, &x, &mut want, 0, block_rows,
                ),
                _ => scalar::bcsr_rows::<f64, 4>(
                    7, 7, &indptr, &indices, &data, &x, &mut want, 0, block_rows,
                ),
            }
            let mut got = vec![0.0; 7];
            bcsr_rows_f64(
                b, 7, 7, &indptr, &indices, &data, &x, &mut got, 0, block_rows,
            );
            assert_eq!(got, want, "b={b} level {:?}", active());
        }
    }

    #[test]
    fn level_introspection_is_consistent() {
        // No override is installed by unit tests, so active == detected.
        assert_eq!(active(), detected());
        assert!(!detected().name().is_empty());
        assert_eq!(SimdLevel::from_u8(NO_OVERRIDE), None);
        for l in [
            SimdLevel::Scalar,
            SimdLevel::Sse2,
            SimdLevel::Avx2,
            SimdLevel::Neon,
        ] {
            assert_eq!(SimdLevel::from_u8(l as u8), Some(l));
        }
        assert!(SimdLevel::Scalar < SimdLevel::Sse2);
        // Scalar is compiled everywhere; the detected tier must itself be
        // a compiled tier (detection never names kernels we don't have).
        assert!(SimdLevel::Scalar.compiled());
        assert!(detected().compiled());
        // The x86 and AArch64 tiers are mutually exclusive per build.
        assert!(!(SimdLevel::Sse2.compiled() && SimdLevel::Neon.compiled()));
    }

    #[test]
    #[should_panic(expected = "not compiled for this target")]
    fn set_level_rejects_uncompiled_tiers() {
        // One of these two is always foreign to the current target (and
        // without the `simd` feature both are), so forcing it must fail
        // loudly instead of silently aliasing scalar.
        let foreign = if SimdLevel::Neon.compiled() {
            SimdLevel::Avx2
        } else {
            SimdLevel::Neon
        };
        set_level(Some(foreign));
    }
}
