//! AArch64 NEON kernels. NEON is part of the AArch64 baseline, so these
//! need no runtime detection — the dispatcher maps every AArch64 build to
//! [`super::SimdLevel::Neon`] unless `SASS_NO_SIMD` forces scalar.
//!
//! The NEON surface is deliberately smaller than x86: f32 SpMV (4-wide,
//! toleranced) and the 8-wide LDLᵀ sweep kernels. f64 SpMV stays scalar
//! for the same measured reason as on x86 (see `x86.rs` module docs):
//! bit-exactness pins the row sum to a serial add chain, so a vector
//! front end only adds a buffering pass. NEON has no gather, so the BCSR
//! tile kernels and the heat scan also stay on the scalar oracle, where
//! the autovectorizer already does respectably on fixed-shape tiles. The
//! f64 bit-exactness argument for the LDLᵀ kernels is the same as on
//! x86: independent lanes, mul-then-sub per lane, no FMA contraction.

#![allow(clippy::needless_range_loop)]

use core::arch::aarch64::*;

/// NEON f32 SpMV over rows `lo..hi`: 4-wide accumulation with a scalar
/// tail (toleranced; reassociates the row sum).
///
/// # Safety
///
/// Nothing beyond the dispatcher contract: NEON is architectural on
/// AArch64, gathers index `x` through bounds-checked slices, and the raw
/// row loads are guarded by the `t + 4 <= nnz` loop bound over the row's
/// own sub-slice — malformed inputs panic exactly like the scalar
/// oracle. The `unsafe` marker only keeps one signature across the
/// kernel tiers.
#[cfg(feature = "storage-f32")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn spmv_range_f32_neon(
    indptr: &[usize],
    indices: &[u32],
    data: &[f32],
    x: &[f32],
    y: &mut [f32],
    lo: usize,
    hi: usize,
) {
    for i in lo..hi {
        let (s, e) = (indptr[i], indptr[i + 1]);
        // Scalar-oracle semantics: an empty (or non-monotone, hence
        // empty-range) row contributes 0 instead of panicking on the
        // reversed slice.
        if s >= e {
            y[i - lo] = 0.0;
            continue;
        }
        let row_idx = &indices[s..e];
        let row_val = &data[s..e];
        let nnz = row_val.len();
        let mut acc = vdupq_n_f32(0.0);
        let mut t = 0;
        while t + 4 <= nnz {
            let v = vld1q_f32(row_val.as_ptr().add(t));
            let xg = [
                x[row_idx[t] as usize],
                x[row_idx[t + 1] as usize],
                x[row_idx[t + 2] as usize],
                x[row_idx[t + 3] as usize],
            ];
            let xv = vld1q_f32(xg.as_ptr());
            acc = vaddq_f32(acc, vmulq_f32(v, xv));
            t += 4;
        }
        let mut total = vaddvq_f32(acc);
        for tt in t..nnz {
            total += row_val[tt] * x[row_idx[tt] as usize];
        }
        y[i - lo] = total;
    }
}

/// NEON 8-wide LDLᵀ row update (bit-exact: rounded multiply then rounded
/// subtract per lane, no FMA).
///
/// # Safety
///
/// As [`super::scalar::ldl_row_update8`].
pub(super) unsafe fn ldl_row_update8_neon(acc: &mut [f64], ri: &[u32], rx: &[f64], w: *const f64) {
    debug_assert_eq!(acc.len(), 8);
    let mut a0 = vld1q_f64(acc.as_ptr());
    let mut a1 = vld1q_f64(acc.as_ptr().add(2));
    let mut a2 = vld1q_f64(acc.as_ptr().add(4));
    let mut a3 = vld1q_f64(acc.as_ptr().add(6));
    for p in 0..ri.len() {
        let l = vdupq_n_f64(rx[p]);
        let wi = w.add(ri[p] as usize * 8);
        a0 = vsubq_f64(a0, vmulq_f64(l, vld1q_f64(wi)));
        a1 = vsubq_f64(a1, vmulq_f64(l, vld1q_f64(wi.add(2))));
        a2 = vsubq_f64(a2, vmulq_f64(l, vld1q_f64(wi.add(4))));
        a3 = vsubq_f64(a3, vmulq_f64(l, vld1q_f64(wi.add(6))));
    }
    vst1q_f64(acc.as_mut_ptr(), a0);
    vst1q_f64(acc.as_mut_ptr().add(2), a1);
    vst1q_f64(acc.as_mut_ptr().add(4), a2);
    vst1q_f64(acc.as_mut_ptr().add(6), a3);
}

/// NEON lanewise pivot division (bit-exact: division is correctly
/// rounded).
pub(super) fn ldl_scale_row8_neon(wj: &mut [f64], dj: f64) {
    assert_eq!(wj.len(), 8);
    // SAFETY: length checked above; NEON is the AArch64 baseline.
    unsafe {
        let d = vdupq_n_f64(dj);
        let a0 = vdivq_f64(vld1q_f64(wj.as_ptr()), d);
        let a1 = vdivq_f64(vld1q_f64(wj.as_ptr().add(2)), d);
        let a2 = vdivq_f64(vld1q_f64(wj.as_ptr().add(4)), d);
        let a3 = vdivq_f64(vld1q_f64(wj.as_ptr().add(6)), d);
        vst1q_f64(wj.as_mut_ptr(), a0);
        vst1q_f64(wj.as_mut_ptr().add(2), a1);
        vst1q_f64(wj.as_mut_ptr().add(4), a2);
        vst1q_f64(wj.as_mut_ptr().add(6), a3);
    }
}
