//! Scalar reference kernels — the always-available fallback and the
//! parity oracle every SIMD variant is tested against.
//!
//! These are the exact loops the hot paths ran before the kernel module
//! existed, hoisted here verbatim so that (a) non-SIMD targets and the
//! `SASS_NO_SIMD` escape hatch keep the historical behavior bit for bit,
//! and (b) `tests/simd_parity.rs` has a single canonical definition of
//! "correct" to compare every vector variant against. Do not "optimize"
//! these: their floating-point association *is* the contract.

// Sparse kernels index multiple parallel arrays; explicit loops are clearer.
#![allow(clippy::needless_range_loop)]

use crate::Scalar;

/// CSR row gather over rows `lo..hi`: `y[i - lo] = Σ_p data[p]·x[col(p)]`,
/// accumulated in ascending stored order.
#[allow(clippy::too_many_arguments)]
pub(super) fn spmv_range<S: Scalar>(
    indptr: &[usize],
    indices: &[u32],
    data: &[S],
    x: &[S],
    y: &mut [S],
    lo: usize,
    hi: usize,
) {
    for i in lo..hi {
        let mut acc = S::ZERO;
        for p in indptr[i]..indptr[i + 1] {
            acc += data[p] * x[indices[p] as usize];
        }
        y[i - lo] = acc;
    }
}

/// BCSR block-row kernel over block rows `[ib_lo, ib_hi)` with `y` offset
/// by `ib_lo · b` scalar rows: the register-blocked tile loop, ragged last
/// block column and ragged last row group included.
#[allow(clippy::too_many_arguments)]
pub(super) fn bcsr_rows<S: Scalar, const B: usize>(
    nrows: usize,
    ncols: usize,
    indptr: &[usize],
    indices: &[u32],
    data: &[S],
    x: &[S],
    y: &mut [S],
    ib_lo: usize,
    ib_hi: usize,
) {
    let y_base = ib_lo * B;
    for ib in ib_lo..ib_hi {
        let r0 = ib * B;
        let r_end = (r0 + B).min(nrows);
        let mut acc = [S::ZERO; B];
        for blk in indptr[ib]..indptr[ib + 1] {
            let c0 = indices[blk] as usize * B;
            let base = blk * B * B;
            if c0 + B <= ncols {
                let xt: &[S] = &x[c0..c0 + B];
                for (br, a) in acc.iter_mut().enumerate() {
                    let tile = &data[base + br * B..base + br * B + B];
                    for bc in 0..B {
                        *a += tile[bc] * xt[bc];
                    }
                }
            } else {
                // Ragged last block column: only the in-range columns
                // exist; their padded partners hold structural zeros
                // for *every* row, so skipping them is exact.
                let width = ncols - c0;
                for (br, a) in acc.iter_mut().enumerate() {
                    let tile = &data[base + br * B..base + br * B + width];
                    for bc in 0..width {
                        *a += tile[bc] * x[c0 + bc];
                    }
                }
            }
        }
        for (k, i) in (r0..r_end).enumerate() {
            y[i - y_base] = acc[k];
        }
    }
}

/// One 8-wide interleaved LDLᵀ row update: `acc[c] -= l·w[i·8 + c]` for
/// every stored entry `(i, l)`, entries in stored order, lanes
/// independent.
///
/// # Safety
///
/// For every `p`, the 8 doubles at `w.add(ri[p] as usize * 8)` must be
/// readable and not concurrently written.
pub(super) unsafe fn ldl_row_update8(acc: &mut [f64], ri: &[u32], rx: &[f64], w: *const f64) {
    debug_assert_eq!(acc.len(), 8);
    debug_assert_eq!(ri.len(), rx.len());
    for p in 0..ri.len() {
        let l = rx[p];
        let wi = std::slice::from_raw_parts(w.add(ri[p] as usize * 8), 8);
        for c in 0..8 {
            acc[c] -= l * wi[c];
        }
    }
}

/// Divides all 8 lanes of one interleaved chunk row by the pivot `dj`.
pub(super) fn ldl_scale_row8(wj: &mut [f64], dj: f64) {
    debug_assert_eq!(wj.len(), 8);
    for c in wj {
        *c /= dj;
    }
}

/// Per-edge Joule heat: `out[k] = Σ_col w[k]·(col[u[k]] − col[v[k]])²`,
/// columns of the embedding summed in storage order per edge.
pub(super) fn joule_heat(us: &[u32], vs: &[u32], ws: &[f64], h: &[f64], n: usize, out: &mut [f64]) {
    let r = h.len().checked_div(n).unwrap_or(0);
    for k in 0..out.len() {
        let (u, v, w) = (us[k] as usize, vs[k] as usize, ws[k]);
        let mut acc = 0.0;
        for c in 0..r {
            let col = &h[c * n..(c + 1) * n];
            let d = col[u] - col[v];
            acc += w * d * d;
        }
        out[k] = acc;
    }
}

/// Heat-filter scan: the `(id, heat)` pairs, in input order, whose heat is
/// finite, strictly positive and at least `cutoff`.
pub(super) fn scan_heat_candidates(ids: &[u32], heats: &[f64], cutoff: f64) -> Vec<(u32, f64)> {
    ids.iter()
        .zip(heats)
        .filter(|&(_, &h)| h.is_finite() && h > 0.0 && h >= cutoff)
        .map(|(&id, &h)| (id, h))
        .collect()
}
