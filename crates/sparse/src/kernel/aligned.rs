//! 64-byte-aligned contiguous storage for kernel-facing buffers.
//!
//! `Vec<f64>` only guarantees 8-byte alignment, so a vector register load
//! from it can straddle a cache line anywhere in the stream. [`AlignedVec`]
//! allocates at [`ALIGNMENT`]-byte (cache-line) boundaries, which makes
//! every BCSR tile start 32-byte aligned (a 2×2 `f64` tile is 32 bytes, a
//! 4×4 tile 128 bytes) and keeps [`crate::DenseBlock`] columns from
//! splitting their first vector load across lines. The SIMD kernels still
//! issue unaligned load *instructions* — their other operands (`x`, solve
//! work buffers) are caller-owned slices with no alignment contract — but
//! on aligned addresses those execute at full speed; what the allocation
//! guarantee removes is the split-line penalty on the big streamed arrays.
//!
//! The element type is constrained to `Copy` (the kernels store `f64` /
//! `f32` / small index types), which keeps drop handling trivial: freeing
//! the buffer never needs to run element destructors.

use std::alloc::{self, Layout};
use std::ops::{Deref, DerefMut};

/// Alignment, in bytes, of every [`AlignedVec`] allocation (one cache
/// line; a superset of the 32-byte AVX and 16-byte SSE/NEON requirements).
pub const ALIGNMENT: usize = 64;

/// A growable contiguous buffer whose allocation starts on an
/// [`ALIGNMENT`]-byte boundary.
///
/// Supports the small slice-building vocabulary the sparse constructors
/// need (`push`, `resize`, `extend_from_slice`) and dereferences to
/// `&[T]` / `&mut [T]` for everything else.
///
/// # Example
///
/// ```
/// use sass_sparse::kernel::{AlignedVec, ALIGNMENT};
///
/// let mut v: AlignedVec<f64> = AlignedVec::new();
/// v.resize(5, 1.5);
/// assert_eq!(&v[..], &[1.5; 5]);
/// assert_eq!(v.as_ptr() as usize % ALIGNMENT, 0);
/// ```
pub struct AlignedVec<T: Copy> {
    ptr: std::ptr::NonNull<T>,
    len: usize,
    cap: usize,
}

// SAFETY: an AlignedVec owns its buffer exclusively, exactly like Vec<T>;
// T: Copy types carry no interior mutability or thread affinity.
unsafe impl<T: Copy + Send> Send for AlignedVec<T> {}
unsafe impl<T: Copy + Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    /// An empty vector; allocates nothing until the first element arrives.
    pub fn new() -> Self {
        assert!(std::mem::size_of::<T>() > 0, "zero-sized elements");
        assert!(
            std::mem::align_of::<T>() <= ALIGNMENT,
            "element alignment exceeds the buffer alignment"
        );
        AlignedVec {
            ptr: std::ptr::NonNull::dangling(),
            len: 0,
            cap: 0,
        }
    }

    /// An empty vector with room for `cap` elements before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        let mut v = Self::new();
        v.reserve_total(cap);
        v
    }

    /// A vector of `len` copies of `value`.
    pub fn from_elem(value: T, len: usize) -> Self {
        let mut v = Self::with_capacity(len);
        v.resize(len, value);
        v
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn layout(cap: usize) -> Layout {
        // Checked multiply: the wrapped product would otherwise yield a
        // tiny allocation followed by out-of-bounds writes (`Vec` guards
        // the same case). Both failures are documented panics, not
        // recoverable errors — allocation-size overflow has no caller
        // that could do anything but abort the construction.
        let Some(bytes) = cap.checked_mul(std::mem::size_of::<T>()) else {
            panic!("AlignedVec capacity overflow: {cap} elements");
        };
        match Layout::from_size_align(bytes, ALIGNMENT) {
            Ok(layout) => layout,
            Err(_) => panic!("AlignedVec layout overflow: {bytes} bytes"),
        }
    }

    /// Grows the allocation to hold at least `cap` elements (never
    /// shrinks; amortizes by doubling).
    fn reserve_total(&mut self, cap: usize) {
        if cap <= self.cap {
            return;
        }
        let new_cap = cap.max(self.cap * 2).max(8);
        let new_layout = Self::layout(new_cap);
        // SAFETY: the layout is non-zero-sized (cap >= 8, T non-ZST); on
        // the realloc path the old pointer was allocated here with the
        // same alignment and element type.
        let raw = unsafe {
            if self.cap == 0 {
                alloc::alloc(new_layout)
            } else {
                alloc::realloc(
                    self.ptr.as_ptr().cast::<u8>(),
                    Self::layout(self.cap),
                    new_layout.size(),
                )
            }
        };
        let Some(ptr) = std::ptr::NonNull::new(raw.cast::<T>()) else {
            alloc::handle_alloc_error(new_layout);
        };
        self.ptr = ptr;
        self.cap = new_cap;
    }

    /// Appends one element.
    pub fn push(&mut self, value: T) {
        self.reserve_total(self.len + 1);
        // SAFETY: reserve_total guarantees room for index `len`.
        unsafe { self.ptr.as_ptr().add(self.len).write(value) };
        self.len += 1;
    }

    /// Resizes to `new_len`, filling any new slots with `value`.
    pub fn resize(&mut self, new_len: usize, value: T) {
        if new_len > self.len {
            self.reserve_total(new_len);
            for i in self.len..new_len {
                // SAFETY: capacity covers `new_len`.
                unsafe { self.ptr.as_ptr().add(i).write(value) };
            }
        }
        self.len = new_len;
    }

    /// Appends every element of `other`.
    pub fn extend_from_slice(&mut self, other: &[T]) {
        self.reserve_total(self.len + other.len());
        // SAFETY: capacity covers the combined length; a slice cannot
        // overlap this freshly reserved tail.
        unsafe {
            std::ptr::copy_nonoverlapping(
                other.as_ptr(),
                self.ptr.as_ptr().add(self.len),
                other.len(),
            );
        }
        self.len += other.len();
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `len` elements starting at `ptr` are initialized.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as `as_slice`, with exclusive access through `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl<T: Copy> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.cap > 0 {
            // SAFETY: allocated by `reserve_total` with this layout;
            // T: Copy, so elements need no drop.
            unsafe { alloc::dealloc(self.ptr.as_ptr().cast::<u8>(), Self::layout(self.cap)) };
        }
    }
}

impl<T: Copy> Default for AlignedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        let mut v = Self::with_capacity(self.len);
        v.extend_from_slice(self.as_slice());
        v
    }
}

impl<T: Copy + PartialEq> PartialEq for AlignedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy> Deref for AlignedVec<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy> DerefMut for AlignedVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy> From<&[T]> for AlignedVec<T> {
    fn from(slice: &[T]) -> Self {
        let mut v = Self::with_capacity(slice.len());
        v.extend_from_slice(slice);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_cache_line_aligned() {
        for n in [1usize, 7, 8, 9, 1000] {
            let v = AlignedVec::from_elem(1.25f64, n);
            assert_eq!(v.as_ptr() as usize % ALIGNMENT, 0, "n = {n}");
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x == 1.25));
        }
        let f: AlignedVec<f32> = AlignedVec::from_elem(2.0, 13);
        assert_eq!(f.as_ptr() as usize % ALIGNMENT, 0);
    }

    #[test]
    fn push_resize_extend_round_trip() {
        let mut v: AlignedVec<f64> = AlignedVec::new();
        assert!(v.is_empty());
        for i in 0..100 {
            v.push(i as f64);
        }
        v.extend_from_slice(&[100.0, 101.0]);
        assert_eq!(v.len(), 102);
        assert_eq!(v[57], 57.0);
        v.resize(4, 0.0);
        assert_eq!(&v[..], &[0.0, 1.0, 2.0, 3.0]);
        v.resize(6, 9.0);
        assert_eq!(&v[..], &[0.0, 1.0, 2.0, 3.0, 9.0, 9.0]);
        // Growth must preserve alignment across reallocations.
        assert_eq!(v.as_ptr() as usize % ALIGNMENT, 0);
    }

    #[test]
    fn clone_eq_debug_default() {
        let v = AlignedVec::from_elem(3.5f64, 5);
        let w = v.clone();
        assert_eq!(v, w);
        assert_eq!(w.as_ptr() as usize % ALIGNMENT, 0);
        assert_ne!(v, AlignedVec::from_elem(3.5f64, 4));
        assert_eq!(format!("{:?}", AlignedVec::from_elem(1i32, 2)), "[1, 1]");
        let d: AlignedVec<f64> = AlignedVec::default();
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "AlignedVec capacity overflow")]
    fn capacity_overflow_panics_instead_of_wrapping() {
        // cap · size_of::<f64>() wraps in a raw multiply; the checked
        // layout must panic rather than hand back a tiny allocation.
        let _ = AlignedVec::<f64>::with_capacity(usize::MAX / 8 + 1);
    }

    #[test]
    fn from_slice_copies() {
        let v: AlignedVec<u32> = AlignedVec::from(&[3u32, 1, 4][..]);
        assert_eq!(&v[..], &[3, 1, 4]);
    }
}
